"""Cross-cutting property-based tests (hypothesis) on the package's core
invariants: physics linearity, data-directive bookkeeping, message
delivery, and cost-model monotonicity."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.acc import PGI_14_6, Runtime
from repro.gpusim import Device, K40, LaunchConfig, estimate_kernel_time
from repro.model import constant_model
from repro.mpisim import SimMPI
from repro.propagators import AcousticPropagator
from repro.propagators.base import KernelWorkload
from repro.source import PointSource, integrated_ricker
from repro.utils.errors import DeviceOutOfMemoryError, PresentTableError
from repro.utils.units import MB


class TestPhysicsLinearity:
    @settings(max_examples=8, deadline=None)
    @given(st.floats(min_value=0.1, max_value=50.0))
    def test_acoustic_linear_in_source_amplitude(self, scale):
        """The acoustic system is linear: scaling the source scales the
        wavefield (up to float32 rounding)."""
        m = constant_model((64, 64), spacing=10.0, vp=2000.0)
        p1 = AcousticPropagator(m, boundary_width=8)
        p2 = AcousticPropagator(m, dt=p1.dt, boundary_width=8)
        w = integrated_ricker(40, p1.dt, 20.0)
        src = PointSource.at_center(m.grid, w)
        src2 = PointSource.at_center(m.grid, w * np.float32(scale))
        p1.run(35, source=src)
        p2.run(35, source=src2)
        a = p1.snapshot_field().astype(np.float64) * scale
        b = p2.snapshot_field().astype(np.float64)
        peak = np.abs(b).max() or 1.0
        assert np.max(np.abs(a - b)) < 1e-4 * peak

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=1, max_value=30))
    def test_time_reversibility_without_boundaries(self, nsteps):
        """Leapfrog with no absorption is time-reversible: stepping forward
        then 'backward' (swapped fields) returns near the start state."""
        m = constant_model((48, 48), spacing=10.0, vp=2000.0, with_density=False)
        from repro.propagators import IsotropicPropagator

        p = IsotropicPropagator(m, boundary_width=0, check_health_every=0)
        rng = np.random.default_rng(5)
        blob = np.zeros(m.grid.shape, dtype=np.float32)
        blob[20:28, 20:28] = rng.standard_normal((8, 8)).astype(np.float32)
        p.u[...] = blob
        p.u_prev[...] = blob  # symmetric start (zero velocity)
        for _ in range(nsteps):
            p.step()
        # reverse: swap u and u_prev, march the same number of steps
        p.u, p.u_prev = p.u_prev, p.u
        for _ in range(nsteps):
            p.step()
        err = np.abs(p.u.astype(np.float64) - blob)
        assert err.max() < 1e-3 * (np.abs(blob).max() or 1.0)


class TestPresentTableFuzz:
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(
        st.tuples(st.sampled_from(["enter", "exit", "update"]),
                  st.sampled_from(["a", "b", "c"])),
        min_size=1, max_size=30,
    ))
    def test_random_directive_sequences_stay_consistent(self, ops):
        """Whatever the sequence, the present table and the device memory
        must agree, refcounts stay positive, and failed ops change nothing."""
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        refcounts: dict[str, int] = {}
        for op, name in ops:
            if op == "enter":
                rt.enter_data(copyin={name: MB})
                refcounts[name] = refcounts.get(name, 0) + 1
            elif op == "exit":
                if refcounts.get(name, 0) > 0:
                    rt.exit_data(delete=[name])
                    refcounts[name] -= 1
                    if refcounts[name] == 0:
                        del refcounts[name]
                else:
                    with pytest.raises(PresentTableError):
                        rt.exit_data(delete=[name])
            else:
                if refcounts.get(name, 0) > 0:
                    rt.update_host(name)
                else:
                    with pytest.raises(PresentTableError):
                        rt.update_host(name)
            # invariant: table membership == positive refcount == device alloc
            for n in ("a", "b", "c"):
                assert rt.is_present(n) == (refcounts.get(n, 0) > 0)
                assert rt.device.memory.holds(n) == (refcounts.get(n, 0) > 0)


class TestMessageDeliveryFuzz:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 4),
                  st.integers(1, 16)),
        min_size=1, max_size=25,
    ))
    def test_every_message_delivered_exactly_once(self, msgs):
        """Random (src, dst, tag, size) traffic: each posted message is
        received exactly once with its exact payload."""
        mpi = SimMPI(4)
        sent = []
        for k, (src, dst, tag, size) in enumerate(msgs):
            if src == dst:
                continue
            payload = np.full(size, float(k), dtype=np.float32)
            mpi.comm(src).isend(payload, dest=dst, tag=tag)
            sent.append((src, dst, tag, size, float(k)))
        for src, dst, tag, size, val in sent:  # FIFO per (src,dst,tag)
            buf = np.zeros(size, dtype=np.float32)
            mpi.comm(dst).irecv(buf, source=src, tag=tag).wait()
            np.testing.assert_array_equal(buf, val)
        assert mpi.pending_messages() == 0


class TestCostModelMonotonicity:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1_000, max_value=10**7),
        st.integers(min_value=2, max_value=14),
        st.sampled_from([32, 64, 128, 256]),
    )
    def test_more_points_never_faster(self, points, streams, tpb):
        w1 = KernelWorkload("k", points, 30.0, 12, 2, (points,), address_streams=streams)
        w2 = KernelWorkload("k", 2 * points, 30.0, 12, 2, (2 * points,), address_streams=streams)
        cfg = LaunchConfig(threads_per_block=tpb, maxregcount=64)
        assert (
            estimate_kernel_time(K40, w2, cfg).seconds
            >= estimate_kernel_time(K40, w1, cfg).seconds
        )

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=2, max_value=14))
    def test_uncoalesced_never_faster(self, streams):
        base = KernelWorkload("k", 10**6, 30.0, 12, 2, (1000, 1000), address_streams=streams)
        unco = KernelWorkload("k", 10**6, 30.0, 12, 2, (1000, 1000),
                              address_streams=streams, inner_contiguous=False)
        assert (
            estimate_kernel_time(K40, unco).seconds
            >= estimate_kernel_time(K40, base).seconds
        )


class TestAllocatorFuzz:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=400 * MB),
                    min_size=1, max_size=30))
    def test_oom_is_a_clean_boundary(self, sizes):
        """Allocations either fit entirely or raise OOM without partial
        state; after releasing everything, the device is empty."""
        dev = Device(K40)
        live = []
        for i, size in enumerate(sizes):
            try:
                dev.allocate(f"x{i}", size)
                live.append(f"x{i}")
            except DeviceOutOfMemoryError:
                assert not dev.memory.holds(f"x{i}")
        for name in live:
            dev.release(name)
        assert dev.memory.used == 0
