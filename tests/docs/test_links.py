"""Every relative markdown link in README.md and docs/ must resolve —
target file present, anchor fragment matching a real heading."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[2]
PAGES = sorted([ROOT / "README.md", *(ROOT / "docs").glob("*.md")])

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
FENCE_RE = re.compile(r"^(```|~~~)", re.MULTILINE)
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def strip_fences(text):
    out, keep = [], True
    for line in text.splitlines():
        if line.startswith(("```", "~~~")):
            keep = not keep
            continue
        if keep:
            out.append(line)
    return "\n".join(out)


def github_slug(heading):
    """The anchor GitHub generates for a heading."""
    heading = re.sub(r"`([^`]*)`", r"\1", heading)  # strip inline code
    heading = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # links
    slug = []
    for ch in heading.strip().lower():
        if ch.isalnum() or ch in "_-":
            slug.append(ch)
        elif ch == " ":
            slug.append("-")
        # other punctuation (em dashes, colons, slashes) is dropped
    return "".join(slug)


def anchors_of(path):
    text = strip_fences(path.read_text())
    return {github_slug(h) for h in HEADING_RE.findall(text)}


def links_of(path):
    text = strip_fences(path.read_text())
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


@pytest.mark.parametrize("page", PAGES, ids=lambda p: p.name)
def test_relative_links_resolve(page):
    broken = []
    for target in links_of(page):
        path_part, _, fragment = target.partition("#")
        dest = page if not path_part else (page.parent / path_part).resolve()
        if not dest.exists():
            broken.append(f"{target}: no such file")
            continue
        if fragment and dest.suffix == ".md":
            if fragment not in anchors_of(dest):
                broken.append(f"{target}: no heading for #{fragment}")
    assert not broken, f"{page.name}: {broken}"


def test_docs_index_links_every_docs_page():
    index = ROOT / "docs" / "index.md"
    linked = {t.partition("#")[0] for t in links_of(index)}
    for page in (ROOT / "docs").glob("*.md"):
        if page.name == "index.md":
            continue
        assert page.name in linked, f"docs/index.md does not link {page.name}"


def test_readme_links_the_docs_index():
    assert "docs/index.md" in {
        t.partition("#")[0] for t in links_of(ROOT / "README.md")
    }
