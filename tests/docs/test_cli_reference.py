"""docs/cli.md must match the argparse surface exactly — both ways.

A subcommand or flag added to ``repro.__main__`` without a matching
documentation row fails here; so does a documented flag the parsers no
longer accept.
"""

import argparse
import re
from pathlib import Path

import pytest

from repro.__main__ import build_parser

DOC = Path(__file__).resolve().parents[2] / "docs" / "cli.md"

SECTION_RE = re.compile(r"^## repro (\S+)\s*$", re.MULTILINE)
FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")


def subparsers():
    parser = build_parser()
    action = next(
        a for a in parser._actions
        if isinstance(a, argparse._SubParsersAction)
    )
    return action.choices


def sections():
    """Map subcommand name -> its section body in docs/cli.md."""
    text = DOC.read_text()
    found = {}
    matches = list(SECTION_RE.finditer(text))
    for i, m in enumerate(matches):
        start = m.end()
        # a section runs until the next "## " heading of any kind
        nxt = text.find("\n## ", start)
        found[m.group(1)] = text[start:nxt if nxt != -1 else len(text)]
    return found


def parser_flags(sub):
    flags = set()
    for action in sub._actions:
        if isinstance(action, argparse._HelpAction):
            continue
        flags.update(action.option_strings)
    return {f for f in flags if f.startswith("--")}


def test_every_subcommand_has_a_section():
    missing = set(subparsers()) - set(sections())
    assert not missing, f"subcommands undocumented in docs/cli.md: {missing}"


def test_every_section_names_a_live_subcommand():
    ghosts = set(sections()) - set(subparsers())
    assert not ghosts, f"docs/cli.md documents removed subcommands: {ghosts}"


@pytest.mark.parametrize("name", sorted(subparsers()))
def test_every_flag_is_documented(name):
    body = sections().get(name)
    if body is None:
        pytest.skip("covered by test_every_subcommand_has_a_section")
    undocumented = {
        f for f in parser_flags(subparsers()[name]) if f not in body
    }
    assert not undocumented, (
        f"'repro {name}' flags missing from docs/cli.md: "
        f"{sorted(undocumented)}"
    )


@pytest.mark.parametrize("name", sorted(subparsers()))
def test_every_documented_flag_exists(name):
    body = sections().get(name)
    if body is None:
        pytest.skip("covered by test_every_subcommand_has_a_section")
    live = parser_flags(subparsers()[name])
    ghosts = set(FLAG_RE.findall(body)) - live
    assert not ghosts, (
        f"docs/cli.md documents flags 'repro {name}' does not accept: "
        f"{sorted(ghosts)}"
    )


def test_exit_codes_are_stated():
    for name, body in sections().items():
        assert "Exit code" in body, (
            f"'repro {name}' section lacks an exit-code contract"
        )
