import pytest

from repro.optim import (
    collapse_nest,
    inline_receiver_loop,
    loop_fission,
    mark_uncoalesced,
    remove_branches,
    with_transposition,
)
from repro.propagators.base import KernelWorkload
from repro.propagators.workloads import acoustic_workloads
from repro.utils.errors import ConfigurationError


def fused_3d():
    return [w for w in acoustic_workloads((128, 128, 128)) if "fused" in w.name][0]


class TestLoopFission:
    def test_splits_into_parts(self):
        parts = loop_fission(fused_3d(), 3)
        assert len(parts) == 3
        assert all(p.points == fused_3d().points for p in parts)

    def test_conserves_flops(self):
        w = fused_3d()
        parts = loop_fission(w, 3)
        assert sum(p.flops_per_point for p in parts) == pytest.approx(w.flops_per_point)

    def test_total_reads_rise_with_shared_stream(self):
        """Fission re-reads the differentiated field per part — the traffic
        cost the register relief buys."""
        w = fused_3d()
        parts = loop_fission(w, 3)
        assert sum(p.reads_per_point for p in parts) > w.reads_per_point

    def test_register_pressure_drops(self):
        from repro.gpusim import estimate_register_demand

        w = fused_3d()
        parts = loop_fission(w, 3)
        assert all(
            estimate_register_demand(p) < estimate_register_demand(w) for p in parts
        )

    def test_invalid_parts(self):
        with pytest.raises(ConfigurationError):
            loop_fission(fused_3d(), 1)
        with pytest.raises(ConfigurationError):
            loop_fission(fused_3d(), 100)


class TestCoalescingTransforms:
    def test_mark_uncoalesced(self):
        w = mark_uncoalesced(fused_3d())
        assert not w.inner_contiguous

    def test_with_transposition_three_kernels(self):
        seq = with_transposition(mark_uncoalesced(fused_3d()))
        assert len(seq) == 3
        assert seq[0].name == "transpose_to_tmp"
        assert seq[1].inner_contiguous
        assert seq[2].name == "transpose_from_tmp"


class TestOtherTransforms:
    def test_inline_receiver_loop(self):
        w = inline_receiver_loop(64)
        assert w.points == 64
        assert "inlined" in w.name

    def test_remove_branches(self):
        w = KernelWorkload("k", 100, 10.0, 5, 1, (10, 10), has_branches=True)
        out = remove_branches(w, extra_flops=8.0)
        assert not out.has_branches
        assert out.flops_per_point == 18.0

    def test_collapse_nest(self):
        w = KernelWorkload("k", 1000, 10.0, 5, 1, (10, 10, 10))
        out = collapse_nest(w, 2)
        assert out.loop_dims == (100, 10)

    def test_collapse_invalid(self):
        w = KernelWorkload("k", 100, 10.0, 5, 1, (10, 10))
        with pytest.raises(ConfigurationError):
            collapse_nest(w, 3)
