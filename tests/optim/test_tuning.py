import pytest

from repro.gpusim import K40, M2090
from repro.gpusim.specs import CUDA_5_5
from repro.optim import (
    async_comparison,
    predict_best_launch,
    register_sweep,
    vector_length_sweep,
)
from repro.optim.tuning import best_register_count
from repro.propagators.workloads import elastic_workloads
from repro.utils.errors import ConfigurationError


class TestRegisterSweep:
    def test_paper_figure10_shape(self):
        """64 registers/thread is the sweet spot on the K40 for the elastic
        3-D kernel set; very low counts spill, very high counts lose
        occupancy."""
        pts = register_sweep(K40, elastic_workloads((256, 256, 256)), toolkit=CUDA_5_5)
        by_reg = {p.maxregcount: p for p in pts}
        assert best_register_count(pts) == 64
        assert by_reg[16].seconds > by_reg[64].seconds
        assert by_reg[32].seconds > by_reg[64].seconds
        assert by_reg[255].seconds > by_reg[64].seconds
        assert by_reg[16].spilled_regs > 0
        assert by_reg[255].occupancy < by_reg[64].occupancy

    def test_empty_workloads_rejected(self):
        with pytest.raises(ConfigurationError):
            register_sweep(K40, [])

    def test_clamped_candidates_deduplicated(self):
        """On Fermi (63 regs/thread ceiling) the 64/128/255 candidates all
        clamp to the same hardware configuration: one point, reporting both
        the requested and the effective count."""
        pts = register_sweep(M2090, elastic_workloads((512, 512)))
        assert [p.maxregcount for p in pts] == [16, 32, 64]
        assert [p.effective_maxregcount for p in pts] == [16, 32, 63]
        # distinct effective configs -> distinct measurements
        assert len({p.seconds for p in pts}) == len(pts)

    def test_effective_count_matches_requested_below_ceiling(self):
        pts = register_sweep(K40, elastic_workloads((256, 256)))
        assert all(p.effective_maxregcount == p.maxregcount for p in pts)
        assert len(pts) == 5


class TestVectorLengthSweep:
    def test_respects_device_limit(self):
        ws = elastic_workloads((128, 128))
        sweep = vector_length_sweep(K40, ws[0])
        assert all(v <= K40.max_threads_per_block for v in sweep)

    def test_predict_best_launch_is_argmin(self):
        ws = elastic_workloads((128, 128))
        cfg, est = predict_best_launch(K40, ws[0])
        sweep = vector_length_sweep(K40, ws[0])
        assert est.seconds == min(e.seconds for e in sweep.values())
        assert cfg.threads_per_block in sweep


class TestAsyncComparison:
    def test_cray_regime_gains(self):
        """Small kernels + cheap enqueue: async packing wins (Figure 11)."""
        ws = elastic_workloads((128, 128))
        cmp_ = async_comparison(K40, ws, steps=50, enqueue_cost_factor=1.0)
        assert cmp_.improvement > 0.10

    def test_pgi_regime_loses(self):
        ws = elastic_workloads((128, 128))
        cmp_ = async_comparison(K40, ws, steps=50, enqueue_cost_factor=8.0)
        assert cmp_.improvement < 0.0

    def test_large_kernels_insensitive(self):
        """At 3-D sizes the kernels dwarf the launch gap — async buys
        little either way (why the paper's Figure 11 is a 2-D study)."""
        ws = elastic_workloads((160, 160, 160))
        cmp_ = async_comparison(K40, ws, steps=5, enqueue_cost_factor=1.0)
        assert abs(cmp_.improvement) < 0.05

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            async_comparison(K40, [])
