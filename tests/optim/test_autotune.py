"""The closed-loop tuner: probe extraction, search, plan artifact, apply."""

import dataclasses
import json

import pytest

from repro.acc.clauses import LoopSchedule
from repro.core.config import GPUOptions
from repro.core.rtm import estimate_rtm
from repro.optim.autotune import (
    BASELINE,
    KernelPlan,
    ProbeDegradedWarning,
    ScheduleCandidate,
    TuneRequest,
    TuningPlan,
    extract_observations,
    lint_gate,
    load_plan,
    observed_step_seconds,
    options_with_plan,
    request_for_case,
    run_probe,
    transfer_overlap_seconds,
    tune_case,
)
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError

GPU = "gpu:Tesla K40"


def _kernel(tracer, name, start, end, queue=None, occupancy=0.5, spill=0):
    """Emit one device-style kernel span on the tracer."""
    track = "stream:0" if queue is None else f"queue:{queue}"
    args = {}
    if occupancy is not None:
        args["occupancy"] = occupancy
    if spill is not None:
        args["spilled_regs"] = spill
    tracer.emit(name, start, end, process=GPU, track=track, cat="kernel", **args)


class TestExtractObservations:
    def test_golden_trace(self):
        """A hand-built trace reduces to the expected per-kernel stats."""
        tr = Tracer()
        _kernel(tr, "update_p", 0.0, 2.0, occupancy=0.4, spill=0)
        _kernel(tr, "update_p", 2.0, 4.0, occupancy=0.8, spill=4)
        _kernel(tr, "inject", 4.0, 4.5, occupancy=1.0, spill=0)
        obs = extract_observations(tr)
        assert set(obs) == {"update_p", "inject"}
        p = obs["update_p"]
        assert p.launches == 2
        assert p.total_seconds == pytest.approx(4.0)
        assert p.mean_seconds == pytest.approx(2.0)
        # duration-weighted mean of equal-length launches
        assert p.occupancy == pytest.approx(0.6)
        assert p.spilled_regs == 4
        assert obs["inject"].mean_seconds == pytest.approx(0.5)

    def test_overlapping_async_spans(self):
        """Concurrent spans on different queues are charged independently
        and the queue census records where each launch ran."""
        tr = Tracer()
        _kernel(tr, "k", 0.0, 1.0, queue=1)
        _kernel(tr, "k", 0.2, 1.2, queue=2)   # overlaps the queue-1 launch
        _kernel(tr, "k", 1.2, 2.0, queue=2)
        obs = extract_observations(tr)["k"]
        assert obs.launches == 3
        assert obs.total_seconds == pytest.approx(2.8)
        assert obs.queues == {1: 1, 2: 2}
        assert obs.preferred_queue() == 2

    def test_missing_occupancy_degrades_with_warning(self):
        """A trace without occupancy annotations must not crash: the kernel
        reports occupancy=None and falls back to the static model."""
        tr = Tracer()
        _kernel(tr, "legacy", 0.0, 1.0, occupancy=None, spill=None)
        with pytest.warns(ProbeDegradedWarning):
            obs = extract_observations(tr)
        assert obs["legacy"].occupancy is None
        with pytest.warns(ProbeDegradedWarning):
            assert obs["legacy"].occupancy_or_static(0.75) == 0.75

    def test_partial_occupancy_is_conservative(self):
        """If even one launch lacks the annotation, the kernel degrades."""
        tr = Tracer()
        _kernel(tr, "k", 0.0, 1.0, occupancy=0.5)
        _kernel(tr, "k", 1.0, 2.0, occupancy=None, spill=None)
        with pytest.warns(ProbeDegradedWarning):
            obs = extract_observations(tr)
        assert obs["k"].occupancy is None

    def test_ignores_non_kernel_events(self):
        tr = Tracer()
        tr.emit("copyin:model", 0.0, 1.0, process=GPU, track="stream:0",
                cat="h2d", bytes=100)
        assert extract_observations(tr) == {}


class TestTransferOverlap:
    def test_interval_intersection(self):
        tr = Tracer()
        _kernel(tr, "k", 0.0, 2.0, queue=1)
        tr.emit("up", 1.0, 3.0, process=GPU, track="stream:0", cat="h2d")
        tr.emit("down", 5.0, 6.0, process=GPU, track="stream:0", cat="d2h")
        overlap, transfer = transfer_overlap_seconds(tr)
        assert transfer == pytest.approx(3.0)
        assert overlap == pytest.approx(1.0)  # only 1.0..2.0 overlaps

    def test_no_transfers(self):
        tr = Tracer()
        _kernel(tr, "k", 0.0, 1.0)
        assert transfer_overlap_seconds(tr) == (0.0, 0.0)


class TestObservedStepSeconds:
    def test_combines_forward_and_backward(self):
        tr = Tracer()
        tr.emit("forward_step", 0.0, 1.0, track="pipeline", cat="phase")
        tr.emit("forward_step", 1.0, 2.0, track="pipeline", cat="phase")
        tr.emit("backward_step", 2.0, 5.0, track="pipeline", cat="phase")
        tr.emit("backward_step", 5.0, 8.0, track="pipeline", cat="phase")
        mean, steps = observed_step_seconds(tr)
        assert steps == 2
        assert mean == pytest.approx(4.0)  # (2 + 6) / 2

    def test_empty(self):
        assert observed_step_seconds(Tracer()) == (0.0, 0)


class TestProbe:
    def test_probe_measures_real_pipeline(self):
        request = request_for_case("acoustic-2d", mode="rtm")
        result = run_probe(request, request.base_options)
        assert result.success
        assert result.steps == request.nt
        assert result.step_seconds > 0
        assert "acoustic_update_p" in result.kernels
        obs = result.kernels["acoustic_update_p"]
        assert obs.occupancy is not None and 0 < obs.occupancy <= 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            TuneRequest(physics="acoustic", shape=(64, 64), mode="sideways")


class TestLintGate:
    def test_passes_clean_candidate(self):
        request = request_for_case("acoustic-2d")
        cand = ScheduleCandidate("kernels", 128, 64, None)
        ok, errors = lint_gate(request, cand.options(request.base_options))
        assert ok and errors == []

    def test_prunes_false_independent(self):
        """An explicit independent schedule over the loop-carried original
        backward kernels is exactly what schedule lint must refuse."""
        request = request_for_case("acoustic-2d")
        base = dataclasses.replace(
            request.base_options, reuse_forward_kernel=False
        )
        request = dataclasses.replace(request, base_options=base)
        cand = ScheduleCandidate("parallel", 128, 64, None)
        ok, errors = lint_gate(request, cand.options(base))
        assert not ok
        assert "false-independent" in errors


class TestPlanArtifact:
    def _tiny_plan(self):
        return TuningPlan(
            case="acoustic-2d",
            mode="rtm",
            platform="CRAY",
            compiler="PGI 14.6",
            maxregcount=64,
            async_kernels=True,
            kernels={
                "acoustic_update_p": KernelPlan(
                    kernel="acoustic_update_p",
                    construct="kernels",
                    vector_length=128,
                    queue=1,
                    predicted_seconds=1.0e-3,
                    observed_seconds=1.1e-3,
                    model_error=-0.0909,
                ),
            },
            baseline_step_seconds=2.0e-3,
            tuned_step_seconds=1.8e-3,
            probes=3,
            budget=3,
        )

    def test_json_roundtrip(self, tmp_path):
        plan = self._tiny_plan()
        path = tmp_path / "plan.json"
        plan.save(str(path))
        loaded = load_plan(str(path))
        assert loaded.kernels["acoustic_update_p"].queue == 1
        assert loaded.improvement == pytest.approx(plan.improvement)
        assert loaded.to_json() == plan.to_json()

    def test_version_gate(self, tmp_path):
        data = self._tiny_plan().to_json()
        data["version"] = 99
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data))
        with pytest.raises(ConfigurationError):
            load_plan(str(path))

    def test_entry_for_and_schedule(self):
        plan = self._tiny_plan()
        entry = plan.entry_for("acoustic_update_p")
        assert entry is not None
        sched = entry.loop_schedule()
        assert isinstance(sched, LoopSchedule)
        assert sched.vector_length == 128
        assert plan.entry_for("unknown_kernel") is None

    def test_model_error_reported(self):
        plan = self._tiny_plan()
        assert plan.mean_abs_model_error == pytest.approx(0.0909)

    def test_options_with_plan(self):
        plan = self._tiny_plan()
        opts = options_with_plan(GPUOptions(), plan)
        assert opts.plan is plan
        assert opts.flags.maxregcount == 64
        assert opts.async_kernels is True
        assert opts.construct is None  # entries, not a global force


class TestTuneCase:
    @pytest.fixture(scope="class")
    def plan(self):
        return tune_case(request_for_case("acoustic-2d"), budget=3)

    def test_never_slower_than_default(self, plan):
        assert plan.tuned_step_seconds <= plan.baseline_step_seconds

    def test_records_model_error(self, plan):
        errs = [
            k.model_error
            for k in plan.kernels.values()
            if k.model_error is not None
        ]
        assert errs, "plan must record predicted-vs-observed per kernel"

    def test_plan_applies_to_estimate(self, plan):
        """Applying the plan to a real estimate run of the tuned case (same
        shape the tuner probed) must not be slower than the default static
        schedule."""
        shape, case_nt, snap = (1024, 1024), 12, 4
        default = estimate_rtm(
            "acoustic", shape, case_nt, snap,
            options=GPUOptions(), nreceivers=16,
        )
        tuned = estimate_rtm(
            "acoustic", shape, case_nt, snap,
            options=options_with_plan(GPUOptions(), plan), nreceivers=16,
        )
        assert tuned.success and default.success
        assert tuned.total <= default.total * 1.01

    def test_budget_respected(self, plan):
        assert plan.probes <= plan.budget

    def test_budget_validation(self):
        with pytest.raises(ConfigurationError):
            tune_case(request_for_case("acoustic-2d"), budget=0)
