"""The shared rule registry: one record per bug class, two detectors."""

import pathlib

from repro.analyze.rules import (
    DYNAMIC_PASSES,
    REGISTRY,
    STATIC_RULE_IDS,
    rule,
    rule_for_static_id,
)
from repro.sanitize import PASSES

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "analysis.md"


class TestRegistryShape:
    def test_all_bug_classes_registered(self):
        assert set(REGISTRY) == {
            "stale-device-read",
            "stale-host-read",
            "short-ghost-transfer",
            "ghost-transfer-out-of-bounds",
            "halo-send-before-sync",
            "unmatched-send",
            "unmatched-recv",
            "send-recv-deadlock",
        }

    def test_codes_are_unique(self):
        codes = [r.code for r in REGISTRY.values()]
        assert len(codes) == len(set(codes))

    def test_static_ids_resolve_back(self):
        for r in REGISTRY.values():
            assert rule_for_static_id(r.static_rule) is r
        assert rule_for_static_id("use-before-copyin") is None

    def test_coherence_rules_have_both_detectors(self):
        for key in DYNAMIC_PASSES:
            r = rule(key)
            assert r.code.startswith("DF0")
            assert r.static_pass is not None

    def test_crossrank_rules_are_static_only(self):
        for key in ("unmatched-send", "unmatched-recv", "send-recv-deadlock"):
            r = rule(key)
            assert r.dynamic_pass is None
            assert r.code.startswith("DF1")

    def test_static_rule_id_format(self):
        assert STATIC_RULE_IDS["DF001-stale-device-read"] == \
            "stale-device-read"


class TestSanitizerIntegration:
    def test_sanitizer_passes_are_the_registry_view(self):
        assert PASSES is DYNAMIC_PASSES

    def test_message_templates_have_the_fields_the_emitters_pass(self):
        rule("stale-device-read").format(
            consumer="kernel 'k'", var="u", ranges="bytes [0, 8)"
        )
        rule("stale-device-read").format_alt(var="u", ranges="x")
        rule("ghost-transfer-out-of-bounds").format(
            direction="device", var="u", lo=0, hi=8, extent=4
        )
        rule("send-recv-deadlock").format(ranks="0,1", detail="…")


class TestDocumentation:
    def test_every_rule_has_a_docs_anchor(self):
        text = DOCS.read_text(encoding="utf-8")
        for r in REGISTRY.values():
            assert f'"{r.anchor}"' in text or f"#{r.anchor}" in text or \
                r.anchor in text, r.key

    def test_docs_name_both_detectors_once(self):
        text = DOCS.read_text(encoding="utf-8")
        for r in REGISTRY.values():
            assert r.code in text, r.code
