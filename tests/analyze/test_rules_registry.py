"""The shared rule registry: one record per bug class, two detectors."""

import pathlib

from repro.analyze.rules import (
    DYNAMIC_PASSES,
    REGISTRY,
    STATIC_RULE_IDS,
    rule,
    rule_for_static_id,
)
from repro.sanitize import PASSES

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "analysis.md"


class TestRegistryShape:
    def test_all_bug_classes_registered(self):
        assert set(REGISTRY) == {
            "stale-device-read",
            "stale-host-read",
            "short-ghost-transfer",
            "ghost-transfer-out-of-bounds",
            "halo-send-before-sync",
            "unmatched-send",
            "unmatched-recv",
            "send-recv-deadlock",
            "dependence-edge-not-preserved",
            "hoist-not-dominated",
            "fused-access-overlap",
            "cross-rank-reorder",
            "device-over-capacity",
            "checkpoint-spike",
        }

    def test_codes_are_unique(self):
        codes = [r.code for r in REGISTRY.values()]
        assert len(codes) == len(set(codes))

    def test_static_ids_resolve_back(self):
        for r in REGISTRY.values():
            assert rule_for_static_id(r.static_rule) is r
        assert rule_for_static_id("use-before-copyin") is None

    def test_coherence_rules_have_both_detectors(self):
        for key in DYNAMIC_PASSES:
            r = rule(key)
            assert r.code.startswith("DF0")
            assert r.static_pass is not None

    def test_crossrank_rules_are_static_only(self):
        for key in ("unmatched-send", "unmatched-recv", "send-recv-deadlock"):
            r = rule(key)
            assert r.dynamic_pass is None
            assert r.code.startswith("DF1")

    def test_static_rule_id_format(self):
        assert STATIC_RULE_IDS["DF001-stale-device-read"] == \
            "stale-device-read"

    def test_verification_rules_are_static_only(self):
        # DF2xx: translation validator + capacity prover — no dynamic
        # counterpart by construction (they gate before execution), and
        # exactly one static pass each
        for key, r in REGISTRY.items():
            if not r.code.startswith("DF2"):
                continue
            assert r.dynamic_pass is None, key
            assert r.static_pass in ("translation-validate", "capacity"), key

    def test_verification_rule_codes_and_severities(self):
        assert rule("dependence-edge-not-preserved").code == "DF201"
        assert rule("hoist-not-dominated").code == "DF202"
        assert rule("fused-access-overlap").code == "DF203"
        assert rule("cross-rank-reorder").code == "DF204"
        assert rule("device-over-capacity").code == "DF210"
        assert rule("checkpoint-spike").code == "DF211"
        from repro.analyze.framework import Severity

        for key in ("dependence-edge-not-preserved", "hoist-not-dominated",
                    "fused-access-overlap", "cross-rank-reorder",
                    "device-over-capacity"):
            assert rule(key).severity is Severity.ERROR, key
        assert rule("checkpoint-spike").severity is Severity.WARNING

    def test_verification_templates_have_the_fields_the_emitters_pass(self):
        rule("dependence-edge-not-preserved").format(
            kind="raw", var="u", src=1, dst=2, detail="…"
        )
        rule("hoist-not-dominated").format(
            direction="device", var="u", idx=3, detail="…"
        )
        rule("fused-access-overlap").format(
            kernel="a+b", var="u", idx=2, detail="…"
        )
        rule("cross-rank-reorder").format(rank=0, detail="…")
        rule("device-over-capacity").format(
            peak=1, detail="…", usable=0, device="K40", idx=4
        )
        rule("checkpoint-spike").format(
            spike=1, base=2, detail="…", total=3, usable=2, device="K40"
        )


class TestSanitizerIntegration:
    def test_sanitizer_passes_are_the_registry_view(self):
        assert PASSES is DYNAMIC_PASSES

    def test_message_templates_have_the_fields_the_emitters_pass(self):
        rule("stale-device-read").format(
            consumer="kernel 'k'", var="u", ranges="bytes [0, 8)"
        )
        rule("stale-device-read").format_alt(var="u", ranges="x")
        rule("ghost-transfer-out-of-bounds").format(
            direction="device", var="u", lo=0, hi=8, extent=4
        )
        rule("send-recv-deadlock").format(ranks="0,1", detail="…")


class TestDocumentation:
    def test_every_rule_has_a_docs_anchor(self):
        text = DOCS.read_text(encoding="utf-8")
        for r in REGISTRY.values():
            assert f'"{r.anchor}"' in text or f"#{r.anchor}" in text or \
                r.anchor in text, r.key

    def test_docs_name_both_detectors_once(self):
        text = DOCS.read_text(encoding="utf-8")
        for r in REGISTRY.values():
            assert r.code in text, r.code
