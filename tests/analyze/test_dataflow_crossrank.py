"""Cross-rank message matching and deadlock detection goldens."""

from repro.analyze.dataflow import DependenceGraph, check_ranks, match_messages
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.sanitize import sanitize_pipeline


def prog(events):
    p = DirectiveProgram()
    for e in events:
        p.add(e)
    return p


def send(var, to, **kw):
    return AccEvent(kind="send", var=var, peer=to, **kw)


def recv(var, frm, **kw):
    return AccEvent(kind="recv", var=var, peer=frm, **kw)


class TestMatching:
    def test_matched_pair_is_clean(self):
        r = check_ranks([
            prog([send("u", to=1)]),
            prog([recv("u", frm=0)]),
        ])
        assert r.clean()
        assert len(r.match.pairs) == 1

    def test_channel_order_is_fifo(self):
        m = match_messages([
            prog([send("u", to=1, offset=0), send("u", to=1, offset=64)]),
            prog([recv("u", frm=0, offset=0), recv("u", frm=0, offset=64)]),
        ])
        assert [(p.send[1], p.recv[1]) for p in m.pairs] == [(0, 0), (1, 1)]

    def test_peerless_events_are_skipped(self):
        """Single-rank recordings carry no peer; nothing to match or flag."""
        r = check_ranks([
            prog([AccEvent(kind="send", var="u")]),
            prog([AccEvent(kind="recv", var="u")]),
        ])
        assert r.clean() and not r.match.pairs


class TestUnmatched:
    def test_unmatched_send_is_df101(self):
        r = check_ranks([prog([send("u", to=1)]), prog([])])
        (d,) = r.diagnostics
        assert d.rule == "DF101-unmatched-send"
        assert d.message.startswith("[rank 0]")
        assert d.witness == (0,)

    def test_unmatched_recv_is_df102(self):
        r = check_ranks([prog([]), prog([recv("u", frm=0)])])
        (d,) = r.diagnostics
        assert d.rule == "DF102-unmatched-recv"
        assert d.message.startswith("[rank 1]")


class TestDeadlock:
    def test_recv_recv_cycle_is_df103(self):
        """Both ranks receive first: each blocks on a send sitting behind
        the other's blocked receive — the classic exchange deadlock."""
        r = check_ranks([
            prog([recv("u", frm=1), send("u", to=1)]),
            prog([recv("u", frm=0), send("u", to=0)]),
        ])
        codes = {d.rule for d in r.diagnostics}
        assert "DF103-send-recv-deadlock" in codes
        assert set(r.deadlock_cycle) == {0, 1}
        (d,) = [d for d in r.diagnostics if d.rule.endswith("deadlock")]
        assert d.witness == (0, 0)  # the blocking recv on each rank

    def test_send_first_protocol_is_clean(self):
        r = check_ranks([
            prog([send("u", to=1), recv("u", frm=1)]),
            prog([send("u", to=0), recv("u", frm=0)]),
        ])
        assert r.clean()

    def test_three_rank_ring_cycle(self):
        r = check_ranks([
            prog([recv("u", frm=2), send("u", to=1)]),
            prog([recv("u", frm=0), send("u", to=2)]),
            prog([recv("u", frm=1), send("u", to=0)]),
        ])
        assert set(r.deadlock_cycle) == {0, 1, 2}

    def test_chain_exiting_blocked_set_is_not_a_cycle(self):
        """Rank 0 blocks on a recv whose sender (rank 1) finished — that is
        an unmatched receive, not a deadlock."""
        r = check_ranks([
            prog([recv("u", frm=1), recv("u", frm=1)]),
            prog([send("u", to=0)]),
        ])
        codes = {d.rule for d in r.diagnostics}
        assert "DF102-unmatched-recv" in codes
        assert "DF103-send-recv-deadlock" not in codes


class TestRecordedPrograms:
    def test_executed_halo_exchange_matches_and_is_clean(self):
        result = sanitize_pipeline(
            "isotropic", (96, 96), "rtm", ranks=2, nt=8, snap_period=4
        )
        r = check_ranks(result.programs)
        assert r.clean(), [d.message for d in r.diagnostics]
        assert r.match.pairs  # the peers stamped at record time match up

    def test_message_edges_join_the_dependence_graph(self):
        a = prog([send("u", to=1)])
        b = prog([recv("u", frm=0),
                  AccEvent(kind="compute", kernel="k", reads=("u",))])
        g = DependenceGraph([a, b])
        assert any(e.kind == "message" for e in g.edges)
        assert g.happens_before((0, 0), (1, 1))
