"""The ``python -m repro lint`` command: reporters and exit-code gating."""

import json

import pytest

from repro.__main__ import build_parser
from repro.utils.errors import ConfigurationError

CLEAN_SCRIPT = """\
!$acc enter data copyin(u)
!$lint name=stencil writes=u
!$acc parallel loop gang vector present(u)
!$acc exit data copyout(u)
"""

BROKEN_SCRIPT = """\
!$lint name=recur carried=true reads=p writes=p
!$acc kernels loop independent present(p)
!$acc exit data delete(p)
"""


def run(argv):
    args = build_parser().parse_args(argv)
    return args.fn(args)


@pytest.fixture
def clean(tmp_path):
    p = tmp_path / "clean.acc"
    p.write_text(CLEAN_SCRIPT)
    return str(p)


@pytest.fixture
def broken(tmp_path):
    p = tmp_path / "broken.acc"
    p.write_text(BROKEN_SCRIPT)
    return str(p)


class TestLintCommand:
    def test_clean_script_exits_zero(self, clean, capsys):
        assert run(["lint", "--script", clean]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out

    def test_broken_script_fails_on_error(self, broken, capsys):
        assert run(["lint", "--script", broken]) == 1
        out = capsys.readouterr().out
        assert "false-independent" in out
        assert "use-before-copyin" in out

    def test_fail_on_none_always_passes(self, broken, capsys):
        assert run(["lint", "--script", broken, "--fail-on", "none"]) == 0

    def test_fail_on_warning_tightens_the_gate(self, clean, tmp_path, capsys):
        warn = tmp_path / "warn.acc"
        warn.write_text(
            "!$acc enter data copyin(u)\n"
            "!$acc update device(u)\n"  # redundant: warning-level
            "!$acc exit data delete(u)\n"
        )
        assert run(["lint", "--script", str(warn)]) == 0
        assert run(["lint", "--script", str(warn), "--fail-on", "warning"]) == 1

    def test_unknown_fail_on_rejected(self, clean):
        with pytest.raises(ConfigurationError):
            run(["lint", "--script", clean, "--fail-on", "fatal"])

    def test_json_reporter(self, broken, capsys):
        run(["lint", "--script", broken, "--json"])
        data = json.loads(capsys.readouterr().out)
        assert isinstance(data, list) and len(data) == 1
        diags = data[0]["diagnostics"]
        assert any(d["rule"] == "false-independent" for d in diags)
        assert data[0]["worst"] == "error"

    def test_case_target_runs_pipeline(self, capsys):
        assert run(["lint", "iso2d", "--nt", "8"]) == 0
        out = capsys.readouterr().out
        assert "ISOTROPIC 2D (rtm)" in out

    def test_case_mode_both(self, capsys):
        assert run(["lint", "ac2d", "--mode", "both", "--nt", "8"]) == 0
        out = capsys.readouterr().out
        assert "(modeling)" in out and "(rtm)" in out

    def test_compiler_override(self, capsys):
        assert run(["lint", "ac2d", "--nt", "8",
                    "--compiler", "cray-8.2.6"]) == 0
        assert "CRAY 8.2.6" in capsys.readouterr().out

    def test_unknown_compiler_rejected(self):
        with pytest.raises(ConfigurationError, match="pgi-14.6"):
            run(["lint", "ac2d", "--compiler", "gcc-13"])

    def test_missing_target_rejected(self):
        with pytest.raises(ConfigurationError):
            run(["lint"])
