"""The opportunity pass: legality facts with replay verification."""

import pytest

from repro.analyze.cli import _INVENTORY, _SHAPES
from repro.analyze.dataflow import (
    OpportunityReport,
    apply_opportunity,
    find_opportunities,
    reports_to_json,
    validate_opportunities,
)
from repro.analyze.dataflow.opportunities import OptimizationOpportunity
from repro.analyze.drivers import record_pipeline_program
from repro.analyze.program import AccEvent, DirectiveProgram


def prog(events, extents=None):
    p = DirectiveProgram()
    for e in events:
        p.add(e)
    p.extents.update(extents or {})
    return p


def kinds(report):
    return sorted({o.kind for o in report.opportunities})


class TestFusion:
    def test_independent_adjacent_computes_fuse(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", writes=("u",),
                     writes_known=True),
            AccEvent(kind="compute", kernel="b", writes=("v",),
                     writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ], extents={"u": 1024, "v": 1024})
        (opp,) = find_opportunities(p).opportunities
        assert opp.kind == "fuse-computes"
        assert opp.events == (1, 2)
        assert opp.kernels == ("a", "b")
        assert opp.verified

    def test_war_blocked_pair_does_not_fuse(self):
        """An update host between the computes reads what the first wrote
        and is overwritten by the second — fusing would reorder it."""
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="a", writes=("u",),
                     writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="compute", kernel="b", writes=("u",),
                     writes_known=True),
            AccEvent(kind="exit", delete=("u",)),
        ], extents={"u": 1024})
        assert "fuse-computes" not in kinds(find_opportunities(p))

    def test_wait_between_blocks_fusion(self):
        """A wait is a cross-queue barrier the replay cannot see through."""
        p = prog([
            AccEvent(kind="compute", kernel="a", queue=1, writes=("u",),
                     writes_known=True),
            AccEvent(kind="wait"),
            AccEvent(kind="compute", kernel="b", queue=1, writes=("v",),
                     writes_known=True),
        ], extents={"u": 64, "v": 64})
        assert "fuse-computes" not in kinds(find_opportunities(p))

    def test_cross_queue_pair_does_not_fuse(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", queue=1, writes=("u",),
                     writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2, writes=("v",),
                     writes_known=True),
        ])
        assert "fuse-computes" not in kinds(find_opportunities(p))

    def test_apply_merges_the_launches(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", reads=("w",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", writes=("v",),
                     writes_known=True),
        ])
        (opp,) = find_opportunities(p, verify=False).opportunities
        out = apply_opportunity(p, opp)
        assert len(out.events) == len(p.events) - 1
        merged = out.events[0]
        assert merged.kernel == "a+b"
        assert set(merged.writes) == {"u", "v"}


class TestHoisting:
    def test_loop_invariant_update_hoists(self):
        body = [
            AccEvent(kind="compute", kernel="step", reads=("u",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="update", direction="device", var="vel",
                     nbytes=512),
        ]
        p = prog(
            [AccEvent(kind="enter", copyin=("u", "vel"))] + body * 4,
            extents={"u": 1024, "vel": 512},
        )
        hoists = [
            o for o in find_opportunities(p).opportunities
            if o.kind == "hoist-update"
        ]
        (opp,) = hoists
        assert opp.var == "vel"
        assert opp.insert_at == 1                 # above the loop
        assert len(opp.remove_events) == 4        # all periodic copies
        assert opp.savings["transfers"] == 3.0    # reps - 1
        assert opp.verified

    def test_touched_array_does_not_hoist(self):
        body = [
            AccEvent(kind="compute", kernel="step", reads=("u",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
        ]
        p = prog(
            [AccEvent(kind="enter", copyin=("u",))] + body * 4,
            extents={"u": 1024},
        )
        assert "hoist-update" not in kinds(find_opportunities(p))


class TestCancellation:
    def test_dead_update_pair_cancels(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="update", direction="device", var="u"),
            AccEvent(kind="exit", delete=("u",)),
        ], extents={"u": 1024})
        cancels = [
            o for o in find_opportunities(p).opportunities
            if o.kind == "cancel-update-pair"
        ]
        (opp,) = cancels
        assert opp.events == (1, 2)
        assert opp.savings["bytes"] == 2048.0
        assert opp.verified

    def test_live_pair_does_not_cancel(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="k", writes=("u",),
                     writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="update", direction="device", var="u"),
            AccEvent(kind="exit", delete=("u",)),
        ], extents={"u": 1024})
        assert "cancel-update-pair" not in kinds(find_opportunities(p))


class TestVerification:
    def test_illegal_transform_fails_replay(self):
        """Force an opportunity whose transform changes the outcome: the
        verification gate must reject it."""
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="k", writes=("u",),
                     writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="host_read", reads=("u",)),
            AccEvent(kind="exit", delete=("u",)),
        ], extents={"u": 1024})
        from repro.analyze.dataflow import verify_opportunity

        bogus = OptimizationOpportunity(
            kind="cancel-update-pair", events=(2,), var="u",
            remove_events=(2,),
        )
        assert not verify_opportunity(p, bogus)

    def test_no_verify_skips_the_replay(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", writes=("u",),
                     writes_known=True),
            AccEvent(kind="compute", kernel="b", writes=("v",),
                     writes_known=True),
        ])
        r = find_opportunities(p, verify=False)
        assert r.opportunities and not r.verified()


class TestArtifact:
    def test_reports_round_trip_and_validate(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", writes=("u",),
                     writes_known=True),
            AccEvent(kind="compute", kernel="b", writes=("v",),
                     writes_known=True),
        ])
        report = find_opportunities(p)
        report.case = "iso2d"
        report.mode = "rtm"
        doc = reports_to_json([report])
        validate_opportunities(doc)  # must not raise
        assert doc["schema"] == 1
        assert doc["programs"][0]["case"] == "iso2d"

    def test_validator_rejects_bad_documents(self):
        with pytest.raises(ValueError, match="schema"):
            validate_opportunities({"programs": []})
        with pytest.raises(ValueError, match="kind"):
            validate_opportunities({
                "schema": 1,
                "programs": [{
                    "name": "x",
                    "opportunities": [{
                        "kind": "defrag", "events": [], "proof": "",
                        "savings": {}, "verified": True,
                    }],
                }],
            })
        with pytest.raises(ValueError, match="verified"):
            validate_opportunities({
                "schema": 1,
                "programs": [{
                    "name": "x",
                    "opportunities": [{
                        "kind": "fuse-computes", "events": [1],
                        "proof": "", "savings": {}, "verified": 1,
                    }],
                }],
            })

    def test_empty_report_validates(self):
        validate_opportunities(reports_to_json(
            [OpportunityReport(name="empty")]
        ))


class TestSeedSweep:
    @pytest.mark.parametrize("physics,ndim", _INVENTORY)
    def test_seed_case_has_verified_opportunities(self, physics, ndim):
        """The acceptance gate: each seed case's recorded schedule yields
        at least one replay-verified opportunity (>= 6 cases required)."""
        p = record_pipeline_program(
            physics, _SHAPES[ndim], "rtm", nt=16, snap_period=4,
            space_order=4 if ndim == 3 else 8, boundary_width=8,
        )
        report = find_opportunities(p)
        assert report.verified(), f"{physics}{ndim}d has none"
