"""The script frontend: ``!$acc`` text -> DirectiveProgram IR."""

import pytest

from repro.analyze import program_from_script
from repro.utils.errors import ConfigurationError


class TestScriptFrontend:
    def test_event_sequence_and_kinds(self):
        p = program_from_script("""
            !$acc enter data copyin(u, v) create(tmp)
            !$acc parallel loop gang vector
            !$acc update host(u)
            !$acc wait
            !$acc exit data delete(u, v, tmp)
        """)
        assert [e.kind for e in p.events] == [
            "enter", "compute", "update", "wait", "exit",
        ]
        assert p.events[0].copyin == ("u", "v")
        assert p.events[0].create == ("tmp",)
        assert p.events[2].direction == "host"
        assert p.events[2].var == "u"
        assert p.events[4].delete == ("u", "v", "tmp")

    def test_structured_data_region_closes(self):
        p = program_from_script("""
            !$acc data copy(u)
            !$acc kernels
            !$acc end data
        """)
        assert p.events[0].structured and p.events[0].copyin == ("u",)
        assert p.events[2].kind == "exit" and p.events[2].delete == ("u",)

    def test_unclosed_data_region_rejected(self):
        with pytest.raises(ConfigurationError):
            program_from_script("!$acc data copyin(u)")

    def test_end_data_without_open_rejected(self):
        with pytest.raises(ConfigurationError):
            program_from_script("!$acc end data")

    def test_lint_annotation_attaches_to_next_compute(self):
        p = program_from_script("""
            !$acc enter data copyin(u)
            !$lint name=stencil dims=512x256 reads=u writes=u halo=4 regs=96
            !$acc parallel loop gang vector present(u)
            !$acc exit data delete(u)
        """)
        k = p.computes()[0]
        assert k.kernel == "stencil"
        assert k.loop_dims == (512, 256)
        assert k.reads == ("u",)
        assert k.writes == ("u",) and k.writes_known
        assert k.halo == 4
        assert k.regs_demand == 96

    def test_annotation_consumed_once(self):
        p = program_from_script("""
            !$lint name=first
            !$acc kernels
            !$acc kernels
        """)
        names = [e.kernel for e in p.computes()]
        assert names[0] == "first"
        assert names[1] != "first"

    def test_host_writes_marker(self):
        p = program_from_script("!$lint host_writes(u, v)")
        assert p.events[0].kind == "host_write"
        assert p.events[0].writes == ("u", "v")

    def test_unknown_lint_key_rejected(self):
        with pytest.raises(ConfigurationError):
            program_from_script("!$lint flavor=mint")

    def test_async_queue_assignment(self):
        p = program_from_script("""
            !$acc kernels async(3)
            !$acc parallel loop async
            !$acc parallel loop async
            !$acc kernels
        """)
        queues = [e.queue for e in p.computes()]
        assert queues[0] == 3
        assert queues[1] != queues[2]  # bare async round-robins
        assert queues[3] is None

    def test_wait_clause_recorded_as_edges(self):
        p = program_from_script("!$acc parallel loop wait(1, 2) async(3)")
        k = p.computes()[0]
        assert k.wait_on == (1, 2)
        assert k.queue == 3

    def test_labels_carry_line_numbers(self):
        p = program_from_script("!$acc enter data copyin(u)\n!$acc exit data delete(u)")
        assert p.events[0].label == "line 1"
        assert p.events[1].label == "line 2"

    def test_plain_comments_skipped(self):
        p = program_from_script("""
            ! just a comment
            # another one
            !$acc kernels
        """)
        assert len(p.events) == 1
