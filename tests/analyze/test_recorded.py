"""The Runtime recording hook and the recorded seed-case programs.

The key property: every one of the repo's 12 seed offload schedules
(3 physics x 2 dims x modeling/rtm) lints clean of error-level findings —
the pipeline's directive sequences are the paper's *fixed* versions, so the
analyzer must not cry wolf on them.
"""

import pytest

from repro.acc import Runtime
from repro.acc.compiler import CRAY_8_2_6, PGI_14_6
from repro.analyze import (
    ProgramRecorder,
    Severity,
    lint_program,
    record_pipeline_program,
)
from repro.analyze.drivers import check_schedule
from repro.core.config import GPUOptions
from repro.core.platform import CRAY_K40
from repro.gpusim import Device, K40
from repro.propagators.base import KernelWorkload
from repro.utils.errors import AnalysisError
from repro.utils.units import MB

CASES = [
    (physics, ndim, mode)
    for physics in ("isotropic", "acoustic", "elastic")
    for ndim in (2, 3)
    for mode in ("modeling", "rtm")
]

SHAPES = {2: (96, 96), 3: (48, 48, 48)}


def small_shape(ndim):
    return SHAPES[ndim]


class TestRecorder:
    def rt(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        rec = ProgramRecorder(name="unit")
        r.attach_recorder(rec)
        return r, rec

    def test_meta_bound_from_runtime(self):
        _, rec = self.rt()
        meta = rec.program.meta
        assert meta.source == "recorded"
        assert meta.device == K40.name
        assert meta.compiler == PGI_14_6.name
        assert meta.vendor == "pgi"
        assert meta.warp_size == K40.warp_size

    def test_data_directives_recorded_with_sizes(self):
        r, rec = self.rt()
        r.enter_data(copyin={"u": 4 * MB}, create={"tmp": MB})
        r.update_host("u")
        r.exit_data(delete=["u", "tmp"])
        kinds = [e.kind for e in rec.program.events]
        assert kinds == ["enter", "update", "exit"]
        assert rec.program.extents["u"] == 4 * MB
        assert rec.program.events[1].direction == "host"
        assert rec.program.events[1].nbytes is None  # full extent

    def test_partial_update_records_extent(self):
        r, rec = self.rt()
        r.enter_data(copyin={"u": 4 * MB})
        r.update_device("u", nbytes=MB, chunks=8)
        e = rec.program.events[-1]
        assert e.nbytes == MB and e.chunks == 8
        assert not rec.program.full_extent(e)

    def test_structured_data_region_recorded(self):
        r, rec = self.rt()
        with r.data(copy={"u": MB}):
            pass
        enter, exit_ = rec.program.events
        assert enter.structured and enter.copyin == ("u",)
        assert exit_.structured and exit_.copyout == ("u",)

    def test_compute_recorded_conservatively(self):
        """Recorded kernels only know the present clause: reads=present,
        writes unknown — the passes must treat them conservatively."""
        r, rec = self.rt()
        r.enter_data(copyin={"u": MB})
        w = KernelWorkload("k", 10**4, 10.0, 4, 2, (100, 100))
        r.kernels(w, present=["u"])
        e = rec.program.computes()[0]
        assert e.kernel == "k"
        assert e.reads == ("u",)
        assert not e.writes_known
        assert e.loop_dims == (100, 100)
        assert e.regs_demand is not None

    def test_wait_and_wait_clause_recorded(self):
        r, rec = self.rt()
        w = KernelWorkload("k", 10**4, 10.0, 4, 2, (100, 100))
        r.kernels(w, async_=1)
        r.kernels(w, async_=2, wait_on=(1,))
        r.wait()
        events = rec.program.events
        assert events[1].wait_on == (1,)
        assert events[2].kind == "wait" and events[2].wait_on == ()

    def test_note_host_write(self):
        r, rec = self.rt()
        r.note_host_write("u", "v")
        e = rec.program.events[0]
        assert e.kind == "host_write" and e.writes == ("u", "v")

    def test_no_recorder_is_free(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        r.note_host_write("u")  # no-op without a recorder
        r.enter_data(copyin={"u": MB})
        r.exit_data(delete=["u"])
        r.shutdown_check()


class TestRecordedPrograms:
    @pytest.mark.parametrize("physics,ndim,mode", CASES)
    def test_seed_cases_lint_clean_of_errors(self, physics, ndim, mode):
        program = record_pipeline_program(
            physics, small_shape(ndim), mode,
            nt=12, snap_period=4,
            space_order=4 if ndim == 3 else 8, boundary_width=8,
        )
        result = lint_program(program)
        errors = [d for d in result.diagnostics if d.severity >= Severity.ERROR]
        assert errors == [], [d.message for d in errors]

    def test_cray_auto_async_also_clean(self):
        """CRAY auto-queues every kernel; the step-end waits must keep the
        recorded schedule race-free."""
        program = record_pipeline_program(
            "acoustic", (96, 96), "rtm", nt=8, snap_period=4,
            options=GPUOptions(compiler=CRAY_8_2_6), boundary_width=8,
        )
        result = lint_program(program)
        assert not result.fails(Severity.ERROR)

    def test_program_shape_matches_pipeline(self):
        program = record_pipeline_program(
            "acoustic", (96, 96), "rtm", nt=8, snap_period=4, boundary_width=8,
        )
        counts = program.summary()
        assert counts["enter"] == 2  # forward inventory + backward swap
        assert counts["exit"] == 2
        assert counts["compute"] > 0
        assert counts.get("host_write", 0) > 0  # snapshot reloads marked


class TestStrictMode:
    def test_clean_schedule_passes(self):
        result = check_schedule(
            "acoustic", (96, 96), "rtm",
            GPUOptions(strict_lint=True), CRAY_K40, boundary_width=8,
        )
        assert not result.fails(Severity.ERROR)

    def test_error_gate_raises(self):
        with pytest.raises(AnalysisError, match="refused"):
            check_schedule(
                "acoustic", (96, 96), "rtm",
                GPUOptions(), CRAY_K40, boundary_width=8,
                fail_on=Severity.INFO,  # seed cases do carry info findings
            )

    def test_pipeline_wires_the_gate(self):
        from repro.core.rtm import estimate_rtm

        times = estimate_rtm(
            "acoustic", (96, 96), nt=8, snap_period=4,
            options=GPUOptions(strict_lint=True), boundary_width=8,
        )
        assert times.success
