"""The ``python -m repro deps`` command and ``lint --deep`` wiring."""

import json

import pytest

from repro.__main__ import build_parser
from repro.analyze.dataflow import validate_opportunities
from repro.utils.errors import ConfigurationError

SEEDED_SCRIPT = """\
!$lint extent(u=36864)
!$acc enter data copyin(u)
!$lint host_writes(u) bytes=768 offset=0
!$lint name=fwd dims=96x96 reads=u writes=u
!$acc parallel loop gang vector
!$acc exit data delete(u)
"""

FUSABLE_SCRIPT = """\
!$acc enter data copyin(u, v)
!$lint name=a writes=u
!$acc parallel loop present(u)
!$lint name=b writes=v
!$acc parallel loop present(v)
!$acc exit data delete(u, v)
"""


def run(argv):
    args = build_parser().parse_args(argv)
    return args.fn(args)


@pytest.fixture
def seeded(tmp_path):
    p = tmp_path / "seeded.acc"
    p.write_text(SEEDED_SCRIPT)
    return str(p)


@pytest.fixture
def fusable(tmp_path):
    p = tmp_path / "fusable.acc"
    p.write_text(FUSABLE_SCRIPT)
    return str(p)


class TestDepsCommand:
    def test_script_target_prints_summary(self, fusable, capsys):
        assert run(["deps", "--script", fusable]) == 0
        out = capsys.readouterr().out
        assert "events" in out and "opportunities" in out

    def test_case_target_with_artifacts(self, tmp_path, capsys):
        dot = tmp_path / "graph.dot"
        opp = tmp_path / "opportunities.json"
        assert run([
            "deps", "iso2d", "--nt", "8",
            "--dot", str(dot), "--opportunities", str(opp),
        ]) == 0
        assert dot.read_text().startswith("digraph dependences")
        doc = json.loads(opp.read_text())
        validate_opportunities(doc)
        assert doc["programs"][0]["opportunities"]

    def test_json_format(self, fusable, capsys):
        assert run(["deps", "--script", fusable, "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        (target,) = doc["targets"]
        assert target["events"] == 4
        assert target["opportunities"] >= 1

    def test_dot_needs_a_single_target(self, tmp_path):
        with pytest.raises(ConfigurationError, match="--dot"):
            run(["deps", "all", "--dot", str(tmp_path / "g.dot")])

    def test_missing_target_rejected(self):
        with pytest.raises(ConfigurationError):
            run(["deps"])

    def test_multirank_crossrank_is_clean_on_seed(self, capsys):
        assert run([
            "deps", "iso2d", "--ranks", "2", "--nt", "8",
            "--fail-on", "error",
        ]) == 0

    def test_no_verify_reports_zero_verified(self, fusable, capsys):
        run(["deps", "--script", fusable, "--no-verify", "--format", "json"])
        (target,) = json.loads(capsys.readouterr().out)["targets"]
        assert target["opportunities"] >= 1
        assert target["verified_opportunities"] == 0


class TestLintDeep:
    def test_deep_flags_seeded_script_with_df_code(self, seeded, capsys):
        assert run(["lint", "--script", seeded, "--deep",
                    "--no-ledger"]) == 1
        out = capsys.readouterr().out
        assert "DF001-stale-device-read" in out

    def test_shallow_lint_misses_the_coherence_bug(self, seeded, capsys):
        run(["lint", "--script", seeded, "--no-ledger", "--fail-on", "none"])
        assert "DF001" not in capsys.readouterr().out

    def test_deep_json_carries_the_witness(self, seeded, capsys):
        run(["lint", "--script", seeded, "--deep", "--json",
            "--no-ledger", "--fail-on", "none"])
        (doc,) = json.loads(capsys.readouterr().out)
        (df,) = [d for d in doc["diagnostics"]
                 if d["rule"].startswith("DF")]
        assert df["witness"] == [1, 2]

    def test_deep_appends_a_ledger_record(self, seeded, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        run(["lint", "--script", seeded, "--deep",
             "--ledger", str(ledger), "--fail-on", "none"])
        (line,) = ledger.read_text().splitlines()
        record = json.loads(line)
        assert record["command"] == "lint"
        metrics = record["metrics"]
        assert metrics["df_findings"] >= 1
        assert "verified_opportunities" in metrics

    def test_shallow_lint_does_not_touch_the_ledger(self, seeded, tmp_path):
        ledger = tmp_path / "ledger.jsonl"
        run(["lint", "--script", seeded,
             "--ledger", str(ledger), "--fail-on", "none"])
        assert not ledger.exists()
