"""Regression: a bare ``wait`` *clause* on a compute construct.

OpenACC semantics: ``!$acc parallel loop wait async(2)`` joins *every*
queue before launching. The old pipeline parsed the argument-less clause
to an empty ``wait_on`` tuple — indistinguishable from no clause at all —
so the race pass missed the ordering edge and the runtime never drained
the queues. ``wait_all`` threads the distinction end to end.
"""

from repro.acc import PGI_14_6, Runtime, parse_directive
from repro.analyze import lint_program, program_from_script
from repro.gpusim import Device, K40
from repro.propagators.base import KernelWorkload
from repro.utils.units import MB


def wl(name="k"):
    return KernelWorkload(name, 10**5, 20.0, 8, 2, (1000, 100))


class TestParser:
    def test_bare_wait_clause_sets_wait_all(self):
        d = parse_directive("!$acc parallel loop wait async(2)")
        assert d.wait_all
        assert d.wait_on == ()

    def test_wait_clause_with_queues_is_not_wait_all(self):
        d = parse_directive("!$acc parallel loop wait(1) async(2)")
        assert not d.wait_all
        assert d.wait_on == (1,)

    def test_wait_directive_is_not_wait_all_clause(self):
        d = parse_directive("!$acc wait")
        assert d.construct == "wait"
        assert not d.wait_all


class TestRaceAnalysis:
    def test_bare_wait_clause_orders_prior_queues(self):
        r = lint_program(program_from_script("""
            !$acc enter data copyin(u)
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$lint name=k2 writes=u
            !$acc parallel loop wait async(2)
            !$acc wait
            !$acc exit data delete(u)
        """))
        assert not [d for d in r.diagnostics if d.pass_name == "async-race"]

    def test_without_the_clause_the_race_is_reported(self):
        r = lint_program(program_from_script("""
            !$acc enter data copyin(u)
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$lint name=k2 writes=u
            !$acc parallel loop async(2)
            !$acc wait
            !$acc exit data delete(u)
        """))
        races = [d for d in r.diagnostics if d.pass_name == "async-race"]
        assert any(d.rule == "ww-race" for d in races)


class TestRuntime:
    def test_wait_all_drains_queues_before_launch(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        rt.enter_data(copyin={"u": MB})
        rt.parallel(wl("k1"), present=["u"], async_=1)
        assert rt.device.streams.pending_queues()
        rt.parallel(wl("k2"), present=["u"], wait_all=True)
        rt.wait()
        assert not rt.device.streams.pending_queues()

    def test_wait_all_is_recorded_on_the_event(self):
        from repro.analyze.recorder import ProgramRecorder

        rt = Runtime(Device(K40), compiler=PGI_14_6)
        rec = ProgramRecorder()
        rt.attach_recorder(rec)
        rt.enter_data(copyin={"u": MB})
        rt.parallel(wl("k"), present=["u"], wait_all=True)
        events = [e for e in rec.program.events if e.kind == "compute"]
        assert events and events[0].wait_all
