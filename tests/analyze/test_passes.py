"""Golden-diagnostic tests: each paper bug class on a hand-written script.

Every script here reproduces one of the mistakes the paper documents
fighting (Sections 5.1, 5.2, 6), and each test pins the pass, rule and
severity the analyzer must report for it.
"""

import pytest

from repro.analyze import (
    Severity,
    lint_program,
    program_from_script,
)
from repro.analyze.program import ProgramMeta


def lint(text, meta=None):
    return lint_program(program_from_script(text, meta=meta))


def rules(result, pass_name=None):
    return [
        (d.rule, d.severity)
        for d in result.diagnostics
        if pass_name is None or d.pass_name == pass_name
    ]


class TestPresentLifetime:
    def test_per_step_data_region_is_hoistable(self):
        """The paper's S5.1 starting point: data re-entered every step."""
        step = "!$acc data copy(u, v)\n!$acc kernels\n!$acc end data\n"
        r = lint(step * 4)
        assert ("hoistable-data-region", Severity.WARNING) in rules(r)

    def test_use_before_copyin_is_error(self):
        r = lint("""
            !$lint reads=u
            !$acc parallel loop present(u)
        """)
        assert ("use-before-copyin", Severity.ERROR) in rules(r)
        assert r.fails(Severity.ERROR)

    def test_update_of_absent_array_is_error(self):
        r = lint("!$acc update host(u)")
        assert ("use-before-copyin", Severity.ERROR) in rules(r)

    def test_double_delete_is_error(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$acc exit data delete(u)
            !$acc exit data delete(u)
        """)
        assert ("double-delete", Severity.ERROR) in rules(r)

    def test_leaked_enter_data(self):
        r = lint("!$acc enter data copyin(u)")
        assert ("leaked-enter-data", Severity.WARNING) in rules(r)

    def test_dead_copyout(self):
        """Copyout of an array nothing ever wrote moves stale bytes."""
        r = lint("""
            !$acc enter data copyin(u)
            !$acc exit data copyout(u)
        """)
        assert ("dead-copyout", Severity.WARNING) in rules(r)

    def test_copyout_after_known_write_is_clean(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint writes=u
            !$acc parallel loop present(u)
            !$acc exit data copyout(u)
        """)
        assert rules(r, "present-lifetime") == []

    def test_unknown_write_set_suppresses_dead_copyout(self):
        """A kernel that merely *touches* u (no annotation) may write it —
        recorded programs must not false-positive."""
        r = lint("""
            !$acc enter data copyin(u)
            !$acc parallel loop present(u)
            !$acc exit data copyout(u)
        """)
        assert ("dead-copyout", Severity.WARNING) not in rules(r)

    def test_redundant_update_device(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        assert ("redundant-update-device", Severity.WARNING) in rules(r)

    def test_host_write_makes_update_device_legitimate(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint host_writes(u)
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        assert ("redundant-update-device", Severity.WARNING) not in rules(r)


class TestAsyncRace:
    def test_unordered_writes_are_error(self):
        """Two async queues writing one wavefield with no wait between."""
        r = lint("""
            !$acc enter data copyin(u)
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$lint name=k2 writes=u
            !$acc parallel loop async(2)
            !$acc wait
            !$acc exit data delete(u)
        """)
        assert ("ww-race", Severity.ERROR) in rules(r, "async-race")

    def test_read_write_race_is_warning(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint name=writer writes=u
            !$acc parallel loop async(1)
            !$lint name=reader reads=u writes=tmp
            !$acc parallel loop async(2)
            !$acc wait
            !$acc exit data delete(u)
        """)
        assert ("rw-race", Severity.WARNING) in rules(r, "async-race")

    def test_wait_clause_orders_the_queues(self):
        """Satellite: the wait(...) clause is a real happens-before edge."""
        r = lint("""
            !$acc enter data copyin(u)
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$lint name=k2 writes=u
            !$acc parallel loop wait(1) async(2)
            !$acc wait
            !$acc exit data delete(u)
        """)
        assert rules(r, "async-race") == []

    def test_full_wait_between_steps_is_clean(self):
        step = """
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$acc wait
        """
        r = lint("!$acc enter data copyin(u)\n" + step * 3
                 + "!$acc exit data delete(u)")
        assert rules(r, "async-race") == []

    def test_same_queue_is_ordered(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint name=k1 writes=u
            !$acc parallel loop async(1)
            !$lint name=k2 writes=u
            !$acc parallel loop async(1)
            !$acc wait
            !$acc exit data delete(u)
        """)
        assert rules(r, "async-race") == []

    def test_async_update_races_with_kernel(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint host_writes(u)
            !$acc update device(u) async(1)
            !$lint name=k reads=u writes=v
            !$acc parallel loop async(2)
            !$acc wait
            !$acc exit data delete(u)
        """)
        assert ("rw-race", Severity.WARNING) in rules(r, "async-race")


class TestScheduleLint:
    def test_false_independent_is_error(self):
        """`independent` on a loop-carried body silences the compiler's
        dependence check — the original backward kernels' trap."""
        r = lint("""
            !$acc enter data copyin(p)
            !$lint name=recur carried=true reads=p writes=p
            !$acc kernels loop independent
            !$acc exit data delete(p)
        """)
        assert ("false-independent", Severity.ERROR) in rules(r)

    def test_collapse_exceeding_depth_is_error(self):
        r = lint("""
            !$lint dims=512x512
            !$acc parallel loop collapse(3)
        """)
        assert ("collapse-exceeds-depth", Severity.ERROR) in rules(r)

    def test_vector_length_not_warp_multiple(self):
        r = lint("!$acc parallel loop gang vector vector_length(100)")
        assert ("vector-length-not-warp-multiple", Severity.WARNING) in rules(r)

    def test_vector_length_above_block_limit_is_error(self):
        meta = ProgramMeta(max_threads_per_block=1024)
        r = lint("!$acc parallel loop gang vector vector_length(1024)", meta)
        assert rules(r, "schedule-lint") == []  # at the limit is fine
        meta = ProgramMeta(max_threads_per_block=512)
        r = lint("!$acc parallel loop gang vector vector_length(1024)", meta)
        assert ("vector-length-exceeds-block-limit", Severity.ERROR) in rules(r)

    def test_cray_bare_kernels_warns(self):
        """Paper Figs 8-9: CRAY's heuristic picks the vectorized loop."""
        meta = ProgramMeta(vendor="cray")
        r = lint("!$acc kernels", meta)
        assert ("cray-kernels-vectorization", Severity.WARNING) in rules(r)
        # explicit gang/vector silences it; so does the PGI persona
        r = lint("!$acc kernels loop gang vector", meta)
        assert ("cray-kernels-vectorization", Severity.WARNING) not in rules(r)
        r = lint("!$acc kernels", ProgramMeta(vendor="pgi"))
        assert ("cray-kernels-vectorization", Severity.WARNING) not in rules(r)

    def test_uncoalesced_inner_loop(self):
        r = lint("""
            !$lint name=orig contiguous=false
            !$acc kernels
        """)
        assert ("uncoalesced-inner", Severity.WARNING) in rules(r)

    def test_maxregcount_spill(self):
        """Paper Fig 10: maxregcount far below demand spills registers."""
        meta = ProgramMeta(maxregcount=16, max_regs_per_thread=255)
        r = lint("!$lint name=elastic regs=128\n!$acc kernels", meta)
        assert ("maxregcount-spill", Severity.WARNING) in rules(r)

    def test_register_ceiling_spill(self):
        meta = ProgramMeta(max_regs_per_thread=63)
        r = lint("!$lint name=fused regs=128\n!$acc kernels", meta)
        assert ("register-ceiling-spill", Severity.WARNING) in rules(r)

    def test_reported_once_per_kernel(self):
        step = "!$lint name=same contiguous=false\n!$acc kernels\n"
        r = lint(step * 5)
        hits = [d for d in r.diagnostics if d.rule == "uncoalesced-inner"]
        assert len(hits) == 1


class TestTransferEfficiency:
    HALO_LOOP = (
        "!$acc enter data copyin(u)\n"
        + (
            "!$lint name=stencil dims=512x512 reads=u writes=u halo=4\n"
            "!$acc parallel loop gang vector\n"
            "!$lint host_writes(u)\n"
            "!$acc update device(u)\n"
        ) * 3
        + "!$acc exit data delete(u)"
    )

    def test_full_update_in_loop_with_known_halo(self):
        """Paper S5.1: the stencil half-width implies a partial extent."""
        r = lint(self.HALO_LOOP)
        found = [d for d in r.diagnostics if d.rule == "full-update-in-loop"]
        assert found and found[0].severity == Severity.WARNING
        assert "half-width" in found[0].message

    def test_no_halo_means_info_only(self):
        text = self.HALO_LOOP.replace(" halo=4", "").replace(
            "!$lint host_writes(u)\n", ""
        )
        r = lint(text)
        assert ("repeated-full-update", Severity.INFO) in rules(r)
        assert ("full-update-in-loop", Severity.WARNING) not in rules(r)

    def test_snapshot_restores_are_not_flagged(self):
        """Host-write markers with no stencil metadata (the RTM snapshot
        reload) account for the traffic: no finding."""
        text = self.HALO_LOOP.replace(
            "!$lint name=stencil dims=512x512 reads=u writes=u halo=4\n", ""
        )
        r = lint(text)
        assert rules(r, "transfer-efficiency") == []

    def test_single_full_update_is_clean(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$lint host_writes(u)
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        assert rules(r, "transfer-efficiency") == []


class TestRanking:
    def test_errors_rank_first(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$acc update device(u)
            !$acc exit data delete(u)
            !$acc exit data delete(u)
        """)
        sevs = [d.severity for d in r.diagnostics]
        assert sevs == sorted(sevs, reverse=True)
        assert r.worst() == Severity.ERROR
        assert r.count(Severity.ERROR) >= 1

    def test_fails_threshold(self):
        r = lint("""
            !$acc enter data copyin(u)
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        assert r.fails(Severity.WARNING)
        assert not r.fails(Severity.ERROR)
