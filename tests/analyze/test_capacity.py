"""The capacity prover: static high-water marks vs the allocator's
observed peaks, the would-OOM refusal, and the register-bound pruning."""

import dataclasses

import pytest

from repro.analyze.capacity import (
    admissible_maxregcounts,
    checkpoint_spike,
    prove_capacity,
    register_bound,
)
from repro.analyze.framework import Severity
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.compile.compiler import (
    CompileRequest,
    _default_runtime_factory,
    record_segments,
)
from repro.core.config import GPUOptions
from repro.core.platform import CRAY_K40
from repro.gpusim.memory import _aligned
from repro.gpusim.specs import K40
from repro.utils.errors import AnalysisError


def _record(case: str, mode: str, nt: int = 8):
    request = CompileRequest.from_case(case, mode, nt=nt)
    options = GPUOptions()
    return record_segments(
        request, options, _default_runtime_factory(options, None)
    )


def _phase_of(recording):
    def phase_of(idx):
        seg = recording.segment_of(idx)
        return seg.phase if seg is not None else "program"

    return phase_of


class TestStaticVsObserved:
    """The proof must match what DeviceMemory actually observed — the
    same events, the same 256-byte alignment, so bit for bit."""

    @pytest.mark.parametrize("case,mode", [
        ("iso2d", "rtm"),
        ("iso2d", "modeling"),
        ("acoustic2d", "rtm"),
        ("el2d", "modeling"),
    ])
    def test_peak_matches_device_memory(self, case, mode):
        recording = _record(case, mode)
        memory = recording.pipeline.rt.device.memory
        proof = prove_capacity(
            recording.program,
            usable_bytes=memory.usable_bytes,
            phase_of=_phase_of(recording),
        )
        assert proof.peak_bytes == memory.peak_bytes
        assert proof.fits
        assert not proof.diagnostics

    def test_3d_peak_matches_device_memory(self):
        recording = _record("iso3d", "rtm")
        memory = recording.pipeline.rt.device.memory
        proof = prove_capacity(recording.program)
        assert proof.peak_bytes == memory.peak_bytes

    def test_phase_marks_cover_the_schedule(self):
        recording = _record("iso2d", "rtm")
        proof = prove_capacity(
            recording.program, phase_of=_phase_of(recording)
        )
        phases = {p.phase for p in proof.phases}
        assert "allocate" in phases
        # the residency witness is the enter chain live at the peak
        assert proof.witness
        kinds = {recording.program.events[i].kind for i in proof.witness}
        assert kinds == {"enter"}


class TestWouldOom:
    def test_df210_refuses_before_any_allocation(self):
        recording = _record("iso2d", "rtm")
        peak = prove_capacity(recording.program).peak_bytes
        proof = prove_capacity(
            recording.program, usable_bytes=peak - 1, device="shrunken"
        )
        assert not proof.fits
        assert [d.rule for d in proof.diagnostics] == \
            ["DF210-device-over-capacity"]
        d = proof.diagnostics[0]
        assert d.severity is Severity.ERROR
        assert "OOM" in d.message
        assert d.witness == proof.witness

    def test_strict_validate_gate_refuses_statically(self):
        from repro.analyze.validate_cli import check_validate

        tiny_gpu = dataclasses.replace(
            K40, name="tiny-K40", memory_bytes=64 * 1024
        )
        platform = dataclasses.replace(CRAY_K40, gpu=tiny_gpu)
        options = GPUOptions(strict_validate=True)
        with pytest.raises(AnalysisError, match="DF210"):
            check_validate(
                "isotropic", (64, 64), "rtm", options, platform,
                nt=8, snap_period=4,
            )

    def test_strict_validate_gate_passes_the_real_card(self):
        from repro.analyze.validate_cli import check_validate

        options = GPUOptions(strict_validate=True)
        proof = check_validate(
            "isotropic", (64, 64), "rtm", options, CRAY_K40,
            nt=8, snap_period=4,
        )
        assert proof.fits

    def test_strict_validate_refuses_through_run_rtm(self):
        # the would-OOM persona never reaches allocate: AnalysisError,
        # not DeviceOutOfMemoryError
        from repro.core.rtm import estimate_rtm

        tiny_gpu = dataclasses.replace(
            K40, name="tiny-K40", memory_bytes=64 * 1024
        )
        platform = dataclasses.replace(CRAY_K40, gpu=tiny_gpu)
        options = GPUOptions(strict_validate=True)
        with pytest.raises(AnalysisError):
            estimate_rtm(
                "isotropic", (64, 64), 8, 4,
                platform=platform, options=options,
            )


class TestCheckpointSpike:
    def _program(self, field_bytes):
        p = DirectiveProgram()
        p.add(AccEvent(kind="enter", copyin=("u",), label="allocate"))
        p.add(AccEvent(kind="compute", kernel="bwd", reads=("u",),
                       writes=("u",), writes_known=True, label="backward"))
        p.add(AccEvent(kind="exit", delete=("u",), label="finalize"))
        p.extents.update({"u": field_bytes})
        return p

    def test_df211_fires_in_the_window(self):
        field_bytes = 1 << 20
        program = self._program(field_bytes)
        # backward fits, backward + one restored state does not
        usable = _aligned(field_bytes) + 512
        proof = prove_capacity(program, usable_bytes=usable)
        assert proof.fits
        diag = checkpoint_spike(proof, field_bytes, nt=16, snap_period=4)
        assert diag is not None
        assert diag.rule == "DF211-checkpoint-spike"
        assert diag.severity is Severity.WARNING
        assert diag in proof.diagnostics

    def test_df211_silent_when_the_spike_fits(self):
        field_bytes = 1 << 20
        program = self._program(field_bytes)
        proof = prove_capacity(
            program, usable_bytes=4 * _aligned(field_bytes)
        )
        assert checkpoint_spike(proof, field_bytes, 16, 4) is None


class TestRegisterBounds:
    def _workloads(self, case="iso2d"):
        recording = _record(case, "rtm")
        return list(recording.pipeline.forward_workloads)[:2]

    def test_register_bound_prices_a_fusion(self):
        workloads = self._workloads()
        bound = register_bound(K40, workloads, maxregcount=64)
        assert bound.parts == tuple(w.name for w in workloads)
        assert 0.0 < bound.occupancy <= 1.0
        assert bound.seconds > 0.0

    def test_admissible_always_keeps_a_candidate(self):
        workloads = self._workloads()
        kept = admissible_maxregcounts(K40, workloads, (16, 64, None))
        assert kept
        assert set(kept) <= {16, 64, None}

    def test_admissible_prunes_only_proven_losers(self):
        from repro.optim.tuning import register_sweep

        workloads = self._workloads()
        candidates = (16, 32, 64, None)
        kept = admissible_maxregcounts(K40, workloads, candidates)
        points = {
            p.maxregcount: p
            for p in register_sweep(K40, workloads, (16, 32, 64))
        }
        best_clean = min(
            (p.seconds for p in points.values() if p.spilled_regs == 0),
            default=None,
        )
        for cand in candidates:
            if cand in kept or cand is None:
                continue
            p = points[cand]
            assert best_clean is not None
            assert p.spilled_regs > 0 and p.seconds >= best_clean
