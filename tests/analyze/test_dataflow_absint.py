"""The fixed-point coherence interpreter: static DF* proofs.

The scripts here are the *same* fault seeds the dynamic sanitizer tests
pin (tests/sanitize/test_hazards.py); the agreement class asserts that
every hazard the sanitizer catches at runtime is proven statically with
the matching ``DF*`` code and a non-empty event-chain witness.
"""

import pytest

from repro.analyze import program_from_script
from repro.analyze.cli import _INVENTORY, lint_case
from repro.analyze.dataflow import interpret_program
from repro.analyze.framework import Severity
from repro.analyze.rules import rule
from repro.sanitize import sanitize_script

#: rule key -> the fault-seeded script both detectors must flag
SEEDED = {
    "stale-device-read": """
        !$lint extent(u=36864)
        !$acc enter data copyin(u)
        !$lint host_writes(u) bytes=768 offset=0
        !$lint name=fwd dims=96x96 reads=u writes=u
        !$acc parallel loop gang vector
        !$acc exit data delete(u)
    """,
    "stale-host-read": """
        !$lint extent(u=36864)
        !$acc enter data copyin(u)
        !$lint name=fwd dims=96x96 reads=u writes=u
        !$acc parallel loop gang vector
        !$acc wait
        !$lint send(u) to=1 bytes=384 offset=384
        !$acc exit data delete(u)
    """,
    "halo-send-before-sync": """
        !$lint extent(u=36864)
        !$acc enter data copyin(u)
        !$lint name=fwd dims=96x96 reads=u writes=u
        !$acc parallel loop gang vector
        !$lint bytes=384 offset=384
        !$acc update host(u) async(2)
        !$lint send(u) to=1 bytes=384 offset=384
        !$acc exit data delete(u)
    """,
    "short-ghost-transfer": """
        !$lint extent(u=36864)
        !$acc enter data copyin(u)
        !$lint host_writes(u) bytes=768 offset=0
        !$lint bytes=384 offset=0
        !$acc update device(u)
        !$lint name=fwd dims=96x96 reads=u writes=u halo=2
        !$acc parallel loop gang vector
        !$acc exit data delete(u)
    """,
    "ghost-transfer-out-of-bounds": """
        !$lint extent(u=1024)
        !$acc enter data copyin(u)
        !$lint bytes=2048 offset=512
        !$acc update device(u)
        !$acc exit data delete(u)
    """,
}

CLEAN = """
    !$lint extent(u=36864)
    !$acc enter data copyin(u)
    !$lint host_writes(u) bytes=768 offset=0
    !$acc update device(u)
    !$lint name=fwd dims=96x96 reads=u writes=u
    !$acc parallel loop gang vector
    !$acc update host(u)
    !$acc exit data delete(u)
"""


def interpret(text):
    return interpret_program(program_from_script(text))


class TestStaticProofs:
    @pytest.mark.parametrize("key", sorted(SEEDED))
    def test_seeded_hazard_is_proven(self, key):
        s = interpret(SEEDED[key])
        codes = {d.rule for d in s.diagnostics}
        assert rule(key).static_rule in codes, codes

    def test_clean_script_is_proven_clean(self):
        assert interpret(CLEAN).clean()

    def test_witness_is_the_event_chain(self):
        s = interpret(SEEDED["stale-device-read"])
        (d,) = s.diagnostics
        # host_write at event 1, consuming kernel at event 2
        assert d.witness == (1, 2)
        assert d.severity is Severity.ERROR
        assert "witness" in d.to_dict()

    def test_copyout_of_host_dirty_bytes(self):
        s = interpret("""
            !$lint extent(u=1024)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=256 offset=0
            !$acc exit data copyout(u)
        """)
        assert {d.rule for d in s.diagnostics} == {"DF001-stale-device-read"}

    def test_waited_async_update_is_clean(self):
        s = interpret("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$lint bytes=384 offset=384
            !$acc update host(u) async(2)
            !$acc wait(2)
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert s.clean(), [d.rule for d in s.diagnostics]


class TestLoopClosure:
    def test_second_iteration_hazard_is_proven(self):
        """The classic first-iteration-clean bug: the send reads bytes the
        *previous* iteration's kernel left device-dirty. Only the loop
        closure (joining the body's exit state into its entry) sees it."""
        body = """
            !$lint send(u) to=1 bytes=256 offset=0
            !$lint name=k writes=u
            !$acc parallel loop
        """
        s = interpret(
            "!$lint extent(u=1024)\n!$acc enter data copyin(u)\n"
            + body * 3
            + "!$acc exit data delete(u)"
        )
        assert len(s.regions) == 1
        assert {d.rule for d in s.diagnostics} == {"DF002-stale-host-read"}
        (d,) = s.diagnostics
        assert len(d.witness) >= 2  # the causing kernel + the send

    def test_fixpoint_converges_in_few_rounds(self):
        body = """
            !$lint name=k reads=u writes=u
            !$acc parallel loop
            !$acc update host(u)
        """
        s = interpret(
            "!$lint extent(u=1024)\n!$acc enter data copyin(u)\n" + body * 4
        )
        assert s.regions and all(n <= 4 for n in s.iterations.values())

    def test_steady_state_facts_mark_dead_transfers(self):
        """An update that never clears dirty bytes on either side is dead
        traffic — the fact the cancellation pass consumes."""
        s = interpret("""
            !$lint extent(u=1024)
            !$acc enter data copyin(u)
            !$acc update host(u)
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        dead = [
            idx for idx, f in s.facts.items()
            if f["host_dirty_cleared"] == 0 and f["dev_dirty_cleared"] == 0
        ]
        assert len(dead) == 2

    def test_live_transfer_facts_count_cleared_bytes(self):
        s = interpret("""
            !$lint extent(u=1024)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=256 offset=0
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        (fact,) = [f for f in s.facts.values() if f["host_dirty_cleared"]]
        assert fact["host_dirty_cleared"] == 256


class TestStaticDynamicAgreement:
    @pytest.mark.parametrize("key", sorted(SEEDED))
    def test_every_dynamic_finding_has_a_static_proof(self, key):
        dynamic = sanitize_script(SEEDED[key])
        static = interpret(SEEDED[key])
        static_codes = {d.rule for d in static.diagnostics}
        for d in dynamic.diagnostics:
            r = rule(d.rule)
            assert r.static_rule in static_codes, (d.rule, static_codes)
        for d in static.diagnostics:
            assert d.witness, d.rule

    def test_both_detectors_clean_on_the_clean_protocol(self):
        assert sanitize_script(CLEAN).clean()
        assert interpret(CLEAN).clean()


class TestSeedSweep:
    @pytest.mark.parametrize("physics,ndim", _INVENTORY)
    @pytest.mark.parametrize("mode", ["modeling", "rtm"])
    def test_seed_case_is_deep_clean(self, physics, ndim, mode):
        """All 12 recorded seed programs must carry zero statically-proven
        coherence errors (warnings from the local passes are fine)."""
        r = lint_case(physics, ndim, mode, nt=8, deep=True)
        errors = [d for d in r.diagnostics if d.severity is Severity.ERROR]
        assert errors == []
        assert not [d for d in r.diagnostics if d.rule.startswith("DF")]
