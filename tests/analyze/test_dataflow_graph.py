"""DependenceGraph goldens on hand-built event lists.

Each test pins one structural fact of the graph: which dependence edges
a known schedule induces, what happens-before guarantees queues and
waits create, and that the conservative read of an unknown write set is
confined to the graph (the async-race pass keeps its historical view).
"""

from repro.analyze import lint_program, program_from_script
from repro.analyze.dataflow import DependenceGraph, detect_loops
from repro.analyze.program import AccEvent, DirectiveProgram


def prog(events, extents=None):
    p = DirectiveProgram()
    for e in events:
        p.add(e)
    p.extents.update(extents or {})
    return p


def edges(graph, kind):
    return [
        (e.src[1], e.dst[1], e.var)
        for e in graph.edges if e.kind == kind
    ]


class TestDependenceEdges:
    def test_raw_war_waw_goldens(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="k1", reads=("v",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="k2", reads=("u",),
                     writes=("v",), writes_known=True),
        ])
        g = DependenceGraph.from_program(p)
        assert (1, 2, "u") in edges(g, "raw")   # k1 writes u, k2 reads it
        assert (1, 2, "v") in edges(g, "war")   # k1 reads v, k2 overwrites
        assert (0, 1, "u") in edges(g, "waw")   # copyin then k1 write

    def test_update_directions(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="k", writes=("u",),
                     writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
        ])
        g = DependenceGraph.from_program(p)
        # update host reads the device copy the kernel wrote
        assert (1, 2, "u") in edges(g, "raw")

    def test_unknown_writes_are_conservative_in_the_graph(self):
        """writes_known=False: the graph must assume the kernel writes
        everything it has present — both computes write u, so WAW."""
        a = AccEvent(kind="compute", kernel="a", reads=("u",),
                     writes_known=False)
        b = AccEvent(kind="compute", kernel="b", reads=("u",),
                     writes_known=False)
        g = DependenceGraph.from_program(prog([a, b]))
        assert (0, 1, "u") in edges(g, "waw")
        # ... while the default (race-pass) view keeps them read-only
        assert a.accesses() == [("u", "r")]
        assert ("u", "w") in a.accesses(conservative=True)

    def test_async_race_pass_unchanged_by_conservative_reading(self):
        """The race pass's historical behaviour must survive: two queues
        merely *presenting* the same array (unknown writes) stay clean."""
        r = lint_program(program_from_script("""
            !$acc enter data copyin(u)
            !$lint name=a reads=u
            !$acc parallel loop async(1) present(u)
            !$lint name=b reads=u
            !$acc parallel loop async(2) present(u)
            !$acc wait
            !$acc exit data delete(u)
        """))
        assert not [d for d in r.diagnostics if d.pass_name == "async-race"]


class TestHappensBefore:
    def test_host_timeline_orders_sync_events(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="k", writes=("u",),
                     writes_known=True),
            AccEvent(kind="exit", delete=("u",)),
        ])
        g = DependenceGraph.from_program(p)
        assert g.happens_before(0, 2)
        assert not g.happens_before(2, 0)

    def test_parallel_queues_are_unordered_until_wait(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2,
                     writes=("v",), writes_known=True),
            AccEvent(kind="wait"),
            AccEvent(kind="compute", kernel="c", reads=("u", "v")),
        ])
        g = DependenceGraph.from_program(p)
        assert not g.happens_before(0, 1)
        assert g.happens_before(0, 3)  # through the wait
        assert g.happens_before(1, 3)

    def test_wait_on_specific_queue(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2,
                     writes=("v",), writes_known=True),
            AccEvent(kind="wait", wait_on=(1,)),
            AccEvent(kind="compute", kernel="c", reads=("u",)),
        ])
        g = DependenceGraph.from_program(p)
        assert g.happens_before(0, 3)

    def test_unsynchronised_exposes_the_race(self):
        racy = prog([
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2,
                     reads=("u",)),
        ])
        g = DependenceGraph.from_program(racy)
        assert any(e.var == "u" for e in g.unsynchronised())
        safe = prog([
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="wait", wait_on=(1,)),
            AccEvent(kind="compute", kernel="b", queue=2,
                     reads=("u",)),
        ])
        assert not DependenceGraph.from_program(safe).unsynchronised()

    def test_dependences_between(self):
        p = prog([
            AccEvent(kind="compute", kernel="a", writes=("u",),
                     writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="compute", kernel="b", writes=("u",),
                     writes_known=True),
        ])
        g = DependenceGraph.from_program(p)
        blockers = g.dependences_between(0, 2)
        assert any(e.src[1] == 1 and e.kind == "war" for e in blockers)


class TestLoopDetection:
    def test_periodic_stream_found(self):
        body = [
            AccEvent(kind="compute", kernel="step", reads=("u",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="update", direction="host", var="u", nbytes=64),
        ]
        p = prog([AccEvent(kind="enter", copyin=("u",))] + body * 4)
        (r,) = detect_loops(p)
        assert (r.start, r.period, r.reps) == (1, 2, 4)
        assert r.stop == 9
        assert list(r.body()) == [1, 2]

    def test_aperiodic_stream_has_no_loops(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="a"),
            AccEvent(kind="compute", kernel="b"),
            AccEvent(kind="exit", delete=("u",)),
        ])
        assert detect_loops(p) == []

    def test_snapshot_cycle_reported_as_one_region(self):
        """A 1-step inner pattern inside a 3-step snapshot cycle must be
        reported as the larger period, not 3 fragments."""
        step = [AccEvent(kind="compute", kernel="step", reads=("u",))]
        snap = [AccEvent(kind="update", direction="host", var="u")]
        cycle = step + step + step + snap
        p = prog(cycle * 3)
        (r,) = detect_loops(p)
        assert r.period == 4 and r.reps == 3


class TestDotExport:
    def test_dot_contains_nodes_and_colored_edges(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="k", reads=("u",),
                     writes=("u",), writes_known=True),
        ])
        dot = DependenceGraph.from_program(p).to_dot()
        assert dot.startswith("digraph dependences")
        assert 'label="1: compute k"' in dot
        assert "color=red" in dot or "color=purple" in dot

    def test_multirank_dot_uses_clusters(self):
        a = prog([AccEvent(kind="send", var="u", peer=1)])
        b = prog([AccEvent(kind="recv", var="u", peer=0)])
        dot = DependenceGraph([a, b]).to_dot()
        assert "subgraph cluster_0" in dot
        assert "color=blue" in dot  # the message edge
