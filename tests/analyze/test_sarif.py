"""SARIF 2.1.0 output (``lint --format=sarif`` / ``sanitize --format=sarif``)."""

import json

from repro.analyze import lint_program, program_from_script
from repro.analyze.program import ProgramMeta
from repro.analyze.report import format_sarif


def lint_script(text, name="test.acc"):
    program = program_from_script(
        text, meta=ProgramMeta(source="script", name=name)
    )
    return lint_program(program)


DIRTY = """
!$lint reads=u
!$acc parallel loop present(u)
"""


class TestSarif:
    def test_document_shape(self):
        doc = json.loads(format_sarif([lint_script(DIRTY)]))
        assert doc["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in doc["$schema"]
        (run,) = doc["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_rules_are_deduplicated_and_sorted(self):
        doc = json.loads(format_sarif([lint_script(DIRTY), lint_script(DIRTY)]))
        run = doc["runs"][0]
        ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert ids == sorted(ids)
        assert len(ids) == len(set(ids))
        # two identical results, one rule entry each
        assert len(run["results"]) == 2 * len(ids)

    def test_rule_ids_are_pass_qualified(self):
        doc = json.loads(format_sarif([lint_script(DIRTY)]))
        for r in doc["runs"][0]["results"]:
            assert "/" in r["ruleId"]

    def test_script_findings_carry_physical_locations(self):
        doc = json.loads(format_sarif([lint_script(DIRTY)]))
        locs = [loc for r in doc["runs"][0]["results"] for loc in r["locations"]]
        physical = [l for l in locs if "physicalLocation" in l]
        assert physical
        region = physical[0]["physicalLocation"]
        assert region["artifactLocation"]["uri"] == "test.acc"
        assert region["region"]["startLine"] >= 1

    def test_levels_map_severities(self):
        doc = json.loads(format_sarif([lint_script(DIRTY)]))
        levels = {r["level"] for r in doc["runs"][0]["results"]}
        assert levels <= {"error", "warning", "note"}

    def test_clean_result_is_empty_run(self):
        clean = lint_script(
            "!$acc enter data copyin(u)\n"
            "!$lint name=k reads=u writes=u\n"
            "!$acc parallel loop\n"
            "!$acc exit data delete(u)\n"
        )
        doc = json.loads(format_sarif([clean]))
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []

    def test_sanitizer_fix_rides_in_the_message(self):
        from repro.sanitize import sanitize_script

        r = sanitize_script(
            "!$lint extent(u=1024)\n"
            "!$acc enter data copyin(u)\n"
            "!$lint host_writes(u) bytes=64 offset=0\n"
            "!$lint name=k dims=16x16 reads=u writes=u\n"
            "!$acc parallel loop\n"
            "!$acc exit data delete(u)\n"
        )
        doc = json.loads(format_sarif([r], tool_name="repro-sanitize"))
        (res,) = doc["runs"][0]["results"]
        assert "[fix:" in res["message"]["text"]
        assert doc["runs"][0]["tool"]["driver"]["name"] == "repro-sanitize"
