"""``python -m repro sanitize`` — CLI targets, formats and --fix."""

import json
import textwrap

import pytest

from repro.__main__ import main

DIRTY = textwrap.dedent("""
    !$lint extent(u=36864)
    !$acc enter data copyin(u)
    !$lint host_writes(u) bytes=768 offset=0
    !$lint name=fwd dims=96x96 reads=u writes=u
    !$acc parallel loop gang vector
    !$acc exit data delete(u)
""").strip() + "\n"

CLEAN = textwrap.dedent("""
    !$acc enter data copyin(u)
    !$lint name=fwd dims=96x96 reads=u writes=u
    !$acc parallel loop gang vector
    !$acc exit data delete(u)
""").strip() + "\n"


@pytest.fixture
def dirty_script(tmp_path):
    p = tmp_path / "dirty.acc"
    p.write_text(DIRTY)
    return p


class TestTargets:
    def test_case_clean_exits_zero(self, capsys):
        assert main(["sanitize", "iso2d", "--ranks", "2"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_script_with_hazard_exits_one(self, tmp_path, capsys):
        p = tmp_path / "s.acc"
        p.write_text(DIRTY)
        assert main(["sanitize", "--script", str(p)]) == 1
        assert "stale-device-read" in capsys.readouterr().out

    def test_fail_on_none_always_exits_zero(self, tmp_path, capsys):
        p = tmp_path / "s.acc"
        p.write_text(DIRTY)
        assert main(["sanitize", "--script", str(p), "--fail-on", "none"]) == 0

    def test_clean_script(self, tmp_path, capsys):
        p = tmp_path / "s.acc"
        p.write_text(CLEAN)
        assert main(["sanitize", "--script", str(p)]) == 0


class TestFormats:
    def test_json(self, tmp_path, capsys):
        p = tmp_path / "s.acc"
        p.write_text(DIRTY)
        main(["sanitize", "--script", str(p), "--json", "--fail-on", "none"])
        doc = json.loads(capsys.readouterr().out)
        rules = [d["rule"] for r in doc for d in r["diagnostics"]]
        assert rules == ["stale-device-read"]
        assert all(d["fix"] for r in doc for d in r["diagnostics"])

    def test_sarif(self, tmp_path, capsys):
        p = tmp_path / "s.acc"
        p.write_text(DIRTY)
        main(["sanitize", "--script", str(p), "--format", "sarif",
              "--fail-on", "none"])
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == "2.1.0"
        results = doc["runs"][0]["results"]
        assert [r["ruleId"] for r in results] == ["coherence/stale-device-read"]


class TestFix:
    def test_fix_writes_output_and_revalidates(self, dirty_script, tmp_path, capsys):
        out = tmp_path / "fixed.acc"
        code = main(["sanitize", "--script", str(dirty_script),
                     "--fix", "--output", str(out)])
        assert code == 0
        assert "re-sanitized: clean" in capsys.readouterr().out
        fixed = out.read_text()
        assert "update device(u)" in fixed
        # the original is untouched when --output is given
        assert dirty_script.read_text() == DIRTY
        assert main(["sanitize", "--script", str(out)]) == 0

    def test_fix_in_place(self, dirty_script):
        assert main(["sanitize", "--script", str(dirty_script), "--fix"]) == 0
        assert "update device(u)" in dirty_script.read_text()
        assert main(["sanitize", "--script", str(dirty_script)]) == 0
