"""Unit tests for the shadow coherence state (interval algebra)."""

from repro.sanitize.shadow import (
    UNKNOWN_EXTENT,
    ShadowArray,
    add_interval,
    describe,
    intersect,
    normalize,
    subtract_interval,
    total_bytes,
)


class TestIntervalAlgebra:
    def test_normalize_coalesces_touching(self):
        assert normalize([(0, 4), (4, 8)]) == [(0, 8)]

    def test_normalize_coalesces_overlapping(self):
        assert normalize([(0, 6), (4, 8), (10, 12)]) == [(0, 8), (10, 12)]

    def test_normalize_drops_empty(self):
        assert normalize([(4, 4), (8, 6)]) == []

    def test_add_interval(self):
        assert add_interval([(0, 4)], 8, 12) == [(0, 4), (8, 12)]
        assert add_interval([(0, 4)], 2, 8) == [(0, 8)]

    def test_subtract_interior_splits(self):
        assert subtract_interval([(0, 12)], 4, 8) == [(0, 4), (8, 12)]

    def test_subtract_edges(self):
        assert subtract_interval([(0, 12)], 0, 4) == [(4, 12)]
        assert subtract_interval([(0, 12)], 8, 12) == [(0, 8)]
        assert subtract_interval([(0, 12)], 0, 12) == []

    def test_subtract_disjoint_is_noop(self):
        assert subtract_interval([(0, 4)], 8, 12) == [(0, 4)]

    def test_intersect(self):
        assert intersect([(0, 4), (8, 12)], 2, 10) == [(2, 4), (8, 10)]
        assert intersect([(0, 4)], 4, 8) == []

    def test_total_bytes(self):
        assert total_bytes([(0, 4), (8, 12)]) == 8

    def test_describe(self):
        assert describe([(0, 4)]) == "[0, 4)"
        assert describe([]) == "(empty)"
        assert "more" in describe([(0, 1), (2, 3), (4, 5), (6, 7)], limit=2)


class TestShadowArray:
    def test_host_write_makes_device_stale(self):
        s = ShadowArray("u", extent=1024)
        s.host_write(0, 256)
        assert s.device_stale() == [(0, 256)]
        assert s.host_stale() == []

    def test_update_device_clears_host_dirt(self):
        s = ShadowArray("u", extent=1024)
        s.host_write(0, 256)
        s.update_device(0, 256)
        assert s.device_stale() == []
        assert s.clean()

    def test_partial_update_leaves_remainder(self):
        s = ShadowArray("u", extent=1024)
        s.host_write(0, 512)
        s.update_device(0, 128)
        assert s.device_stale() == [(128, 512)]

    def test_device_write_makes_host_stale(self):
        s = ShadowArray("u", extent=1024)
        s.device_write()  # full extent
        assert s.host_stale(0, 64) == [(0, 64)]
        s.update_host()
        assert s.host_stale() == []

    def test_update_device_overwrites_device_dirt_in_range(self):
        """The transfer wins in the overwritten range: the device copy there
        now reflects the host, whatever the kernel wrote before."""
        s = ShadowArray("u", extent=1024)
        s.device_write(0, 1024)
        s.update_device(0, 256)
        assert s.host_stale() == [(256, 1024)]

    def test_range_is_clamped_to_extent(self):
        s = ShadowArray("u", extent=100)
        s.host_write(50, 500)
        assert s.device_stale() == [(50, 100)]

    def test_unknown_extent_full_operations(self):
        s = ShadowArray("u")  # UNKNOWN_EXTENT
        assert s.extent == UNKNOWN_EXTENT
        s.host_write(0, 4096)
        s.update_device()  # sizeless update covers everything
        assert s.clean()
