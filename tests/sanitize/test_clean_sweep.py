"""The 12 seed-case schedules sanitize clean — at one rank and at four.

This is the sanitizer's false-positive gate: the executed offload
schedules of every physics x dimension x mode combination must produce
zero findings, with and without a halo decomposition in play.
"""

import numpy as np
import pytest

from repro.core import GPUOptions, ModelingConfig, run_modeling
from repro.model import layered_model
from repro.sanitize.cli import sanitize_case

CASES = [
    (physics, ndim, mode)
    for physics, ndim in (
        ("isotropic", 2), ("acoustic", 2), ("elastic", 2),
        ("isotropic", 3), ("acoustic", 3), ("elastic", 3),
    )
    for mode in ("modeling", "rtm")
]


@pytest.mark.parametrize("physics,ndim,mode", CASES)
def test_single_rank_clean(physics, ndim, mode):
    r = sanitize_case(physics, ndim, mode, ranks=1)
    assert r.clean(), [d.rule for d in r.diagnostics]


@pytest.mark.parametrize("physics,ndim,mode", CASES)
def test_four_ranks_clean(physics, ndim, mode):
    r = sanitize_case(physics, ndim, mode, ranks=4)
    assert r.nranks == 4
    assert r.clean(), [(d.rule, d.message) for d in r.diagnostics]


class TestStrictModeGate:
    def test_sanitize_option_does_not_change_results(self):
        """GPUOptions.sanitize runs a dry-run gate only — the simulated
        wavefield must be bit-identical with the option on and off."""
        m = layered_model(
            (64, 64), spacing=10.0, interfaces=[320.0],
            velocities=[1500.0, 2600.0],
        )
        cfg = ModelingConfig(
            physics="acoustic", model=m, nt=40, peak_freq=12.0,
            boundary_width=8, snap_period=10,
        )
        plain = run_modeling(cfg, gpu_options=GPUOptions())
        gated = run_modeling(cfg, gpu_options=GPUOptions(sanitize=True))
        np.testing.assert_array_equal(
            plain.final_wavefield, gated.final_wavefield
        )
        np.testing.assert_array_equal(plain.seismogram, gated.seismogram)

    def test_check_sanitize_passes_clean_config(self):
        from repro.core.platform import CRAY_K40
        from repro.sanitize.drivers import check_sanitize

        result = check_sanitize(
            "isotropic", (96, 96), "rtm", GPUOptions(), CRAY_K40,
            space_order=8, boundary_width=8,
        )
        assert result.clean()

    def test_check_sanitize_raises_on_hazards(self, monkeypatch):
        from repro.core import multigpu
        from repro.core.platform import CRAY_K40
        from repro.sanitize.drivers import check_sanitize
        from repro.utils.errors import AnalysisError

        broken = multigpu.ExchangeProtocol(update_ghost_device=False)
        orig = multigpu.MultiGpuPipeline.__init__

        def faulty(self, *args, **kwargs):
            kwargs["protocol"] = broken
            orig(self, *args, **kwargs)

        monkeypatch.setattr(multigpu.MultiGpuPipeline, "__init__", faulty)
        with pytest.raises(AnalysisError, match="stale-device-read"):
            check_sanitize(
                "isotropic", (96, 96), "rtm", GPUOptions(), CRAY_K40,
                ranks=2, space_order=8, boundary_width=8,
            )
