"""Golden-diagnostic tests: every sanitizer hazard code, fault-seeded.

Each live test wires one :class:`~repro.core.multigpu.ExchangeProtocol`
fault knob into the executed per-rank multi-GPU path and pins the single
diagnostic code the sanitizer must report for it; the script tests seed
the same hazards in hand-written ``!$acc`` scripts (including the
out-of-bounds transfer, which the live present table refuses to execute).
"""

import pytest

from repro.analyze.framework import Severity
from repro.core.multigpu import ExchangeProtocol
from repro.sanitize import PASSES, sanitize_pipeline, sanitize_script


def codes(result):
    return sorted({d.rule for d in result.diagnostics})


def run(protocol=None, halo_width=None, ranks=2, mode="rtm"):
    return sanitize_pipeline(
        "isotropic", (96, 96), mode, ranks=ranks, nt=8, snap_period=4,
        halo_width=halo_width, protocol=protocol,
    )


class TestLiveFaultSeeded:
    def test_clean_protocol_has_no_findings(self):
        r = run()
        assert r.clean(), codes(r)

    def test_missing_ghost_update_is_stale_device_read(self):
        """Halo arrives on the host but never goes back to the device."""
        r = run(ExchangeProtocol(update_ghost_device=False))
        assert codes(r) == ["stale-device-read"]
        assert all(d.severity is Severity.ERROR for d in r.diagnostics)

    def test_send_without_update_host_is_stale_host_read(self):
        """MPI sends the host copy while the kernel writes sit on device."""
        r = run(ExchangeProtocol(update_host_before_send=False))
        assert codes(r) == ["stale-host-read"]

    def test_async_update_without_wait_is_halo_send_before_sync(self):
        r = run(ExchangeProtocol(async_updates=True, sync_before_send=False))
        assert codes(r) == ["halo-send-before-sync"]

    def test_async_update_with_wait_is_clean(self):
        """The legitimate overlap pattern: async update + wait before send."""
        r = run(ExchangeProtocol(async_updates=True, sync_before_send=True))
        assert r.clean(), codes(r)

    def test_narrow_halo_is_short_ghost_transfer(self):
        """halo_width=2 under a radius-4 stencil (space_order=8)."""
        r = run(halo_width=2)
        assert "short-ghost-transfer" in codes(r)

    def test_rank_is_named_in_multirank_findings(self):
        r = run(ExchangeProtocol(update_ghost_device=False), ranks=4)
        assert any(d.message.startswith("[rank ") for d in r.diagnostics)

    def test_modeling_mode_also_detects(self):
        r = run(ExchangeProtocol(update_ghost_device=False), mode="modeling")
        assert codes(r) == ["stale-device-read"]


class TestScriptSeeded:
    def test_stale_device_read(self):
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=768 offset=0
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$acc exit data delete(u)
        """)
        assert codes(r) == ["stale-device-read"]
        (d,) = r.diagnostics
        assert d.severity is Severity.ERROR
        assert d.fix is not None

    def test_update_device_makes_it_clean(self):
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=768 offset=0
            !$acc update device(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$acc exit data delete(u)
        """)
        assert r.clean(), codes(r)

    def test_stale_host_read_on_send(self):
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$acc wait
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert codes(r) == ["stale-host-read"]

    def test_halo_send_before_sync(self):
        """Async update host not waited on before the MPI send reads it."""
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$lint bytes=384 offset=384
            !$acc update host(u) async(2)
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert codes(r) == ["halo-send-before-sync"]

    def test_waited_async_update_is_clean(self):
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$lint bytes=384 offset=384
            !$acc update host(u) async(2)
            !$acc wait(2)
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert r.clean(), codes(r)

    def test_short_ghost_transfer(self):
        """A partial update device narrower than the stencil's ghost need."""
        r = sanitize_script("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=768 offset=0
            !$lint bytes=384 offset=0
            !$acc update device(u)
            !$lint name=fwd dims=96x96 reads=u writes=u halo=2
            !$acc parallel loop gang vector
            !$acc exit data delete(u)
        """)
        assert codes(r) == ["short-ghost-transfer"]

    def test_ghost_transfer_out_of_bounds(self):
        r = sanitize_script("""
            !$lint extent(u=1024)
            !$acc enter data copyin(u)
            !$lint bytes=2048 offset=512
            !$acc update device(u)
            !$acc exit data delete(u)
        """)
        assert codes(r) == ["ghost-transfer-out-of-bounds"]

    def test_unflushed_device_writes_at_copyout(self):
        """exit data copyout while dev-dirty is a stale host copy."""
        r = sanitize_script("""
            !$lint extent(u=1024)
            !$acc enter data copyin(u)
            !$lint name=k writes=u
            !$acc parallel loop
            !$lint host_reads(u)
            !$acc exit data delete(u)
        """)
        assert "stale-host-read" in codes(r)


class TestRegistry:
    def test_every_rule_maps_to_a_pass(self):
        assert set(PASSES) == {
            "stale-device-read",
            "stale-host-read",
            "short-ghost-transfer",
            "ghost-transfer-out-of-bounds",
            "halo-send-before-sync",
        }

    def test_diagnostics_carry_registered_pass_names(self):
        r = run(ExchangeProtocol(update_ghost_device=False))
        for d in r.diagnostics:
            assert PASSES[d.rule] == d.pass_name
