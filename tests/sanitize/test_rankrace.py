"""Unit tests for the cross-rank vector clocks (happens-before graph)."""

from repro.sanitize.rankrace import RankClocks


class TestSingleRank:
    def test_async_op_is_unordered_until_wait(self):
        c = RankClocks()
        key, tick = c.async_op(0, queue=2)
        assert not c.ordered(0, key, tick)
        c.wait(0, queue=2)
        assert c.ordered(0, key, tick)

    def test_wait_all_joins_every_queue(self):
        c = RankClocks()
        k1, t1 = c.async_op(0, queue=1)
        k2, t2 = c.async_op(0, queue=2)
        c.wait(0)  # bare wait
        assert c.ordered(0, k1, t1) and c.ordered(0, k2, t2)

    def test_wait_on_one_queue_leaves_the_other(self):
        c = RankClocks()
        k1, t1 = c.async_op(0, queue=1)
        k2, t2 = c.async_op(0, queue=2)
        c.wait(0, queue=1)
        assert c.ordered(0, k1, t1)
        assert not c.ordered(0, k2, t2)

    def test_later_tick_needs_a_later_wait(self):
        c = RankClocks()
        c.async_op(0, queue=1)
        c.wait(0, queue=1)
        key, tick = c.async_op(0, queue=1)
        assert not c.ordered(0, key, tick)


class TestCrossRank:
    def test_message_carries_the_senders_clock(self):
        """Fidge/Mattern: recv merges the snapshot taken at send time."""
        c = RankClocks()
        key, tick = c.async_op(0, queue=1)
        c.wait(0, queue=1)
        c.send(0, 1)
        c.recv(1, 0)
        assert c.ordered(1, key, tick)

    def test_unsynced_op_does_not_travel(self):
        c = RankClocks()
        key, tick = c.async_op(0, queue=1)
        c.send(0, 1)  # host never waited: snapshot misses the op
        c.recv(1, 0)
        assert not c.ordered(1, key, tick)

    def test_channels_are_fifo_per_tag(self):
        c = RankClocks()
        c.send(0, 1, tag=7)
        key, tick = c.async_op(0, queue=1)
        c.wait(0, queue=1)
        c.send(0, 1, tag=7)
        c.recv(1, 0, tag=7)  # first (pre-op) snapshot
        assert not c.ordered(1, key, tick)
        c.recv(1, 0, tag=7)  # second snapshot carries the op
        assert c.ordered(1, key, tick)

    def test_recv_on_empty_channel_is_noop(self):
        c = RankClocks()
        c.recv(1, 0)
        assert c.host.get(1, {}) == {}

    def test_ranks_are_independent(self):
        c = RankClocks()
        key, tick = c.async_op(0, queue=1)
        c.wait(1)  # rank 1 waiting does not order rank 0's op
        assert not c.ordered(0, key, tick)
        assert not c.ordered(1, key, tick)
