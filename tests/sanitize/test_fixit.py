"""Fixit round trips: seeded script -> apply_fixes -> re-sanitize clean."""

import textwrap

from repro.sanitize import apply_fixes, collect_fixes, sanitize_script


def roundtrip(text):
    text = textwrap.dedent(text).strip() + "\n"
    before = sanitize_script(text)
    assert not before.clean(), "seed script must start dirty"
    fixed, applied = apply_fixes(text, before.diagnostics)
    assert applied == len(collect_fixes(before.diagnostics))
    after = sanitize_script(fixed)
    assert after.clean(), [d.rule for d in after.diagnostics]
    return fixed


class TestRoundTrips:
    def test_insert_update_device(self):
        fixed = roundtrip("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=768 offset=0
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$acc exit data delete(u)
        """)
        assert "update device(u)" in fixed
        assert "bytes=768" in fixed  # minimal byte extent, not full array

    def test_insert_update_self(self):
        fixed = roundtrip("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$acc wait
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert "update self(u)" in fixed
        assert "offset=384" in fixed

    def test_insert_wait_before_send(self):
        fixed = roundtrip("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint name=fwd dims=96x96 reads=u writes=u
            !$acc parallel loop gang vector
            !$lint bytes=384 offset=384
            !$acc update host(u) async(2)
            !$lint send(u) to=1 bytes=384 offset=384
            !$acc exit data delete(u)
        """)
        assert "!$acc wait(2)" in fixed
        # the wait lands between the async update and the send
        lines = fixed.splitlines()
        i_upd = next(i for i, l in enumerate(lines) if "async(2)" in l)
        i_wait = next(i for i, l in enumerate(lines) if "wait(2)" in l)
        i_send = next(i for i, l in enumerate(lines) if "send(u)" in l)
        assert i_upd < i_wait < i_send

    def test_widen_short_ghost_update(self):
        fixed = roundtrip("""
            !$lint extent(u=36864)
            !$acc enter data copyin(u)
            !$lint host_writes(u) bytes=768 offset=0
            !$lint bytes=384 offset=0
            !$acc update device(u)
            !$lint name=fwd dims=96x96 reads=u writes=u halo=2
            !$acc parallel loop gang vector
            !$acc exit data delete(u)
        """)
        # widened in place: halo(2) * 96 cols * 4 bytes = 768
        assert "bytes=768" in fixed
        assert "bytes=384" not in fixed
        assert fixed.count("update device(u)") == 1

    def test_multiple_findings_fixed_in_one_pass(self):
        fixed = roundtrip("""
            !$lint extent(u=36864)
            !$lint extent(v=36864)
            !$acc enter data copyin(u, v)
            !$lint host_writes(u) bytes=768 offset=0
            !$lint host_writes(v) bytes=512 offset=0
            !$lint name=fwd dims=96x96 reads=u,v writes=u
            !$acc parallel loop gang vector
            !$acc exit data delete(u, v)
        """)
        assert "update device(u)" in fixed
        assert "update device(v)" in fixed

    def test_indentation_matches_anchor(self):
        text = (
            "!$lint extent(u=1024)\n"
            "!$acc enter data copyin(u)\n"
            "    !$lint host_writes(u) bytes=64 offset=0\n"
            "    !$lint name=k dims=16x16 reads=u writes=u\n"
            "    !$acc parallel loop\n"
            "!$acc exit data delete(u)\n"
        )
        before = sanitize_script(text)
        fixed, _ = apply_fixes(text, before.diagnostics)
        inserted = [l for l in fixed.splitlines() if "update device" in l]
        assert inserted and inserted[0].startswith("    ")

    def test_apply_with_no_fixable_findings_is_noop(self):
        text = "!$acc enter data copyin(u)\n!$acc exit data delete(u)\n"
        result = sanitize_script(text)
        fixed, applied = apply_fixes(text, result.diagnostics)
        assert applied == 0 and fixed == text
