import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.boundary import damping_profile, pml_sigma_max
from repro.utils.errors import ConfigurationError


class TestSigmaMax:
    def test_formula(self):
        s = pml_sigma_max(2000.0, 160.0, reflection=1e-4, order=2)
        assert s == pytest.approx(-3 * 2000.0 * np.log(1e-4) / (2 * 160.0))

    def test_stronger_for_thinner_layer(self):
        assert pml_sigma_max(2000.0, 80.0) > pml_sigma_max(2000.0, 160.0)

    def test_stronger_for_lower_reflection(self):
        assert pml_sigma_max(2000.0, 160.0, 1e-6) > pml_sigma_max(2000.0, 160.0, 1e-3)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            pml_sigma_max(-1.0, 100.0)
        with pytest.raises(ConfigurationError):
            pml_sigma_max(1000.0, 100.0, reflection=2.0)


class TestDampingProfile:
    def test_zero_in_interior(self):
        p = damping_profile(100, 10, 50.0, 10.0)
        assert np.all(p[10:90] == 0.0)

    def test_max_at_edges(self):
        p = damping_profile(100, 10, 50.0, 10.0)
        assert p[0] == pytest.approx(50.0)
        assert p[-1] == pytest.approx(50.0)

    def test_monotone_into_layer(self):
        p = damping_profile(100, 12, 50.0, 10.0)
        assert np.all(np.diff(p[:12]) <= 0)
        assert np.all(np.diff(p[-12:]) >= 0)

    def test_symmetric(self):
        p = damping_profile(101, 15, 42.0, 10.0)
        np.testing.assert_allclose(p, p[::-1], atol=1e-12)

    def test_zero_width(self):
        p = damping_profile(50, 0, 50.0, 10.0)
        assert np.all(p == 0.0)

    def test_half_shift_changes_samples(self):
        a = damping_profile(60, 10, 50.0, 10.0, half_shift=False)
        b = damping_profile(60, 10, 50.0, 10.0, half_shift=True)
        assert not np.allclose(a[:10], b[:10])

    def test_overlapping_layers_rejected(self):
        with pytest.raises(ConfigurationError):
            damping_profile(10, 5, 50.0, 10.0)

    @given(st.integers(min_value=2, max_value=6))
    def test_profile_order(self, order):
        p = damping_profile(80, 10, 10.0, 10.0, order=order)
        assert np.all(p >= 0)
        assert p[0] == pytest.approx(10.0, rel=1e-9)
