"""Absorber behaviour: Cerjan sponge, standard PML, and C-PML.

The load-bearing checks run a real propagation against each absorber and
measure residual energy after the wavefront crosses the layer, including the
comparison the package promises: C-PML absorbs better than the sponge, and
the standard PML leaves the most residual (the weakness the paper cites).
"""

import numpy as np
import pytest

from repro.boundary import CPML, CerjanSponge, StandardPML
from repro.grid import Grid
from repro.model import constant_model
from repro.propagators import AcousticPropagator, IsotropicPropagator
from repro.source import PointSource, integrated_ricker, ricker
from repro.utils.errors import ConfigurationError


class TestCerjanSponge:
    def test_taper_one_in_interior(self):
        g = Grid((64, 64))
        s = CerjanSponge(g, width=8)
        assert np.all(s.taper[8:-8, 8:-8] == 1.0)

    def test_taper_below_one_at_edges(self):
        g = Grid((64, 64))
        s = CerjanSponge(g, width=8)
        assert float(s.taper[0, 0]) < 1.0

    def test_apply_in_place(self):
        g = Grid((32, 32))
        s = CerjanSponge(g, width=4)
        f = np.ones(g.shape, dtype=np.float32)
        s.apply(f)
        assert float(f[0, 0]) < 1.0
        assert float(f[16, 16]) == 1.0

    def test_shape_mismatch_rejected(self):
        g = Grid((32, 32))
        s = CerjanSponge(g, width=4)
        with pytest.raises(ConfigurationError):
            s.apply(np.ones((8, 8), dtype=np.float32))

    def test_width_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            CerjanSponge(Grid((16, 16)), width=8)


class TestStandardPML:
    def test_coefficients_reduce_in_interior(self):
        g = Grid((64, 64))
        pml = StandardPML(g, 10, 2000.0, 1e-3)
        inner = pml.interior_slices()
        np.testing.assert_allclose(pml.coeff_curr[inner], 2.0)
        np.testing.assert_allclose(pml.coeff_prev[inner], 1.0)
        np.testing.assert_allclose(pml.coeff_rhs[inner], 1.0)
        np.testing.assert_allclose(pml.sigma2[inner], 0.0)

    def test_sigma_positive_in_layer(self):
        g = Grid((64, 64))
        pml = StandardPML(g, 10, 2000.0, 1e-3)
        assert float(pml.sigma[0, 32]) > 0.0

    def test_corner_sums_axes(self):
        g = Grid((64, 64))
        pml = StandardPML(g, 10, 2000.0, 1e-3)
        assert float(pml.sigma[0, 0]) == pytest.approx(
            float(pml.sigma[0, 32]) + float(pml.sigma[32, 0]), rel=1e-5
        )

    def test_zero_width_not_absorbing(self):
        pml = StandardPML(Grid((32, 32)), 0, 2000.0, 1e-3)
        assert not pml.is_absorbing()

    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            StandardPML(Grid((32, 32)), 4, 2000.0, -1.0)


class TestCPML:
    def test_four_1d_arrays_per_dimension(self):
        """The paper: 'four different one-dimensional arrays with the
        cpml-coefficients for each dimension'."""
        g = Grid((48, 48))
        c = CPML(g, 10, 2000.0, 1e-3)
        for ax in range(2):
            assert set(c.b[ax].keys()) == {False, True}
            assert set(c.a[ax].keys()) == {False, True}
            assert c.b[ax][False].shape == (48,)

    def test_identity_in_interior(self):
        g = Grid((48, 48))
        c = CPML(g, 10, 2000.0, 1e-3)
        assert np.all(c.a[0][False][10:-10] == 0.0)

    def test_b_in_unit_interval(self):
        c = CPML(Grid((48, 48)), 10, 2000.0, 1e-3)
        for ax in range(2):
            for half in (False, True):
                b = c.b[ax][half]
                assert np.all(b > 0.0) and np.all(b <= 1.0)

    def test_a_negative_in_layer(self):
        """a = sigma/(sigma+alpha) * (b-1) < 0 where sigma > 0."""
        c = CPML(Grid((48, 48)), 10, 2000.0, 1e-3)
        assert float(c.a[0][False][0]) < 0.0

    def test_damp_noop_when_disabled(self):
        g = Grid((48, 48))
        c = CPML(g, 0, 2000.0, 1e-3)
        d = np.ones(g.shape, dtype=np.float32)
        out = c.damp("t", 0, d, half=False)
        np.testing.assert_array_equal(out, 1.0)

    def test_memory_variables_persist(self):
        g = Grid((48, 48))
        c = CPML(g, 10, 2000.0, 1e-3)
        d = np.ones(g.shape, dtype=np.float32)
        c.damp("dq0", 0, d.copy(), half=False)
        assert "dq0" in c.memory_names()
        assert c.memory_bytes() == g.npoints * 4

    def test_reset_zeroes_memory(self):
        g = Grid((48, 48))
        c = CPML(g, 10, 2000.0, 1e-3)
        c.damp("x", 0, np.ones(g.shape, dtype=np.float32), half=False)
        c.reset()
        assert all(np.all(p == 0) for p in c._psi.values())

    def test_damp_reduces_derivative_in_layer(self):
        """Steady unit derivative: the convolution pushes the damped value
        below the raw value inside the layer (absorbing behaviour)."""
        g = Grid((48, 48))
        c = CPML(g, 10, 2500.0, 5e-4)
        for _ in range(50):
            d = np.ones(g.shape, dtype=np.float32)
            out = c.damp("steady", 0, d, half=False)
        assert float(out[0, 24]) < 0.5
        assert float(out[24, 24]) == pytest.approx(1.0)

    def test_shape_mismatch_rejected(self):
        c = CPML(Grid((48, 48)), 10, 2000.0, 1e-3)
        with pytest.raises(ConfigurationError):
            c.damp("x", 0, np.zeros((8, 8), dtype=np.float32), half=False)


class TestAbsorptionQuality:
    """End-to-end: propagate a pulse into each absorber and compare the
    residual amplitude after the wave should have left the domain."""

    @staticmethod
    def _run_acoustic(width):
        m = constant_model((120, 120), spacing=10.0, vp=2000.0)
        p = AcousticPropagator(m, boundary_width=width)
        w = integrated_ricker(600, p.dt, 15.0)
        src = PointSource.at_center(m.grid, w)
        # peak amplitude while the wave is inside
        p.run(140, source=src)
        peak = float(np.abs(p.snapshot_field()).max())
        p.run(500)
        residual = float(np.abs(p.snapshot_field()).max())
        return residual / peak

    def test_cpml_absorbs_orders_of_magnitude(self):
        assert self._run_acoustic(16) < 3e-2

    def test_wider_layer_absorbs_more(self):
        assert self._run_acoustic(24) < self._run_acoustic(8)

    def test_no_layer_reflects(self):
        """Without absorption the energy stays (reflecting edges)."""
        assert self._run_acoustic(0) > 0.3

    def test_isotropic_pml_reduces_reflections(self):
        def run(width):
            m = constant_model((120, 120), spacing=10.0, vp=2000.0, with_density=False)
            p = IsotropicPropagator(m, boundary_width=width)
            w = ricker(600, p.dt, 15.0)
            src = PointSource.at_center(m.grid, w)
            p.run(140, source=src)
            peak = float(np.abs(p.snapshot_field()).max())
            p.run(500)
            return float(np.abs(p.snapshot_field()).max()) / peak

        assert run(20) < 0.5 * run(0)
