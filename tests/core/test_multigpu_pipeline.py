"""The executed per-rank multi-GPU path (MultiGpuPipeline).

The regression of note: the per-rank directive stream must record the
host-side mutation of the landed ghost slab (``note_host_write``) — the
sanitizer's coherence ledger is blind to halo traffic without it.
"""

import pytest

from repro.core.multigpu import ExchangeProtocol, MultiGpuPipeline
from repro.sanitize import SanitizeSession
from repro.utils.errors import ConfigurationError


def build(ngpus=2, session=None, **kwargs):
    return MultiGpuPipeline(
        "isotropic", (96, 96), ngpus, space_order=8, boundary_width=8,
        nreceivers=8, session=session, **kwargs
    )


def events(session, rank, kind):
    return [e for e in session.programs[rank].events if e.kind == kind]


class TestPerRankRecording:
    def test_ghost_landing_is_recorded_as_host_write(self):
        """S1 regression: the exchange notes the landed ghost slab as a
        host write on every rank's stream."""
        session = SanitizeSession(nranks=2, name="t")
        pipe = build(ngpus=2, session=session)
        pipe.run_modeling(nt=4, snap_period=2)
        for rank in (0, 1):
            hw = events(session, rank, "host_write")
            assert hw, f"rank {rank} recorded no host_write events"
            names = {n for e in hw for n in e.writes}
            assert pipe.primary in names

    def test_send_faces_are_recorded_as_host_reads(self):
        session = SanitizeSession(nranks=2, name="t")
        pipe = build(ngpus=2, session=session)
        pipe.run_modeling(nt=4, snap_period=2)
        for rank in (0, 1):
            assert events(session, rank, "host_read")

    def test_halo_messages_become_send_recv_events(self):
        session = SanitizeSession(nranks=2, name="t")
        pipe = build(ngpus=2, session=session)
        pipe.run_modeling(nt=2, snap_period=2)
        assert events(session, 0, "send") and events(session, 0, "recv")

    def test_interior_rank_exchanges_two_faces(self):
        session = SanitizeSession(nranks=3, name="t")
        pipe = build(ngpus=3, session=session)
        pipe.run_modeling(nt=1, snap_period=2)  # exactly one exchange
        # rank 1 has both a lo and a hi neighbour: two ghost slabs land
        assert len(events(session, 1, "host_write")) == 2
        assert len(events(session, 0, "host_write")) == 1

    def test_rtm_exchanges_backward_wavefield_too(self):
        session = SanitizeSession(nranks=2, name="t")
        pipe = build(ngpus=2, session=session)
        pipe.run_rtm(nt=4, snap_period=2)
        hw_names = {
            n for e in events(session, 0, "host_write") for n in e.writes
        }
        assert pipe.primary in hw_names
        assert any(n.startswith("bwd:") for n in hw_names)


class TestPipelineBehavior:
    def test_returns_per_rank_timings(self):
        pipe = build(ngpus=3)
        times = pipe.run_modeling(nt=4, snap_period=2)
        assert len(times) == 3
        assert all(t.total > 0 for t in times)

    def test_single_rank_has_no_exchange_traffic(self):
        session = SanitizeSession(nranks=1, name="t")
        pipe = build(ngpus=1, session=session)
        pipe.run_modeling(nt=2, snap_period=2)
        assert not events(session, 0, "host_write")
        assert session.result().clean()

    def test_rejects_zero_gpus(self):
        with pytest.raises(ConfigurationError):
            build(ngpus=0)

    def test_protocol_defaults_are_the_correct_protocol(self):
        p = ExchangeProtocol()
        assert p.update_host_before_send and p.update_ghost_device
        assert not p.async_updates and p.sync_before_send
