import numpy as np
import pytest

from repro.acc import CRAY_8_2_6, PGI_14_6
from repro.core import (
    GPUOptions,
    ModelingConfig,
    estimate_modeling,
    run_modeling,
)
from repro.core.platform import CRAY_K40, IBM_M2090
from repro.model import constant_model, layered_model
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def modeling_result():
    m = layered_model(
        (128, 128), spacing=10.0, interfaces=[640.0], velocities=[1500.0, 2600.0]
    )
    cfg = ModelingConfig(
        physics="acoustic", model=m, nt=300, peak_freq=12.0, boundary_width=16,
        snap_period=20,
    )
    return run_modeling(cfg)


class TestHostModeling:
    def test_seismogram_shape(self, modeling_result):
        assert modeling_result.seismogram.shape[0] == 300
        assert modeling_result.seismogram.shape[1] > 0

    def test_seismogram_records_direct_arrival(self, modeling_result):
        """Receivers near the source must light up after the wavelet onset."""
        s = modeling_result.seismogram
        assert float(np.abs(s).max()) > 0
        early = float(np.abs(s[:20]).max())
        assert early < 1e-3 * float(np.abs(s).max())

    def test_snapshots_saved_on_period(self, modeling_result):
        store = modeling_result.snapshots
        assert store.count == 300 // 20
        assert all((step + 1) % 20 == 0 for step in store.steps)

    def test_snapshots_decimated(self, modeling_result):
        assert modeling_result.snapshots.frames()[0].shape == (32, 32)

    def test_final_wavefield_finite(self, modeling_result):
        assert np.all(np.isfinite(modeling_result.final_wavefield))

    def test_no_gpu_timing_without_options(self, modeling_result):
        assert modeling_result.gpu is None

    def test_needs_model(self):
        cfg = ModelingConfig(physics="acoustic", model=None, nt=10)
        with pytest.raises(ConfigurationError):
            run_modeling(cfg)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ModelingConfig(physics="acoustic", model=None, nt=0)
        with pytest.raises(ConfigurationError):
            ModelingConfig(physics="warp", model=None, nt=10)


class TestGpuAttachedModeling:
    def test_gpu_timing_attached(self):
        m = constant_model((96, 96), spacing=10.0, vp=2000.0)
        cfg = ModelingConfig(physics="acoustic", model=m, nt=60, snap_period=10,
                             boundary_width=16)
        res = run_modeling(cfg, gpu_options=GPUOptions(compiler=PGI_14_6))
        assert res.gpu is not None
        assert res.gpu.success
        assert res.gpu.kernel > 0
        assert res.gpu.launches >= 60

    def test_gpu_attachment_does_not_change_physics(self):
        m = constant_model((96, 96), spacing=10.0, vp=2000.0)
        cfg = ModelingConfig(physics="acoustic", model=m, nt=60, snap_period=10,
                             boundary_width=16)
        plain = run_modeling(cfg)
        timed = run_modeling(cfg, gpu_options=GPUOptions(compiler=PGI_14_6))
        np.testing.assert_array_equal(plain.seismogram, timed.seismogram)

    def test_estimate_runs_at_paper_scale(self):
        """Estimate mode must handle grids far too large to allocate."""
        t = estimate_modeling(
            "acoustic", (512, 512, 512), nt=5, snap_period=5, platform=CRAY_K40,
            options=GPUOptions(compiler=PGI_14_6),
        )
        assert t.success
        assert t.total > 0

    def test_estimate_oom_on_fermi(self):
        t = estimate_modeling(
            "elastic", (448, 448, 448), nt=2, snap_period=2, platform=IBM_M2090,
            options=GPUOptions(compiler=PGI_14_6),
        )
        assert not t.success and t.failure == "oom"

    def test_estimate_platform_matters(self):
        a = estimate_modeling("acoustic", (256, 256), 50, 10, platform=CRAY_K40)
        b = estimate_modeling("acoustic", (256, 256), 50, 10, platform=IBM_M2090)
        assert a.total != b.total
