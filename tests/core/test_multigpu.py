"""Multi-GPU decomposition extension (the paper's path forward)."""

import pytest

from repro.core import estimate_multi_gpu_modeling, scaling_study
from repro.core.platform import CRAY_K40, IBM_M2090
from repro.utils.errors import ConfigurationError

SHAPE_3D = (256, 256, 256)


class TestScaling:
    def test_single_gpu_matches_kernel_plus_snapshots(self):
        t = estimate_multi_gpu_modeling("acoustic", SHAPE_3D, 50, 10, 1)
        assert t.success
        assert t.comm == 0.0
        assert t.total == pytest.approx(t.kernel + t.snapshots + t.setup, rel=1e-6)

    def test_speedup_grows_with_gpus(self):
        res = scaling_study("acoustic", SHAPE_3D, 50, 10, gpu_counts=(1, 2, 4))
        base = res[1]
        s2 = res[2].speedup_vs(base)
        s4 = res[4].speedup_vs(base)
        assert 1.4 < s2 <= 2.05
        assert s2 < s4 <= 4.1

    def test_efficiency_at_most_one(self):
        res = scaling_study("acoustic", SHAPE_3D, 50, 10, gpu_counts=(1, 2, 4, 8))
        base = res[1]
        for n in (2, 4, 8):
            assert res[n].efficiency_vs(base) <= 1.0 + 1e-9

    def test_overlap_helps(self):
        """The paper's proposal: overlapping communications with GPU
        computations improves multi-GPU performance."""
        on = estimate_multi_gpu_modeling("acoustic", SHAPE_3D, 50, 10, 4, overlap=True)
        off = estimate_multi_gpu_modeling("acoustic", SHAPE_3D, 50, 10, 4, overlap=False)
        assert on.total < off.total

    def test_transpose_packing_helps(self):
        """'rearranging data of these ghost nodes by performing a
        transposition on GPU' collapses the per-field DMA chains."""
        packed = estimate_multi_gpu_modeling(
            "elastic", SHAPE_3D, 50, 10, 4, transpose_pack=True, overlap=False
        )
        strided = estimate_multi_gpu_modeling(
            "elastic", SHAPE_3D, 50, 10, 4, transpose_pack=False, overlap=False
        )
        assert packed.comm < strided.comm

    def test_too_thin_slabs_fail_cleanly(self):
        t = estimate_multi_gpu_modeling("acoustic", (32, 64, 64), 10, 5, 8)
        assert not t.success and t.failure == "too-thin"

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            estimate_multi_gpu_modeling("acoustic", SHAPE_3D, 10, 5, 0)
        with pytest.raises(ConfigurationError):
            estimate_multi_gpu_modeling("acoustic", SHAPE_3D, 0, 5, 2)


class TestCapacityStory:
    def test_elastic_3d_needs_two_fermis(self):
        """The OOM gate that produced the paper's 'x' cells dissolves under
        decomposition: elastic 3-D fits two M2090s but not one."""
        one = estimate_multi_gpu_modeling(
            "elastic", (448, 448, 448), 10, 10, 1, platform=IBM_M2090
        )
        two = estimate_multi_gpu_modeling(
            "elastic", (448, 448, 448), 10, 10, 2, platform=IBM_M2090
        )
        assert not one.success and one.failure == "oom"
        assert two.success

    def test_per_device_bytes_shrink(self):
        res = scaling_study("elastic", SHAPE_3D, 10, 10, gpu_counts=(1, 2, 4))
        b1 = max(res[1].per_device_bytes)
        b2 = max(res[2].per_device_bytes)
        b4 = max(res[4].per_device_bytes)
        assert b1 > b2 > b4


class TestCommunicationModel:
    def test_comm_independent_of_gpu_count_for_slabs(self):
        """Slab decomposition: each interface pair exchanges concurrently,
        so per-step comm does not grow with the card count."""
        res = scaling_study("acoustic", SHAPE_3D, 50, 10, gpu_counts=(2, 4, 8))
        comms = [res[n].comm for n in (2, 4, 8)]
        assert max(comms) == pytest.approx(min(comms), rel=1e-6)

    def test_elastic_exchanges_more_than_isotropic(self):
        e = estimate_multi_gpu_modeling("elastic", SHAPE_3D, 50, 10, 2, overlap=False)
        i = estimate_multi_gpu_modeling("isotropic", SHAPE_3D, 50, 10, 2, overlap=False)
        assert e.comm > i.comm

    def test_vti_supported(self):
        t = estimate_multi_gpu_modeling("vti", SHAPE_3D, 20, 10, 2)
        assert t.success
