"""Multi-shot survey stacking (the imaging condition 'summed over the
sources s')."""

import numpy as np
import pytest

from repro.core import RTMConfig, run_survey, shot_line
from repro.model import layered_model
from repro.source import line_receivers
from repro.utils.errors import ConfigurationError


@pytest.fixture(scope="module")
def survey_result():
    m = layered_model(
        (128, 128), spacing=10.0, interfaces=[640.0], velocities=[1500.0, 2600.0]
    )
    cfg = RTMConfig(
        physics="acoustic", model=m, nt=620, peak_freq=12.0, boundary_width=16,
        snap_period=4, receivers=line_receivers(m.grid, 18, stride=2, margin=16),
        source_depth_index=18, mute_cells=40,
    )
    return run_survey(cfg, nshots=3)


class TestShotLine:
    def test_even_spacing(self):
        m = layered_model((64, 128), interfaces=[100.0], velocities=[1500.0, 2500.0])
        xs = shot_line(m, 3, margin=20)
        assert xs[0] == 20 and xs[-1] == 107
        assert xs[1] == (xs[0] + xs[2]) // 2

    def test_single_shot_centered_range(self):
        m = layered_model((64, 128), interfaces=[100.0], velocities=[1500.0, 2500.0])
        assert shot_line(m, 1, margin=20) == [20]

    def test_margin_too_big(self):
        m = layered_model((64, 64), interfaces=[100.0], velocities=[1500.0, 2500.0])
        with pytest.raises(ConfigurationError):
            shot_line(m, 2, margin=40)


class TestSurvey:
    def test_three_shots_run(self, survey_result):
        assert survey_result.nshots == 3
        assert len(survey_result.shot_x_indices) == 3

    def test_stack_images_reflector(self, survey_result):
        profile = np.sum(
            survey_result.image[:, 30:-30].astype(np.float64) ** 2, axis=1
        )
        assert abs(int(np.argmax(profile)) - 64) < 13

    def test_stack_widens_lateral_coverage(self, survey_result):
        """The stacked image must light the reflector over at least the span
        between the outer shots; a single shot's footprint is narrower."""
        def coverage(img):
            band = np.abs(img[58:70, :]).astype(np.float64).sum(axis=0)
            band = band / (band.max() or 1.0)
            return int((band > 0.2).sum())

        single = coverage(survey_result.shot_images[0])
        stacked = coverage(survey_result.image)
        assert stacked >= single

    def test_shot_images_differ(self, survey_result):
        a, b = survey_result.shot_images[0], survey_result.shot_images[-1]
        assert not np.allclose(a, b)

    def test_stack_is_muted_and_normalized(self, survey_result):
        assert np.all(survey_result.image[:40] == 0.0)
        assert float(np.abs(survey_result.image).max()) <= 1.0 + 1e-6

    def test_explicit_shot_positions(self):
        m = layered_model(
            (96, 96), spacing=10.0, interfaces=[480.0], velocities=[1500.0, 2500.0]
        )
        cfg = RTMConfig(physics="acoustic", model=m, nt=80, snap_period=8,
                        boundary_width=16)
        res = run_survey(cfg, shot_x_indices=[30, 60])
        assert res.shot_x_indices == [30, 60]

    def test_bad_shot_position(self):
        m = layered_model(
            (96, 96), spacing=10.0, interfaces=[480.0], velocities=[1500.0, 2500.0]
        )
        cfg = RTMConfig(physics="acoustic", model=m, nt=20, snap_period=5,
                        boundary_width=16)
        with pytest.raises(ConfigurationError):
            run_survey(cfg, shot_x_indices=[500])

    def test_3d_rejected(self):
        m = layered_model(
            (32, 32, 32), spacing=10.0, interfaces=[100.0], velocities=[1500.0, 2500.0]
        )
        cfg = RTMConfig(physics="acoustic", model=m, nt=10, snap_period=5,
                        boundary_width=8)
        with pytest.raises(ConfigurationError):
            run_survey(cfg, nshots=2)


class TestSourcePlacement:
    def test_source_x_index_honoured(self):
        from repro.core import ModelingConfig, run_modeling
        m = layered_model(
            (96, 96), spacing=10.0, interfaces=[480.0], velocities=[1500.0, 2500.0]
        )
        cfg = ModelingConfig(physics="acoustic", model=m, nt=60, snap_period=60,
                             boundary_width=16, source_x_index=30,
                             snapshot_decimate=1)
        res = run_modeling(cfg)
        snap = res.snapshots.frames()[0]
        # energy centroid along x must sit near column 30, not 48
        energy = np.abs(snap).astype(np.float64).sum(axis=0)
        centroid = float(np.sum(np.arange(96) * energy) / energy.sum())
        assert abs(centroid - 30) < 6

    def test_source_x_out_of_grid(self):
        from repro.core import ModelingConfig, run_modeling
        m = layered_model(
            (96, 96), spacing=10.0, interfaces=[480.0], velocities=[1500.0, 2500.0]
        )
        cfg = ModelingConfig(physics="acoustic", model=m, nt=10,
                             boundary_width=16, source_x_index=200)
        with pytest.raises(ConfigurationError):
            run_modeling(cfg)
