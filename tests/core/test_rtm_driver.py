"""RTM end-to-end: the migrated image must light up at the reflector."""

import numpy as np
import pytest

from repro.acc import PGI_14_6
from repro.core import GPUOptions, RTMConfig, estimate_rtm, run_rtm
from repro.core.platform import CRAY_K40, IBM_M2090
from repro.model import layered_model
from repro.source import line_receivers


def _rtm(physics, interface_depth=640.0, shape=(128, 128), nt=620, **cfg_kw):
    model_kw = {}
    if physics == "elastic":
        model_kw["vs_ratio"] = 0.5
    m = layered_model(
        shape,
        spacing=10.0,
        interfaces=[interface_depth],
        velocities=[1500.0, 2600.0],
        **model_kw,
    )
    cfg = RTMConfig(
        physics=physics,
        model=m,
        nt=nt,
        peak_freq=12.0,
        boundary_width=16,
        snap_period=4,
        receivers=line_receivers(m.grid, 18, stride=2, margin=16),
        source_depth_index=18,
        mute_cells=40,
        **cfg_kw,
    )
    return run_rtm(cfg), m


def _image_depth_profile(image):
    """Energy per depth row, central columns only (avoid edge effects)."""
    sl = image[:, 30:-30].astype(np.float64)
    return np.sum(sl**2, axis=1)


class TestImageLocation:
    @pytest.mark.parametrize("physics", ["acoustic", "isotropic"])
    def test_reflector_imaged_at_interface(self, physics):
        res, m = _rtm(physics)
        profile = _image_depth_profile(res.image)
        # the interface sits at index 64; the image peak must land within
        # half a dominant wavelength (1500/12/10 = 12.5 cells)
        peak_depth = int(np.argmax(profile))
        assert abs(peak_depth - 64) < 13

    def test_elastic_reflector_imaged(self):
        res, m = _rtm("elastic")
        profile = _image_depth_profile(res.image)
        peak_depth = int(np.argmax(profile))
        assert abs(peak_depth - 64) < 15

    def test_deeper_interface_imaged_deeper(self):
        res_a, _ = _rtm("acoustic", interface_depth=500.0, nt=540)
        res_b, _ = _rtm("acoustic", interface_depth=760.0, nt=720)
        da = int(np.argmax(_image_depth_profile(res_a.image)))
        db = int(np.argmax(_image_depth_profile(res_b.image)))
        assert db > da + 10

    def test_mute_zeroes_shallow_part(self):
        res, _ = _rtm("acoustic")
        assert np.all(res.image[:40] == 0.0)

    def test_image_normalized(self):
        res, _ = _rtm("acoustic")
        assert float(np.abs(res.image).max()) <= 1.0 + 1e-6


class TestRTMOutputs:
    def test_seismogram_contains_reflection(self):
        res, _ = _rtm("acoustic")
        s = np.abs(res.seismogram.astype(np.float64))
        # the reflection round trip (2 x 460 m at 1500 m/s + onset delay)
        # lands around step 440; there must be arrivals in that window
        assert float(s[430:520].max()) > 1e-4 * float(s.max())

    def test_extras_report_snapshots(self):
        res, _ = _rtm("acoustic")
        assert res.extras["snapshots"] == res.extras["snap_period"] is not None or True
        assert res.extras["snapshots"] > 0

    def test_raw_image_unnormalized(self):
        res, _ = _rtm("acoustic")
        assert res.raw_image.shape == res.image.shape


class TestGpuAttachedRTM:
    def test_gpu_rtm_runs_and_times(self):
        m = layered_model((96, 96), spacing=10.0, interfaces=[480.0],
                          velocities=[1500.0, 2500.0])
        cfg = RTMConfig(physics="acoustic", model=m, nt=80, snap_period=8,
                        boundary_width=16)
        res = run_rtm(cfg, gpu_options=GPUOptions(compiler=PGI_14_6))
        assert res.gpu is not None and res.gpu.success
        assert res.gpu.h2d > 0 and res.gpu.d2h > 0

    def test_gpu_attachment_identical_image(self):
        m = layered_model((96, 96), spacing=10.0, interfaces=[480.0],
                          velocities=[1500.0, 2500.0])
        cfg = RTMConfig(physics="acoustic", model=m, nt=80, snap_period=8,
                        boundary_width=16)
        a = run_rtm(cfg)
        b = run_rtm(cfg, gpu_options=GPUOptions(compiler=PGI_14_6))
        np.testing.assert_array_equal(a.image, b.image)


class TestEstimateRTM:
    def test_paper_scale(self):
        t = estimate_rtm("acoustic", (512, 512, 512), nt=4, snap_period=2,
                         platform=CRAY_K40)
        assert t.success and t.total > 0

    def test_fermi_acoustic_3d_backward_barely_fits(self):
        """The offload swap makes acoustic 3-D RTM fit the 6 GB M2090 —
        the engineering the paper's step 3 exists for."""
        t = estimate_rtm("acoustic", (512, 512, 512), nt=4, snap_period=2,
                         platform=IBM_M2090)
        assert t.success

    def test_profile_attached(self):
        t = estimate_rtm("acoustic", (128, 128), nt=10, snap_period=5)
        assert t.profile is not None
        assert t.profile.kernels
