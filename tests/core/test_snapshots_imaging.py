import numpy as np
import pytest

from repro.core import SnapshotStore, default_snap_period
from repro.core.imaging import (
    cross_correlation_update,
    illumination_update,
    laplacian_filter,
    mute_shallow,
    normalize_image,
)
from repro.utils.errors import ConfigurationError


class TestSnapPeriod:
    def test_finer_dt_longer_period(self):
        assert default_snap_period(0.0005, 10.0) > default_snap_period(0.002, 10.0)

    def test_higher_frequency_shorter_period(self):
        assert default_snap_period(0.001, 30.0) <= default_snap_period(0.001, 10.0)

    def test_at_least_one(self):
        assert default_snap_period(0.1, 50.0) == 1

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            default_snap_period(-0.1, 10.0)


class TestSnapshotStore:
    def test_is_snap_step(self):
        s = SnapshotStore(snap_period=5)
        assert [n for n in range(12) if s.is_snap_step(n)] == [4, 9]

    def test_save_load_roundtrip(self, rng):
        s = SnapshotStore(3)
        f = rng.standard_normal((16, 16)).astype(np.float32)
        s.save(2, f)
        np.testing.assert_array_equal(s.load(2), f)

    def test_save_copies(self, rng):
        s = SnapshotStore(3)
        f = rng.standard_normal((8, 8)).astype(np.float32)
        s.save(0, f)
        f[:] = 0
        assert float(np.abs(s.load(0)).max()) > 0

    def test_decimation(self, rng):
        s = SnapshotStore(3, decimate=4)
        f = rng.standard_normal((16, 16)).astype(np.float32)
        s.save(0, f)
        assert s.load(0).shape == (4, 4)
        np.testing.assert_array_equal(s.load(0), f[::4, ::4])

    def test_missing_step_raises(self):
        with pytest.raises(ConfigurationError):
            SnapshotStore(3).load(7)

    def test_frames_in_time_order(self, rng):
        s = SnapshotStore(1)
        for n in (4, 0, 2):
            s.save(n, np.full((4, 4), float(n), dtype=np.float32))
        assert s.steps == [0, 2, 4]
        assert [float(f[0, 0]) for f in s.frames()] == [0.0, 2.0, 4.0]

    def test_nbytes_and_clear(self, rng):
        s = SnapshotStore(1)
        s.save(0, np.zeros((10, 10), dtype=np.float32))
        assert s.nbytes() == 400
        s.clear()
        assert s.count == 0

    def test_invalid_period(self):
        with pytest.raises(ConfigurationError):
            SnapshotStore(0)


class TestImagingCondition:
    def test_cross_correlation_accumulates(self):
        img = np.zeros((4, 4), dtype=np.float32)
        s = np.full((4, 4), 2.0, dtype=np.float32)
        r = np.full((4, 4), 3.0, dtype=np.float32)
        cross_correlation_update(img, s, r)
        cross_correlation_update(img, s, r)
        np.testing.assert_allclose(img, 12.0)

    def test_anticorrelated_fields_negative(self):
        img = np.zeros((4, 4), dtype=np.float32)
        s = np.ones((4, 4), dtype=np.float32)
        cross_correlation_update(img, s, -s)
        assert np.all(img < 0)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            cross_correlation_update(
                np.zeros((4, 4), np.float32),
                np.zeros((4, 4), np.float32),
                np.zeros((5, 5), np.float32),
            )

    def test_illumination_is_energy(self):
        il = np.zeros((4, 4), dtype=np.float32)
        s = np.full((4, 4), -3.0, dtype=np.float32)
        illumination_update(il, s)
        np.testing.assert_allclose(il, 9.0)


class TestImagePostprocessing:
    def test_normalize_unit_peak(self, rng):
        img = rng.standard_normal((16, 16)).astype(np.float32) * 7.0
        out = normalize_image(img)
        assert float(np.abs(out).max()) == pytest.approx(1.0, rel=1e-5)

    def test_normalize_with_illumination_compensates(self):
        img = np.array([[1.0, 4.0]], dtype=np.float32)
        illum = np.array([[1.0, 4.0]], dtype=np.float32)
        out = normalize_image(img, illum)
        # bright (well-illuminated) region is divided down
        assert out[0, 0] == pytest.approx(out[0, 1], rel=0.05)

    def test_normalize_zero_image(self):
        out = normalize_image(np.zeros((4, 4), dtype=np.float32))
        np.testing.assert_array_equal(out, 0.0)

    def test_mute_shallow(self):
        img = np.ones((10, 10), dtype=np.float32)
        out = mute_shallow(img, 3)
        assert np.all(out[:3] == 0)
        assert np.all(out[3:] == 1)
        assert np.all(img == 1)  # original untouched

    def test_mute_invalid(self):
        with pytest.raises(ConfigurationError):
            mute_shallow(np.ones((4, 4), dtype=np.float32), -1)

    def test_laplacian_filter_zeroes_constant(self):
        img = np.full((20, 20), 5.0, dtype=np.float32)
        out = laplacian_filter(img, (10.0, 10.0))
        np.testing.assert_allclose(out[2:-2, 2:-2], 0.0, atol=1e-5)
