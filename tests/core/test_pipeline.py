"""The Figure-4 offload pipeline: phases, data movement, failure gates."""

import pytest

from repro.acc import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompileFlags, Runtime
from repro.core import GPUOptions, OffloadPipeline
from repro.core.pipeline import run_pipeline_modeling, run_pipeline_rtm
from repro.gpusim import Device, K40, M2090
from repro.utils.errors import ConfigurationError


def make_pipeline(physics="acoustic", shape=(128, 128), spec=K40,
                  persona=PGI_14_6, **opt_kw):
    options = GPUOptions(compiler=persona, flags=CompileFlags(maxregcount=64), **opt_kw)
    rt = Runtime(Device(spec), compiler=persona, flags=options.flags)
    return OffloadPipeline(rt, physics, shape, nreceivers=16, options=options)


class TestPhaseSequencing:
    def test_forward_before_allocate_rejected(self):
        p = make_pipeline()
        with pytest.raises(ConfigurationError):
            p.forward_step()

    def test_backward_before_swap_rejected(self):
        p = make_pipeline()
        p.allocate_forward()
        with pytest.raises(ConfigurationError):
            p.backward_step()

    def test_double_allocate_rejected(self):
        p = make_pipeline()
        p.allocate_forward()
        with pytest.raises(ConfigurationError):
            p.allocate_forward()

    def test_full_cycle_leaves_clean_device(self):
        p = make_pipeline()
        p.allocate_forward()
        p.forward_step()
        p.snapshot_to_host()
        p.swap_to_backward()
        p.load_forward_snapshot()
        p.imaging_step()
        p.backward_step()
        p.finalize(with_image=True)
        p.rt.shutdown_check()  # no present-table leaks
        assert p.rt.device.memory.used == 0


class TestDataMovement:
    def test_allocate_forward_copies_inventory(self):
        p = make_pipeline()
        p.allocate_forward()
        assert p.rt.device.times.h2d > 0
        assert p.rt.present_bytes() == sum(p.inventory.values())

    def test_swap_drops_forward_wavefields_keeps_primary(self):
        p = make_pipeline()
        p.allocate_forward()
        p.swap_to_backward()
        assert p.rt.is_present("wf:p")  # the forward wavefield is kept
        assert not p.rt.is_present("wf:qx")
        assert p.rt.is_present("bwd:p")
        assert p.rt.is_present("img:image")

    def test_materials_persist_across_phases(self):
        p = make_pipeline()
        p.allocate_forward()
        p.swap_to_backward()
        assert p.rt.is_present("mat:kappa")

    def test_snapshot_decimation_moves_fewer_bytes(self):
        # large enough that bandwidth (not per-transfer latency) dominates
        p1 = make_pipeline(shape=(512, 512))
        p1.allocate_forward()
        p1.snapshot_to_host(decimate=1)
        full = p1.rt.device.times.d2h
        p2 = make_pipeline(shape=(512, 512))
        p2.allocate_forward()
        p2.snapshot_to_host(decimate=4)
        dec = p2.rt.device.times.d2h
        assert dec < full / 4

    def test_isotropic_backward_host_updates(self):
        """Paper Section 6.2: the isotropic RTM keeps host and device
        copies consistent every backward step."""
        p = make_pipeline(physics="isotropic")
        p.allocate_forward()
        p.swap_to_backward()
        d2h0, h2d0 = p.rt.device.times.d2h, p.rt.device.times.h2d
        p.backward_step()
        assert p.rt.device.times.d2h > d2h0
        assert p.rt.device.times.h2d > h2d0

    def test_acoustic_backward_no_per_step_updates(self):
        p = make_pipeline(physics="acoustic")
        p.allocate_forward()
        p.swap_to_backward()
        d2h0 = p.rt.device.times.d2h
        p.backward_step()
        assert p.rt.device.times.d2h == d2h0


class TestReceiverInjectionLowering:
    def test_cray_inlines_single_kernel(self):
        p = make_pipeline(persona=CRAY_8_2_6)
        assert len(p.receiver_workloads) == 1
        assert p.receiver_workloads[0].points == 16

    def test_pgi_one_launch_per_receiver(self):
        p = make_pipeline(persona=PGI_14_6)
        assert len(p.receiver_workloads) == 16

    def test_pgi_backward_launch_overhead_hurts(self):
        """#receivers x #timesteps kernel launches under PGI (the paper's
        RTM complaint) cost more than CRAY's inlined kernel."""
        def backward_cost(persona):
            p = make_pipeline(persona=persona, shape=(64, 64))
            p.allocate_forward()
            p.swap_to_backward()
            t0 = p.rt.device.elapsed
            for _ in range(20):
                p.backward_step()
            p.rt.wait()
            return p.rt.device.elapsed - t0

        assert backward_cost(PGI_14_6) > backward_cost(CRAY_8_2_6)


class TestBackwardKernelChoice:
    def test_reuse_uses_forward_kernels(self):
        p = make_pipeline(reuse_forward_kernel=True)
        assert p.backward_workloads is p.forward_workloads

    def test_original_marks_uncoalesced(self):
        p = make_pipeline(reuse_forward_kernel=False)
        assert all(not w.inner_contiguous for w in p.backward_workloads)

    def test_transpose_fix_adds_copies(self):
        p = make_pipeline(reuse_forward_kernel=False, transpose_fix=True)
        assert len(p.backward_transpose) == 2

    def test_isotropic_always_shares_kernel(self):
        """'The isotropic kernel used in both phases was the same'."""
        p = make_pipeline(physics="isotropic", reuse_forward_kernel=False)
        assert p.backward_workloads is p.forward_workloads


class TestEstimateRunners:
    def test_modeling_run_times(self):
        p = make_pipeline()
        t = run_pipeline_modeling(p, nt=20, snap_period=5)
        assert t.success
        assert t.total > 0
        assert t.kernel > 0
        assert t.kernel <= t.total

    def test_rtm_run_times(self):
        p = make_pipeline()
        t = run_pipeline_rtm(p, nt=20, snap_period=5)
        assert t.success
        assert t.h2d > 0 and t.d2h > 0

    def test_oom_reported_not_raised(self):
        p = make_pipeline(physics="elastic", shape=(448, 448, 448), spec=M2090)
        t = run_pipeline_modeling(p, nt=1, snap_period=1)
        assert not t.success
        assert t.failure == "oom"

    def test_cray_elastic3d_rtm_compiler_failure(self):
        """Table 4's CRAY-compiler 'x' cell."""
        p = make_pipeline(physics="elastic", shape=(64, 64, 64), persona=CRAY_8_2_6)
        t = run_pipeline_rtm(p, nt=1, snap_period=1)
        assert not t.success
        assert t.failure == "compiler"

    def test_image_on_cpu_moves_more_data(self):
        """Figure 14 vs 15: host imaging pulls both wavefields per snap."""
        def d2h(image_on_gpu):
            p = make_pipeline(image_on_gpu=image_on_gpu)
            t = run_pipeline_rtm(p, nt=20, snap_period=5)
            return t.d2h

        assert d2h(False) > d2h(True)
