import pytest
from hypothesis import given, settings, strategies as st

from repro.core import checkpointed_rtm_cost, plan_checkpoints
from repro.utils.errors import ConfigurationError


class TestPlan:
    def test_full_budget_stores_everything(self):
        plan = plan_checkpoints(nt=100, snap_period=10, budget=10)
        assert plan.stored == 10
        assert plan.recompute_steps == 0
        assert plan.storage_fraction == 1.0

    def test_half_budget_recomputes(self):
        plan = plan_checkpoints(nt=100, snap_period=10, budget=5)
        assert plan.stored == 5
        assert plan.recompute_steps > 0
        assert 0 < plan.storage_fraction < 1

    def test_first_state_always_stored(self):
        plan = plan_checkpoints(nt=200, snap_period=10, budget=3)
        assert 0 in plan.stored_indices

    def test_minimal_budget(self):
        plan = plan_checkpoints(nt=100, snap_period=10, budget=1)
        assert plan.stored_indices == (0,)
        # every other state recomputed from the start: sum_{k=1..9} 10k
        assert plan.recompute_steps == sum(10 * k for k in range(1, 10))

    def test_recompute_monotone_in_budget(self):
        costs = [
            plan_checkpoints(300, 10, b).recompute_steps for b in (1, 3, 6, 15, 30)
        ]
        assert costs == sorted(costs, reverse=True)
        assert costs[-1] == 0

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            plan_checkpoints(0, 10, 3)
        with pytest.raises(ConfigurationError):
            plan_checkpoints(100, 10, 0)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=10, max_value=2000),
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=1, max_value=64),
    )
    def test_invariants(self, nt, snap_period, budget):
        plan = plan_checkpoints(nt, snap_period, budget)
        nsnaps = nt // snap_period
        assert plan.stored <= min(budget, max(nsnaps, 0)) or nsnaps == 0
        assert plan.recompute_steps >= 0
        assert all(0 <= i < max(nsnaps, 1) for i in plan.stored_indices)
        if plan.stored == nsnaps:
            assert plan.recompute_steps == 0


class TestCost:
    def test_full_budget_matches_baseline_compute(self):
        c = checkpointed_rtm_cost(
            forward_step_seconds=0.01, nt=100, snap_period=10, budget=10,
            field_bytes=4_000_000,
        )
        assert c.slowdown == pytest.approx(1.0)
        assert c.storage_bytes == 10 * 4_000_000

    def test_tight_budget_trades_storage_for_compute(self):
        full = checkpointed_rtm_cost(0.01, 1000, 10, budget=100, field_bytes=10**6)
        tight = checkpointed_rtm_cost(0.01, 1000, 10, budget=10, field_bytes=10**6)
        assert tight.storage_bytes < 0.2 * full.storage_bytes
        assert tight.checkpointed_seconds > full.checkpointed_seconds

    def test_transfer_savings_can_pay_for_recompute(self):
        """When moving a state is expensive relative to a step (the slow
        PCIe/interconnect regime), a modest budget can even win overall."""
        c = checkpointed_rtm_cost(
            forward_step_seconds=0.001, nt=200, snap_period=10, budget=10,
            field_bytes=10**6, transfer_seconds_per_state=0.05,
        )
        assert c.slowdown < 1.0

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            checkpointed_rtm_cost(-1.0, 100, 10, 5, 100)
