import numpy as np
import pytest

from repro.core.inventory import (
    device_resident_bytes,
    field_inventory,
    primary_wavefield,
    wavefield_names,
)
from repro.model import constant_model
from repro.propagators import make_propagator
from repro.utils.errors import ConfigurationError


class TestInventoryStructure:
    def test_isotropic_fields(self):
        inv = field_inventory("isotropic", (64, 64))
        assert "wf:u" in inv and "wf:u_prev" in inv
        assert "mat:vp2dt2" in inv
        assert sum(1 for k in inv if k.startswith("pml:")) == 4

    def test_acoustic_2d_vs_3d(self):
        inv2 = field_inventory("acoustic", (64, 64))
        inv3 = field_inventory("acoustic", (64, 64, 64))
        assert "wf:qy" not in inv2
        assert "wf:qy" in inv3

    def test_elastic_3d_field_count(self):
        inv = field_inventory("elastic", (64, 64, 64))
        assert sum(1 for k in inv if k.startswith("wf:")) == 9
        assert sum(1 for k in inv if k.startswith("mat:")) == 8
        assert sum(1 for k in inv if k.startswith("pml:")) == 22

    def test_unknown_physics(self):
        with pytest.raises(ConfigurationError):
            field_inventory("anisotropic", (64, 64))

    def test_pml_memory_is_slab_restricted(self):
        """Device psi footprint covers only the absorbing frame."""
        inv = field_inventory("acoustic", (256, 256), boundary_width=16)
        full = 256 * 256 * 4
        psi = inv["pml:psi_dqz"]
        assert 0 < psi < 0.3 * full


class TestWavefieldConsistency:
    """Inventory wavefield bytes must match what a real propagator holds."""

    @pytest.mark.parametrize("physics", ["isotropic", "acoustic", "elastic"])
    def test_matches_propagator(self, physics):
        m = constant_model((48, 48), vp=2000.0, vs_ratio=0.5)
        p = make_propagator(physics, m, boundary_width=8)
        inv = field_inventory(physics, (48, 48), boundary_width=8)
        wf_bytes = sum(v for k, v in inv.items() if k.startswith("wf:"))
        assert wf_bytes == p.wavefield_bytes()

    def test_primary_wavefield_names(self):
        assert primary_wavefield("isotropic") == "wf:u"
        assert primary_wavefield("acoustic") == "wf:p"
        assert primary_wavefield("elastic") == "wf:szz"

    def test_wavefield_names_prefixed(self):
        for n in wavefield_names("elastic", (32, 32)):
            assert n.startswith("wf:")


class TestCapacityGates:
    def test_elastic_3d_oom_gate(self):
        """The central memory fact of the paper's x-cells."""
        from repro.gpusim.specs import K40, M2090

        need = device_resident_bytes("elastic", (448, 448, 448))
        assert need > M2090.memory_bytes * 0.9
        assert need < K40.memory_bytes * 0.97

    def test_acoustic_3d_fits_fermi(self):
        from repro.gpusim.specs import M2090

        need = device_resident_bytes("acoustic", (512, 512, 512))
        assert need < M2090.memory_bytes * 0.97

    def test_bytes_scale_with_grid(self):
        small = device_resident_bytes("acoustic", (64, 64))
        big = device_resident_bytes("acoustic", (128, 128))
        # full fields scale exactly 4x; the slab-restricted psi terms scale
        # sub-linearly (the frame fraction shrinks), so the total is a bit
        # under 4x
        assert 3.0 < big / small < 4.2
