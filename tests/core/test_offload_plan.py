import pytest

from repro.core import plan_offload
from repro.core.inventory import device_resident_bytes
from repro.gpusim import K40, M2090
from repro.utils.errors import ConfigurationError


class TestStrategySelection:
    def test_isotropic_3d_resident_on_fermi(self):
        plan = plan_offload("isotropic", (512, 512, 512), M2090)
        assert plan.strategy == "resident"

    def test_acoustic_3d_needs_swap_on_fermi(self):
        """The configuration that motivated the paper's Figure-4 pipeline:
        forward fits, forward+backward does not, the swap closes the gap."""
        plan = plan_offload("acoustic", (512, 512, 512), M2090)
        assert plan.strategy == "swap"

    def test_acoustic_3d_resident_on_kepler(self):
        plan = plan_offload("acoustic", (512, 512, 512), K40)
        assert plan.strategy == "resident"

    def test_elastic_3d_multi_gpu_on_fermi(self):
        plan = plan_offload("elastic", (448, 448, 448), M2090)
        assert plan.strategy == "multi-gpu"
        assert plan.min_gpus >= 2

    def test_modeling_only_relaxes_requirements(self):
        rtm = plan_offload("acoustic", (512, 512, 512), M2090, rtm=True)
        fwd = plan_offload("acoustic", (512, 512, 512), M2090, rtm=False)
        assert rtm.strategy == "swap"
        assert fwd.strategy == "resident"

    def test_small_cases_always_resident(self):
        for phys in ("isotropic", "acoustic", "elastic", "vti"):
            assert plan_offload(phys, (128, 128), M2090).strategy == "resident"

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            plan_offload("acoustic", (128,), K40)


class TestAccounting:
    def test_forward_bytes_match_inventory(self):
        plan = plan_offload("elastic", (256, 256, 256), K40)
        assert plan.forward_bytes == device_resident_bytes("elastic", (256, 256, 256))

    def test_report_mentions_strategy(self):
        plan = plan_offload("acoustic", (512, 512, 512), M2090)
        text = plan.report()
        assert "swap" in text
        assert "Tesla M2090" in text

    def test_multi_gpu_report(self):
        plan = plan_offload("elastic", (448, 448, 448), M2090)
        assert "cards" in plan.report()

    def test_peak_bytes(self):
        plan = plan_offload("isotropic", (256, 256), K40)
        assert plan.peak_bytes == plan.forward_bytes + plan.backward_extra_bytes


class TestConsistencyWithPipeline:
    def test_planner_agrees_with_estimator(self):
        """Cases the planner calls single-card-feasible must run in the
        pipeline; multi-gpu cases must OOM there."""
        from repro.core import estimate_rtm
        from repro.core.platform import IBM_M2090

        plan = plan_offload("acoustic", (512, 512, 512), M2090)
        assert plan.strategy in ("resident", "swap")
        t = estimate_rtm("acoustic", (512, 512, 512), 2, 2, platform=IBM_M2090)
        assert t.success

        plan2 = plan_offload("elastic", (448, 448, 448), M2090)
        assert plan2.strategy == "multi-gpu"
        t2 = estimate_rtm("elastic", (448, 448, 448), 2, 2, platform=IBM_M2090)
        assert not t2.success
