"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.model import constant_model, layered_model


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture
def small_model_2d():
    """A small homogeneous 2-D model with density and shear velocity —
    usable by every propagator."""
    return constant_model((64, 64), spacing=10.0, vp=2000.0, vs_ratio=0.5)


@pytest.fixture
def small_model_3d():
    return constant_model((40, 40, 40), spacing=10.0, vp=2000.0, vs_ratio=0.5)


@pytest.fixture
def layered_2d():
    return layered_model(
        (128, 128),
        spacing=10.0,
        interfaces=[640.0],
        velocities=[1500.0, 2600.0],
        vs_ratio=0.5,
    )
