import numpy as np
import pytest

from repro.model import (
    constant_model,
    fault_model,
    layered_model,
    lens_model,
    random_media_model,
)
from repro.utils.errors import ConfigurationError


class TestConstantModel:
    def test_homogeneous(self):
        m = constant_model((20, 20), vp=2500.0)
        assert m.vp_min == m.vp_max == 2500.0

    def test_density_via_gardner(self):
        m = constant_model((10, 10), vp=2000.0)
        expected = 310.0 * 2000.0**0.25
        np.testing.assert_allclose(m.rho, expected, rtol=1e-5)

    def test_no_density(self):
        assert constant_model((10, 10), with_density=False).rho is None

    def test_vs_ratio(self):
        m = constant_model((10, 10), vp=2000.0, vs_ratio=0.5)
        np.testing.assert_allclose(m.vs, 1000.0, rtol=1e-6)

    def test_bad_vs_ratio(self):
        with pytest.raises(ConfigurationError):
            constant_model((10, 10), vs_ratio=1.5)

    def test_3d(self):
        assert constant_model((8, 9, 10)).ndim == 3


class TestLayeredModel:
    def test_two_layers(self):
        m = layered_model(
            (100, 50), spacing=10.0, interfaces=[500.0], velocities=[1500.0, 3000.0]
        )
        assert float(m.vp[0, 0]) == 1500.0
        assert float(m.vp[-1, 0]) == 3000.0
        # interface at depth 500 m = index 50
        assert float(m.vp[49, 0]) == 1500.0
        assert float(m.vp[50, 0]) == 3000.0

    def test_lateral_invariance(self):
        m = layered_model((40, 30), interfaces=[150.0], velocities=[1500.0, 2500.0])
        assert np.all(m.vp == m.vp[:, :1])

    def test_three_layers(self):
        m = layered_model(
            (100, 20),
            spacing=10.0,
            interfaces=[300.0, 600.0],
            velocities=[1500.0, 2200.0, 3500.0],
        )
        profile = m.vp[:, 0]
        assert len(np.unique(profile)) == 3

    def test_velocity_count_mismatch(self):
        with pytest.raises(ConfigurationError):
            layered_model((50, 50), interfaces=[100.0], velocities=[1500.0])

    def test_unsorted_interfaces(self):
        with pytest.raises(ConfigurationError):
            layered_model(
                (50, 50), interfaces=[400.0, 100.0], velocities=[1, 2, 3]
            )

    def test_3d(self):
        m = layered_model((20, 10, 10), interfaces=[100.0], velocities=[1500.0, 2500.0])
        assert m.ndim == 3
        assert np.all(m.vp[0] == np.float32(1500.0))


class TestLensModel:
    def test_peak_at_center(self):
        m = lens_model((41, 41), background_vp=2000.0, lens_vp=2600.0)
        assert float(m.vp[20, 20]) == pytest.approx(2600.0, rel=1e-3)

    def test_background_at_edges(self):
        m = lens_model((41, 41), background_vp=2000.0, lens_vp=2600.0, radius_fraction=0.1)
        assert float(m.vp[0, 0]) == pytest.approx(2000.0, rel=1e-3)

    def test_smooth(self):
        m = lens_model((41, 41))
        grad = np.abs(np.diff(m.vp, axis=0)).max()
        assert grad < 100.0  # no jumps

    def test_bad_radius(self):
        with pytest.raises(ConfigurationError):
            lens_model((20, 20), radius_fraction=0.9)


class TestFaultModel:
    def test_throw_offsets_interface(self):
        m = fault_model(
            (120, 80), spacing=10.0, interface_depth=400.0, throw=200.0,
            velocities=(1800.0, 2800.0),
        )
        left = m.vp[:, 10]
        right = m.vp[:, 70]
        i_left = int(np.argmax(left > 2000.0))
        i_right = int(np.argmax(right > 2000.0))
        assert (i_right - i_left) == pytest.approx(20, abs=1)

    def test_3d(self):
        m = fault_model((30, 30, 10), interface_depth=100.0, throw=50.0)
        assert m.ndim == 3


class TestRandomMedia:
    def test_reproducible(self):
        a = random_media_model((32, 32), seed=42)
        b = random_media_model((32, 32), seed=42)
        np.testing.assert_array_equal(a.vp, b.vp)

    def test_different_seeds_differ(self):
        a = random_media_model((32, 32), seed=1)
        b = random_media_model((32, 32), seed=2)
        assert not np.array_equal(a.vp, b.vp)

    def test_fluctuation_scale(self):
        m = random_media_model((64, 64), background_vp=2500.0, fluctuation=0.05)
        rel = np.std(m.vp.astype(np.float64)) / 2500.0
        assert 0.01 < rel < 0.10

    def test_zero_fluctuation_constant(self):
        m = random_media_model((32, 32), background_vp=2000.0, fluctuation=0.0)
        np.testing.assert_allclose(m.vp, 2000.0, rtol=1e-5)

    def test_bad_fluctuation(self):
        with pytest.raises(ConfigurationError):
            random_media_model((16, 16), fluctuation=0.9)
