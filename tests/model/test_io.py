import numpy as np
import pytest

from repro.model import constant_model, layered_model, load_model, save_model
from repro.utils.errors import ConfigurationError


class TestRoundtrip:
    def test_full_model(self, tmp_path):
        m = layered_model(
            (32, 32), spacing=5.0, interfaces=[80.0], velocities=[1500.0, 2500.0],
            vs_ratio=0.5,
        )
        path = tmp_path / "model.npz"
        save_model(m, path)
        m2 = load_model(path)
        assert m2.grid.shape == m.grid.shape
        assert m2.grid.spacing == m.grid.spacing
        np.testing.assert_array_equal(m2.vp, m.vp)
        np.testing.assert_array_equal(m2.rho, m.rho)
        np.testing.assert_array_equal(m2.vs, m.vs)

    def test_vp_only_model(self, tmp_path):
        m = constant_model((16, 16), with_density=False)
        path = tmp_path / "m.npz"
        save_model(m, path)
        m2 = load_model(path)
        assert m2.rho is None
        assert m2.vs is None

    def test_name_preserved(self, tmp_path):
        m = constant_model((16, 16))
        path = tmp_path / "m.npz"
        save_model(m, path)
        assert load_model(path).name == "constant"

    def test_3d(self, tmp_path):
        m = constant_model((8, 9, 10))
        path = tmp_path / "m3.npz"
        save_model(m, path)
        assert load_model(path).grid.shape == (8, 9, 10)

    def test_not_a_model_archive(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, foo=np.zeros(3))
        with pytest.raises(ConfigurationError):
            load_model(path)
