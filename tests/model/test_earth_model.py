import numpy as np
import pytest

from repro.grid import Grid
from repro.model import EarthModel
from repro.utils.errors import ConfigurationError


def _grid():
    return Grid((16, 16), spacing=10.0)


class TestValidation:
    def test_minimal(self):
        m = EarthModel(_grid(), np.full((16, 16), 1500.0, dtype=np.float32))
        assert m.ndim == 2
        assert m.vp_min == m.vp_max == 1500.0

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), np.full((8, 8), 1500.0, dtype=np.float32))

    def test_nonpositive_vp_rejected(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vp[0, 0] = 0.0
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), vp)

    def test_nan_rejected(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vp[3, 3] = np.nan
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), vp)

    def test_negative_rho_rejected(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        rho = np.full((16, 16), -1.0, dtype=np.float32)
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), vp, rho=rho)

    def test_vs_above_vp_rejected(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vs = np.full((16, 16), 1600.0, dtype=np.float32)
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), vp, vs=vs)

    def test_negative_vs_rejected(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vs = np.full((16, 16), -10.0, dtype=np.float32)
        with pytest.raises(ConfigurationError):
            EarthModel(_grid(), vp, vs=vs)

    def test_zero_vs_allowed_fluid(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vs = np.zeros((16, 16), dtype=np.float32)
        m = EarthModel(_grid(), vp, vs=vs)
        assert float(m.shear_velocity().max()) == 0.0


class TestDerivedQuantities:
    def test_default_density(self):
        m = EarthModel(_grid(), np.full((16, 16), 1500.0, dtype=np.float32))
        np.testing.assert_allclose(m.density(), 1000.0)

    def test_shear_velocity_missing_raises(self):
        m = EarthModel(_grid(), np.full((16, 16), 1500.0, dtype=np.float32))
        with pytest.raises(ConfigurationError):
            m.shear_velocity()

    def test_lame_parameters_values(self):
        vp = np.full((16, 16), 2000.0, dtype=np.float32)
        vs = np.full((16, 16), 1000.0, dtype=np.float32)
        rho = np.full((16, 16), 2500.0, dtype=np.float32)
        m = EarthModel(_grid(), vp, rho=rho, vs=vs)
        lam, mu = m.lame_parameters()
        assert float(mu[0, 0]) == pytest.approx(2500.0 * 1000.0**2, rel=1e-5)
        assert float(lam[0, 0]) == pytest.approx(
            2500.0 * (2000.0**2 - 2 * 1000.0**2), rel=1e-5
        )

    def test_lame_consistency_vp(self):
        """vp^2 == (lam + 2 mu) / rho must hold after the roundtrip."""
        vp = np.full((16, 16), 2000.0, dtype=np.float32)
        vs = np.full((16, 16), 800.0, dtype=np.float32)
        rho = np.full((16, 16), 2200.0, dtype=np.float32)
        m = EarthModel(_grid(), vp, rho=rho, vs=vs)
        lam, mu = m.lame_parameters()
        vp_back = np.sqrt((lam.astype(np.float64) + 2 * mu) / rho)
        np.testing.assert_allclose(vp_back, 2000.0, rtol=1e-5)

    def test_max_wave_speed(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        vp[5, 5] = 3000.0
        assert EarthModel(_grid(), vp).max_wave_speed() == 3000.0

    def test_memory_bytes(self):
        vp = np.full((16, 16), 1500.0, dtype=np.float32)
        m = EarthModel(_grid(), vp, rho=vp.copy(), vs=(vp * 0.5))
        assert m.memory_bytes() == 3 * 16 * 16 * 4
