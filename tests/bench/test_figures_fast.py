"""Fast structural checks of the figure generators (full regeneration with
shape assertions lives in benchmarks/)."""

import pytest

from repro.bench import figures


class TestFigureStructures:
    def test_fig12_structure(self):
        data = figures.fig12_fission()
        assert set(data) == {"Tesla M2090", "Tesla K40"}
        for series in data.values():
            assert set(series) == {"fused", "fissioned"}
            assert all(v > 0 for v in series.values())

    def test_fig13_structure(self):
        data = figures.fig13_coalescing()
        for series in data.values():
            assert set(series) == {"original", "transposed"}

    def test_fig10_structure(self):
        pts = figures.fig10_register_sweep()
        assert [p.maxregcount for p in pts] == [16, 32, 64, 128, 255]

    def test_fig11_structure(self):
        data = figures.fig11_async()
        assert set(data) == {"CRAY", "PGI"}
        assert -5.0 < data["PGI"] < data["CRAY"] < 1.0

    def test_backward_reuse_structure(self):
        data = figures.backward_reuse_comparison("acoustic", 2)
        assert set(data) == {"original", "reuse_modeling_kernel"}
        assert data["original"] > data["reuse_modeling_kernel"]
