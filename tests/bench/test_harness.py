"""Benchmark-harness machinery tests (fast paths only; the full
table/figure regeneration lives in benchmarks/)."""

import pytest

from repro.bench import (
    ALL_CASES,
    Cell,
    Row,
    case_name,
    format_speedup_table,
    modeling_case,
    paper_data,
)
from repro.bench.table3 import make_cell, tuned_options
from repro.core.config import GpuTimes
from repro.core.platform import CRAY_K40, IBM_M2090
from repro.core.reference import ReferenceTimes
from repro.utils.errors import ConfigurationError


class TestCases:
    def test_twelve_seismic_cases(self):
        """3 physics x 2 dims (x modeling/RTM at the harness level)."""
        assert len(ALL_CASES) == 6
        assert {c.physics for c in ALL_CASES} == {"isotropic", "acoustic", "elastic"}

    def test_case_lookup(self):
        c = modeling_case("acoustic", 3)
        assert c.shape == (512, 512, 512)
        assert case_name("elastic", 2) == "ELASTIC 2D"

    def test_unknown_case(self):
        with pytest.raises(ConfigurationError):
            modeling_case("acoustic", 4)

    def test_elastic_3d_sized_for_the_oom_gate(self):
        from repro.core.inventory import device_resident_bytes
        from repro.gpusim.specs import K40, M2090

        c = modeling_case("elastic", 3)
        need = device_resident_bytes(c.physics, c.shape)
        assert need > M2090.memory_bytes * 0.9
        assert need < K40.memory_bytes


class TestTunedOptions:
    def test_fission_only_on_fermi_acoustic_3d(self):
        from repro.acc import PGI_14_3, PGI_14_6

        c3 = modeling_case("acoustic", 3)
        assert tuned_options(PGI_14_3, c3, IBM_M2090).loop_fission
        assert not tuned_options(PGI_14_6, c3, CRAY_K40).loop_fission
        c2 = modeling_case("acoustic", 2)
        assert not tuned_options(PGI_14_3, c2, IBM_M2090).loop_fission

    def test_maxregcount_64(self):
        from repro.acc import PGI_14_6

        opts = tuned_options(PGI_14_6, modeling_case("isotropic", 2), CRAY_K40)
        assert opts.flags.maxregcount == 64
        assert opts.flags.pin


class TestCells:
    def test_make_cell_success(self):
        gpu = GpuTimes(total=10.0, kernel=8.0, success=True)
        cpu = ReferenceTimes(total=20.0, kernel=16.0)
        c = make_cell(gpu, cpu)
        assert c.total_speedup == pytest.approx(2.0)
        assert c.kernel_speedup == pytest.approx(2.0)

    def test_make_cell_failure(self):
        c = make_cell(GpuTimes(success=False, failure="oom"), ReferenceTimes(1, 1))
        assert c.failed
        assert c.fmt(c.gpu_total) == "x"

    def test_format_table_renders(self):
        rows = [Row("TEST 2D", Cell(1.0, 2.0, 0.5, 3.0), Cell(), Cell(failure="oom"))]
        text = format_speedup_table("Table T", rows)
        assert "TEST 2D" in text
        assert "x" in text


class TestPaperData:
    def test_tables_cover_all_cases(self):
        for case in ALL_CASES:
            assert case.name in paper_data.TABLE3
            assert case.name in paper_data.TABLE4

    def test_known_x_cells(self):
        assert paper_data.TABLE3["ELASTIC 3D"]["ibm_pgi"] is None
        assert paper_data.TABLE4["ELASTIC 3D"]["cray_cray"] is None
        assert paper_data.TABLE4["ELASTIC 3D"]["ibm_pgi"] is None

    def test_headline_claims_present(self):
        assert paper_data.CLAIMS["best_maxregcount"] == 64
        assert paper_data.CLAIMS["fission_speedup_fermi"] == 3.0
