import json

import pytest

from repro.bench import (
    achieved_bandwidth_sweep,
    grid_size_sweep,
    snapshot_period_sweep,
)
from repro.utils.errors import ConfigurationError


class TestGridSizeSweep:
    def test_speedup_grows_with_size(self):
        """The paper's utilization observation, generalised: bigger domains
        use the GPU better, so the speedup curve rises."""
        pts = grid_size_sweep(sizes=(128, 512, 2048), nt=50)
        speedups = [p.speedup for p in pts]
        assert speedups == sorted(speedups)

    def test_oom_sizes_skipped(self):
        # elastic 3-D at large edges exceeds the K40 -> points drop out
        pts = grid_size_sweep(
            physics="elastic", sizes=(64, 128, 640), ndim=3, nt=5,
        )
        assert all(p.x <= 512 for p in pts)

    def test_bad_ndim(self):
        with pytest.raises(ConfigurationError):
            grid_size_sweep(ndim=4)


class TestBandwidthSweep:
    def test_bandwidth_saturates(self):
        bw = achieved_bandwidth_sweep(sizes=(64, 512, 4096))
        assert bw[64] < bw[512] <= bw[4096] * 1.05
        # saturation: the last doubling buys little
        assert bw[4096] < 1.3 * bw[512]

    def test_3d_main_kernel_beats_2d_utilization(self):
        bw2 = achieved_bandwidth_sweep(sizes=(1024,), ndim=2)[1024]
        bw3 = achieved_bandwidth_sweep(sizes=(256,), ndim=3)[256]
        assert bw3 > bw2


class TestSnapshotPeriodSweep:
    def test_more_snapshots_cost_more(self):
        res = snapshot_period_sweep(shape=(512, 512), periods=(2, 10, 50), nt=100)
        assert res[2] > res[10] > res[50]


class TestJsonExport:
    def test_results_json_roundtrip(self, tmp_path):
        from repro.bench.experiments import results_json

        data = results_json()
        # must be JSON-serialisable and carry the headline fields
        text = json.dumps(data)
        back = json.loads(text)
        assert back["fig10_best_maxregcount"] == 64
        assert back["table3_modeling"]["ELASTIC 3D"]["ibm_pgi"] == {"failed": "oom"}
        assert back["fig12_fission_speedup"]["Tesla M2090"] > 2.0
        assert abs(back["fig12_fission_speedup"]["Tesla K40"] - 1.0) < 0.4
