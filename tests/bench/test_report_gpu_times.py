"""format_gpu_times: the per-category GPU time breakdown."""

from repro.bench.report import format_gpu_times
from repro.core.config import GpuTimes


class TestFormatGpuTimes:
    def test_categories_rendered_sorted(self):
        gpu = GpuTimes(total=1.0, kernel=0.6, h2d=0.2, d2h=0.1, alloc=0.05,
                       launches=42,
                       categories={"kernel": 0.6, "h2d": 0.2, "d2h": 0.1,
                                   "alloc": 0.05})
        text = format_gpu_times("Breakdown", gpu)
        assert text.index("kernel") < text.index("h2d") < text.index("d2h")
        assert "42 kernel launches" in text
        assert "other" in text  # 0.05 s unattributed remainder

    def test_flat_field_fallback(self):
        gpu = GpuTimes(total=1.0, kernel=0.5, h2d=0.3, d2h=0.2, launches=1)
        text = format_gpu_times("Breakdown", gpu)
        assert "kernel" in text and "h2d" in text

    def test_failure_rendered(self):
        gpu = GpuTimes(success=False, failure="oom")
        assert "FAILED (oom)" in format_gpu_times("Breakdown", gpu)
