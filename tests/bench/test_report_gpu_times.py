"""format_gpu_times: the per-category GPU time breakdown."""

from repro.bench.report import format_gpu_times
from repro.core.config import GpuTimes


class TestFormatGpuTimes:
    def test_categories_rendered_sorted(self):
        gpu = GpuTimes(total=1.0, kernel=0.6, h2d=0.2, d2h=0.1, alloc=0.05,
                       launches=42,
                       categories={"kernel": 0.6, "h2d": 0.2, "d2h": 0.1,
                                   "alloc": 0.05})
        text = format_gpu_times("Breakdown", gpu)
        assert text.index("kernel") < text.index("h2d") < text.index("d2h")
        assert "42 kernel launches" in text
        assert "other" in text  # 0.05 s unattributed remainder

    def test_flat_field_fallback(self):
        gpu = GpuTimes(total=1.0, kernel=0.5, h2d=0.3, d2h=0.2, launches=1)
        text = format_gpu_times("Breakdown", gpu)
        assert "kernel" in text and "h2d" in text

    def test_failure_rendered(self):
        gpu = GpuTimes(success=False, failure="oom")
        assert "FAILED (oom)" in format_gpu_times("Breakdown", gpu)

    def test_share_column_sums_to_total(self):
        gpu = GpuTimes(total=2.0, kernel=1.0, h2d=0.6, d2h=0.4, launches=3,
                       categories={"kernel": 1.0, "h2d": 0.6, "d2h": 0.4})
        text = format_gpu_times("Breakdown", gpu)
        assert "( 50.0%)" in text and "( 30.0%)" in text and "( 20.0%)" in text

    def test_stable_column_width_across_category_sets(self):
        from repro.bench.report import GPU_TIMES_NAME_WIDTH

        short = GpuTimes(total=1.0, kernel=1.0, launches=1,
                         categories={"h2d": 1.0})
        long = GpuTimes(total=1.0, kernel=1.0, launches=1,
                        categories={"kernel": 0.5, "halo": 0.3, "alloc": 0.2})
        for gpu in (short, long):
            lines = format_gpu_times("T", gpu).splitlines()[2:]
            # every value column starts at the same offset in every run
            assert all(
                line.index(" : ") == 2 + GPU_TIMES_NAME_WIDTH
                for line in lines
            )
