import pytest
from hypothesis import given, strategies as st

from repro.gpusim import K40, M2090, occupancy
from repro.utils.errors import ConfigurationError


class TestOccupancyRules:
    def test_low_registers_full_occupancy_k40(self):
        """32 regs x 256 threads on Kepler: thread-limited, 100 %."""
        r = occupancy(K40, 32, 256)
        assert r.occupancy == pytest.approx(1.0)
        assert r.limited_by in ("threads", "blocks")

    def test_64_regs_k40_half_occupancy(self):
        """The paper's maxregcount:64 with 128-thread blocks on the K40
        yields 50 % occupancy (8 blocks x 4 warps of 64 slots)."""
        r = occupancy(K40, 64, 128)
        assert r.occupancy == pytest.approx(0.5)
        assert r.limited_by == "registers"

    def test_63_regs_m2090(self):
        """Fermi at its 63-register ceiling with 128-thread blocks: the
        32768-register file holds 4 blocks -> 16 of 48 warps."""
        r = occupancy(M2090, 63, 128)
        assert r.active_blocks_per_sm == 4
        assert r.occupancy == pytest.approx(16 / 48)

    def test_more_registers_never_increase_occupancy(self):
        prev = 1.1
        for regs in (16, 32, 64, 128, 255):
            occ = occupancy(K40, regs, 128).occupancy
            assert occ <= prev + 1e-9
            prev = occ

    def test_block_limit_binds_for_tiny_blocks(self):
        r = occupancy(K40, 16, 32)
        # 16 blocks/SM max x 32 threads = 512 of 2048 threads
        assert r.active_blocks_per_sm == K40.max_blocks_per_sm
        assert r.occupancy == pytest.approx(512 / 2048)

    def test_register_limit_validated(self):
        with pytest.raises(ConfigurationError):
            occupancy(M2090, 100, 128)  # Fermi max is 63
        occupancy(K40, 100, 128)  # fine on Kepler

    def test_threads_validated(self):
        with pytest.raises(ConfigurationError):
            occupancy(K40, 32, 2048)

    @given(
        st.sampled_from([M2090, K40]),
        st.integers(min_value=16, max_value=63),
        st.sampled_from([32, 64, 128, 256, 512, 1024]),
    )
    def test_invariants(self, spec, regs, tpb):
        r = occupancy(spec, regs, tpb)
        assert 0.0 <= r.occupancy <= 1.0
        assert r.active_warps_per_sm <= spec.max_warps_per_sm
        # the register file is never oversubscribed
        warps_per_block = -(-tpb // 32)
        regs_per_warp = -(-regs * 32 // 256) * 256
        assert r.active_blocks_per_sm * warps_per_block * regs_per_warp <= spec.regs_per_sm
