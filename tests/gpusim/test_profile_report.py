"""ProfileReport rendering: sorted shares, zero-compute guard, JSON view."""

import json

from repro.gpusim.profiler import KernelLine, ProfileReport


def _report(kernels, compute=1.0):
    return ProfileReport(
        kernels=kernels,
        memcpy_h2d_seconds=0.25,
        memcpy_d2h_seconds=0.125,
        memcpy_h2d_bytes=1 << 20,
        memcpy_d2h_bytes=1 << 19,
        compute_seconds=compute,
        span_seconds=2.0,
    )


class TestToText:
    def test_lines_sorted_by_share_descending(self):
        rep = _report([
            KernelLine("small", 5, 0.1, 0.1),
            KernelLine("big", 2, 0.9, 0.9),
        ])
        text = rep.to_text()
        assert text.index("big") < text.index("small")
        assert "90.0%" in text

    def test_zero_compute_guard(self):
        rep = _report([KernelLine("k", 1, 0.0, 0.0)], compute=0.0)
        text = rep.to_text()
        assert "0.0%" in text  # no ZeroDivisionError, share shown as zero

    def test_no_kernels_guard(self):
        text = _report([]).to_text()
        assert "(no kernels launched)" in text


class TestToJson:
    def test_roundtrips_and_sorted(self):
        rep = _report([
            KernelLine("small", 5, 0.1, 0.1),
            KernelLine("big", 2, 0.9, 0.9),
        ])
        data = json.loads(json.dumps(rep.to_json()))
        assert [k["name"] for k in data["kernels"]] == ["big", "small"]
        assert data["memcpy_h2d_bytes"] == 1 << 20
        assert data["compute_seconds"] == 1.0
        assert data["span_seconds"] == 2.0
