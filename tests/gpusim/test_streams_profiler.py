import pytest

from repro.gpusim import Profiler, ProfileEvent, StreamPool
from repro.utils.errors import ConfigurationError
from repro.utils.timer import SimClock


class TestStreamPool:
    def test_sync_kernel_blocks_host(self):
        clock = SimClock()
        pool = StreamPool(clock)
        start, end = pool.run_kernel_sync(1e-3, 1e-5)
        assert clock.now == pytest.approx(end)
        assert end - start == pytest.approx(1e-3)

    def test_sync_kernels_serialize(self):
        clock = SimClock()
        pool = StreamPool(clock)
        pool.run_kernel_sync(1e-3, 1e-5)
        start2, _ = pool.run_kernel_sync(1e-3, 1e-5)
        assert start2 >= 1e-3

    def test_async_kernel_frees_host(self):
        clock = SimClock()
        pool = StreamPool(clock)
        _, end = pool.run_kernel_async(1, 1e-3)
        assert clock.now < end  # host moved only by the enqueue cost

    def test_async_kernels_pack_without_gaps(self):
        """The Figure 11 mechanism: queued kernels run back-to-back on the
        compute engine while sync launches insert host gaps."""
        overhead, dur, n = 5e-5, 1e-4, 10
        clock_s = SimClock()
        pool_s = StreamPool(clock_s)
        for _ in range(n):
            pool_s.run_kernel_sync(dur, overhead)
        clock_a = SimClock()
        pool_a = StreamPool(clock_a)
        for i in range(n):
            pool_a.run_kernel_async(1 + i % 3, dur)
        pool_a.wait()
        assert clock_a.now < clock_s.now
        assert clock_s.now == pytest.approx(n * (dur + overhead))

    def test_kernels_do_not_overlap_on_compute(self):
        """No SM sharing: two async kernels on different queues still
        serialize their bodies."""
        clock = SimClock()
        pool = StreamPool(clock)
        _, end1 = pool.run_kernel_async(1, 1e-3)
        start2, _ = pool.run_kernel_async(2, 1e-3)
        assert start2 >= end1

    def test_copy_engine_independent_of_compute(self):
        clock = SimClock()
        pool = StreamPool(clock)
        _, kend = pool.run_kernel_async(1, 1e-3)
        cstart, _ = pool.run_copy_async(2, 1e-4)
        assert cstart < kend  # copy overlaps the kernel

    def test_same_queue_ordering(self):
        clock = SimClock()
        pool = StreamPool(clock)
        _, end1 = pool.run_copy_async(1, 1e-4)
        start2, _ = pool.run_copy_async(1, 1e-4)
        assert start2 >= end1

    def test_wait_specific_queue(self):
        clock = SimClock()
        pool = StreamPool(clock)
        _, end1 = pool.run_kernel_async(1, 1e-3)
        pool.wait(1)
        assert clock.now == pytest.approx(end1)

    def test_wait_all(self):
        clock = SimClock()
        pool = StreamPool(clock)
        pool.run_kernel_async(1, 1e-3)
        pool.run_copy_async(2, 5e-3)
        pool.wait()
        assert pool.idle()

    def test_invalid_queue(self):
        pool = StreamPool(SimClock(), max_queues=4)
        with pytest.raises(ConfigurationError):
            pool.run_kernel_async(9, 1e-3)


class TestProfiler:
    def _fill(self, prof):
        prof.record(ProfileEvent("kernel", "main", 0.0, 3.0))
        prof.record(ProfileEvent("kernel", "main", 3.0, 6.0))
        prof.record(ProfileEvent("kernel", "inject", 6.0, 7.0))
        prof.record(ProfileEvent("h2d", "copyin", 7.0, 8.0, nbytes=1000))
        prof.record(ProfileEvent("d2h", "copyout", 8.0, 8.5, nbytes=500))

    def test_shares(self):
        prof = Profiler()
        self._fill(prof)
        rep = prof.report()
        assert rep.kernel_share("main") == pytest.approx(6 / 7)
        assert rep.kernel_share("inject") == pytest.approx(1 / 7)

    def test_kernels_sorted_by_time(self):
        prof = Profiler()
        self._fill(prof)
        rep = prof.report()
        assert rep.kernels[0].name == "main"
        assert rep.kernels[0].count == 2

    def test_memcpy_accounting(self):
        prof = Profiler()
        self._fill(prof)
        rep = prof.report()
        assert rep.memcpy_h2d_bytes == 1000
        assert rep.memcpy_d2h_bytes == 500
        assert rep.memcpy_h2d_seconds == pytest.approx(1.0)

    def test_span(self):
        prof = Profiler()
        self._fill(prof)
        assert prof.report().span_seconds == pytest.approx(8.5)

    def test_to_text_contains_shares(self):
        prof = Profiler()
        self._fill(prof)
        text = prof.report().to_text()
        assert "main" in text
        assert "%" in text

    def test_empty_report(self):
        rep = Profiler().report()
        assert rep.kernels == []
        assert rep.span_seconds == 0.0

    def test_clear(self):
        prof = Profiler()
        self._fill(prof)
        prof.clear()
        assert prof.report().compute_seconds == 0.0

    def test_disabled(self):
        prof = Profiler(enabled=False)
        self._fill(prof)
        assert prof.events == []
