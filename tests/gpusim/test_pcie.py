import pytest
from hypothesis import given, strategies as st

from repro.gpusim import PCIeModel
from repro.gpusim.pcie import PCIE_GEN2_X16, PCIE_GEN3_X16
from repro.utils.errors import ConfigurationError
from repro.utils.units import GB, MB


class TestTransferTime:
    def test_pinned_faster_than_pageable(self):
        m = PCIeModel()
        assert m.transfer_time(100 * MB, pinned=True) < m.transfer_time(100 * MB, pinned=False)

    def test_latency_floor(self):
        m = PCIeModel(latency=1e-5)
        assert m.transfer_time(0) == pytest.approx(1e-5)

    def test_chunked_pays_per_chunk_latency(self):
        """Non-contiguous ghost faces: many small DMA chunks cost more."""
        m = PCIeModel()
        whole = m.transfer_time(10 * MB, chunks=1)
        strided = m.transfer_time(10 * MB, chunks=512)
        assert strided > whole
        assert strided - whole == pytest.approx(511 * m.latency)

    def test_partial_cheaper_than_full(self):
        """The paper's ghost-node optimization: partial transfers win even
        when strided, for realistic face sizes."""
        m = PCIE_GEN2_X16
        full = m.transfer_time(512 * MB, pinned=True)
        ghost = m.transfer_time(16 * MB, pinned=True, chunks=256)
        assert ghost < full

    def test_gen3_faster_than_gen2(self):
        assert PCIE_GEN3_X16.transfer_time(GB, pinned=True) < PCIE_GEN2_X16.transfer_time(GB, pinned=True)

    def test_invalid(self):
        m = PCIeModel()
        with pytest.raises(ConfigurationError):
            m.transfer_time(-1)
        with pytest.raises(ConfigurationError):
            m.transfer_time(10, chunks=0)


class TestTransferStats:
    def test_effective_bandwidth_below_peak(self):
        m = PCIeModel()
        st_ = m.transfer(100 * MB, "h2d", pinned=True)
        assert st_.effective_bandwidth < m.pinned_bandwidth
        assert st_.effective_bandwidth > 0.5 * m.pinned_bandwidth

    def test_direction_validated(self):
        with pytest.raises(ConfigurationError):
            PCIeModel().transfer(10, "sideways")

    @given(st.integers(min_value=1, max_value=10**9))
    def test_monotone_in_bytes(self, n):
        m = PCIeModel()
        assert m.transfer_time(n + 1) >= m.transfer_time(n)
