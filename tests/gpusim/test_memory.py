import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import DeviceMemory
from repro.utils.errors import DeviceError, DeviceOutOfMemoryError
from repro.utils.units import GiB, MiB


class TestAllocator:
    def test_allocate_and_release(self):
        mem = DeviceMemory(1 * GiB)
        mem.allocate("a", 100 * MiB)
        assert mem.holds("a")
        assert mem.used >= 100 * MiB
        mem.release("a")
        assert not mem.holds("a")
        assert mem.used == 0

    def test_reserved_fraction(self):
        mem = DeviceMemory(1000, reserved_fraction=0.1)
        assert mem.usable == 900

    def test_oom_raises_with_details(self):
        mem = DeviceMemory(100 * MiB)
        with pytest.raises(DeviceOutOfMemoryError) as e:
            mem.allocate("big", 200 * MiB)
        assert e.value.requested >= 200 * MiB
        assert e.value.capacity == mem.usable

    def test_duplicate_name_rejected(self):
        mem = DeviceMemory(1 * GiB)
        mem.allocate("a", 10)
        with pytest.raises(DeviceError):
            mem.allocate("a", 10)

    def test_release_unknown_rejected(self):
        with pytest.raises(DeviceError):
            DeviceMemory(1 * GiB).release("ghost")

    def test_negative_size_rejected(self):
        with pytest.raises(DeviceError):
            DeviceMemory(1 * GiB).allocate("x", -5)

    def test_alignment(self):
        mem = DeviceMemory(1 * GiB)
        a = mem.allocate("x", 1)
        assert a.aligned_bytes == 256

    def test_would_fit(self):
        mem = DeviceMemory(1 * MiB, reserved_fraction=0.0)
        assert mem.would_fit(512 * 1024)
        mem.allocate("half", 512 * 1024)
        assert not mem.would_fit(600 * 1024)

    def test_peak_tracking(self):
        mem = DeviceMemory(1 * GiB)
        mem.allocate("a", 100 * MiB)
        mem.allocate("b", 200 * MiB)
        mem.release("a")
        assert mem.peak_bytes >= 300 * MiB

    def test_release_all(self):
        mem = DeviceMemory(1 * GiB)
        for i in range(5):
            mem.allocate(f"f{i}", MiB)
        mem.release_all()
        assert mem.used == 0

    def test_elastic_3d_exceeds_m2090(self):
        """The paper's Table 3/4 'x': the elastic 3-D working set does not
        fit a 6 GB Fermi but fits a 12 GB Kepler."""
        from repro.core.inventory import device_resident_bytes
        from repro.gpusim.specs import K40, M2090

        need = device_resident_bytes("elastic", (448, 448, 448))
        assert need > DeviceMemory(M2090.memory_bytes).usable
        assert need < DeviceMemory(K40.memory_bytes).usable

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=1, max_value=50 * MiB), min_size=1, max_size=20))
    def test_accounting_invariant(self, sizes):
        """used == sum of aligned live allocations, free + used == usable."""
        mem = DeviceMemory(2 * GiB)
        live = {}
        for i, s in enumerate(sizes):
            try:
                a = mem.allocate(f"b{i}", s)
                live[f"b{i}"] = a.aligned_bytes
            except DeviceOutOfMemoryError:
                break
        assert mem.used == sum(live.values())
        assert mem.free + mem.used == mem.usable
