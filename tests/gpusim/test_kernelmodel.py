import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpusim import (
    K40,
    M2090,
    LaunchConfig,
    estimate_kernel_time,
    estimate_register_demand,
)
from repro.gpusim.specs import CUDA_5_0, CUDA_5_5
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError


def wl(**kw):
    base = dict(
        name="k",
        points=256**3,
        flops_per_point=40.0,
        reads_per_point=20.0,
        writes_per_point=2.0,
        loop_dims=(256, 256, 256),
        address_streams=6,
        has_branches=False,
        inner_contiguous=True,
    )
    base.update(kw)
    return KernelWorkload(**base)


class TestRegisterDemand:
    def test_grows_with_streams(self):
        assert estimate_register_demand(wl(address_streams=12)) > estimate_register_demand(wl(address_streams=4))

    def test_grows_with_dimensionality(self):
        w2 = wl(loop_dims=(512, 512))
        w3 = wl(loop_dims=(64, 64, 64))
        assert estimate_register_demand(w3) > estimate_register_demand(w2)

    def test_floor(self):
        tiny = wl(address_streams=1, flops_per_point=0.0, loop_dims=(8,))
        assert estimate_register_demand(tiny) >= 16


class TestRooflineBehaviour:
    def test_time_scales_with_points(self):
        a = estimate_kernel_time(K40, wl(points=10**6))
        b = estimate_kernel_time(K40, wl(points=4 * 10**6))
        assert b.seconds == pytest.approx(4 * a.seconds, rel=0.3)

    def test_memory_bound_for_stencils(self):
        assert estimate_kernel_time(K40, wl()).limited_by == "memory"

    def test_kepler_faster_than_fermi(self):
        assert (
            estimate_kernel_time(K40, wl()).seconds
            < estimate_kernel_time(M2090, wl()).seconds
        )

    def test_achieved_bandwidth_below_peak(self):
        e = estimate_kernel_time(K40, wl())
        assert 0 < e.achieved_bandwidth < K40.mem_bandwidth_bytes

    def test_uncoalesced_penalty(self):
        coal = estimate_kernel_time(K40, wl())
        unco = estimate_kernel_time(K40, wl(inner_contiguous=False))
        assert unco.seconds / coal.seconds == pytest.approx(4.0, rel=0.15)

    def test_ungridified_penalty(self):
        good = estimate_kernel_time(K40, wl())
        bad = estimate_kernel_time(K40, wl(), LaunchConfig(gridified=False))
        assert bad.seconds > 2.0 * good.seconds

    def test_divergence_cuda50_vs_cuda55(self):
        """Branchy bodies hurt badly under CUDA 5.0 and barely under the
        predicating CUDA 5.5 backend — the Figure 6 vs 7 contrast."""
        branchy = wl(has_branches=True)
        plain = wl()
        slow_50 = estimate_kernel_time(K40, branchy, toolkit=CUDA_5_0).seconds
        base_50 = estimate_kernel_time(K40, plain, toolkit=CUDA_5_0).seconds
        slow_55 = estimate_kernel_time(K40, branchy, toolkit=CUDA_5_5).seconds
        base_55 = estimate_kernel_time(K40, plain, toolkit=CUDA_5_5).seconds
        assert slow_50 / base_50 > 1.8
        assert slow_55 / base_55 < 1.3

    def test_multi_axis_gather_penalty(self):
        one = estimate_kernel_time(K40, wl(gather_axes=1))
        three = estimate_kernel_time(K40, wl(gather_axes=3))
        assert three.seconds > one.seconds

    def test_2d_utilization_derate(self):
        """Same total work as a 2-D nest runs a bit slower (paper: ~70 %
        2-D vs ~90 % 3-D utilization)."""
        w3 = wl()
        w2 = wl(loop_dims=(4096, 4096), points=4096 * 4096)
        e3 = estimate_kernel_time(K40, w3)
        e2 = estimate_kernel_time(K40, w2)
        per_pt_3 = e3.seconds / w3.points
        per_pt_2 = e2.seconds / w2.points
        assert per_pt_2 > per_pt_3


class TestRegisterEffects:
    def test_architectural_spill_on_fermi_only(self):
        """Demand beyond 63 registers spills on Fermi, not on Kepler —
        the Figure 12 fission mechanism."""
        heavy = wl(address_streams=10, flops_per_point=70.0)
        ef = estimate_kernel_time(M2090, heavy)
        ek = estimate_kernel_time(K40, heavy)
        assert ef.spilled_regs > 0
        assert ek.spilled_regs == 0

    def test_flag_clamp_absorbed_by_rematerialization(self):
        """maxregcount slightly below demand costs almost nothing (the
        Figure 10 shape at 64 registers)."""
        heavy = wl(address_streams=10, flops_per_point=70.0)
        e = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=64))
        assert e.spilled_regs == 0

    def test_deep_clamp_spills(self):
        heavy = wl(address_streams=10, flops_per_point=70.0)
        e = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=16))
        assert e.spilled_regs > 0

    def test_spill_traffic_slows_kernel(self):
        heavy = wl(address_streams=10, flops_per_point=70.0)
        ok = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=64)).seconds
        spilled = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=16)).seconds
        assert spilled > 1.5 * ok

    def test_occupancy_drop_at_high_regcount(self):
        heavy = wl(address_streams=10, flops_per_point=70.0)
        at64 = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=64))
        at255 = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=255))
        assert at255.occupancy < at64.occupancy

    def test_maxregcount_floor_validated(self):
        with pytest.raises(ConfigurationError):
            LaunchConfig(maxregcount=8)


class TestDeviceFloor:
    def test_tiny_kernel_floor(self):
        tiny = wl(points=1, loop_dims=(1,))
        e = estimate_kernel_time(K40, tiny)
        assert e.seconds >= 7e-6


class TestPropertyInvariants:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=1, max_value=10**7),
        st.floats(min_value=1.0, max_value=500.0),
        st.integers(min_value=2, max_value=16),
        st.sampled_from([M2090, K40]),
    )
    def test_time_positive_and_finite(self, points, flops, streams, spec):
        w = wl(points=points, flops_per_point=flops, address_streams=streams,
               loop_dims=(points,))
        e = estimate_kernel_time(spec, w)
        assert e.seconds > 0
        assert e.dram_bytes > 0
        assert 0 <= e.occupancy <= 1

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=16, max_value=255))
    def test_monotone_spills(self, reg):
        """Lower maxregcount never reduces spilled registers."""
        heavy = wl(address_streams=12, flops_per_point=90.0)
        e_low = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=max(16, reg // 2)))
        e_high = estimate_kernel_time(K40, heavy, LaunchConfig(maxregcount=reg))
        assert e_low.spilled_regs >= e_high.spilled_regs
