import pytest

from repro.gpusim import Device, K40, M2090, LaunchConfig
from repro.gpusim.pcie import PCIE_GEN3_X16
from repro.propagators.base import KernelWorkload
from repro.utils.errors import DeviceError, DeviceOutOfMemoryError
from repro.utils.units import GiB, MB


def wl(points=10**6, streams=6):
    return KernelWorkload(
        name="k",
        points=points,
        flops_per_point=30.0,
        reads_per_point=12.0,
        writes_per_point=2.0,
        loop_dims=(points,),
        address_streams=streams,
    )


class TestMemoryOps:
    def test_allocate_charges_time(self):
        d = Device(K40)
        d.allocate("a", 100 * MB)
        assert d.elapsed > 0
        assert d.memory.holds("a")

    def test_oom_propagates(self):
        d = Device(M2090)
        with pytest.raises(DeviceOutOfMemoryError):
            d.allocate("big", 7 * GiB)

    def test_release(self):
        d = Device(K40)
        d.allocate("a", MB)
        d.release("a")
        assert not d.memory.holds("a")


class TestTransfers:
    def test_h2d_time_accounted(self):
        d = Device(K40, pcie=PCIE_GEN3_X16, pinned_host=True)
        t = d.h2d(110 * MB)
        assert t == pytest.approx(110 * MB / PCIE_GEN3_X16.pinned_bandwidth, rel=0.1)
        assert d.times.h2d == pytest.approx(t)

    def test_pinned_vs_pageable(self):
        slow = Device(K40, pinned_host=False).h2d(100 * MB)
        fast = Device(K40, pinned_host=True).h2d(100 * MB)
        assert fast < slow

    def test_profiler_records_transfers(self):
        d = Device(K40)
        d.h2d(MB, name="copyin:u")
        d.d2h(MB, name="copyout:u")
        rep = d.profiler.report()
        assert rep.memcpy_h2d_bytes == MB
        assert rep.memcpy_d2h_bytes == MB


class TestKernelLaunch:
    def test_launch_advances_clock(self):
        d = Device(K40)
        est = d.launch(wl())
        assert d.elapsed >= est.seconds
        assert d.kernel_launches == 1

    def test_sync_launch_includes_host_admin(self):
        """The present-table lookup cost scales with kernel arguments."""
        few = Device(K40)
        few.launch(wl(points=1, streams=2))
        many = Device(K40)
        many.launch(wl(points=1, streams=14))
        assert many.elapsed > few.elapsed

    def test_async_launch_defers(self):
        d = Device(K40)
        est = d.launch(wl(), LaunchConfig(async_queue=1))
        assert d.elapsed < est.seconds  # host not blocked
        d.wait()
        assert d.elapsed >= est.seconds

    def test_expensive_async_enqueue(self):
        """PGI's async path: a large enqueue factor makes queued launches
        cost more host time than the kernels they hide."""
        tiny = wl(points=64)
        cheap = Device(K40)
        costly = Device(K40)
        for _ in range(50):
            cheap.launch(tiny, LaunchConfig(async_queue=1), enqueue_cost_factor=1.0)
            costly.launch(tiny, LaunchConfig(async_queue=1), enqueue_cost_factor=8.0)
        cheap.wait()
        costly.wait()
        assert costly.elapsed > cheap.elapsed

    def test_profile_kernel_names(self):
        d = Device(K40)
        d.launch(wl())
        rep = d.profiler.report()
        assert rep.kernels[0].name == "k"


class TestReset:
    def test_reset_clears_everything(self):
        d = Device(K40)
        d.allocate("a", MB)
        d.launch(wl())
        d.reset()
        assert d.elapsed == 0.0
        assert d.kernel_launches == 0
        assert not d.memory.holds("a")
        assert d.profiler.events == []
