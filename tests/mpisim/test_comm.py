import numpy as np
import pytest

from repro.mpisim import RankComm, SimMPI
from repro.utils.errors import CommunicationError


class TestPointToPoint:
    def test_isend_irecv_roundtrip(self):
        mpi = SimMPI(2)
        c0, c1 = mpi.comm(0), mpi.comm(1)
        data = np.arange(10, dtype=np.float32)
        c0.isend(data, dest=1, tag=7)
        buf = np.zeros(10, dtype=np.float32)
        req = c1.irecv(buf, source=0, tag=7)
        req.wait()
        np.testing.assert_array_equal(buf, data)

    def test_send_copies_eagerly(self):
        """Mutating the send buffer after isend must not corrupt the
        message (MPI_ISEND standard-send with buffering)."""
        mpi = SimMPI(2)
        data = np.ones(4, dtype=np.float32)
        mpi.comm(0).isend(data, dest=1)
        data[:] = -1
        buf = np.zeros(4, dtype=np.float32)
        mpi.comm(1).irecv(buf, source=0).wait()
        np.testing.assert_array_equal(buf, 1.0)

    def test_tag_matching(self):
        mpi = SimMPI(2)
        mpi.comm(0).isend(np.array([1.0]), dest=1, tag=1)
        mpi.comm(0).isend(np.array([2.0]), dest=1, tag=2)
        buf = np.zeros(1)
        mpi.comm(1).irecv(buf, source=0, tag=2).wait()
        assert buf[0] == 2.0

    def test_fifo_within_tag(self):
        mpi = SimMPI(2)
        for v in (1.0, 2.0, 3.0):
            mpi.comm(0).isend(np.array([v]), dest=1, tag=0)
        got = []
        for _ in range(3):
            buf = np.zeros(1)
            mpi.comm(1).irecv(buf, source=0, tag=0).wait()
            got.append(buf[0])
        assert got == [1.0, 2.0, 3.0]

    def test_deadlock_detected(self):
        mpi = SimMPI(2)
        buf = np.zeros(1)
        req = mpi.comm(1).irecv(buf, source=0, tag=9)
        with pytest.raises(CommunicationError):
            req.wait()

    def test_size_mismatch_detected(self):
        mpi = SimMPI(2)
        mpi.comm(0).isend(np.zeros(4), dest=1)
        buf = np.zeros(8)
        with pytest.raises(CommunicationError):
            mpi.comm(1).irecv(buf, source=0).wait()

    def test_self_send_rejected(self):
        mpi = SimMPI(2)
        with pytest.raises(CommunicationError):
            mpi.comm(0).isend(np.zeros(1), dest=0)

    def test_bad_rank_rejected(self):
        mpi = SimMPI(2)
        with pytest.raises(CommunicationError):
            mpi.comm(0).isend(np.zeros(1), dest=5)
        with pytest.raises(CommunicationError):
            mpi.comm(5)


class TestWaitAnyAll:
    def test_waitany_returns_completed_index(self):
        mpi = SimMPI(3)
        mpi.comm(1).isend(np.array([5.0]), dest=0, tag=1)
        b1, b2 = np.zeros(1), np.zeros(1)
        reqs = [
            mpi.comm(0).irecv(b2, source=2, tag=2),
            mpi.comm(0).irecv(b1, source=1, tag=1),
        ]
        i = RankComm.waitany(reqs)
        assert i == 1
        assert b1[0] == 5.0

    def test_waitany_all_done_rejected(self):
        mpi = SimMPI(2)
        mpi.comm(0).isend(np.zeros(1), dest=1)
        buf = np.zeros(1)
        req = mpi.comm(1).irecv(buf, source=0)
        req.wait()
        with pytest.raises(CommunicationError):
            RankComm.waitany([req])

    def test_waitall(self):
        mpi = SimMPI(2)
        for t in range(4):
            mpi.comm(0).isend(np.array([float(t)]), dest=1, tag=t)
        bufs = [np.zeros(1) for _ in range(4)]
        reqs = [mpi.comm(1).irecv(bufs[t], source=0, tag=t) for t in range(4)]
        RankComm.waitall(reqs)
        assert [b[0] for b in bufs] == [0.0, 1.0, 2.0, 3.0]

    def test_send_requests_complete_immediately(self):
        mpi = SimMPI(2)
        req = mpi.comm(0).isend(np.zeros(1), dest=1)
        assert req.done


class TestStats:
    def test_traffic_counted(self):
        mpi = SimMPI(2)
        mpi.comm(0).isend(np.zeros(100, dtype=np.float32), dest=1)
        assert mpi.stats.messages == 1
        assert mpi.stats.bytes_sent == 400

    def test_pending_messages(self):
        mpi = SimMPI(2)
        mpi.comm(0).isend(np.zeros(1), dest=1)
        assert mpi.pending_messages() == 1

    def test_allreduce_sum(self):
        mpi = SimMPI(3)
        store = {}
        for r in range(3):
            mpi.comm(r).allreduce_sum(float(r + 1), store)
        assert store["sum"] == 6.0
        assert store["count"] == 3
