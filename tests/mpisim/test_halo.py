"""Halo exchange correctness — including the load-bearing equivalence test:
a decomposed propagation with exchange must match the single-domain run."""

import numpy as np
import pytest

from repro.grid import CartesianDecomposition, Grid
from repro.mpisim import HaloExchanger, SimMPI, exchange_halos_once
from repro.stencil import laplacian
from repro.utils.errors import CommunicationError


class TestExchangeBasics:
    def test_ghosts_match_neighbours(self, rng):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 1), halo=4)
        field = rng.standard_normal(g.shape).astype(np.float32)
        locals_ = [sub.scatter(field) for sub in d]
        # corrupt the exchangeable ghost slabs
        for sub, loc in zip(d, locals_):
            for axis, side in sub.halo.exchange_faces():
                loc[d.recv_slices(axis, side, loc.shape)] = -999.0
        exchange_halos_once(d, locals_)
        for sub, loc in zip(d, locals_):
            np.testing.assert_array_equal(loc, sub.scatter(field))

    def test_multifield_exchange(self, rng):
        g = Grid((24, 24))
        d = CartesianDecomposition(g, (2, 2), halo=3)
        mpi = SimMPI(d.nranks)
        ex = HaloExchanger(d, mpi)
        fa = rng.standard_normal(g.shape).astype(np.float32)
        fb = rng.standard_normal(g.shape).astype(np.float32)
        locals_ = [
            {"a": sub.scatter(fa), "b": sub.scatter(fb)} for sub in d
        ]
        for loc in locals_:
            for arr in loc.values():
                arr[:3, :] = -1  # corrupt a lo-z ghost (only filled if neighbour)
        ex.exchange(locals_)
        for sub, loc in zip(d, locals_):
            if sub.halo.lo[0]:
                np.testing.assert_array_equal(loc["a"], sub.scatter(fa))
                np.testing.assert_array_equal(loc["b"], sub.scatter(fb))

    def test_rank_count_mismatch(self):
        g = Grid((24, 24))
        d = CartesianDecomposition(g, (2, 2), halo=3)
        with pytest.raises(CommunicationError):
            HaloExchanger(d, SimMPI(3))

    def test_field_name_mismatch(self):
        g = Grid((24, 24))
        d = CartesianDecomposition(g, (2, 1), halo=3)
        ex = HaloExchanger(d, SimMPI(2))
        with pytest.raises(CommunicationError):
            ex.exchange([{"a": np.zeros((15, 30), np.float32)},
                         {"b": np.zeros((15, 30), np.float32)}])

    def test_bytes_per_exchange(self):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 1), halo=4)
        ex = HaloExchanger(d, SimMPI(2))
        one = ex.bytes_per_exchange(1)
        assert ex.bytes_per_exchange(3) == 3 * one
        # two faces of 4 rows x full local width (32 + 2*4 ghosts) float32
        assert one == 2 * 4 * 40 * 4


class TestDecomposedStencilEquivalence:
    def test_decomposed_laplacian_matches_global(self, rng):
        """The fundamental correctness property of the ghost-node scheme:
        stencil(decomposed + exchange) == stencil(global), bitwise on the
        owned regions."""
        g = Grid((48, 40), spacing=(7.0, 9.0))
        field = rng.standard_normal(g.shape).astype(np.float32)
        reference = laplacian(field, g.spacing)
        for dims in ((2, 1), (1, 2), (2, 2), (3, 1)):
            d = CartesianDecomposition(g, dims, halo=4)
            locals_ = [sub.scatter(field) for sub in d]
            exchange_halos_once(d, locals_)
            out = np.zeros(g.shape, dtype=np.float32)
            for sub, loc in zip(d, locals_):
                local_lap = laplacian(loc, g.spacing)
                sub.gather_into(out, local_lap)
            # interior only: the global border lacks stencil support
            np.testing.assert_array_equal(
                out[4:-4, 4:-4], reference[4:-4, 4:-4]
            )

    def test_repeated_exchange_stable(self, rng):
        """Exchanging twice must be idempotent (ghosts already correct)."""
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 2), halo=4)
        field = rng.standard_normal(g.shape).astype(np.float32)
        locals_ = [sub.scatter(field) for sub in d]
        exchange_halos_once(d, locals_)
        snapshot = [loc.copy() for loc in locals_]
        exchange_halos_once(d, locals_)
        for a, b in zip(snapshot, locals_):
            np.testing.assert_array_equal(a, b)
