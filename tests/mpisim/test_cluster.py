import pytest

from repro.mpisim import CLUSTERS, CRAY_XC30, IBM_CLUSTER, ClusterCostModel
from repro.propagators.workloads import (
    acoustic_workloads,
    elastic_workloads,
    isotropic_workloads,
)
from repro.utils.errors import ConfigurationError


class TestSpecs:
    def test_full_socket_core_counts(self):
        """Paper Table 1: 10 cores on CRAY, 8 on IBM."""
        assert CRAY_XC30.mpi_cores == 10
        assert IBM_CLUSTER.mpi_cores == 8

    def test_cray_node_faster(self):
        assert CRAY_XC30.mem_bandwidth_bytes > IBM_CLUSTER.mem_bandwidth_bytes
        assert CRAY_XC30.peak_gflops > IBM_CLUSTER.peak_gflops

    def test_snapshot_path_asymmetry(self):
        """The XC30's 'novel intercommunications technology' vs the IBM
        cluster's old interconnect."""
        assert CRAY_XC30.snapshot_bandwidth > 10 * IBM_CLUSTER.snapshot_bandwidth

    def test_registry(self):
        assert CLUSTERS["cray"] is CRAY_XC30
        assert CLUSTERS["IBM"] is IBM_CLUSTER

    def test_ibm_rtm_backward_anomaly(self):
        assert IBM_CLUSTER.backward_quality("acoustic") < 1.0
        assert IBM_CLUSTER.backward_quality("isotropic") == 1.0
        assert CRAY_XC30.backward_quality("acoustic") == 1.0


class TestKernelTime:
    def test_scales_with_points(self):
        m = ClusterCostModel(CRAY_XC30)
        w_small = isotropic_workloads((128, 128))[0]
        w_big = isotropic_workloads((512, 512))[0]
        ratio = m.kernel_time(w_big) / m.kernel_time(w_small)
        assert ratio == pytest.approx(16.0, rel=0.05)

    def test_ibm_slower_than_cray(self):
        w = acoustic_workloads((256, 256, 256))
        t_cray = ClusterCostModel(CRAY_XC30).step_time(w)
        t_ibm = ClusterCostModel(IBM_CLUSTER).step_time(w)
        assert t_ibm > t_cray

    def test_elastic_step_costs_more_than_isotropic(self):
        shape = (128, 128, 128)
        m = ClusterCostModel(CRAY_XC30)
        t_iso = m.step_time(isotropic_workloads(shape))
        t_ela = m.step_time(elastic_workloads(shape))
        assert t_ela > 3 * t_iso

    def test_high_stream_kernels_defeat_vectorization(self):
        """The elastic/staggered bodies run near-scalar on the CPU — the
        mechanism behind the paper's best GPU speedups being elastic."""
        from repro.propagators.base import KernelWorkload

        simple = KernelWorkload("iso_x", 10**6, 40.0, 10, 1, (1000, 1000), address_streams=4)
        complex_ = KernelWorkload("iso_y", 10**6, 40.0, 10, 1, (1000, 1000), address_streams=12)
        m = ClusterCostModel(CRAY_XC30)
        # same flops; the wide body must not be faster
        assert m.kernel_time(complex_) >= m.kernel_time(simple)


class TestCommunicationTerms:
    def test_halo_time_monotone(self):
        m = ClusterCostModel(CRAY_XC30)
        assert m.halo_time(10**6, 4) < m.halo_time(10**7, 4)
        with pytest.raises(ConfigurationError):
            m.halo_time(-1, 0)

    def test_snapshot_time_platform_gap(self):
        nbytes = 512 * 1024 * 1024
        t_cray = ClusterCostModel(CRAY_XC30).snapshot_time(nbytes)
        t_ibm = ClusterCostModel(IBM_CLUSTER).snapshot_time(nbytes)
        assert t_ibm > 10 * t_cray

    def test_injection_time_small(self):
        m = ClusterCostModel(CRAY_XC30)
        assert m.injection_time(1) < 1e-4
