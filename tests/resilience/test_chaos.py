"""Chaos harness: outcomes, campaign determinism, CLI contract, tracing."""

import argparse
import json

import pytest

from repro.resilience.chaos import (
    run_chaos_campaign,
    run_chaos_case,
    run_chaos_case_multigpu,
    run_chaos_command,
)
from repro.resilience.injector import FAULT_TRACK, TRACE_PROCESS
from repro.resilience.recovery import RECOVERY_TRACK
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError


def _args(**over):
    kw = dict(
        case="ac2d", seed=7, faults=None, ranks=1, mode="modeling",
        nt=8, format="text", out=None, trace=None,
    )
    kw.update(over)
    return argparse.Namespace(**kw)


class TestCase:
    def test_explicit_fault_recovers(self):
        rows = run_chaos_case(
            "ac2d", mode="modeling", nt=8, faults="pcie-transient@3x2"
        )
        assert len(rows) == 1
        o = rows[0]
        assert o.kind == "pcie-transient"
        assert o.injected == 2
        assert o.detected and o.recovered and o.equivalent and o.ok
        assert o.retries >= 1
        assert o.events  # human-readable fault labels recorded

    def test_seeded_kinds_subset(self):
        rows = run_chaos_case(
            "ac2d", mode="rtm", seed=3, nt=8, kinds=("ecc", "oom")
        )
        assert [o.kind for o in rows] == ["ecc", "oom"]
        assert all(o.ok for o in rows)
        assert any(o.restarts for o in rows)   # ecc forces a restart
        assert any(o.degraded for o in rows)   # oom forces a re-plan

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            run_chaos_case("ac2d", mode="sideways")

    def test_multigpu_message_fault_recovers(self):
        rows = run_chaos_case_multigpu(
            "ac2d", mode="modeling", ranks=2, nt=8, faults="mpi-drop@2"
        )
        assert len(rows) == 1 and rows[0].ok


class TestCampaignDeterminism:
    def test_same_seed_same_json(self):
        kw = dict(cases=("ac2d",), modes=("modeling",), seed=3, nt=8)
        a = run_chaos_campaign(**kw)
        b = run_chaos_campaign(**kw)
        assert a.to_json() == b.to_json()
        assert a.all_recovered()

    def test_seed_moves_injection_points(self):
        a = run_chaos_campaign(cases=("ac2d",), modes=("modeling",), seed=3, nt=8)
        b = run_chaos_campaign(cases=("ac2d",), modes=("modeling",), seed=4, nt=8)
        assert [o.spec for o in a.outcomes] != [o.spec for o in b.outcomes]

    def test_json_shape(self):
        report = run_chaos_campaign(
            cases=("ac2d",), modes=("modeling",), seed=3, nt=8,
            faults="ecc@5",
        )
        doc = json.loads(report.to_json())
        assert doc["summary"]["runs"] == 1
        assert doc["summary"]["unrecovered"] == 0
        assert doc["outcomes"][0]["kind"] == "ecc"


class TestCli:
    def test_recovered_run_exits_zero(self, capsys):
        rc = run_chaos_command(_args(faults="kernel-launch@9"))
        out = capsys.readouterr().out
        assert rc == 0
        assert "ALL RECOVERED" in out

    def test_json_format_and_out_file(self, tmp_path, capsys):
        path = tmp_path / "report.json"
        rc = run_chaos_command(
            _args(faults="ecc@5", format="json", out=str(path))
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert doc["summary"]["unrecovered"] == 0
        assert str(path) in capsys.readouterr().out

    def test_trace_export(self, tmp_path, capsys):
        path = tmp_path / "chaos-trace.json"
        rc = run_chaos_command(
            _args(faults="pcie-transient@3", trace=str(path))
        )
        assert rc == 0
        doc = json.loads(path.read_text())
        assert any(
            "fault:" in ev.get("name", "") for ev in doc["traceEvents"]
        )


class TestRecoverySpans:
    def test_faults_and_recovery_land_on_resilience_process(self):
        tracer = Tracer()
        run_chaos_case(
            "ac2d", mode="modeling", nt=8, faults="pcie-transient@3",
            tracer=tracer,
        )
        faults = [
            e for e in tracer.events
            if e.process == TRACE_PROCESS and e.track == FAULT_TRACK
        ]
        recovery = [
            e for e in tracer.events
            if e.process == TRACE_PROCESS and e.track == RECOVERY_TRACK
        ]
        assert faults and faults[0].name == "fault:pcie-transient"
        assert any(e.name.startswith("retry:") for e in recovery)
