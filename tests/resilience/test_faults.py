"""Fault vocabulary: specs, parsing, seeded plans."""

import pytest

from repro.resilience.faults import (
    ALL_KINDS,
    CATEGORY,
    DEVICE_KINDS,
    MPI_KINDS,
    PROTOCOL_KINDS,
    FaultPlan,
    FaultSpec,
    is_permanent,
    parse_fault_spec,
    parse_faults,
)
from repro.utils.errors import ConfigurationError


class TestSpecs:
    def test_every_kind_categorised(self):
        for kind in DEVICE_KINDS + MPI_KINDS:
            assert CATEGORY[kind] in ("transfer", "launch", "alloc", "message")

    def test_protocol_kinds_have_no_category(self):
        for kind in PROTOCOL_KINDS:
            assert CATEGORY.get(kind) is None

    def test_permanent(self):
        assert is_permanent("pcie-permanent")
        assert is_permanent("rank-dead")
        assert not is_permanent("pcie-transient")
        assert not is_permanent("oom")

    def test_spec_string_roundtrip(self):
        for spec in (
            FaultSpec("ecc"),
            FaultSpec("pcie-transient", op_index=7, count=3),
            FaultSpec("mpi-drop", op_index=2, rank=1),
            FaultSpec("kernel-launch", op_index=4, count=2, rank=0),
        ):
            assert parse_fault_spec(spec.spec_string()) == spec

    def test_parse_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("meteor-strike@3")

    def test_parse_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("pcie-transient@@")

    def test_parse_faults_list(self):
        specs = parse_faults("ecc@3, oom, mpi-dup@2:1")
        assert [s.kind for s in specs] == ["ecc", "oom", "mpi-dup"]
        assert specs[2].rank == 1


class TestSeededPlan:
    ENVELOPE = {"transfer": 40, "launch": 100, "alloc": 12, "message": 8}

    def test_deterministic(self):
        a = FaultPlan.seeded(5, DEVICE_KINDS, self.ENVELOPE)
        b = FaultPlan.seeded(5, DEVICE_KINDS, self.ENVELOPE)
        assert a == b

    def test_seed_changes_plan(self):
        a = FaultPlan.seeded(5, DEVICE_KINDS, self.ENVELOPE)
        b = FaultPlan.seeded(6, DEVICE_KINDS, self.ENVELOPE)
        assert a != b

    def test_one_spec_per_kind_inside_envelope(self):
        plan = FaultPlan.seeded(1, ALL_KINDS, self.ENVELOPE, ranks=4)
        assert [s.kind for s in plan.specs] == list(ALL_KINDS)
        for spec in plan.specs:
            cat = CATEGORY.get(spec.kind)
            if cat is not None:
                assert 1 <= spec.op_index <= self.ENVELOPE[cat]
                assert spec.rank in range(4)

    def test_single_rank_leaves_rank_unset(self):
        plan = FaultPlan.seeded(1, ("ecc",), self.ENVELOPE, ranks=1)
        assert plan.specs[0].rank is None

    def test_empty_plan_is_falsy(self):
        assert not FaultPlan()
        assert FaultPlan(specs=(FaultSpec("ecc"),))


class TestAliases:
    def test_mpi_rank_dead_alias_normalises(self):
        from repro.resilience.faults import RANK_DEAD

        (spec,) = parse_faults("mpi-rank-dead@x1")
        assert spec.kind == RANK_DEAD
        assert spec.count == 1
        assert spec.rank is None

    def test_poison_shot_alias_carries_shot_index(self):
        from repro.resilience.faults import SHOT_POISON

        spec = parse_fault_spec("poison-shot:2")
        assert spec.kind == SHOT_POISON
        assert spec.rank == 2

    def test_count_without_op_index(self):
        spec = parse_fault_spec("dead-rank@x1")
        assert spec.op_index == 1 and spec.count == 1
