"""FaultInjector: counting, firing windows, rank filters, resolution."""

import pytest

from repro.gpusim.memory import DeviceMemory
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.injector import FaultInjector
from repro.trace.tracer import Tracer
from repro.utils.errors import (
    DeviceECCError,
    DeviceLostError,
    DeviceOutOfMemoryError,
    KernelLaunchError,
    PCIeTransferError,
)


def _drive_transfers(inj, n, rank=None):
    fired = 0
    for i in range(n):
        try:
            inj.on_transfer("h2d", f"buf{i}", 1024, rank=rank)
        except PCIeTransferError:
            fired += 1
    return fired


class TestCounting:
    def test_empty_plan_counts_only(self):
        inj = FaultInjector()
        assert _drive_transfers(inj, 5) == 0
        for k in range(3):
            inj.on_kernel_launch(f"k{k}")
        inj.on_allocate("a", 256, DeviceMemory(1 << 20))
        assert inj.op_counts() == {"transfer": 5, "launch": 3, "alloc": 1}
        assert inj.events == []

    def test_per_rank_counters(self):
        inj = FaultInjector()
        _drive_transfers(inj, 4, rank=0)
        _drive_transfers(inj, 2, rank=1)
        assert inj.op_count("transfer") == 6  # any-rank total
        assert inj.op_count("transfer", rank=0) == 4
        assert inj.op_count("transfer", rank=1) == 2


class TestFiringWindows:
    def test_transient_fires_count_consecutive_ops(self):
        plan = FaultPlan(specs=(FaultSpec("pcie-transient", op_index=3, count=2),))
        inj = FaultInjector(plan)
        outcomes = []
        for i in range(6):
            try:
                inj.on_transfer("h2d", "p", 8)
                outcomes.append("ok")
            except PCIeTransferError:
                outcomes.append("fail")
        assert outcomes == ["ok", "ok", "fail", "fail", "ok", "ok"]
        assert [e.op_index for e in inj.events] == [3, 4]

    def test_permanent_fires_until_resolved(self):
        plan = FaultPlan(specs=(FaultSpec("pcie-permanent", op_index=2),))
        inj = FaultInjector(plan)
        assert _drive_transfers(inj, 5) == 4  # ops 2..5 all fail
        assert inj.resolve("pcie-permanent") == 1
        assert _drive_transfers(inj, 3) == 0
        assert inj.resolve("pcie-permanent") == 0  # already resolved

    def test_rank_filter_uses_that_ranks_counter(self):
        plan = FaultPlan(specs=(FaultSpec("kernel-launch", op_index=2, rank=1),))
        inj = FaultInjector(plan)
        # rank 0 races ahead: its ops must never trip the rank-1 spec
        for _ in range(4):
            inj.on_kernel_launch("k", rank=0)
        inj.on_kernel_launch("k", rank=1)  # rank 1 op #1: below op_index
        with pytest.raises(KernelLaunchError):
            inj.on_kernel_launch("k", rank=1)  # rank 1 op #2: fires
        assert inj.events[0].rank == 1


class TestKinds:
    def test_ecc_and_rank_dead_raise_typed_errors(self):
        plan = FaultPlan(specs=(
            FaultSpec("ecc", op_index=1),
            FaultSpec("rank-dead", op_index=2),
        ))
        inj = FaultInjector(plan)
        with pytest.raises(DeviceECCError):
            inj.on_kernel_launch("stencil")
        with pytest.raises(DeviceLostError):
            inj.on_kernel_launch("stencil")

    def test_oom_carries_live_allocation_table(self):
        mem = DeviceMemory(1 << 20)
        mem.allocate("resident", 4096)
        plan = FaultPlan(specs=(FaultSpec("oom", op_index=1),))
        inj = FaultInjector(plan)
        with pytest.raises(DeviceOutOfMemoryError) as exc:
            inj.on_allocate("newbuf", 8192, mem)
        msg = str(exc.value)
        assert "resident" in msg and "newbuf" in msg

    def test_message_actions(self):
        plan = FaultPlan(specs=(
            FaultSpec("mpi-drop", op_index=1),
            FaultSpec("mpi-dup", op_index=2),
            FaultSpec("mpi-delay", op_index=3),
        ))
        inj = FaultInjector(plan)
        actions = [inj.on_message(0, 1, tag=9, nbytes=64) for _ in range(4)]
        assert actions == ["drop", "duplicate", "delay", "deliver"]


class TestRecordingAndBinding:
    def test_events_traced_as_instants(self):
        tracer = Tracer(clock=lambda: 0.0)
        plan = FaultPlan(specs=(FaultSpec("kernel-launch", op_index=1),))
        inj = FaultInjector(plan, tracer=tracer)
        with pytest.raises(KernelLaunchError):
            inj.on_kernel_launch("stencil")
        marks = tracer.by_category("fault")
        assert len(marks) == 1
        assert marks[0].name == "fault:kernel-launch"
        assert marks[0].process == "resilience"

    def test_bound_injector_tags_rank(self):
        plan = FaultPlan(specs=(FaultSpec("pcie-transient", op_index=1, rank=2),))
        inj = FaultInjector(plan)
        bound = inj.bound(2)
        with pytest.raises(PCIeTransferError):
            bound.on_transfer("d2h", "field", 128)
        assert inj.events[0].rank == 2
        assert inj.op_count("transfer", rank=2) == 1
