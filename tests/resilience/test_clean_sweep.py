"""The 12-case clean sweep: with no faults armed, the resilient wrappers
add zero overhead — bitwise-identical physics and identical modelled device
time — across every physics x dimensionality x mode seed case."""

import numpy as np
import pytest

from repro.core.config import GPUOptions, ModelingConfig, RTMConfig
from repro.core.modeling import run_modeling
from repro.core.rtm import run_rtm
from repro.model import layered_model
from repro.resilience.recovery import ResilientPipeline

SHAPES = {2: (48, 48), 3: (24, 24, 24)}
NT = 6

CASES = [
    (physics, ndim, mode)
    for physics in ("isotropic", "acoustic", "elastic")
    for ndim in (2, 3)
    for mode in ("modeling", "rtm")
]


def _cfg(physics, ndim, mode):
    shape = SHAPES[ndim]
    model = layered_model(
        shape, spacing=10.0, interfaces=[shape[0] * 10.0 / 2],
        velocities=[1500.0, 2600.0], vs_ratio=0.5,
    )
    cls = RTMConfig if mode == "rtm" else ModelingConfig
    return cls(
        physics=physics, model=model, nt=NT, peak_freq=12.0,
        space_order=4, boundary_width=6, snap_period=2,
    )


@pytest.mark.parametrize(
    "physics,ndim,mode", CASES,
    ids=[f"{p[:2]}{n}d-{m}" for p, n, m in CASES],
)
def test_clean_run_is_transparent(physics, ndim, mode):
    if mode == "rtm":
        ref = run_rtm(_cfg(physics, ndim, mode), gpu_options=GPUOptions())
        res = ResilientPipeline(_cfg(physics, ndim, mode))
        got = res.run_rtm()
        assert np.array_equal(ref.image, got.image)
        assert np.array_equal(ref.raw_image, got.raw_image)
    else:
        ref = run_modeling(_cfg(physics, ndim, mode), gpu_options=GPUOptions())
        res = ResilientPipeline(_cfg(physics, ndim, mode))
        got = res.run_modeling()
        assert np.array_equal(ref.final_wavefield, got.final_wavefield)
    assert np.array_equal(ref.seismogram, got.seismogram)
    # zero modelled overhead: same launches, same simulated seconds
    for f in ("total", "kernel", "h2d", "d2h", "alloc", "launches"):
        assert getattr(ref.gpu, f) == getattr(got.gpu, f), f
    assert res.stats.detected == 0 and res.stats.restarts == 0
