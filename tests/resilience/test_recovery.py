"""Recovery layer: clean-path transparency, per-fault-kind golden recovery,
checkpoint schedules, backoff determinism, decomposed degradation."""

import numpy as np
import pytest

from repro.core.config import GPUOptions, ModelingConfig, RTMConfig
from repro.core.modeling import run_modeling
from repro.core.rtm import run_rtm
from repro.model import layered_model
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.resilience.recovery import (
    BackoffPolicy,
    CheckpointStore,
    ResilientMultiGpu,
    ResilientPipeline,
)
from repro.utils.errors import DeviceLostError

SHAPE = (48, 48)
NT = 12


def _model():
    return layered_model(
        SHAPE, spacing=10.0, interfaces=[SHAPE[0] * 10.0 / 2],
        velocities=[1500.0, 2600.0], vs_ratio=0.5,
    )


def _cfg(cls, **over):
    kw = dict(
        physics="acoustic", model=_model(), nt=NT, peak_freq=12.0,
        space_order=8, boundary_width=8, snap_period=4,
    )
    kw.update(over)
    return cls(**kw)


def _same_times(a, b):
    return all(
        getattr(a, f) == getattr(b, f)
        for f in ("total", "kernel", "h2d", "d2h", "alloc", "launches")
    )


class TestBackoff:
    def test_deterministic_and_growing(self):
        pol = BackoffPolicy(seed=3)
        a = [pol.delay(i, pol.rng()) for i in range(4)]
        b = [pol.delay(i, pol.rng()) for i in range(4)]
        assert a == b
        assert a == sorted(a)
        assert a[0] >= pol.base_delay_s


class TestCheckpointStore:
    def test_periodic_schedule(self):
        ckpt = CheckpointStore(nt=16, period=4)
        due = [s for s in range(16) if ckpt.is_checkpoint_step(s)]
        assert due == [0, 4, 8, 12]

    def test_budget_thins_schedule_but_keeps_zero(self):
        full = CheckpointStore(nt=32, period=4)
        thin = CheckpointStore(nt=32, period=4, budget=2)
        assert thin.is_checkpoint_step(0)
        n_full = sum(full.is_checkpoint_step(s) for s in range(32))
        n_thin = sum(thin.is_checkpoint_step(s) for s in range(32))
        assert n_thin < n_full

    def test_save_latest_load(self):
        ckpt = CheckpointStore(nt=16, period=4)
        for step in (0, 4, 8):
            ckpt.save(step, np.full(SHAPE, step, np.float32), {"step": step})
        assert ckpt.latest(11) == 8
        assert ckpt.latest(7) == 4
        assert ckpt.load(ckpt.latest(2))["step"] == 0
        assert ckpt.saves == 3
        assert ckpt.nbytes() > 0


class TestCleanPathTransparency:
    """No faults armed => bitwise-identical physics AND identical modelled
    device time (checkpoint capture is pure host work)."""

    def test_modeling(self):
        ref = run_modeling(_cfg(ModelingConfig), gpu_options=GPUOptions())
        res = ResilientPipeline(_cfg(ModelingConfig)).run_modeling()
        assert np.array_equal(ref.seismogram, res.seismogram)
        assert np.array_equal(ref.final_wavefield, res.final_wavefield)
        assert _same_times(ref.gpu, res.gpu)

    def test_rtm(self):
        ref = run_rtm(_cfg(RTMConfig), gpu_options=GPUOptions())
        res = ResilientPipeline(_cfg(RTMConfig)).run_rtm()
        assert np.array_equal(ref.image, res.image)
        assert np.array_equal(ref.raw_image, res.raw_image)
        assert np.array_equal(ref.seismogram, res.seismogram)
        assert _same_times(ref.gpu, res.gpu)

    def test_stats_report_nothing(self):
        res = ResilientPipeline(_cfg(ModelingConfig))
        res.run_modeling()
        assert res.stats.detected == 0
        assert res.stats.retries == 0
        assert res.stats.restarts == 0
        assert res.stats.degraded == []


class TestFaultRecoveryGolden:
    """Each fault kind, injected mid-RTM, must reproduce the fault-free
    image bit for bit."""

    @pytest.fixture(scope="class")
    def golden(self):
        return run_rtm(_cfg(RTMConfig), gpu_options=GPUOptions())

    @pytest.mark.parametrize("spec", [
        FaultSpec("pcie-transient", op_index=3, count=2),
        FaultSpec("kernel-launch", op_index=9),
        FaultSpec("ecc", op_index=25),
        FaultSpec("oom", op_index=3),
        FaultSpec("pcie-permanent", op_index=6),
    ], ids=lambda s: s.spec_string())
    def test_kind_recovers_exactly(self, golden, spec):
        res = ResilientPipeline(
            _cfg(RTMConfig), plan=FaultPlan(specs=(spec,)),
            backoff=BackoffPolicy(seed=1),
        )
        result = res.run_rtm()
        assert len(res.injector.events) >= 1
        assert res.stats.detected >= 1
        assert np.array_equal(golden.image, result.image)
        assert np.array_equal(golden.seismogram, result.seismogram)
        assert res.stats.recovery_cost_s > 0.0

    def test_oom_degrades_via_replan(self, golden):
        res = ResilientPipeline(
            _cfg(RTMConfig),
            plan=FaultPlan(specs=(FaultSpec("oom", op_index=3),)),
        )
        result = res.run_rtm()
        assert any(d.startswith("re-plan:") for d in res.stats.degraded)
        assert np.array_equal(golden.image, result.image)

    def test_restart_budget_exhaustion_reraises(self):
        # a permanent link fault plus a zero restart budget cannot recover
        res = ResilientPipeline(
            _cfg(ModelingConfig),
            plan=FaultPlan(specs=(FaultSpec("pcie-permanent", op_index=1),)),
            max_restarts=0,
        )
        from repro.utils.errors import PCIeTransferError
        with pytest.raises(PCIeTransferError):
            res.run_modeling()


class TestResilientMultiGpu:
    SHAPE = (64, 64)
    NT = 8

    def _expected(self, seed=1234, nt=NT):
        g = np.random.default_rng(seed).standard_normal(self.SHAPE)
        g = g.astype(np.float32)
        for _ in range(nt):
            g = ResilientMultiGpu.reference_step(g)
        return g

    def _run(self, plan=None, ranks=2, mode="modeling"):
        r = ResilientMultiGpu(
            "acoustic", self.SHAPE, ranks,
            plan=plan, backoff=BackoffPolicy(seed=1),
            boundary_width=8, space_order=8,
        )
        out = r.run(self.NT, snap_period=4, mode=mode)
        return r, out

    def test_clean_matches_decomposition_free_oracle(self):
        _, out = self._run()
        assert np.array_equal(out, self._expected())

    @pytest.mark.parametrize("spec", [
        FaultSpec("mpi-drop", op_index=2),
        FaultSpec("mpi-dup", op_index=3),
        FaultSpec("mpi-delay", op_index=2),
        FaultSpec("pcie-transient", op_index=4, count=2),
        FaultSpec("ecc", op_index=6),
    ], ids=lambda s: s.spec_string())
    def test_kind_recovers_exactly(self, spec):
        r, out = self._run(plan=FaultPlan(specs=(spec,)))
        assert len(r.injector.events) >= 1
        assert np.array_equal(out, self._expected())

    def test_dead_rank_redecomposes_and_finishes(self):
        plan = FaultPlan(specs=(FaultSpec("rank-dead", op_index=6, rank=1),))
        r, out = self._run(plan=plan)
        assert "re-decompose:2->1" in r.stats.degraded
        assert r.ngpus == 1
        assert np.array_equal(out, self._expected())

    def test_dead_rank_on_last_card_is_fatal(self):
        plan = FaultPlan(specs=(FaultSpec("rank-dead", op_index=4),))
        with pytest.raises(DeviceLostError):
            self._run(plan=plan, ranks=1)
