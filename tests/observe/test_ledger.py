"""Run ledger: append, read-back, grouping, robustness, fingerprints."""

import json
import os

from repro.observe.ledger import (
    LEDGER_SCHEMA,
    LedgerRecord,
    RunLedger,
    append_run,
    ledger_path_from_args,
    plan_fingerprint,
)
from repro.observe.runlog import RunLog


def record(case="iso2d", ranks=1, command="trace", **metrics):
    return LedgerRecord(command=command, case=case, mode="rtm", ranks=ranks,
                        metrics=metrics or {"makespan_s": 1.0})


class TestRecord:
    def test_auto_identity(self):
        rec = record()
        assert len(rec.run_id) == 12
        assert rec.timestamp  # ISO stamp filled in
        assert rec.schema == LEDGER_SCHEMA

    def test_roundtrip(self):
        rec = record(makespan_s=0.5, comm_s=0.1)
        back = LedgerRecord.from_json(rec.to_json())
        assert back.group == rec.group
        assert back.metrics == rec.metrics
        assert back.run_id == rec.run_id

    def test_from_runlog_carries_events_and_counters(self):
        log = RunLog(command="chaos", case="el2d", mode="both", ranks=2)
        log.log("recovery", action="retry")
        log.count("recovery.actions")
        rec = LedgerRecord.from_runlog(log, {"unrecovered": 0.0})
        assert rec.group == ("chaos", "el2d", "both", 2)
        assert rec.events == [{"kind": "recovery", "action": "retry"}]
        assert rec.counters == {"recovery.actions": 1.0}


class TestLedgerFile:
    def test_append_creates_parent_and_reads_back(self, tmp_path):
        path = str(tmp_path / "nested" / "ledger.jsonl")
        ledger = RunLedger(path)
        ledger.append(record(makespan_s=1.0))
        ledger.append(record(makespan_s=2.0))
        recs = ledger.records()
        assert [r.metrics["makespan_s"] for r in recs] == [1.0, 2.0]

    def test_groups_and_filters(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "ledger.jsonl"))
        ledger.append(record(case="iso2d", ranks=1))
        ledger.append(record(case="iso2d", ranks=2))
        ledger.append(record(case="ac3d", ranks=2, command="scale"))
        assert len(ledger.groups()) == 3
        assert len(ledger.records(command="scale")) == 1
        assert ledger.latest(case="iso2d").ranks == 2

    def test_unreadable_lines_become_warnings(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        good = record().to_json()
        path.write_text(
            json.dumps(good) + "\n"
            + "not json at all\n"
            + json.dumps({"schema": LEDGER_SCHEMA + 1, "command": "x",
                          "ranks": 1}) + "\n"
        )
        ledger = RunLedger(str(path))
        assert len(ledger.records()) == 1
        assert len(ledger.warnings) == 2

    def test_missing_file_is_empty(self, tmp_path):
        assert RunLedger(str(tmp_path / "absent.jsonl")).records() == []


class TestAppendRun:
    def test_none_path_disables(self):
        log = RunLog(command="trace")
        assert append_run(None, log, {"makespan_s": 1.0}) is None

    def test_appends_with_plan_hash(self, tmp_path):
        from repro.optim.autotune import TuningPlan

        plan = TuningPlan(
            case="iso2d", mode="rtm", platform="CRAY XK6", compiler="pgi",
            maxregcount=None, async_kernels=None, kernels={},
            baseline_step_seconds=1.0, tuned_step_seconds=0.9,
        )
        path = str(tmp_path / "ledger.jsonl")
        log = RunLog(command="tune", case="iso2d", mode="rtm")
        rec = append_run(path, log, {"improvement": 0.1}, plan=plan)
        assert rec.plan_hash == plan_fingerprint(plan)
        assert RunLedger(path).latest().plan_hash == rec.plan_hash


class TestPlanFingerprint:
    def test_none_plan(self):
        assert plan_fingerprint(None) is None

    def test_stable_and_sensitive(self):
        from repro.optim.autotune import TuningPlan

        kw = dict(case="iso2d", mode="rtm", platform="p", compiler="c",
                  maxregcount=None, async_kernels=None, kernels={},
                  baseline_step_seconds=1.0, tuned_step_seconds=0.9)
        a, b = TuningPlan(**kw), TuningPlan(**kw)
        assert plan_fingerprint(a) == plan_fingerprint(b)
        assert len(plan_fingerprint(a)) == 12
        c = TuningPlan(**{**kw, "tuned_step_seconds": 0.8})
        assert plan_fingerprint(c) != plan_fingerprint(a)


class TestArgsResolution:
    def test_defaults(self):
        class Args:
            pass

        assert ledger_path_from_args(Args()) == os.path.join(
            ".repro", "ledger.jsonl"
        )

    def test_no_ledger_wins(self):
        class Args:
            ledger = "somewhere.jsonl"
            no_ledger = True

        assert ledger_path_from_args(Args()) is None

    def test_explicit_path(self):
        class Args:
            ledger = "elsewhere.jsonl"
            no_ledger = False

        assert ledger_path_from_args(Args()) == "elsewhere.jsonl"
