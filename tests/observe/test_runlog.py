"""Run-scoped structured logging: ambient scope, counters, caps."""

from repro.observe import runlog
from repro.observe.runlog import MAX_EVENTS, RunLog, current_runlog


class TestAmbientScope:
    def test_noop_outside_scope(self):
        assert current_runlog() is None
        runlog.emit("phase", phase="forward")  # must not raise
        runlog.count("pipeline.forward_steps")

    def test_activate_installs_and_restores(self):
        log = RunLog(command="trace", case="iso2d", mode="rtm", ranks=2)
        with log.activate():
            assert current_runlog() is log
            runlog.emit("phase", phase="forward")
            runlog.count("steps", 3)
        assert current_runlog() is None
        assert log.events == [{"kind": "phase", "phase": "forward"}]
        assert log.counters == {"steps": 3.0}

    def test_nested_scopes_restore_outer(self):
        outer, inner = RunLog(command="a"), RunLog(command="b")
        with outer.activate():
            with inner.activate():
                runlog.count("x")
            runlog.count("y")
        assert inner.counters == {"x": 1.0}
        assert outer.counters == {"y": 1.0}


class TestAccumulation:
    def test_event_cap_counts_overflow(self):
        log = RunLog(command="trace")
        for _ in range(MAX_EVENTS + 25):
            log.log("tick")
        assert len(log.events) == MAX_EVENTS
        assert log.dropped_events == 25
        assert log.to_json()["dropped_events"] == 25

    def test_identity_and_json(self):
        log = RunLog(command="scale", case="ac3d", mode="rtm", ranks=4, nt=16)
        assert log.identity() == {
            "command": "scale", "case": "ac3d", "mode": "rtm", "ranks": 4,
        }
        doc = log.to_json()
        assert doc["context"] == {"nt": 16}
        assert doc["events"] == []


class TestPipelineThreading:
    def test_pipeline_phases_land_in_runlog(self):
        from repro.core import GPUOptions, ModelingConfig
        from repro.core.modeling import run_modeling
        from repro.model import layered_model

        model = layered_model((48, 48), spacing=10.0, interfaces=[240.0],
                              velocities=[1500.0, 2600.0])
        cfg = ModelingConfig(physics="acoustic", model=model, nt=4,
                             peak_freq=12.0, space_order=8,
                             boundary_width=8, snap_period=2)
        log = RunLog(command="trace", case="ac2d", mode="modeling")
        with log.activate():
            run_modeling(cfg, gpu_options=GPUOptions())
        phases = [e["phase"] for e in log.events if e["kind"] == "phase"]
        assert phases[0] == "forward"
        assert phases[-1] == "idle"
        assert log.counters["pipeline.forward_steps"] == 4.0

    def test_multigpu_exchanges_counted(self):
        from repro.core import GPUOptions
        from repro.core.multigpu import MultiGpuPipeline

        log = RunLog(command="scale", case="ac2d", ranks=2)
        with log.activate():
            mgp = MultiGpuPipeline("acoustic", (96, 96), 2,
                                   options=GPUOptions(), boundary_width=8)
            mgp.run_modeling(4, 2)
        assert log.counters["multigpu.exchanges"] == 4.0
        ops = [e for e in log.events if e["kind"] == "run"]
        assert ops and ops[0]["op"] == "modeling" and ops[0]["ranks"] == 2
