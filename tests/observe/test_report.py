"""Ledger regression report: direction policy, windows, the CI gate."""

import pytest

from repro.observe.ledger import LedgerRecord, RunLedger
from repro.observe.report import (
    compare_metric,
    diff_ledger,
    run_report_command,
)


def put(ledger, case="iso2d", ranks=2, command="scale", **metrics):
    ledger.append(LedgerRecord(command=command, case=case, mode="rtm",
                               ranks=ranks, metrics=metrics))


class TestCompareMetric:
    def test_lower_is_better_regresses_on_growth(self):
        d = compare_metric("makespan_s", 1.3, 1.0, threshold=0.10)
        assert d.regression and d.delta == pytest.approx(0.3)

    def test_lower_is_better_ok_within_threshold(self):
        assert not compare_metric("makespan_s", 1.05, 1.0, 0.10).regression

    def test_higher_is_better_regresses_on_shrink(self):
        d = compare_metric("comm_overlap_fraction", 0.3, 0.6, 0.10)
        assert d.regression and d.direction == "higher"

    def test_improvement_is_not_regression(self):
        assert not compare_metric("makespan_s", 0.5, 1.0, 0.10).regression
        assert not compare_metric("speedup", 2.0, 1.5, 0.10).regression

    def test_fraction_zero_baseline_absolute_points(self):
        d = compare_metric("comm_overlap_fraction", 0.05, 0.0, 0.10)
        assert d.absolute and not d.regression
        d = compare_metric("comm_overlap_fraction", 0.0, 0.0, 0.10)
        assert not d.regression

    def test_unknown_metric_is_info(self):
        d = compare_metric("kernel_launches", 99.0, 10.0, 0.10)
        assert d.direction == "info" and not d.regression


class TestDiffLedger:
    def test_single_run_groups_are_new(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        put(ledger, makespan_s=1.0)
        report = diff_ledger(ledger)
        assert report.groups[0].status == "new"
        assert report.ok

    def test_median_window_resists_outlier(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        for v in (1.0, 1.0, 9.0, 1.0, 1.0):  # one poisoned run in history
            put(ledger, makespan_s=v)
        put(ledger, makespan_s=1.05)  # latest: fine vs median 1.0
        report = diff_ledger(ledger, threshold=0.10, window=5)
        assert report.groups[0].status == "ok"

    def test_synthetic_slowdown_flags_regression(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        put(ledger, makespan_s=1.0, comm_overlap_fraction=0.5)
        put(ledger, makespan_s=2.0, comm_overlap_fraction=0.5)
        report = diff_ledger(ledger)
        group = report.groups[0]
        assert group.status == "regression"
        assert [d.metric for d in group.regressions] == ["makespan_s"]
        assert not report.ok

    def test_groups_do_not_cross_contaminate(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        put(ledger, ranks=1, makespan_s=1.0)
        put(ledger, ranks=2, makespan_s=99.0)  # different group, first run
        put(ledger, ranks=1, makespan_s=1.0)
        report = diff_ledger(ledger)
        assert all(g.status in ("ok", "new") for g in report.groups)

    def test_command_filter(self, tmp_path):
        ledger = RunLedger(str(tmp_path / "l.jsonl"))
        put(ledger, command="scale", makespan_s=1.0)
        put(ledger, command="tune", makespan_s=1.0)
        report = diff_ledger(ledger, command="tune")
        assert [g.command for g in report.groups] == ["tune"]


class Args:
    ledger = None
    threshold = 10.0
    window = 5
    command_filter = None
    format = "text"
    check = False


class TestReportCommand:
    def test_check_exits_nonzero_on_regression(self, tmp_path, capsys):
        path = str(tmp_path / "l.jsonl")
        ledger = RunLedger(path)
        put(ledger, makespan_s=1.0)
        put(ledger, makespan_s=2.0)
        args = Args()
        args.ledger = path
        assert run_report_command(args) == 0  # report-only never gates
        args.check = True
        assert run_report_command(args) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out and "makespan_s" in out

    def test_check_passes_clean_ledger(self, tmp_path, capsys):
        path = str(tmp_path / "l.jsonl")
        ledger = RunLedger(path)
        put(ledger, makespan_s=1.0)
        put(ledger, makespan_s=1.01)
        args = Args()
        args.ledger = path
        args.check = True
        assert run_report_command(args) == 0
        assert "OK" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        import json

        path = str(tmp_path / "l.jsonl")
        put(RunLedger(path), makespan_s=1.0)
        args = Args()
        args.ledger = path
        args.format = "json"
        assert run_report_command(args) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] and doc["groups"][0]["status"] == "new"
