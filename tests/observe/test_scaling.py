"""Scaling observatory: points, shape assertions, the scale CLI."""

import json

import pytest

from repro.observe.ledger import RunLedger
from repro.observe.scaling import (
    SCALE_SHAPES,
    ScaleCaseResult,
    ScalePoint,
    assert_scaling_shape,
    parse_ranks,
    run_scale_case,
    run_scale_point,
)
from repro.utils.errors import ConfigurationError


def point(ranks, makespan, comm, compute=None, speedup=None, efficiency=None):
    return ScalePoint(
        ranks=ranks, makespan_s=makespan, step_seconds=makespan / 8,
        compute_s=compute if compute is not None else makespan * 0.5,
        transfer_s=0.1, comm_s=comm,
        comm_overlap_fraction=0.0, transfer_overlap_fraction=0.0,
        critical_chain_s=makespan * 0.6, kernel_launches=100,
        speedup=speedup, efficiency=efficiency,
    )


class TestParseRanks:
    def test_parses_list(self):
        assert parse_ranks("1,2,4,8") == (1, 2, 4, 8)

    def test_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            parse_ranks("1,two")
        with pytest.raises(ConfigurationError):
            parse_ranks("0,2")


class TestShapeAssertions:
    def test_clean_strong_scaling_passes(self):
        result = ScaleCaseResult(
            case="iso2d", mode="rtm", nt=8, shape=SCALE_SHAPES[2],
            points=[
                point(1, 8.0, 0.0),
                point(2, 5.0, 0.1, speedup=1.6, efficiency=0.8),
                point(4, 3.0, 0.2, speedup=2.7, efficiency=0.67),
            ],
        )
        assert assert_scaling_shape(result) == []
        assert result.shape_ok

    def test_comm_at_one_rank_flagged(self):
        result = ScaleCaseResult(
            case="iso2d", mode="rtm", nt=8, shape=SCALE_SHAPES[2],
            points=[point(1, 8.0, 0.5)],
        )
        assert any("ranks=1 shows comm" in v for v in assert_scaling_shape(result))

    def test_makespan_growth_flagged(self):
        result = ScaleCaseResult(
            case="iso2d", mode="rtm", nt=8, shape=SCALE_SHAPES[2],
            points=[
                point(1, 5.0, 0.0),
                point(2, 9.0, 0.1, speedup=0.55, efficiency=0.28),
            ],
        )
        violations = assert_scaling_shape(result)
        assert any("makespan grew" in v for v in violations)

    def test_missing_comm_at_multirank_flagged(self):
        result = ScaleCaseResult(
            case="iso2d", mode="rtm", nt=8, shape=SCALE_SHAPES[2],
            points=[
                point(1, 8.0, 0.0),
                point(2, 5.0, 0.0, speedup=1.6, efficiency=0.8),
            ],
        )
        assert any("no comm" in v for v in assert_scaling_shape(result))

    def test_super_linear_efficiency_flagged(self):
        result = ScaleCaseResult(
            case="iso2d", mode="rtm", nt=8, shape=SCALE_SHAPES[2],
            points=[
                point(1, 8.0, 0.0),
                point(2, 2.0, 0.1, speedup=4.0, efficiency=2.0),
            ],
        )
        assert any("super-linear" in v for v in assert_scaling_shape(result))


class TestExecutedPoints:
    def test_point_reduces_executed_pipeline(self):
        pt, reduction = run_scale_point("iso2d", 2, mode="modeling", nt=4)
        assert pt.ranks == 2
        assert pt.comm_s > 0.0
        assert pt.makespan_s > 0.0
        assert reduction.nranks == 2
        assert pt.kernel_launches == sum(
            k.count for k in reduction.kernels.values()
        )

    def test_case_sweep_appends_ledger(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        result = run_scale_case("iso2d", ranks=(1, 2), mode="modeling",
                                nt=4, ledger_path=path)
        assert result.shape_ok, result.violations
        recs = RunLedger(path).records(command="scale")
        assert [r.ranks for r in recs] == [1, 2]
        assert "speedup" in recs[1].metrics
        assert recs[1].counters["multigpu.exchanges"] == 4.0

    def test_rejects_bad_mode(self):
        with pytest.raises(ConfigurationError):
            run_scale_point("iso2d", 1, mode="sideways")


class TestScaleCommand:
    def test_cli_writes_artifact_and_ledger(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "BENCH_scaling.json")
        ledger = str(tmp_path / "ledger.jsonl")
        rc = main(["scale", "iso2d", "--ranks", "1,2", "--mode", "modeling",
                   "--nt", "4", "--out", out, "--ledger", ledger])
        assert rc == 0
        doc = json.load(open(out))
        assert doc["shape_ok"]
        case = doc["cases"]["iso2d"]
        assert [p["ranks"] for p in case["points"]] == [1, 2]
        assert case["points"][1]["comm_s"] > 0.0
        assert len(case["points"][1]["per_rank"]) == 2
        assert len(RunLedger(ledger).records()) == 2
        assert "shape OK" in capsys.readouterr().out

    def test_cli_no_ledger(self, tmp_path, capsys):
        from repro.__main__ import main

        out = str(tmp_path / "BENCH_scaling.json")
        rc = main(["scale", "iso2d", "--ranks", "1", "--mode", "modeling",
                   "--nt", "4", "--out", out, "--no-ledger"])
        assert rc == 0
        out_text = capsys.readouterr().out
        assert not any(line.startswith("ledger ")
                       for line in out_text.splitlines())
