"""Reduction engine: synthetic span sets plus a golden 2-rank trace."""

import json
import os

import pytest

from repro.observe.reduce import (
    interval_measure,
    intersect_intervals,
    merge_intervals,
    rank_of_event,
    reduce_trace,
)
from repro.trace.tracer import SPAN, TraceEvent


def span(name, cat, start, end, process="gpu:sim", track="queue:0"):
    return TraceEvent(name, cat, process, track, start, end, SPAN)


class TestIntervalAlgebra:
    def test_merge_unions_overlaps(self):
        assert merge_intervals([(0, 2), (1, 3), (5, 6)]) == [(0, 3), (5, 6)]

    def test_merge_drops_empty(self):
        assert merge_intervals([(2, 2), (3, 1)]) == []

    def test_measure(self):
        assert interval_measure([(0, 2), (5, 6)]) == pytest.approx(3.0)

    def test_intersect(self):
        a = [(0.0, 4.0), (6.0, 8.0)]
        b = [(2.0, 7.0)]
        assert intersect_intervals(a, b) == [(2.0, 4.0), (6.0, 7.0)]


class TestRankOfEvent:
    def test_prefixed_process(self):
        assert rank_of_event(span("k", "kernel", 0, 1,
                                  process="rank3:gpu:sim")) == 3

    def test_halo_track(self):
        assert rank_of_event(span("halo.recv", "halo", 0, 1,
                                  process="mpi", track="rank:2")) == 2

    def test_unranked(self):
        assert rank_of_event(span("k", "kernel", 0, 1)) is None


class TestOverlapFractions:
    def test_fully_overlapped(self):
        # comm entirely under a compute span: 100% hidden
        events = [
            span("k", "kernel", 0.0, 10.0),
            span("halo.recv", "halo", 2.0, 4.0, process="mpi", track="rank:0"),
        ]
        red = reduce_trace(events)
        rank = red.ranks[0]
        assert rank.comm_overlap_fraction == pytest.approx(1.0)
        assert red.comm_overlap_fraction == pytest.approx(1.0)

    def test_disjoint(self):
        events = [
            span("k", "kernel", 0.0, 5.0),
            span("up", "h2d", 5.0, 8.0),
        ]
        red = reduce_trace(events)
        rank = red.ranks[0]
        assert rank.transfer_overlap_fraction == pytest.approx(0.0)
        assert rank.compute_s == pytest.approx(5.0)
        assert rank.transfer_s == pytest.approx(3.0)
        assert red.makespan_s == pytest.approx(8.0)

    def test_partial_overlap(self):
        # transfer [4, 10], compute [0, 7]: 3 of 6 transfer seconds hidden
        events = [
            span("k", "kernel", 0.0, 7.0),
            span("up", "h2d", 4.0, 10.0),
        ]
        red = reduce_trace(events)
        rank = red.ranks[0]
        assert rank.transfer_overlap_s == pytest.approx(3.0)
        assert rank.transfer_overlap_fraction == pytest.approx(0.5)

    def test_union_not_double_counted(self):
        # two overlapping kernels count their union, not their sum
        events = [
            span("a", "kernel", 0.0, 4.0),
            span("b", "kernel", 2.0, 6.0, track="queue:1"),
        ]
        red = reduce_trace(events)
        assert red.ranks[0].compute_s == pytest.approx(6.0)

    def test_ranks_kept_separate(self):
        events = [
            span("k", "kernel", 0.0, 4.0, process="rank0:gpu:sim"),
            span("k", "kernel", 0.0, 8.0, process="rank1:gpu:sim"),
            span("halo.recv", "halo", 1.0, 2.0, process="mpi", track="rank:1"),
        ]
        red = reduce_trace(events)
        assert red.nranks == 2
        assert red.ranks[0].comm_s == 0.0
        assert red.ranks[1].comm_s == pytest.approx(1.0)
        assert red.ranks[1].comm_overlap_fraction == pytest.approx(1.0)
        # aggregate compute is the slowest rank's (lockstep semantics)
        assert red.compute_s == pytest.approx(8.0)


class TestQueuesAndKernels:
    def test_multi_queue_utilization(self):
        events = [
            span("a", "kernel", 0.0, 5.0, track="queue:1"),
            span("b", "kernel", 0.0, 10.0, track="queue:2"),
            span("up", "h2d", 5.0, 10.0, track="queue:1"),
        ]
        red = reduce_trace(events)
        util = {(q.process, q.track): q.utilization for q in red.queues}
        assert util[("gpu:sim", "queue:1")] == pytest.approx(1.0)
        assert util[("gpu:sim", "queue:2")] == pytest.approx(1.0)
        busy = {(q.process, q.track): q.busy_s for q in red.queues}
        assert busy[("gpu:sim", "queue:1")] == pytest.approx(10.0)

    def test_kernel_aggregates(self):
        events = [span("stencil", "kernel", float(i), float(i) + 1.0)
                  for i in range(10)]
        events.append(span("stencil", "kernel", 20.0, 25.0))
        red = reduce_trace(events)
        agg = red.kernels["stencil"]
        assert agg.count == 11
        assert agg.total_s == pytest.approx(15.0)
        assert agg.max_s == pytest.approx(5.0)
        assert agg.p95_s == pytest.approx(5.0)
        assert agg.mean_s == pytest.approx(15.0 / 11)

    def test_phase_spans_excluded_from_work(self):
        # the umbrella phase span must not dominate the critical chain
        events = [
            span("run", "phase", 0.0, 100.0, process="host", track="run"),
            span("k", "kernel", 0.0, 3.0),
        ]
        red = reduce_trace(events)
        assert red.makespan_s == pytest.approx(3.0)
        assert red.critical_path.chain_s == pytest.approx(3.0)


class TestCriticalPath:
    def test_chain_picks_heaviest_sequence(self):
        # chain a(0-4) -> c(5-11) = 10 beats b(0-9) = 9
        events = [
            span("a", "kernel", 0.0, 4.0),
            span("b", "kernel", 0.0, 9.0, track="queue:1"),
            span("c", "kernel", 5.0, 11.0, track="queue:2"),
        ]
        red = reduce_trace(events)
        assert red.critical_path.chain_s == pytest.approx(10.0)

    def test_composition_priority_and_idle(self):
        # compute [0,4], comm [2,6] (2s exclusive), idle [6,8] before [8,9]
        events = [
            span("k", "kernel", 0.0, 4.0),
            span("halo.recv", "halo", 2.0, 6.0, process="mpi", track="rank:0"),
            span("up", "h2d", 8.0, 9.0),
        ]
        red = reduce_trace(events)
        comp = red.critical_path.composition
        assert comp["compute"] == pytest.approx(4.0)
        assert comp["comm"] == pytest.approx(2.0)
        assert comp["transfer"] == pytest.approx(1.0)
        assert comp["idle"] == pytest.approx(2.0)
        total = sum(comp.values())
        assert total == pytest.approx(red.makespan_s)

    def test_empty_trace(self):
        red = reduce_trace([])
        assert red.makespan_s == 0.0
        assert red.summary_metrics()["kernel_launches"] == 0


class TestGoldenTwoRank:
    def test_recorded_2rank_trace_matches_golden(self):
        from repro.trace.cli import trace_case

        path = os.path.join(os.path.dirname(__file__), "golden",
                            "iso2d_rtm_2rank.json")
        with open(path, encoding="utf-8") as fh:
            golden = json.load(fh)
        tracer, _ = trace_case("iso2d", mode="rtm", nt=8, ranks=2)
        doc = reduce_trace(tracer).to_json()
        for key, want in golden["summary"].items():
            assert doc["summary"][key] == pytest.approx(want, rel=1e-9), key
        assert len(doc["ranks"]) == len(golden["ranks"])
        for got, want in zip(doc["ranks"], golden["ranks"]):
            for key, value in want.items():
                assert got[key] == pytest.approx(value, rel=1e-9), key
        cp = golden["critical_path"]
        assert doc["critical_path"]["chain_s"] == pytest.approx(
            cp["chain_s"], rel=1e-9
        )
        for cls, value in cp["composition"].items():
            assert doc["critical_path"]["composition"][cls] == pytest.approx(
                value, rel=1e-9, abs=1e-12
            ), cls
