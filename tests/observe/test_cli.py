"""End-to-end CLI contracts: trace/tune feed the ledger report reads."""

import json

from repro.__main__ import main
from repro.observe.ledger import RunLedger


class TestTraceLedger:
    def test_trace_appends_and_prints_reduction(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        out = str(tmp_path / "trace.json")
        rc = main(["trace", "iso2d", "--mode", "modeling", "--nt", "4",
                   "--out", out, "--ledger", ledger])
        assert rc == 0
        text = capsys.readouterr().out
        assert "Trace reduction" in text
        assert "per-rank overlap" in text
        rec = RunLedger(ledger).latest()
        assert rec.command == "trace" and rec.case == "iso2d"
        assert rec.metrics["makespan_s"] > 0.0
        assert rec.counters["pipeline.forward_steps"] == 4.0

    def test_trace_two_ranks_reduces_merged_timeline(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        out = str(tmp_path / "trace.json")
        rc = main(["trace", "iso2d", "--mode", "modeling", "--nt", "4",
                   "--ranks", "2", "--out", out, "--ledger", ledger])
        assert rc == 0
        text = capsys.readouterr().out
        assert "rank 1:" in text  # per-rank overlap lines
        assert "rank0:gpu.kernel_launches" in text  # merged metrics table
        rec = RunLedger(ledger).latest()
        assert rec.ranks == 2
        assert rec.metrics["comm_s"] > 0.0

    def test_trace_no_ledger(self, tmp_path, capsys):
        out = str(tmp_path / "trace.json")
        rc = main(["trace", "iso2d", "--mode", "modeling", "--nt", "4",
                   "--out", out, "--no-ledger"])
        assert rc == 0
        out_text = capsys.readouterr().out
        assert not any(line.startswith("ledger ")
                       for line in out_text.splitlines())


class TestTuneLedger:
    def test_tune_records_plan_fingerprint(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        plan = str(tmp_path / "plan.json")
        rc = main(["tune", "iso2d", "--budget", "2", "--out", plan,
                   "--ledger", ledger])
        assert rc == 0
        rec = RunLedger(ledger).latest()
        assert rec.command == "tune"
        assert rec.plan_hash and len(rec.plan_hash) == 12
        assert rec.metrics["tuned_step_seconds"] <= (
            rec.metrics["baseline_step_seconds"]
        )
        assert f"plan {rec.plan_hash}" in capsys.readouterr().out


class TestLedgerTrajectory:
    def test_trace_then_report_check_roundtrip(self, tmp_path, capsys):
        ledger = str(tmp_path / "ledger.jsonl")
        out = str(tmp_path / "trace.json")
        for _ in range(2):  # identical runs: a clean trajectory
            assert main(["trace", "iso2d", "--mode", "modeling", "--nt", "4",
                         "--out", out, "--ledger", ledger]) == 0
        assert main(["report", "--ledger", ledger, "--check"]) == 0

        # inject a synthetic slowdown as a third run of the same group
        records = [json.loads(line)
                   for line in open(ledger, encoding="utf-8")]
        slow = dict(records[-1])
        slow["run_id"] = "feedc0ffee00"
        slow["metrics"] = dict(slow["metrics"])
        slow["metrics"]["makespan_s"] *= 2.0
        with open(ledger, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(slow) + "\n")
        capsys.readouterr()
        assert main(["report", "--ledger", ledger, "--check"]) == 1
        assert "REGRESSION" in capsys.readouterr().out
