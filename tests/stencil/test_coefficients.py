import math

import numpy as np
import pytest

from repro.stencil import (
    centered_coefficients,
    second_derivative_coefficients,
    staggered_coefficients,
)
from repro.utils.errors import ConfigurationError


class TestCenteredSecondDerivative:
    def test_order2_classic(self):
        w = centered_coefficients(2, 2)
        np.testing.assert_allclose(w, [1.0, -2.0, 1.0], atol=1e-14)

    def test_order4_classic(self):
        w = centered_coefficients(4, 2)
        np.testing.assert_allclose(
            w, [-1 / 12, 4 / 3, -5 / 2, 4 / 3, -1 / 12], atol=1e-13
        )

    def test_order8_center(self):
        c0, side = second_derivative_coefficients(8)
        assert c0 == pytest.approx(-205 / 72, rel=1e-12)
        np.testing.assert_allclose(
            side, [8 / 5, -1 / 5, 8 / 315, -1 / 560], rtol=1e-12
        )

    def test_weights_sum_to_zero(self):
        """A derivative annihilates constants."""
        for order in (2, 4, 6, 8, 12):
            assert sum(centered_coefficients(order, 2)) == pytest.approx(0.0, abs=1e-10)

    def test_second_moment_is_two(self):
        """d2/dx2 of x^2/2 = 1: sum w_k k^2 = 2."""
        for order in (2, 4, 8):
            w = centered_coefficients(order, 2)
            m = order // 2
            ks = np.arange(-m, m + 1)
            assert float(np.sum(w * ks**2)) == pytest.approx(2.0, rel=1e-10)

    def test_odd_order_rejected(self):
        with pytest.raises(ConfigurationError):
            centered_coefficients(3, 2)

    def test_zero_order_rejected(self):
        with pytest.raises(ConfigurationError):
            centered_coefficients(0, 2)

    def test_high_derivative_rejected(self):
        with pytest.raises(ConfigurationError):
            centered_coefficients(4, 3)


class TestCenteredFirstDerivative:
    def test_order2_classic(self):
        w = centered_coefficients(2, 1)
        np.testing.assert_allclose(w, [-0.5, 0.0, 0.5], atol=1e-14)

    def test_antisymmetry(self):
        w = centered_coefficients(8, 1)
        m = len(w) // 2
        for k in range(1, m + 1):
            assert w[m + k] == pytest.approx(-w[m - k], abs=1e-13)

    def test_first_moment_is_one(self):
        w = centered_coefficients(8, 1)
        m = len(w) // 2
        ks = np.arange(-m, m + 1)
        assert float(np.sum(w * ks)) == pytest.approx(1.0, rel=1e-12)


class TestStaggered:
    def test_order2_classic(self):
        assert staggered_coefficients(2) == pytest.approx((1.0,))

    def test_order4_classic(self):
        np.testing.assert_allclose(
            staggered_coefficients(4), (9 / 8, -1 / 24), rtol=1e-12
        )

    def test_order8_levander(self):
        """The paper's width-8 operators: classic Levander weights."""
        np.testing.assert_allclose(
            staggered_coefficients(8),
            (1225 / 1024, -245 / 3072, 49 / 5120, -5 / 7168),
            rtol=1e-12,
        )

    def test_consistency_moment(self):
        """sum_m c_m * (2m-1) == 1 gives an exact first derivative of x."""
        for order in (2, 4, 6, 8):
            c = staggered_coefficients(order)
            total = sum(cm * (2 * m - 1) for m, cm in enumerate(c, start=1))
            assert total == pytest.approx(1.0, rel=1e-12)

    def test_odd_order_rejected(self):
        with pytest.raises(ConfigurationError):
            staggered_coefficients(5)

    def test_cached(self):
        assert staggered_coefficients(8) is staggered_coefficients(8)
