import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stencil import (
    laplacian,
    laplacian_flops_per_point,
    laplacian_reads_per_point,
    second_derivative,
    staggered_diff_backward,
    staggered_diff_forward,
    stencil_radius,
)
from repro.utils.errors import ConfigurationError


def _sine_2d(n=64, axis=0):
    h = 2 * np.pi / (n - 1)
    x = np.arange(n) * h
    field = np.sin(x)
    if axis == 0:
        a = np.ascontiguousarray(np.repeat(field[:, None], 20, axis=1))
    else:
        a = np.ascontiguousarray(np.repeat(field[None, :], 20, axis=0))
    return a.astype(np.float32), h, x


class TestStencilRadius:
    def test_order8(self):
        assert stencil_radius(8) == 4

    def test_rejects_odd(self):
        with pytest.raises(ConfigurationError):
            stencil_radius(5)


class TestSecondDerivative:
    def test_sine_accuracy(self):
        a, h, x = _sine_2d()
        d2 = second_derivative(a, 0, h)
        interior = d2[4:-4, :]
        expected = -np.sin(x[4:-4])[:, None]
        assert np.max(np.abs(interior - expected)) < 5e-4

    def test_quadratic_exact(self):
        """x^2 has an exact FD second derivative (= 2) at any order."""
        n = 32
        x = np.arange(n, dtype=np.float64)
        a = np.ascontiguousarray((x[:, None] ** 2) * np.ones((1, 8))).astype(np.float32)
        d2 = second_derivative(a, 0, 1.0)
        np.testing.assert_allclose(d2[4:-4, :], 2.0, rtol=1e-4)

    def test_constant_gives_zero(self):
        a = np.full((32, 32), 3.0, dtype=np.float32)
        d2 = second_derivative(a, 0, 1.0)
        np.testing.assert_allclose(d2[4:-4, :], 0.0, atol=1e-4)

    def test_axis1(self):
        a, h, x = _sine_2d(axis=1)
        d2 = second_derivative(a, 1, h)
        expected = -np.sin(x[4:-4])[None, :]
        assert np.max(np.abs(d2[:, 4:-4] - expected)) < 5e-4

    def test_border_untouched(self):
        a = np.ones((32, 32), dtype=np.float32)
        out = np.full_like(a, 99.0)
        second_derivative(a, 0, 1.0, out=out)
        assert np.all(out[:4, :] == 99.0)
        assert np.all(out[-4:, :] == 99.0)

    def test_too_small_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            second_derivative(np.zeros((6, 20), dtype=np.float32), 0, 1.0)

    def test_accumulate(self):
        a, h, _ = _sine_2d()
        out = np.zeros_like(a)
        second_derivative(a, 0, h, out=out)
        once = out.copy()
        second_derivative(a, 0, h, out=out, accumulate=True)
        np.testing.assert_allclose(out[4:-4, 4:-4], 2 * once[4:-4, 4:-4], rtol=1e-5)

    def test_convergence_order(self):
        """Error should fall dramatically with resolution for a smooth
        field (8th-order scheme; float32 floors the tail)."""
        errs = []
        for n in (24, 48):
            h = 2 * np.pi / (n - 1)
            x = np.arange(n) * h
            a = np.ascontiguousarray(
                np.repeat(np.sin(x)[:, None], 8, axis=1)
            ).astype(np.float64)
            d2 = second_derivative(a, 0, h)
            errs.append(np.max(np.abs(d2[4:-4, :] + np.sin(x[4:-4])[:, None])))
        assert errs[1] < errs[0] / 30


class TestLaplacian:
    def test_isotropy_2d(self):
        """lap of sin(x)+sin(z) == -(sin(x)+sin(z))."""
        n = 64
        h = 2 * np.pi / (n - 1)
        x = np.arange(n) * h
        a = (np.sin(x)[:, None] + np.sin(x)[None, :]).astype(np.float32)
        lap = laplacian(a, (h, h))
        expected = -(np.sin(x)[4:-4, None] + np.sin(x)[None, 4:-4])
        assert np.max(np.abs(lap[4:-4, 4:-4] - expected)) < 1e-3

    def test_3d_matches_sum_of_axes(self, rng):
        a = rng.standard_normal((20, 20, 20)).astype(np.float32)
        lap = laplacian(a, (1.0, 2.0, 0.5))
        manual = np.zeros_like(a)
        for ax, h in enumerate((1.0, 2.0, 0.5)):
            manual = manual + second_derivative(a, ax, h)
        np.testing.assert_allclose(
            lap[4:-4, 4:-4, 4:-4], manual[4:-4, 4:-4, 4:-4], rtol=2e-4, atol=1e-4
        )

    def test_out_reuse_resets(self, rng):
        a = rng.standard_normal((24, 24)).astype(np.float32)
        out = np.full_like(a, 7.0)
        lap1 = laplacian(a, (1.0, 1.0), out=out)
        lap2 = laplacian(a, (1.0, 1.0))
        np.testing.assert_array_equal(lap1, lap2)

    def test_spacing_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            laplacian(np.zeros((16, 16), dtype=np.float32), (1.0, 1.0, 1.0))

    def test_reads_per_point_25_in_3d(self):
        """The paper's 25-point stencil."""
        assert laplacian_reads_per_point(3, 8) == 25
        assert laplacian_reads_per_point(2, 8) == 17

    def test_flops_positive(self):
        assert laplacian_flops_per_point(3, 8) > laplacian_flops_per_point(2, 8) > 0


class TestStaggeredOperators:
    def test_forward_half_point_accuracy(self):
        a, h, x = _sine_2d(n=80)
        d = staggered_diff_forward(a, 0, h)
        expected = np.cos(x[4:-5] + h / 2)[:, None]
        assert np.max(np.abs(d[4:-5, :] - expected)) < 5e-5

    def test_backward_half_point_accuracy(self):
        n = 80
        h = 2 * np.pi / (n - 1)
        x = np.arange(n) * h
        half_samples = np.sin(x + h / 2)
        a = np.ascontiguousarray(np.repeat(half_samples[:, None], 12, axis=1)).astype(np.float32)
        d = staggered_diff_backward(a, 0, h)
        expected = np.cos(x[4:-4])[:, None]
        assert np.max(np.abs(d[4:-4, :] - expected)) < 5e-5

    def test_forward_backward_adjoint_roundtrip(self):
        """D-(D+ x) approximates the second derivative."""
        n = 96
        h = 2 * np.pi / (n - 1)
        x = np.arange(n) * h
        a = np.ascontiguousarray(np.repeat(np.sin(x)[:, None], 8, axis=1)).astype(np.float32)
        d1 = staggered_diff_forward(a, 0, h)
        d2 = staggered_diff_backward(d1, 0, h)
        expected = -np.sin(x[8:-8])[:, None]
        assert np.max(np.abs(d2[8:-8, :] - expected)) < 5e-4

    def test_linear_exact(self):
        """D+ of a linear ramp is exactly 1 (consistency)."""
        n = 32
        a = np.ascontiguousarray(
            np.repeat(np.arange(n, dtype=np.float32)[:, None], 6, axis=1)
        )
        d = staggered_diff_forward(a, 0, 1.0)
        np.testing.assert_allclose(d[4:-4, :], 1.0, rtol=1e-5)

    def test_constant_zero(self):
        a = np.full((32, 8), 5.0, dtype=np.float32)
        d = staggered_diff_backward(a, 0, 1.0)
        np.testing.assert_allclose(d[4:-4, :], 0.0, atol=1e-5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1))
    def test_linearity(self, axis):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((32, 32)).astype(np.float32)
        b = rng.standard_normal((32, 32)).astype(np.float32)
        dab = staggered_diff_forward((a + b), axis, 1.0)
        da = staggered_diff_forward(a, axis, 1.0)
        db = staggered_diff_forward(b, axis, 1.0)
        np.testing.assert_allclose(
            dab[4:-4, 4:-4], (da + db)[4:-4, 4:-4], atol=2e-4
        )
