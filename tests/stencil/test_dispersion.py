import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stencil import (
    dispersion_table,
    phase_velocity_ratio,
    points_per_wavelength_for_accuracy,
    second_derivative_symbol,
    staggered_first_derivative_symbol,
)
from repro.utils.errors import ConfigurationError


class TestSymbols:
    def test_second_derivative_long_wave_limit(self):
        """For kh -> 0 the symbol approaches -(kh)^2."""
        kh = np.array([0.01, 0.05])
        np.testing.assert_allclose(
            second_derivative_symbol(kh, 8), -(kh**2), rtol=1e-4
        )

    def test_staggered_long_wave_limit(self):
        kh = np.array([0.01, 0.05])
        np.testing.assert_allclose(
            staggered_first_derivative_symbol(kh, 8), kh, rtol=1e-4
        )

    def test_higher_order_tracks_exact_further(self):
        kh = np.array([math.pi / 2])  # 4 points per wavelength
        errs = [
            abs(float(second_derivative_symbol(kh, o)[0]) + float(kh[0]) ** 2)
            for o in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_symbol_negative_semidefinite(self):
        kh = np.linspace(0.01, math.pi, 50)
        assert np.all(second_derivative_symbol(kh, 8) <= 0)


class TestPhaseVelocity:
    def test_exact_in_long_wave_limit(self):
        for scheme in ("second_order", "staggered"):
            r = phase_velocity_ratio(np.array([0.01]), scheme, 8, courant=0.2)
            assert float(r[0]) == pytest.approx(1.0, abs=1e-4)

    def test_spatial_order_monotone_at_small_courant(self):
        """With the temporal error suppressed (tiny Courant number), higher
        spatial order means less dispersion."""
        kh = np.array([2 * math.pi / 5])  # 5 ppw
        errs = [
            abs(float(phase_velocity_ratio(kh, "second_order", o, courant=0.02)[0]) - 1)
            for o in (2, 4, 8)
        ]
        assert errs[0] > errs[1] > errs[2]

    def test_temporal_error_dominates_wide_stencils_at_practical_courant(self):
        """At C = 0.4 the leapfrog time error is leading-order for order-8
        operators: shrinking dt (same h) reduces the total error."""
        kh = np.array([2 * math.pi / 6])
        e_fast = abs(float(phase_velocity_ratio(kh, "second_order", 8, courant=0.4)[0]) - 1)
        e_slow = abs(float(phase_velocity_ratio(kh, "second_order", 8, courant=0.1)[0]) - 1)
        assert e_slow < e_fast

    def test_staggered_less_dispersive_than_centered(self):
        """The staggered-grid accuracy advantage the paper cites: at equal
        order and sampling, the staggered symbol is closer to exact."""
        kh = np.array([2 * math.pi / 4])
        e_st = abs(float(phase_velocity_ratio(kh, "staggered", 8, courant=0.05)[0]) - 1)
        e_ce = abs(float(phase_velocity_ratio(kh, "second_order", 8, courant=0.05)[0]) - 1)
        assert e_st < e_ce

    def test_unstable_courant_rejected(self):
        with pytest.raises(ConfigurationError):
            phase_velocity_ratio(np.array([math.pi]), "second_order", 8, courant=0.9)

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            phase_velocity_ratio(np.array([4.0]), "second_order", 8)
        with pytest.raises(ConfigurationError):
            phase_velocity_ratio(np.array([1.0]), "magic", 8)

    @settings(max_examples=25, deadline=None)
    @given(st.floats(min_value=0.05, max_value=2.5),
           st.sampled_from([2, 4, 8]))
    def test_ratio_near_one_and_positive(self, kh, order):
        r = float(phase_velocity_ratio(np.array([kh]), "second_order", order,
                                       courant=0.3)[0])
        assert 0.5 < r < 1.5


class TestDesignHelpers:
    def test_points_per_wavelength_decreases_with_order_small_courant(self):
        ppw = {
            o: points_per_wavelength_for_accuracy(1e-3, "second_order", o, courant=0.02)
            for o in (2, 4, 8)
        }
        assert ppw[2] > ppw[4] > ppw[8]
        assert ppw[8] < 6.0  # the wide operators' selling point

    def test_dispersion_table_structure(self):
        t = dispersion_table("staggered", orders=(2, 8), ppw=(4.0, 10.0), courant=0.1)
        assert set(t) == {2, 8}
        assert set(t[2]) == {4.0, 10.0}
        assert t[2][4.0] > t[2][10.0]
