"""OpenACC present-table and data-directive semantics."""

import numpy as np
import pytest

from repro.acc import CompileFlags, Runtime, PGI_14_6
from repro.gpusim import Device, K40, M2090
from repro.utils.errors import DeviceOutOfMemoryError, PresentTableError
from repro.utils.units import GiB, MB


def rt(spec=K40, **kw):
    return Runtime(Device(spec), compiler=PGI_14_6, **kw)


class TestEnterExitData:
    def test_enter_data_copyin_allocates_and_transfers(self):
        r = rt()
        r.enter_data(copyin={"u": 10 * MB})
        assert r.is_present("u")
        assert r.device.memory.holds("u")
        assert r.device.times.h2d > 0

    def test_create_allocates_without_transfer(self):
        r = rt()
        r.enter_data(create={"tmp": 10 * MB})
        assert r.is_present("tmp")
        assert r.device.times.h2d == 0

    def test_exit_data_delete_frees(self):
        r = rt()
        r.enter_data(copyin={"u": MB})
        r.exit_data(delete=["u"])
        assert not r.is_present("u")
        assert not r.device.memory.holds("u")

    def test_exit_data_copyout_transfers_back(self):
        r = rt()
        r.enter_data(copyin={"u": MB})
        r.exit_data(copyout=["u"])
        assert r.device.times.d2h > 0
        assert not r.is_present("u")

    def test_exit_unknown_raises(self):
        with pytest.raises(PresentTableError):
            rt().exit_data(delete=["ghost"])

    def test_absent_error_lists_present_names(self):
        """Satellite: the present-table miss names what *is* resident and
        suggests the nearest match for likely typos."""
        r = rt()
        r.enter_data(copyin={"wf:u": MB, "wf:v": MB})
        with pytest.raises(PresentTableError) as ei:
            r.update_host("wf:w")
        msg = str(ei.value)
        assert "wf:u" in msg and "wf:v" in msg
        assert "did you mean" in msg

    def test_absent_error_on_empty_table(self):
        with pytest.raises(PresentTableError, match="present table is empty"):
            rt().update_device("u")

    def test_numpy_array_accepted(self):
        r = rt()
        a = np.zeros((64, 64), dtype=np.float32)
        r.enter_data(copyin={"u": a})
        assert r.present_entry("u").nbytes == a.nbytes

    def test_oom_on_fermi(self):
        r = rt(M2090)
        with pytest.raises(DeviceOutOfMemoryError):
            r.enter_data(copyin={"huge": 7 * GiB})


class TestRefcounting:
    def test_nested_attach_single_transfer(self):
        """Re-attaching present data must not re-transfer (OpenACC
        refcount semantics)."""
        r = rt()
        r.enter_data(copyin={"u": 10 * MB})
        t1 = r.device.times.h2d
        r.enter_data(copyin={"u": 10 * MB})
        assert r.device.times.h2d == t1
        assert r.present_entry("u").refcount == 2

    def test_detach_frees_only_at_zero(self):
        r = rt()
        r.enter_data(copyin={"u": MB})
        r.enter_data(copyin={"u": MB})
        r.exit_data(delete=["u"])
        assert r.is_present("u")
        r.exit_data(delete=["u"])
        assert not r.is_present("u")


class TestStructuredRegions:
    def test_data_region_lifecycle(self):
        r = rt()
        with r.data(copyin={"u": MB}, create={"tmp": MB}):
            assert r.is_present("u") and r.is_present("tmp")
        assert not r.is_present("u") and not r.is_present("tmp")

    def test_copy_clause_roundtrips(self):
        r = rt()
        with r.data(copy={"u": MB}):
            pass
        assert r.device.times.h2d > 0
        assert r.device.times.d2h > 0

    def test_copyout_clause_no_in_transfer(self):
        r = rt()
        with r.data(copyout={"u": MB}):
            h2d_inside = r.device.times.h2d
        assert h2d_inside == 0
        assert r.device.times.d2h > 0

    def test_present_clause_checks(self):
        r = rt()
        with pytest.raises(PresentTableError):
            with r.data(present=["u"]):
                pass

    def test_nested_regions(self):
        r = rt()
        with r.data(copyin={"u": MB}):
            with r.data(copyin={"u": MB}, present=["u"]):
                assert r.present_entry("u").refcount == 2
            assert r.is_present("u")
        assert not r.is_present("u")

    def test_region_cleans_up_on_exception(self):
        r = rt()
        with pytest.raises(RuntimeError):
            with r.data(copyin={"u": MB}):
                raise RuntimeError("boom")
        assert not r.is_present("u")

    def test_shutdown_check_detects_leaks(self):
        r = rt()
        r.enter_data(copyin={"u": MB})
        with pytest.raises(PresentTableError):
            r.shutdown_check()


class TestUpdateDirectives:
    def test_update_host_full(self):
        r = rt()
        r.enter_data(copyin={"u": 10 * MB})
        t = r.update_host("u")
        assert t > 0
        assert r.device.times.d2h == pytest.approx(t)

    def test_update_device_partial_cheaper(self):
        """Ghost-node updates: partial transfers move less."""
        r = rt()
        r.enter_data(copyin={"u": 100 * MB})
        full = r.update_device("u")
        part = r.update_device("u", nbytes=MB, chunks=64)
        assert part < full

    def test_update_not_present_raises(self):
        with pytest.raises(PresentTableError):
            rt().update_host("nope")

    def test_update_beyond_extent_raises(self):
        r = rt()
        r.enter_data(copyin={"u": MB})
        with pytest.raises(PresentTableError):
            r.update_host("u", nbytes=2 * MB)

    def test_present_bytes(self):
        r = rt()
        r.enter_data(copyin={"u": MB, "v": 2 * MB})
        assert r.present_bytes() == 3 * MB


class TestFlags:
    def test_pin_flag_sets_device(self):
        r = rt(flags=CompileFlags(pin=True))
        assert r.device.pinned_host
        r2 = rt(flags=CompileFlags(pin=False))
        assert not r2.device.pinned_host

    def test_toolkit_follows_compiler(self):
        from repro.acc import PGI_14_3, CRAY_8_2_6
        from repro.gpusim.specs import CUDA_5_0, CUDA_5_5

        assert Runtime(Device(K40), compiler=PGI_14_3).device.toolkit is CUDA_5_0
        assert Runtime(Device(K40), compiler=CRAY_8_2_6).device.toolkit is CUDA_5_5
