"""Compute constructs: execution + timing + interaction with data clauses."""

import numpy as np
import pytest

from repro.acc import CRAY_8_2_6, PGI_14_6, LoopSchedule, Runtime
from repro.gpusim import Device, K40
from repro.propagators.base import KernelWorkload
from repro.utils.errors import PresentTableError
from repro.utils.units import MB


def wl(points=10**6):
    return KernelWorkload(
        name="k",
        points=points,
        flops_per_point=30.0,
        reads_per_point=12.0,
        writes_per_point=2.0,
        loop_dims=(1024, points // 1024 if points >= 1024 else 1),
        address_streams=6,
    )


class TestExecution:
    def test_fn_executes_real_work(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        a = np.zeros(8)

        def body():
            a[:] = 42.0

        r.kernels(wl(), fn=body)
        np.testing.assert_array_equal(a, 42.0)

    def test_kernels_charges_device_time(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        est = r.kernels(wl())
        assert est.seconds > 0
        assert r.device.times.kernel == pytest.approx(est.seconds)

    def test_present_check_enforced(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        with pytest.raises(PresentTableError):
            r.kernels(wl(), present=["u"])
        r.enter_data(copyin={"u": MB})
        r.kernels(wl(), present=["u"])  # now fine

    def test_compute_uses_preferred_path(self):
        """rt.compute under PGI == kernels+independent, under CRAY ==
        parallel+gwv; both must gridify (the tuned builds)."""
        for persona in (PGI_14_6, CRAY_8_2_6):
            r = Runtime(Device(K40), compiler=persona)
            est = r.compute(wl())
            assert est.seconds > 0

    def test_cray_auto_async_uses_queues(self):
        r = Runtime(Device(K40), compiler=CRAY_8_2_6)
        r.compute(wl())
        ev = r.device.profiler.events[-1]
        assert ev.queue is not None

    def test_pgi_default_synchronous(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        r.compute(wl())
        ev = r.device.profiler.events[-1]
        assert ev.queue is None

    def test_explicit_async_queue(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        r.kernels(wl(), async_=3)
        assert r.device.profiler.events[-1].queue == 3

    def test_wait_blocks_until_done(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        est = r.kernels(wl(), async_=1)
        before = r.device.elapsed
        r.wait()
        assert r.device.elapsed >= before
        assert r.device.elapsed >= est.seconds


class TestConstructPerformanceShape:
    def test_cray_parallel_beats_kernels(self):
        """Figures 8-9 at construct level."""
        r = Runtime(Device(K40), compiler=CRAY_8_2_6)
        k = r.kernels(wl(), schedule=LoopSchedule.auto(), async_=False)
        p = r.parallel(wl(), schedule=LoopSchedule.gwv(), async_=False)
        assert p.seconds < k.seconds

    def test_pgi_kernels_beats_bare_parallel(self):
        r = Runtime(Device(K40), compiler=PGI_14_6)
        k = r.kernels(wl(), schedule=LoopSchedule(independent=True))
        p = r.parallel(wl(), schedule=LoopSchedule.auto())
        assert k.seconds < p.seconds
