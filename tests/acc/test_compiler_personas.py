"""Compiler-persona lowering rules (paper Section 5.2)."""

import pytest

from repro.acc import (
    COMPILERS,
    CRAY_8_2_6,
    PGI_13_7,
    PGI_14_3,
    PGI_14_6,
    CompileFlags,
    LoopSchedule,
)
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError


def wl(branches=False, contiguous=True, dims=(128, 128, 128)):
    import numpy as np

    return KernelWorkload(
        name="k",
        points=int(np.prod(dims)),
        flops_per_point=30.0,
        reads_per_point=12.0,
        writes_per_point=2.0,
        loop_dims=dims,
        address_streams=6,
        has_branches=branches,
        inner_contiguous=contiguous,
    )


class TestLoopSchedule:
    def test_gwv_is_explicit(self):
        assert LoopSchedule.gwv().explicit

    def test_auto_is_not(self):
        assert not LoopSchedule.auto().explicit

    def test_seq_conflicts_with_gang(self):
        with pytest.raises(ConfigurationError):
            LoopSchedule(seq=True, gang=True)

    def test_vector_length_bounds(self):
        with pytest.raises(ConfigurationError):
            LoopSchedule(vector_length=2048)


class TestPGILowering:
    def test_kernels_with_independent_gridifies(self):
        cfg = PGI_14_6.lower("kernels", wl(), LoopSchedule(independent=True))
        assert cfg.gridified
        assert cfg.collapsed_levels == 2

    def test_kernels_without_independent_does_not(self):
        cfg = PGI_14_6.lower("kernels", wl(), LoopSchedule.auto())
        assert not cfg.gridified

    def test_parallel_without_schedule_is_poor(self):
        """PGI parallel without explicit gang/vector maps gangs over the
        outer loop only."""
        cfg = PGI_14_6.lower("parallel", wl(), LoopSchedule.auto())
        assert not cfg.gridified

    def test_parallel_with_full_schedule_ok(self):
        cfg = PGI_14_6.lower("parallel", wl(), LoopSchedule.gwv())
        assert cfg.gridified

    def test_143_cannot_gridify_branchy_kernels(self):
        """The Figure 7 mechanism."""
        cfg = PGI_14_3.lower("kernels", wl(branches=True), LoopSchedule(independent=True))
        assert not cfg.gridified

    def test_146_gridifies_branchy_kernels(self):
        """The Figure 6 contrast."""
        cfg = PGI_14_6.lower("kernels", wl(branches=True), LoopSchedule(independent=True))
        assert cfg.gridified

    def test_preferred_construct(self):
        assert PGI_14_6.preferred_construct() == "kernels"

    def test_maxregcount_flag_propagates(self):
        cfg = PGI_14_6.lower(
            "kernels", wl(), LoopSchedule(independent=True), CompileFlags(maxregcount=64)
        )
        assert cfg.maxregcount == 64


class TestCRAYLowering:
    def test_parallel_gwv_best(self):
        cfg = CRAY_8_2_6.lower("parallel", wl(), LoopSchedule.gwv())
        assert cfg.gridified
        assert cfg.coalesced

    def test_parallel_auto_may_vectorize_wrong_loop(self):
        cfg = CRAY_8_2_6.lower("parallel", wl(), LoopSchedule.auto())
        assert not cfg.coalesced

    def test_kernels_auto_uncoalesced(self):
        """Figures 8-9: bare kernels under CRAY underperforms explicit
        parallel."""
        cfg = CRAY_8_2_6.lower("kernels", wl(), LoopSchedule.auto())
        assert not cfg.coalesced

    def test_preferred_construct(self):
        assert CRAY_8_2_6.preferred_construct() == "parallel"

    def test_inlining_support(self):
        assert CRAY_8_2_6.supports_inlining
        assert not PGI_14_6.supports_inlining

    def test_auto_async(self):
        assert CRAY_8_2_6.auto_async_kernels
        assert not PGI_14_6.auto_async_kernels

    def test_known_failures(self):
        assert "elastic-3d-rtm" in CRAY_8_2_6.known_failures
        assert PGI_14_6.known_failures == ()


class TestRegistry:
    def test_all_four_compilers(self):
        assert set(COMPILERS) == {"pgi-13.7", "pgi-14.3", "pgi-14.6", "cray-8.2.6"}

    def test_invalid_construct(self):
        with pytest.raises(ConfigurationError):
            PGI_13_7.lower("teams", wl())

    def test_pgi_async_factor_high(self):
        for p in (PGI_13_7, PGI_14_3, PGI_14_6):
            assert p.async_enqueue_factor > CRAY_8_2_6.async_enqueue_factor
