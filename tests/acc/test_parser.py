"""The OpenACC directive-string parser, including the paper's own
directive sequences verbatim."""

import warnings

import numpy as np
import pytest

from repro.acc import (
    IneffectiveDirectiveWarning,
    PGI_14_6,
    Runtime,
    apply_directive,
    parse_directive,
)
from repro.gpusim import Device, K40
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError, PresentTableError
from repro.utils.units import MB


def wl():
    return KernelWorkload("k", 10**5, 20.0, 8, 2, (1000, 100), address_streams=5)


class TestParsing:
    def test_fortran_sentinel(self):
        d = parse_directive("!$acc kernels")
        assert d.construct == "kernels"

    def test_c_sentinel(self):
        d = parse_directive("#pragma acc parallel loop gang vector")
        assert d.construct == "parallel"
        assert d.schedule.gang and d.schedule.vector

    def test_case_insensitive_sentinel(self):
        """The paper writes 'ACC ENTER DATA COPYIN' in caps."""
        d = parse_directive("!$ACC ENTER DATA COPYIN(u, v)")
        assert d.construct == "enter data"
        assert d.data["copyin"] == ("u", "v")

    def test_exit_data_delete(self):
        d = parse_directive("!$acc exit data delete(u) copyout(image)")
        assert d.construct == "exit data"
        assert d.data["delete"] == ("u",)
        assert d.data["copyout"] == ("image",)

    def test_update_host_device(self):
        d = parse_directive("!$acc update host(u) device(v, w)")
        assert d.update_host == ("u",)
        assert d.update_device == ("v", "w")

    def test_loop_scheduling_clauses(self):
        d = parse_directive(
            "!$acc parallel loop gang worker vector vector_length(256) "
            "collapse(2) independent"
        )
        s = d.schedule
        assert s.explicit
        assert s.vector_length == 256
        assert s.collapse == 2
        assert s.independent

    def test_vector_with_inline_length(self):
        d = parse_directive("!$acc loop gang vector(64)")
        assert d.schedule.vector_length == 64

    def test_async_with_queue(self):
        d = parse_directive("!$acc kernels async(3)")
        assert d.async_ == 3

    def test_bare_async(self):
        d = parse_directive("!$acc kernels async")
        assert d.async_ is True

    def test_wait_queues(self):
        d = parse_directive("!$acc wait(1, 2)")
        assert d.construct == "wait"
        assert d.wait_on == (1, 2)

    def test_present_clause(self):
        d = parse_directive("!$acc kernels present(u, vp)")
        assert d.data["present"] == ("u", "vp")

    def test_tile_clause_parses_with_warning(self):
        with pytest.warns(IneffectiveDirectiveWarning):
            d = parse_directive("!$acc loop tile(32, 4)")
        assert d.schedule.tile == (32, 4)

    def test_cache_directive(self):
        d = parse_directive("!$acc cache(u, tmp)")
        assert d.cache_vars == ("u", "tmp")

    def test_compute_without_clauses_gets_auto_schedule(self):
        """A compute construct always carries a schedule: bare directives
        normalize to the compiler-decides marker instead of None."""
        from repro.acc.clauses import LoopSchedule

        for text in ("!$acc kernels", "!$acc parallel loop", "!$acc loop"):
            d = parse_directive(text)
            assert d.schedule == LoopSchedule.auto()
            assert not d.schedule.explicit

    def test_data_constructs_have_no_schedule(self):
        assert parse_directive("!$acc enter data copyin(u)").schedule is None
        assert parse_directive("!$acc update host(u)").schedule is None

    def test_wait_clause_on_compute(self):
        d = parse_directive("!$acc parallel loop wait(1, 2) async(3)")
        assert d.wait_on == (1, 2)
        assert d.async_ == 3

    def test_errors(self):
        with pytest.raises(ConfigurationError):
            parse_directive("not a directive")
        with pytest.raises(ConfigurationError):
            parse_directive("!$acc teams distribute")
        with pytest.raises(ConfigurationError):
            parse_directive("!$acc enter copyin(u)")
        with pytest.raises(ConfigurationError):
            parse_directive("!$acc update")
        with pytest.raises(ConfigurationError):
            parse_directive("!$acc")


class TestApplication:
    def test_paper_section51_sequence(self):
        """The paper's Section 5.1 step 1/5 pattern, executed verbatim:
        ENTER DATA COPYIN after host allocation, EXIT DATA DELETE before
        de-allocation, PRESENT on kernels in between."""
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        u = np.zeros((256, 256), dtype=np.float32)
        apply_directive(rt, "!$ACC ENTER DATA COPYIN(u)", data={"u": u})
        assert rt.is_present("u")
        est = apply_directive(
            rt, "!$acc kernels loop independent present(u)", workload=wl()
        )
        assert est.seconds > 0
        apply_directive(rt, "!$acc update host(u)")
        apply_directive(rt, "!$ACC EXIT DATA DELETE(u)")
        rt.shutdown_check()

    def test_present_violation_detected(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        with pytest.raises(PresentTableError):
            apply_directive(rt, "!$acc kernels present(ghost)", workload=wl())

    def test_compute_needs_workload(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        with pytest.raises(ConfigurationError):
            apply_directive(rt, "!$acc kernels")

    def test_fn_executes(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        hit = []
        apply_directive(rt, "!$acc parallel loop gang vector",
                        workload=wl(), fn=lambda: hit.append(1))
        assert hit == [1]

    def test_async_and_wait_flow(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        apply_directive(rt, "!$acc kernels async(2)", workload=wl())
        apply_directive(rt, "!$acc wait(2)")
        assert rt.device.streams.idle()

    def test_wait_clause_threads_through_to_runtime(self):
        """Satellite: 'wait(q)' on a compute construct drains queue q
        before the launch (it used to be parsed and silently dropped)."""
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        apply_directive(rt, "!$acc kernels async(1)", workload=wl())
        assert not rt.device.streams.idle()
        apply_directive(rt, "!$acc kernels wait(1)", workload=wl())
        assert rt.device.streams.idle()

    def test_missing_size_rejected(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        with pytest.raises(ConfigurationError):
            apply_directive(rt, "!$acc enter data copyin(u)")

    def test_cache_application(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        rt.enter_data(copyin={"u": MB})
        with pytest.warns(IneffectiveDirectiveWarning):
            apply_directive(rt, "!$acc cache(u)")
