import warnings

import pytest

from repro.acc import (
    CRAY_8_2_6,
    PGI_14_3,
    PGI_14_6,
    CompileFlags,
    IneffectiveDirectiveWarning,
    LoopSchedule,
    Runtime,
    explain_lowering,
    minfo,
)
from repro.gpusim import Device, K40
from repro.propagators.workloads import acoustic_workloads, isotropic_workloads
from repro.utils.errors import ConfigurationError
from repro.utils.units import MB


def flow_kernel():
    return acoustic_workloads((256, 256, 256))[1]


class TestMinfo:
    def test_pgi_parallelizable_message(self):
        msgs = minfo(PGI_14_6, "kernels", flow_kernel(), LoopSchedule(independent=True))
        text = "\n".join(msgs)
        assert "Loop is parallelizable" in text
        assert "Accelerator kernel generated" in text
        assert "vector(128)" in text

    def test_pgi_reports_register_clamp(self):
        msgs = minfo(
            PGI_14_6, "kernels", flow_kernel(), LoopSchedule(independent=True),
            CompileFlags(maxregcount=64),
        )
        assert any("64 registers used" in m for m in msgs)

    def test_pgi_143_branchy_diagnostic(self):
        (branchy,) = isotropic_workloads((256, 256, 256), variant="branchy")
        msgs = minfo(PGI_14_3, "kernels", branchy, LoopSchedule(independent=True))
        assert any("prevents gridification" in m for m in msgs)

    def test_pgi_dependence_message_without_independent(self):
        msgs = minfo(PGI_14_6, "kernels", flow_kernel(), LoopSchedule.auto())
        assert any("independent clause" in m for m in msgs)

    def test_cray_loopmark(self):
        msgs = minfo(CRAY_8_2_6, "parallel", flow_kernel(), LoopSchedule.gwv())
        assert msgs[0].startswith("GV")
        assert any("gang" in m for m in msgs)

    def test_cray_auto_heuristic_warning(self):
        msgs = minfo(CRAY_8_2_6, "kernels", flow_kernel(), LoopSchedule.auto())
        assert any("heuristically" in m for m in msgs)

    def test_explain_lowering_uses_preferred(self):
        text = explain_lowering(PGI_14_6, flow_kernel())
        assert "Loop is parallelizable" in text
        text_c = explain_lowering(CRAY_8_2_6, flow_kernel())
        assert "gang, worker" in text_c


class TestInertDirectives:
    def test_tile_clause_warns(self):
        with pytest.warns(IneffectiveDirectiveWarning):
            LoopSchedule(tile=(32, 8))

    def test_tile_has_no_performance_effect(self):
        """The paper's complaint, encoded: tiled and untiled lowerings run
        at identical modelled speed."""
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        w = flow_kernel()
        plain = rt.kernels(w, schedule=LoopSchedule(independent=True))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", IneffectiveDirectiveWarning)
            tiled_schedule = LoopSchedule(independent=True, tile=(32, 8))
        tiled = rt.kernels(w, schedule=tiled_schedule)
        assert tiled.seconds == pytest.approx(plain.seconds)

    def test_tile_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            LoopSchedule(tile=(0,))

    def test_cache_directive_warns_and_checks_presence(self):
        rt = Runtime(Device(K40), compiler=PGI_14_6)
        rt.enter_data(copyin={"u": MB})
        with pytest.warns(IneffectiveDirectiveWarning):
            rt.cache("u")

    def test_cache_requires_present_data(self):
        from repro.utils.errors import PresentTableError

        rt = Runtime(Device(K40), compiler=PGI_14_6)
        with pytest.raises(PresentTableError):
            rt.cache("ghost")
