"""The hard refusal cases: cross-queue waits, degenerate hoists, stale
artifacts. The compiler must fail closed on every one."""

import json

import pytest

from repro.analyze.dataflow import find_opportunities, verify_opportunity
from repro.analyze.dataflow.opportunities import OptimizationOpportunity
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.compile import CompileRequest, apply_to_template, compile_case
from repro.compile.compiler import (
    SelectedOpportunity,
    _structural_reason,
)
from repro.utils.errors import StaleArtifactError


def prog(events, extents=None):
    p = DirectiveProgram()
    for e in events:
        p.add(e)
    p.extents.update(extents or {"u": 1024, "v": 1024})
    return p


class TestFuseAcrossWait:
    """Fusing two computes across a ``wait`` another queue depends on
    would reorder that queue's synchronisation point: always rejected."""

    def cross_queue_program(self):
        return prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", queue=None,
                     writes=("u",), writes_known=True),
            # queue 1's producer must drain before anything later runs
            AccEvent(kind="wait", wait_on=(1,)),
            AccEvent(kind="compute", kernel="b", queue=None,
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])

    def test_finder_never_offers_the_pair(self):
        report = find_opportunities(self.cross_queue_program())
        assert not any(
            o.kind == "fuse-computes" and o.events == (1, 3)
            for o in report.opportunities
        )

    def test_structural_check_rejects_a_forged_record(self):
        # even a verified-flagged artifact record is refused structurally
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 3), kernels=("a", "b"),
            remove_events=(3,), verified=True,
        )
        reason = _structural_reason(self.cross_queue_program(), opp)
        assert reason is not None and "wait" in reason

    def test_different_queues_rejected(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2,
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 2), kernels=("a", "b"),
            remove_events=(2,), verified=True,
        )
        assert "queue" in _structural_reason(p, opp)


class TestTripCountOneHoist:
    """Hoisting an ``update`` out of a loop that runs exactly once is the
    degenerate case: legal, and must leave the schedule byte-identical."""

    def one_trip_program(self):
        return prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="update", direction="device", var="u"),
            AccEvent(kind="compute", kernel="k", reads=("u",)),
            AccEvent(kind="exit", delete=("u",)),
        ], extents={"u": 1024})

    def test_replay_proves_the_degenerate_hoist(self):
        p = self.one_trip_program()
        opp = OptimizationOpportunity(
            kind="hoist-update", events=(1,), var="u",
            remove_events=(1,), insert_at=1,
        )
        assert verify_opportunity(p, opp)

    def test_template_application_moves_it_to_the_prologue(self):
        p = self.one_trip_program()
        template = list(p.events[1:3])  # the "loop body": update + compute
        opp = OptimizationOpportunity(
            kind="hoist-update", events=(1,), var="u",
            remove_events=(1,), insert_at=1, verified=True,
        )
        sel = SelectedOpportunity(
            opportunity=opp, phase="forward", offsets=(0,)
        )
        transformed, hoisted = apply_to_template(template, [sel], p)
        assert [e.kind for e in transformed] == ["compute"]
        assert len(hoisted) == 1
        assert (hoisted[0].kind, hoisted[0].var) == ("update", "u")


class TestStaleArtifact:
    """A hash-mismatched opportunities artifact must fail closed with an
    actionable error — never silently compile without proofs."""

    def test_mismatched_nt_is_stale(self):
        req8 = CompileRequest.from_case("iso2d", "rtm", nt=8)
        from repro.analyze.dataflow import reports_to_json
        from repro.compile import record_segments
        from repro.compile.compiler import _default_runtime_factory
        from repro.core.config import GPUOptions

        options = GPUOptions()
        rec = record_segments(
            req8, options, _default_runtime_factory(options, None)
        )
        report = find_opportunities(rec.program, verify=False)
        report.program_sha = rec.program.sha()
        artifact = reports_to_json([report])
        # same case, different nt -> different schedule -> different sha
        req12 = CompileRequest.from_case("iso2d", "rtm", nt=12)
        with pytest.raises(StaleArtifactError) as err:
            compile_case(req12, artifact=artifact)
        message = str(err.value)
        assert "stale" in message
        assert "deps" in message  # tells the user how to re-record

    def test_cli_exit_code_two(self, tmp_path, capsys):
        from repro.__main__ import build_parser
        from repro.compile.cli import run_compile_command

        artifact = {
            "schema": 1,
            "programs": [{
                "name": "isotropic-2d-rtm",
                "case": "iso2d", "mode": "rtm",
                "program_sha": "0" * 64,
                "opportunities": [],
            }],
        }
        path = tmp_path / "stale.json"
        path.write_text(json.dumps(artifact))
        args = build_parser().parse_args([
            "compile", "iso2d", "--mode", "rtm", "--nt", "4",
            "--opportunities", str(path), "--no-ledger",
        ])
        assert run_compile_command(args) == 2
        assert "STALE ARTIFACT" in capsys.readouterr().out
