"""The ``GPUOptions.compiled`` fast path: drivers, cache, multi-GPU."""

import pytest

from repro.compile import runner
from repro.core.config import GPUOptions
from repro.core.modeling import _build_runtime
from repro.core.multigpu import MultiGpuPipeline
from repro.core.pipeline import (
    OffloadPipeline,
    run_pipeline_modeling,
    run_pipeline_rtm,
)
from repro.core.platform import CRAY_K40


@pytest.fixture(autouse=True)
def fresh_cache():
    runner.clear_cache()
    yield
    runner.clear_cache()


def pipeline(compiled=False, physics="isotropic", **opts):
    options = GPUOptions(compiled=compiled, **opts)
    rt = _build_runtime(options, CRAY_K40)
    return OffloadPipeline(
        rt, physics, (96, 96), nreceivers=16, space_order=8,
        boundary_width=8, options=options, pml_variant="restructured",
    )


class TestSinglePipeline:
    def test_rtm_compiled_launches_fewer_kernels(self):
        interp = run_pipeline_rtm(pipeline(False), 8, 4)
        compiled = run_pipeline_rtm(pipeline(True), 8, 4)
        assert interp.success and compiled.success
        assert compiled.launches < interp.launches
        assert compiled.total <= interp.total

    def test_modeling_compiled(self):
        interp = run_pipeline_modeling(pipeline(False), 8, 4)
        compiled = run_pipeline_modeling(pipeline(True), 8, 4)
        assert compiled.success and compiled.launches < interp.launches

    def test_pipeline_bookkeeping_reset_after_compiled_run(self):
        p = pipeline(True)
        run_pipeline_rtm(p, 8, 4)
        assert p.phase == "idle"
        assert p.rt.present_names() == ()

    def test_known_failure_still_reports_compiler_x(self):
        from repro.acc.compiler import CRAY_8_2_6

        options = GPUOptions(compiled=True, compiler=CRAY_8_2_6)
        rt = _build_runtime(options, CRAY_K40)
        p = OffloadPipeline(
            rt, "elastic", (24, 24, 24), nreceivers=16, space_order=4,
            boundary_width=8, options=options, pml_variant="restructured",
        )
        times = run_pipeline_rtm(p, 4, 4)
        assert not times.success and times.failure == "compiler"


class TestCache:
    def test_same_shape_compiles_once(self):
        a, b = pipeline(True), pipeline(True)
        ca = runner.compiled_for_pipeline(a, "rtm", 8, 4)
        cb = runner.compiled_for_pipeline(b, "rtm", 8, 4)
        assert ca is cb

    def test_different_nt_recompiles(self):
        p = pipeline(True)
        assert runner.compiled_for_pipeline(p, "rtm", 8, 4) is not (
            runner.compiled_for_pipeline(p, "rtm", 12, 4)
        )


class TestMultiGpu:
    def test_ranks_match_interpreted_launch_savings(self):
        interp = MultiGpuPipeline(
            "isotropic", (96, 96), 2, options=GPUOptions(), boundary_width=8
        ).run_rtm(8, 4)
        compiled = MultiGpuPipeline(
            "isotropic", (96, 96), 2, options=GPUOptions(compiled=True),
            boundary_width=8,
        ).run_rtm(8, 4)
        assert len(compiled) == 2
        for ti, tc in zip(interp, compiled):
            assert tc.success and tc.launches < ti.launches

    def test_modeling_ranks(self):
        times = MultiGpuPipeline(
            "acoustic", (96, 96), 2, options=GPUOptions(compiled=True),
            boundary_width=8,
        ).run_modeling(8, 4)
        assert all(t.success for t in times)

    def test_sanitized_ranks_stay_clean_under_compiled_steps(self):
        # recorders force faithful binding; the sanitizer must see the
        # same coherent schedule it sees interpreted
        from repro.sanitize.session import SanitizeSession

        def diag_rules(compiled):
            session = SanitizeSession(nranks=2, name="compiled-multigpu")
            MultiGpuPipeline(
                "isotropic", (96, 96), 2,
                options=GPUOptions(compiled=compiled),
                boundary_width=8, session=session,
            ).run_modeling(8, 4)
            return sorted(
                (d.rule, d.var or "") for d in session.diagnostics
            )

        assert diag_rules(compiled=True) == diag_rules(compiled=False)
