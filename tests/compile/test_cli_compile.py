"""``python -m repro compile`` surface: targets, output, artifacts."""

import json

import pytest

from repro.__main__ import build_parser
from repro.compile.cli import compile_targets, run_compile_command


def parse(*argv):
    return build_parser().parse_args(["compile", *argv])


class TestTargets:
    def test_all_is_twelve(self):
        targets = compile_targets(parse("all", "--no-ledger"))
        assert len(targets) == 12
        labels = [label for label, _ in targets]
        assert "iso2d (rtm)" in labels or "isotropic2d (rtm)" in labels

    def test_single_case_both_modes(self):
        targets = compile_targets(parse("iso2d"))
        assert [req.mode for _, req in targets] == ["modeling", "rtm"]

    def test_mode_filter(self):
        targets = compile_targets(parse("iso2d", "--mode", "rtm"))
        assert [req.mode for _, req in targets] == ["rtm"]


class TestCommand:
    def test_text_output_and_exit_zero(self, capsys):
        args = parse("iso2d", "--mode", "rtm", "--nt", "8", "--no-ledger")
        assert run_compile_command(args) == 0
        out = capsys.readouterr().out
        assert "verified: True" in out
        assert "applied fuse-computes" in out

    def test_json_output(self, capsys):
        args = parse(
            "iso2d", "--mode", "rtm", "--nt", "8", "--no-ledger",
            "--format", "json",
        )
        assert run_compile_command(args) == 0
        doc = json.loads(capsys.readouterr().out)
        (target,) = doc["targets"]
        assert target["verified"]
        assert target["launches_per_step"]["compiled"] < (
            target["launches_per_step"]["interpreted"]
        )

    def test_bench_writes_the_document(self, tmp_path, capsys):
        bench = tmp_path / "BENCH_step.json"
        args = parse(
            "iso2d", "--mode", "modeling", "--nt", "8", "--no-ledger",
            "--bench", str(bench), "--repeats", "1",
        )
        assert run_compile_command(args) == 0
        doc = json.loads(bench.read_text())
        assert doc["schema"] == 1 and doc["benchmark"] == "step_compile"
        (case,) = doc["cases"].values()
        assert case["verified"]
        assert case["compiled_step_s"] <= case["interpreted_step_s"]

    def test_ledger_append(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        args = parse(
            "iso2d", "--mode", "rtm", "--nt", "8", "--ledger", str(ledger),
        )
        assert run_compile_command(args) == 0
        lines = ledger.read_text().strip().splitlines()
        record = json.loads(lines[-1])
        assert record["command"] == "compile"
        assert record["metrics"]["applied"] >= 1
