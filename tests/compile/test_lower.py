"""Lowering: events -> LoweredOps -> bound thunks (both fidelities)."""

import pytest

from repro.acc.runtime import Runtime
from repro.analyze.program import AccEvent
from repro.analyze.recorder import ProgramRecorder
from repro.compile.lower import (
    LoweredOp,
    WorkloadRegistry,
    bind_ops,
    lower_events,
)
from repro.core.modeling import _build_runtime
from repro.core.config import GPUOptions
from repro.core.platform import CRAY_K40
from repro.propagators.workloads import workloads_for
from repro.utils.errors import CompileError

EXTENTS = {"u": 4096, "v": 2048}


def fresh_rt() -> Runtime:
    return _build_runtime(GPUOptions(), CRAY_K40)


def workloads():
    return workloads_for("acoustic", (64, 64), 8)


class TestLowerEvents:
    def test_enter_resolves_sizes(self):
        (op,) = lower_events(
            [AccEvent(kind="enter", copyin=("u",), create=("v",))], EXTENTS
        )
        assert op.kind == "enter"
        assert dict(op.sizes) == {"u": 4096, "v": 2048}

    def test_full_update_resolves_extent(self):
        (op,) = lower_events(
            [AccEvent(kind="update", direction="host", var="u")], EXTENTS
        )
        assert op.nbytes == 4096 and op.full

    def test_partial_update_keeps_bytes(self):
        (op,) = lower_events(
            [AccEvent(kind="update", direction="device", var="u",
                      nbytes=128, offset=64, chunks=2)],
            EXTENTS,
        )
        assert (op.nbytes, op.offset, op.chunks, op.full) == (128, 64, 2, False)

    def test_full_update_without_extent_refused(self):
        with pytest.raises(CompileError, match="no recorded extent"):
            lower_events(
                [AccEvent(kind="update", direction="host", var="w")], EXTENTS
            )

    def test_bare_wait_means_all_queues(self):
        (op,) = lower_events([AccEvent(kind="wait", wait_on=())], EXTENTS)
        assert op.queue is None
        (op,) = lower_events([AccEvent(kind="wait", wait_on=(3,))], EXTENTS)
        assert op.queue == 3

    def test_send_recv_not_lowerable(self):
        with pytest.raises(CompileError, match="not lowerable"):
            lower_events([AccEvent(kind="send", var="u", peer=1)], EXTENTS)


class TestWorkloadRegistry:
    def test_resolves_plain_and_fused_names(self):
        pool = workloads()
        reg = WorkloadRegistry(pool)
        name = f"{pool[0].name}+{pool[0].name}"
        fused = reg.resolve(name)
        assert fused.name == name
        assert fused.address_streams == 2 * pool[0].address_streams
        # memoised
        assert reg.resolve(name) is fused

    def test_unknown_kernel_refused(self):
        reg = WorkloadRegistry(workloads())
        with pytest.raises(CompileError, match="unknown kernel"):
            reg.resolve("nope")
        with pytest.raises(CompileError, match="not in the registry"):
            reg.resolve("nope+nada")


class TestBinding:
    def events(self, kernel):
        return [
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", construct="kernels", kernel=kernel,
                     reads=("u",)),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="wait"),
            AccEvent(kind="exit", delete=("u",)),
        ]

    def test_faithful_mode_records_the_same_schedule(self):
        pool = workloads()
        ops = lower_events(self.events(pool[0].name), {"u": 4096})
        rt = fresh_rt()
        rec = ProgramRecorder(name="bound")
        rt.attach_recorder(rec)
        step = bind_ops("test", ops, rt, WorkloadRegistry(pool))
        assert step.faithful  # recorder attached -> auto-faithful
        step()
        assert [e.kind for e in rec.program.events] == [
            "enter", "compute", "update", "wait", "exit",
        ]
        assert rec.program.events[1].queue is None  # async_=False, not None

    def test_fast_mode_charges_the_device_identically(self):
        pool = workloads()
        ops = lower_events(self.events(pool[0].name), {"u": 4096})
        reg = WorkloadRegistry(pool)
        rt_a, rt_b = fresh_rt(), fresh_rt()
        bind_ops("test", ops, rt_a, reg, faithful=True)()
        fast = bind_ops("test", ops, rt_b, reg)
        assert not fast.faithful
        fast()
        assert rt_b.device.elapsed == pytest.approx(rt_a.device.elapsed)
        assert rt_b.device.kernel_launches == rt_a.device.kernel_launches

    def test_launch_count_property(self):
        pool = workloads()
        ops = lower_events(self.events(pool[0].name), {"u": 4096})
        step = bind_ops("test", ops, fresh_rt(), WorkloadRegistry(pool))
        assert step.launches == 1
