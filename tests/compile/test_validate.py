"""The translation validator: per-opportunity proofs, the whole-pipeline
simulation relation, the validator-vs-replay cross-check, and the
multi-GPU prologue lift."""

import pytest

from repro.analyze.dataflow import verify_opportunity
from repro.analyze.dataflow.opportunities import OptimizationOpportunity
from repro.analyze.framework import Severity
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.compile import CompileRequest, compile_case
from repro.compile.lower import LoweredOp
from repro.compile.validate import (
    message_schedule_preserved,
    prologue_lift_proof,
    validate_opportunity,
)


def prog(events, extents=None):
    p = DirectiveProgram()
    for e in events:
        p.add(e)
    p.extents.update(extents or {"u": 1024, "v": 1024})
    return p


def errors(diags):
    return [d for d in diags if d.severity >= Severity.ERROR]


class TestValidateOpportunity:
    def test_clean_adjacent_fusion_admitted(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", reads=("u",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", reads=("v",),
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 2), kernels=("a", "b"),
            remove_events=(2,), verified=True,
        )
        assert validate_opportunity(p, opp) == []

    def test_df201_on_queue_mismatch(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", queue=1,
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", queue=2,
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 2), kernels=("a", "b"),
            remove_events=(2,), verified=True,
        )
        diags = validate_opportunity(p, opp)
        assert errors(diags)
        assert all(d.rule.startswith("DF201") for d in diags)

    def test_df201_on_intervening_wait(self):
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a",
                     writes=("u",), writes_known=True),
            AccEvent(kind="wait", wait_on=(1,)),
            AccEvent(kind="compute", kernel="b",
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 3), kernels=("a", "b"),
            remove_events=(3,), verified=True,
        )
        assert any(
            d.rule.startswith("DF201") for d in validate_opportunity(p, opp)
        )

    def test_df203_on_intervening_conflicting_access(self):
        # the moved kernel b reads 'u'; an update of 'u' sits between the
        # anchors, so moving b above it reorders a RAW pair
        p = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a",
                     writes=("v",), writes_known=True),
            AccEvent(kind="update", direction="device", var="u"),
            AccEvent(kind="compute", kernel="b", reads=("u",),
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 3), kernels=("a", "b"),
            remove_events=(3,), verified=True,
        )
        diags = validate_opportunity(p, opp)
        assert any(d.rule.startswith("DF203") for d in diags)

    def test_df202_on_hoist_past_a_writer(self):
        # hoisting the update at 3 to position 1 crosses the kernel at 2
        # that writes 'u' — the prologue copy would be stale
        p = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="w0",
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="w1",
                     writes=("u",), writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="exit", delete=("u",)),
        ])
        opp = OptimizationOpportunity(
            kind="hoist-update", events=(3,), var="u",
            remove_events=(3,), insert_at=1, verified=True,
        )
        diags = validate_opportunity(p, opp)
        assert any(d.rule.startswith("DF202") for d in diags)

    def test_unknown_kind_refused(self):
        p = prog([AccEvent(kind="enter", copyin=("u",)),
                  AccEvent(kind="exit", delete=("u",))])
        opp = OptimizationOpportunity(
            kind="teleport", events=(0,), verified=True
        )
        assert errors(validate_opportunity(p, opp))

    def test_out_of_range_anchor_refused(self):
        p = prog([AccEvent(kind="enter", copyin=("u",)),
                  AccEvent(kind="exit", delete=("u",))])
        opp = OptimizationOpportunity(
            kind="fuse-computes", events=(1, 99), kernels=("a", "b"),
            remove_events=(99,), verified=True,
        )
        assert errors(validate_opportunity(p, opp))


class TestValidatorNeverOutrunsReplay:
    """The soundness direction: the validator must never admit what the
    bitwise shadow replay rejects. (The converse — replay admitting what
    the validator refuses — is allowed: the validator is conservative.)"""

    def _fixtures(self):
        fixtures = []
        base = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a", reads=("u",),
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="b", reads=("v",),
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        fixtures.append((base, OptimizationOpportunity(
            kind="fuse-computes", events=(1, 2), kernels=("a", "b"),
            remove_events=(2,), verified=True)))
        wait_between = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a",
                     writes=("u",), writes_known=True),
            AccEvent(kind="wait", wait_on=(1,)),
            AccEvent(kind="compute", kernel="b",
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        fixtures.append((wait_between, OptimizationOpportunity(
            kind="fuse-computes", events=(1, 3), kernels=("a", "b"),
            remove_events=(3,), verified=True)))
        update_between = prog([
            AccEvent(kind="enter", copyin=("u", "v")),
            AccEvent(kind="compute", kernel="a",
                     writes=("v",), writes_known=True),
            AccEvent(kind="host_write", writes=("u",)),
            AccEvent(kind="update", direction="device", var="u"),
            AccEvent(kind="compute", kernel="b", reads=("u",),
                     writes=("v",), writes_known=True),
            AccEvent(kind="exit", delete=("u", "v")),
        ])
        fixtures.append((update_between, OptimizationOpportunity(
            kind="fuse-computes", events=(1, 4), kernels=("a", "b"),
            remove_events=(4,), verified=True)))
        hoist_bad = prog([
            AccEvent(kind="enter", copyin=("u",)),
            AccEvent(kind="compute", kernel="w0",
                     writes=("u",), writes_known=True),
            AccEvent(kind="compute", kernel="w1",
                     writes=("u",), writes_known=True),
            AccEvent(kind="update", direction="host", var="u"),
            AccEvent(kind="host_read", reads=("u",)),
            AccEvent(kind="exit", delete=("u",)),
        ])
        fixtures.append((hoist_bad, OptimizationOpportunity(
            kind="hoist-update", events=(3,), var="u",
            remove_events=(3,), insert_at=1, verified=True)))
        return fixtures

    def test_cross_check(self):
        for program, opp in self._fixtures():
            admitted = not errors(validate_opportunity(program, opp))
            replay_ok = verify_opportunity(program, opp)
            # never: validator admits AND replay rejects
            assert not (admitted and not replay_ok), (
                opp.kind, opp.events, admitted, replay_ok
            )

    def test_known_forgeries_rejected_statically(self):
        # every fixture after the first is a forgery the validator must
        # refuse on its own, without running the replay
        for program, opp in self._fixtures()[1:]:
            assert errors(validate_opportunity(program, opp)), opp.events


class TestWholePipelineValidation:
    @pytest.mark.parametrize("case,mode", [
        ("iso2d", "rtm"),
        ("iso2d", "modeling"),
        ("acoustic2d", "rtm"),
    ])
    def test_seed_cases_validate_clean(self, case, mode):
        compiled = compile_case(CompileRequest.from_case(case, mode, nt=8))
        assert compiled.verified
        assert compiled.validation is not None
        assert compiled.validation.ok
        assert compiled.validation.obligations > 0
        assert not errors(compiled.validation.diagnostics)

    def test_cross_phase_fusion_admitted(self):
        # the previously-skipped imaging->backward fusion is now admitted
        # under the static proof (and still passes the bitwise replay)
        compiled = compile_case(CompileRequest.from_case("iso2d", "rtm", nt=8))
        cross = [a for a in compiled.applied if "->" in a.phase]
        assert cross, [a.phase for a in compiled.applied]
        assert compiled.cross_variants
        launches = compiled.launches_per_step()
        assert launches["compiled"] < launches["interpreted"]

    def test_validation_report_serialises(self):
        compiled = compile_case(CompileRequest.from_case("iso2d", "rtm", nt=8))
        doc = compiled.validation.to_dict()
        assert doc["ok"] is True
        assert doc["obligations"] == compiled.validation.obligations
        assert doc["program_sha"] == compiled.program_sha


class TestPrologueLift:
    def _update(self, var, direction="device"):
        return LoweredOp(kind="update", var=var, direction=direction)

    def test_clean_prologue_admitted(self):
        diags = prologue_lift_proof(
            [(self._update("wf:p_prev"),), ()], exchanged={"wf:p"}
        )
        assert diags == []

    def test_df204_on_exchanged_field(self):
        diags = prologue_lift_proof(
            [(self._update("wf:p"),)], exchanged={"wf:p", "bwd:p"}
        )
        assert diags
        assert all(d.rule == "DF204-cross-rank-reorder" for d in diags)

    def test_df204_on_prologue_send(self):
        op = LoweredOp(kind="send", var="wf:p")
        diags = prologue_lift_proof([(op,)], exchanged=set())
        assert any("send" in d.message for d in diags)

    def test_multigpu_compiled_path_stays_compiled(self):
        from repro.core.config import GPUOptions
        from repro.core.multigpu import MultiGpuPipeline
        from repro.observe.runlog import RunLog

        runlog = RunLog(command="test", case="iso2d x2")
        with runlog.activate():
            pipe = MultiGpuPipeline(
                "isotropic", (96, 96), 2,
                options=GPUOptions(compiled=True),
            )
            pipe.run_rtm(8, 4)
        doc = runlog.to_json()
        compiled_phases = {
            e.get("phase") for e in doc.get("events", [])
            if e.get("kind") == "compiled"
        }
        assert {"forward", "backward"} <= compiled_phases
        assert "multigpu.compiled_fallback" not in doc.get("counters", {})


class TestMessageSchedule:
    def _rank(self, events):
        p = DirectiveProgram()
        for e in events:
            p.add(e)
        p.extents.update({"u": 1024})
        return p

    def _pair(self, first="u", second="v"):
        r0 = self._rank([
            AccEvent(kind="send", var=first, peer=1),
            AccEvent(kind="send", var=second, peer=1),
        ])
        r1 = self._rank([
            AccEvent(kind="recv", var=first, peer=0),
            AccEvent(kind="recv", var=second, peer=0),
        ])
        return [r0, r1]

    def test_identical_schedules_preserved(self):
        assert message_schedule_preserved(self._pair(), self._pair())

    def test_consistent_cross_var_swap_is_preserved(self):
        # channels are per-(src, dst, var): swapping two *different* vars
        # on both ends leaves every channel's matching intact
        assert message_schedule_preserved(
            self._pair("u", "v"), self._pair("v", "u")
        )

    def test_dropped_receive_detected(self):
        pre = self._pair()
        post = self._pair()
        # the reorder pushed a receive out of the schedule: rank 1 now
        # misses the second message and the unmatched counts diverge
        dropped = self._rank([AccEvent(kind="recv", var="u", peer=0)])
        post[1] = dropped
        assert not message_schedule_preserved(pre, post)
