"""The compile pipeline: segmentation, selection, verification gate."""

import pytest

from repro.analyze.dataflow import find_opportunities, reports_to_json
from repro.compile import (
    CompileRequest,
    compile_case,
    opportunities_from_artifact,
    record_segments,
)
from repro.compile.compiler import (
    REPEATED_PHASES,
    _default_runtime_factory,
)
from repro.core.config import GPUOptions
from repro.utils.errors import CompileError, StaleArtifactError


def recording(case="iso2d", mode="rtm", nt=8):
    request = CompileRequest.from_case(case, mode, nt=nt)
    options = GPUOptions()
    return request, options, record_segments(
        request, options, _default_runtime_factory(options, None)
    )


class TestRequest:
    def test_from_case_matches_deps_recording_params(self):
        req = CompileRequest.from_case("iso2d", "rtm", nt=8)
        assert (req.physics, req.shape) == ("isotropic", (96, 96))
        assert (req.space_order, req.boundary_width) == (8, 8)
        req3 = CompileRequest.from_case("el3d", "modeling")
        assert (req3.ndim, req3.space_order, req3.nt) == (3, 4, 24)

    def test_name(self):
        assert CompileRequest.from_case("ac2d", "rtm").name == "acoustic-2d-rtm"


class TestSegments:
    def test_segments_tile_the_program_exactly(self):
        _, _, rec = recording()
        covered = []
        for seg in rec.segments:
            covered.extend(range(seg.start, seg.stop))
        assert covered == list(range(len(rec.program.events)))

    def test_rtm_phase_counts(self):
        req, _, rec = recording(nt=8)
        assert len(rec.slices("forward")) == req.nt
        assert len(rec.slices("backward")) == req.nt
        assert len(rec.slices("snapshot")) == req.nt // req.snap_period
        assert len(rec.slices("allocate")) == 1
        assert len(rec.slices("swap")) == 1
        assert len(rec.slices("finalize")) == 1

    def test_repeated_phases_are_steady_state(self):
        _, _, rec = recording()
        for phase in REPEATED_PHASES:
            rec.template(phase)  # must not raise

    def test_hash_matches_the_deps_recording(self):
        # compile re-records with the exact parameters deps uses, so the
        # artifact's program_sha gates cleanly
        from repro.analyze.drivers import record_pipeline_program

        req, _, rec = recording(nt=8)
        deps_program = record_pipeline_program(
            "isotropic", (96, 96), "rtm", nt=8, snap_period=4,
            space_order=8, boundary_width=8,
        )
        assert rec.program.sha() == deps_program.sha()


class TestCompileCase:
    def test_compiles_verifies_and_fuses(self):
        compiled = compile_case(CompileRequest.from_case("iso2d", "rtm", nt=8))
        assert compiled.verified
        assert len(compiled.applied) >= 1
        per_step = compiled.launches_per_step()
        assert per_step["compiled"] < per_step["interpreted"]

    def test_modeling_mode(self):
        compiled = compile_case(
            CompileRequest.from_case("ac2d", "modeling", nt=8)
        )
        assert compiled.verified
        assert set(compiled.steps) >= {"allocate", "forward", "finalize"}
        assert "swap" not in compiled.steps

    def test_every_applied_fusion_is_priced(self):
        compiled = compile_case(CompileRequest.from_case("iso2d", "rtm", nt=8))
        fusions = [a for a in compiled.applied if a.kind == "fuse-computes"]
        assert fusions
        for a in fusions:
            assert "saved_seconds" in a.modelled
            assert "effective_maxregcount" in a.modelled

    def test_known_failure_persona_refused(self):
        from repro.acc.compiler import CRAY_8_2_6

        with pytest.raises(CompileError, match="known compiler failure"):
            compile_case(
                CompileRequest.from_case("el3d", "rtm", nt=4),
                options=GPUOptions(compiler=CRAY_8_2_6),
            )


class TestArtifactGate:
    def make_artifact(self, program):
        report = find_opportunities(program, verify=True)
        report.program_sha = program.sha()
        return reports_to_json([report])

    def test_artifact_roundtrip(self):
        _, _, rec = recording(nt=8)
        artifact = self.make_artifact(rec.program)
        opps = opportunities_from_artifact(artifact, rec.program)
        assert opps and all(o.verified for o in opps)

    def test_compile_with_artifact(self):
        req, _, rec = recording(nt=8)
        artifact = self.make_artifact(rec.program)
        compiled = compile_case(req, artifact=artifact)
        assert compiled.verified and compiled.applied

    def test_unverified_opportunities_are_skipped_not_applied(self):
        req, _, rec = recording(nt=8)
        report = find_opportunities(rec.program, verify=False)
        report.program_sha = rec.program.sha()
        compiled = compile_case(req, artifact=reports_to_json([report]))
        assert compiled.verified  # bitwise gate still passes...
        assert not compiled.applied  # ...because nothing was applied
        assert any(
            "not verified" in reason for _, _, reason in compiled.skipped
        )

    def test_malformed_artifact_refused(self):
        req, _, rec = recording(nt=8)
        with pytest.raises(ValueError):
            opportunities_from_artifact({"schema": 1}, rec.program)
        with pytest.raises(StaleArtifactError):
            compile_case(req, artifact={"schema": 1, "programs": []})
