"""Physics validation: wavefront kinematics against the analytic wave speed.

For a homogeneous medium the dominant energy of a Ricker-sourced wavefield
sits at radius ``v * (t - t_peak)`` from the source; every propagator must
honour that within a few percent (numerical dispersion + peak-lag tolerance).
"""

import numpy as np
import pytest

from repro.model import constant_model
from repro.propagators import make_propagator
from repro.source import PointSource, integrated_ricker, ricker

VP = 2000.0
H = 10.0
F = 12.0
NSTEPS = 160


def _wavefront_ratio(physics, ndim, **model_kwargs):
    # 3-D runs use a higher peak frequency (shorter onset delay) so the
    # dominant lobe fits well inside the smaller grid
    shape = (201, 201) if ndim == 2 else (81, 81, 81)
    nsteps = NSTEPS if ndim == 2 else 110
    freq = F if ndim == 2 else 16.0
    m = constant_model(shape, spacing=H, vp=VP, **model_kwargs)
    p = make_propagator(physics, m, boundary_width=16)
    wave = integrated_ricker if physics == "acoustic" else ricker
    w = wave(nsteps + 10, p.dt, freq)
    src = PointSource.at_center(m.grid, w)
    p.run(nsteps, source=src)
    u = p.snapshot_field()
    center = m.grid.center_index()
    if ndim == 2:
        line = np.abs(u[center[0], center[1]:])
    else:
        line = np.abs(u[center[0], center[1]:, center[2]])
    r_meas = float(np.argmax(line))
    t = nsteps * p.dt - 1.5 / freq
    r_expected = VP * t / H
    return r_meas / r_expected


class TestWavefrontSpeed2D:
    def test_isotropic(self):
        assert _wavefront_ratio("isotropic", 2, with_density=False) == pytest.approx(1.0, abs=0.08)

    def test_acoustic(self):
        assert _wavefront_ratio("acoustic", 2) == pytest.approx(1.0, abs=0.08)

    def test_elastic_p_wave(self):
        assert _wavefront_ratio("elastic", 2, vs_ratio=0.55) == pytest.approx(1.0, abs=0.08)


class TestWavefrontSpeed3D:
    def test_isotropic(self):
        assert _wavefront_ratio("isotropic", 3, with_density=False) == pytest.approx(1.0, abs=0.12)

    def test_acoustic(self):
        assert _wavefront_ratio("acoustic", 3) == pytest.approx(1.0, abs=0.12)

    def test_elastic_p_wave(self):
        # wider tolerance: the pressure-like observable of the elastic field
        # mixes near-field terms that lag the pure P-front slightly
        assert _wavefront_ratio("elastic", 3, vs_ratio=0.55) == pytest.approx(1.0, abs=0.2)


class TestVelocityScaling:
    def test_faster_medium_moves_wavefront_further(self):
        """Same step count and dt, doubled vp: the dominant-lobe distance
        past the onset must scale ~2x. Uses the energy centroid of the
        radial profile (robust to single-cell argmax quantization)."""
        m_fast = constant_model((201, 201), spacing=H, vp=2 * VP)
        p_fast = make_propagator("acoustic", m_fast, boundary_width=16)
        dt = p_fast.dt
        m_slow = constant_model((201, 201), spacing=H, vp=VP)
        p_slow = make_propagator("acoustic", m_slow, dt=dt, boundary_width=16)
        nsteps = 160
        w = integrated_ricker(nsteps + 10, dt, 20.0)
        for p in (p_fast, p_slow):
            p.run(nsteps, source=PointSource.at_center(p.grid, w))

        def centroid(p):
            line = np.abs(p.snapshot_field()[100, 100:]).astype(np.float64)
            r = np.arange(line.size)
            return float(np.sum(r * line) / np.sum(line))

        t = nsteps * dt - 1.5 / 20.0
        assert t > 0
        ratio = centroid(p_fast) / centroid(p_slow)
        assert ratio == pytest.approx(2.0, abs=0.4)


class TestSymmetry:
    @pytest.mark.parametrize("physics,kwargs", [
        ("isotropic", {"with_density": False}),
        ("acoustic", {}),
        ("elastic", {"vs_ratio": 0.5}),
    ])
    def test_centered_source_gives_symmetric_field(self, physics, kwargs):
        """Homogeneous medium + centre source: the snapshot must be
        mirror-symmetric in x."""
        m = constant_model((121, 121), spacing=H, vp=VP, **kwargs)
        p = make_propagator(physics, m, boundary_width=16)
        wave = integrated_ricker if physics == "acoustic" else ricker
        src = PointSource.at_center(m.grid, wave(100, p.dt, F))
        p.run(90, source=src)
        u = p.snapshot_field()
        np.testing.assert_allclose(u, u[:, ::-1], atol=2e-5 * max(1e-30, np.abs(u).max()))
