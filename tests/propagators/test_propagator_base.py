import numpy as np
import pytest

from repro.model import constant_model
from repro.propagators import make_propagator, PHYSICS_NAMES
from repro.propagators.base import staggered_average, staggered_harmonic_average
from repro.utils.errors import ConfigurationError, StabilityError


class TestFactory:
    def test_all_physics_2d(self, small_model_2d):
        for phys in PHYSICS_NAMES:
            p = make_propagator(phys, small_model_2d, boundary_width=8)
            assert p.physics == phys

    def test_all_physics_3d(self, small_model_3d):
        for phys in PHYSICS_NAMES:
            p = make_propagator(phys, small_model_3d, boundary_width=8)
            assert p.grid.ndim == 3

    def test_unknown_physics(self, small_model_2d):
        with pytest.raises(ConfigurationError):
            make_propagator("anisotropic", small_model_2d)

    def test_elastic_dispatches_by_ndim(self, small_model_2d, small_model_3d):
        from repro.propagators import ElasticPropagator2D, ElasticPropagator3D

        assert isinstance(make_propagator("elastic", small_model_2d, boundary_width=8), ElasticPropagator2D)
        assert isinstance(make_propagator("elastic", small_model_3d, boundary_width=8), ElasticPropagator3D)


class TestStabilityGuards:
    def test_unstable_dt_rejected_at_construction(self, small_model_2d):
        with pytest.raises(StabilityError):
            make_propagator("acoustic", small_model_2d, dt=1.0, boundary_width=8)

    def test_negative_dt_rejected(self, small_model_2d):
        with pytest.raises(ConfigurationError):
            make_propagator("acoustic", small_model_2d, dt=-0.001, boundary_width=8)

    def test_default_dt_is_stable(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8)
        src_idx = p.grid.center_index()
        for n in range(50):
            p.step([(src_idx, 1.0)])
        assert np.all(np.isfinite(p.snapshot_field()))

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_health_check_catches_blowup(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8,
                            check_health_every=10)
        # sabotage: force a non-finite value into the wavefield
        p.p[10, 10] = np.float32(np.inf)
        with pytest.raises(StabilityError):
            for _ in range(11):
                p.step()

    def test_boundary_thinner_than_stencil_rejected(self, small_model_2d):
        with pytest.raises(ConfigurationError):
            make_propagator("acoustic", small_model_2d, boundary_width=2)

    def test_odd_space_order_rejected(self, small_model_2d):
        with pytest.raises(ConfigurationError):
            make_propagator("acoustic", small_model_2d, space_order=7, boundary_width=8)


class TestFieldManagement:
    def test_reset_zeroes_fields(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8)
        p.step([(p.grid.center_index(), 1.0)])
        assert float(np.abs(p.p).max()) > 0
        p.reset()
        assert float(np.abs(p.p).max()) == 0.0
        assert p.state.step == 0

    def test_wavefield_bytes(self, small_model_2d):
        p = make_propagator("elastic", small_model_2d, boundary_width=8)
        assert p.wavefield_bytes() == 5 * small_model_2d.grid.npoints * 4

    def test_fields_named(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8)
        assert set(p.fields) == {"p", "qz", "qx"}
        p3 = make_propagator("acoustic", constant_model((24, 24, 24)), boundary_width=8)
        assert set(p3.fields) == {"p", "qz", "qx", "qy"}

    def test_run_negative_nt_rejected(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8)
        with pytest.raises(ConfigurationError):
            p.run(-1)

    def test_on_step_hook(self, small_model_2d):
        p = make_propagator("acoustic", small_model_2d, boundary_width=8)
        seen = []
        p.run(5, on_step=lambda n, prop: seen.append(n))
        assert seen == [0, 1, 2, 3, 4]


class TestWorkloadConsistency:
    """The propagator's kernel metadata must match the standalone
    workload functions the benchmarks use."""

    @pytest.mark.parametrize("physics", PHYSICS_NAMES)
    def test_2d_matches_module(self, physics, small_model_2d):
        from repro.propagators.workloads import workloads_for

        p = make_propagator(physics, small_model_2d, boundary_width=8)
        kw = {"variant": "branchy", "pml_width": 8} if physics == "isotropic" else {}
        expected = workloads_for(physics, small_model_2d.grid.shape, 8, **kw)
        got = p.kernel_workloads()
        assert [w.name for w in got] == [w.name for w in expected]
        assert [w.points for w in got] == [w.points for w in expected]

    def test_totals_positive(self, small_model_2d):
        for physics in PHYSICS_NAMES:
            p = make_propagator(physics, small_model_2d, boundary_width=8)
            assert p.total_flops_per_step() > 0
            assert p.total_bytes_per_step() > 0


class TestStaggeredAveraging:
    def test_arithmetic_average(self):
        a = np.array([[1.0, 3.0, 5.0]] * 2, dtype=np.float32)
        out = staggered_average(a, 1)
        np.testing.assert_allclose(out[:, 0], 2.0)
        np.testing.assert_allclose(out[:, 1], 4.0)
        np.testing.assert_allclose(out[:, 2], 5.0)  # edge replicated

    def test_constant_invariant(self):
        a = np.full((5, 5), 7.0, dtype=np.float32)
        np.testing.assert_allclose(staggered_average(a, 0), 7.0)

    def test_harmonic_average_zero_dominates(self):
        """A fluid (mu=0) neighbour must zero the averaged shear modulus."""
        mu = np.full((4, 4), 10.0, dtype=np.float32)
        mu[1, 1] = 0.0
        out = staggered_harmonic_average(mu, (0, 1))
        assert float(out[0, 0]) == 0.0  # includes (1,1) in its 4-cell stencil
        assert float(out[2, 2]) > 0.0

    def test_harmonic_constant_invariant(self):
        mu = np.full((6, 6), 4.0, dtype=np.float32)
        out = staggered_harmonic_average(mu, (0, 1))
        np.testing.assert_allclose(out[:-1, :-1], 4.0, rtol=1e-5)

    def test_harmonic_below_arithmetic(self):
        rng = np.random.default_rng(3)
        mu = rng.uniform(1.0, 10.0, (8, 8)).astype(np.float32)
        harm = staggered_harmonic_average(mu, (0,))
        arit = staggered_average(mu, 0)
        assert np.all(harm[:-1] <= arit[:-1] + 1e-4)
