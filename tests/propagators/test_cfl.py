import math

import pytest

from repro.propagators import (
    check_dispersion,
    courant_number,
    default_dt,
    max_stable_dt,
    points_per_wavelength,
)
from repro.utils.errors import ConfigurationError


class TestCourantNumber:
    def test_second_order_2nd_scheme_classic(self):
        """For 2nd-order coefficients the leapfrog limit is the textbook
        1/sqrt(d): symbol max is 4/h^2 per axis."""
        assert courant_number("second_order", 1, order=2) == pytest.approx(1.0)
        assert courant_number("second_order", 2, order=2) == pytest.approx(1 / math.sqrt(2))

    def test_staggered_2nd_scheme_classic(self):
        assert courant_number("staggered", 1, order=2) == pytest.approx(1.0)
        assert courant_number("staggered", 2, order=2) == pytest.approx(1 / math.sqrt(2))

    def test_higher_order_is_stricter(self):
        for scheme in ("second_order", "staggered"):
            assert courant_number(scheme, 2, 8) < courant_number(scheme, 2, 2)

    def test_more_dimensions_stricter(self):
        assert courant_number("staggered", 3) < courant_number("staggered", 2)

    def test_order8_values_plausible(self):
        assert 0.4 < courant_number("second_order", 2, 8) < 0.7
        assert 0.35 < courant_number("staggered", 3, 8) < 0.55

    def test_unknown_scheme(self):
        with pytest.raises(ConfigurationError):
            courant_number("magic", 2)


class TestMaxStableDt:
    def test_isotropic_spacing_matches_courant(self):
        h, v = 10.0, 2500.0
        dt = max_stable_dt(v, (h, h), "second_order")
        assert dt == pytest.approx(courant_number("second_order", 2) * h / v)

    def test_anisotropic_spacing_dominated_by_fine_axis(self):
        dt_fine = max_stable_dt(2000.0, (5.0, 5.0), "staggered")
        dt_mixed = max_stable_dt(2000.0, (5.0, 50.0), "staggered")
        dt_coarse = max_stable_dt(2000.0, (50.0, 50.0), "staggered")
        assert dt_fine < dt_mixed < dt_coarse

    def test_scales_inverse_velocity(self):
        a = max_stable_dt(1000.0, (10.0, 10.0), "staggered")
        b = max_stable_dt(2000.0, (10.0, 10.0), "staggered")
        assert a == pytest.approx(2 * b)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            max_stable_dt(-1.0, (10.0,), "staggered")
        with pytest.raises(ConfigurationError):
            max_stable_dt(1000.0, (0.0,), "staggered")


class TestDefaultDt:
    def test_below_limit(self):
        lim = max_stable_dt(2000.0, (10.0, 10.0), "staggered")
        assert default_dt(2000.0, (10.0, 10.0), "staggered") < lim

    def test_safety_validated(self):
        with pytest.raises(ConfigurationError):
            default_dt(2000.0, (10.0,), "staggered", safety=1.5)


class TestDispersion:
    def test_points_per_wavelength(self):
        # vmin=1500, f_peak=10 -> f_max=25 -> lambda_min=60 m; h=10 -> 6 ppw
        assert points_per_wavelength(1500.0, 10.0, 10.0) == pytest.approx(6.0)

    def test_check_passes_for_fine_grid(self):
        check_dispersion(1500.0, 10.0, 10.0)

    def test_check_rejects_coarse_grid(self):
        with pytest.raises(ConfigurationError):
            check_dispersion(1500.0, 30.0, 50.0)
