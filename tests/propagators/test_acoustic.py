import numpy as np
import pytest

from repro.model import constant_model, layered_model
from repro.propagators import AcousticPropagator, IsotropicPropagator
from repro.source import PointSource, integrated_ricker


class TestStructure:
    def test_2d_fields(self, small_model_2d):
        p = AcousticPropagator(small_model_2d, boundary_width=8)
        assert set(p.fields) == {"p", "qz", "qx"}

    def test_3d_fields(self, small_model_3d):
        p = AcousticPropagator(small_model_3d, boundary_width=8)
        assert set(p.fields) == {"p", "qz", "qx", "qy"}

    def test_kappa_is_rho_vp2(self, small_model_2d):
        p = AcousticPropagator(small_model_2d, boundary_width=8)
        rho = small_model_2d.density().astype(np.float64)
        vp = small_model_2d.vp.astype(np.float64)
        np.testing.assert_allclose(p.kappa, rho * vp**2, rtol=1e-5)

    def test_buoyancy_inverse_density(self, small_model_2d):
        p = AcousticPropagator(small_model_2d, boundary_width=8)
        rho = float(small_model_2d.density()[0, 0])
        np.testing.assert_allclose(p.buoyancy[0][8:-8, 8:-8], 1.0 / rho, rtol=1e-4)


class TestDynamics:
    def test_pressure_pulse_radiates_flow(self):
        """A pressure source must generate non-zero particle flow."""
        m = constant_model((80, 80), spacing=10.0, vp=2000.0)
        p = AcousticPropagator(m, boundary_width=8)
        w = integrated_ricker(40, p.dt, 20.0)
        p.run(30, source=PointSource.at_center(m.grid, w))
        assert float(np.abs(p.q[0]).max()) > 0
        assert float(np.abs(p.q[1]).max()) > 0

    def test_flow_antisymmetric_about_source(self):
        """qx must be antisymmetric across the source column (flow points
        away from the source on both sides)."""
        m = constant_model((81, 81), spacing=10.0, vp=2000.0)
        p = AcousticPropagator(m, boundary_width=8)
        w = integrated_ricker(60, p.dt, 15.0)
        p.run(50, source=PointSource.at_center(m.grid, w))
        qx = p.q[1]
        # with same-shape half-point storage, sample i holds location i+1/2:
        # mirror of column 40+k is column 39-k
        left = qx[:, 30:40]
        right = qx[:, 49:39:-1]
        peak = float(np.abs(qx).max())
        np.testing.assert_allclose(left, -right, atol=0.15 * peak)

    def test_variable_density_changes_field(self):
        m1 = constant_model((80, 80), spacing=10.0, vp=2000.0)
        m2 = constant_model((80, 80), spacing=10.0, vp=2000.0)
        m2.rho = (m2.rho * 2.0).astype(np.float32)
        p1 = AcousticPropagator(m1, boundary_width=8)
        p2 = AcousticPropagator(m2, dt=p1.dt, boundary_width=8)
        w = integrated_ricker(40, p1.dt, 20.0)
        for p in (p1, p2):
            p.run(35, source=PointSource.at_center(p.grid, w))
        assert not np.allclose(p1.snapshot_field(), p2.snapshot_field())

    def test_reflection_from_layer(self):
        """A density/velocity interface must send energy back up."""
        m = layered_model(
            (160, 120), spacing=10.0, interfaces=[600.0], velocities=[1500.0, 3000.0]
        )
        p = AcousticPropagator(m, boundary_width=16)
        w = integrated_ricker(500, p.dt, 12.0)
        src = PointSource.at_coords(m.grid, (250.0, 600.0), w)
        # run long enough for the reflection to travel back above the source
        # (350 m down + 350 m up at 1500 m/s, plus the wavelet onset delay)
        p.run(440, source=src)
        above = float(np.abs(p.snapshot_field()[18:22, :]).max())
        assert above > 0.0
        # compare with homogeneous medium: reflection means more energy up top
        mh = constant_model((160, 120), spacing=10.0, vp=1500.0)
        ph = AcousticPropagator(mh, dt=p.dt, boundary_width=16)
        ph.run(440, source=src)
        above_h = float(np.abs(ph.snapshot_field()[18:22, :]).max())
        assert above > 2 * above_h


class TestAgainstIsotropic:
    def test_matches_isotropic_in_constant_medium(self):
        """In a homogeneous constant-density medium the acoustic system is
        the first-order form of the isotropic equation: the wavefronts must
        coincide (same arrival radius)."""
        m_a = constant_model((161, 161), spacing=10.0, vp=2000.0)
        m_a.rho = np.full_like(m_a.rho, 1000.0)
        m_i = constant_model((161, 161), spacing=10.0, vp=2000.0, with_density=False)
        pa = AcousticPropagator(m_a, boundary_width=16)
        pi = IsotropicPropagator(m_i, dt=pa.dt, boundary_width=16)
        nsteps = 110
        from repro.source import ricker

        pa.run(nsteps, source=PointSource.at_center(m_a.grid, integrated_ricker(nsteps + 5, pa.dt, 12.0)))
        pi.run(nsteps, source=PointSource.at_center(m_i.grid, ricker(nsteps + 5, pi.dt, 12.0)))
        ra = np.argmax(np.abs(pa.snapshot_field()[80, 80:]))
        ri = np.argmax(np.abs(pi.snapshot_field()[80, 80:]))
        assert abs(int(ra) - int(ri)) <= 3
