import numpy as np
import pytest

from repro.model import constant_model
from repro.propagators import IsotropicPropagator
from repro.propagators.isotropic import boundary_slabs
from repro.source import PointSource, ricker
from repro.utils.errors import ConfigurationError


class TestBoundarySlabs:
    def test_nonoverlapping_cover(self):
        shape = (40, 50)
        w = 6
        cover = np.zeros(shape, dtype=int)
        for sl in boundary_slabs(shape, w):
            cover[sl] += 1
        assert np.all(cover <= 1)
        # interior untouched, frame covered exactly once
        assert np.all(cover[w:-w, w:-w] == 0)
        assert np.all(cover[:w, :] == 1)
        assert np.all(cover[:, :w][w:-w] == 1)

    def test_3d_cover(self):
        shape = (20, 22, 24)
        w = 4
        cover = np.zeros(shape, dtype=int)
        for sl in boundary_slabs(shape, w):
            cover[sl] += 1
        assert np.all(cover <= 1)
        assert np.all(cover[w:-w, w:-w, w:-w] == 0)
        total_frame = np.prod(shape) - np.prod([n - 2 * w for n in shape])
        assert cover.sum() == total_frame

    def test_zero_width_empty(self):
        assert boundary_slabs((10, 10), 0) == []


class TestVariantEquivalence:
    """The paper's three PML code variants must be numerically identical —
    they differ only in GPU mapping."""

    @pytest.mark.parametrize("variant", ["restructured", "everywhere"])
    def test_matches_branchy(self, variant):
        m = constant_model((80, 80), spacing=10.0, vp=2000.0, with_density=False)
        props = {
            v: IsotropicPropagator(m, boundary_width=12, pml_variant=v)
            for v in ("branchy", variant)
        }
        w = ricker(60, props["branchy"].dt, 15.0)
        src = PointSource.at_center(m.grid, w)
        for p in props.values():
            p.run(50, source=src)
        a = props["branchy"].snapshot_field()
        b = props[variant].snapshot_field()
        peak = float(np.abs(a).max())
        np.testing.assert_allclose(a, b, atol=1e-5 * peak)

    def test_unknown_variant_rejected(self):
        m = constant_model((40, 40), with_density=False)
        with pytest.raises(ConfigurationError):
            IsotropicPropagator(m, boundary_width=8, pml_variant="fancy")


class TestWorkloadVariants:
    def test_branchy_single_kernel_with_branches(self):
        m = constant_model((64, 64), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8, pml_variant="branchy")
        (k,) = p.kernel_workloads()
        assert k.has_branches

    def test_everywhere_single_branchless_kernel(self):
        m = constant_model((64, 64), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8, pml_variant="everywhere")
        (k,) = p.kernel_workloads()
        assert not k.has_branches
        assert k.points == 64 * 64

    def test_restructured_many_kernels(self):
        m = constant_model((64, 64), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8, pml_variant="restructured")
        ks = p.kernel_workloads()
        assert len(ks) == 1 + 4  # interior + 2 slabs per axis
        assert sum(k.points for k in ks) == 64 * 64
        assert not any(k.has_branches for k in ks)

    def test_gather_axes_marked(self):
        m = constant_model((24, 24, 24), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8, pml_variant="everywhere")
        (k,) = p.kernel_workloads()
        assert k.gather_axes == 3


class TestTimeStepping:
    def test_leapfrog_swap(self):
        m = constant_model((48, 48), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8)
        u_before = p.u
        p.step([(p.grid.center_index(), 1.0)])
        assert p.u_prev is u_before  # arrays swapped, not copied

    def test_source_amplitude_scales_field(self):
        m = constant_model((48, 48), with_density=False)
        a = IsotropicPropagator(m, boundary_width=8)
        b = IsotropicPropagator(m, boundary_width=8)
        a.step([(a.grid.center_index(), 1.0)])
        b.step([(b.grid.center_index(), 2.0)])
        np.testing.assert_allclose(
            2 * a.snapshot_field(), b.snapshot_field(), rtol=1e-5
        )

    def test_zero_source_stays_zero(self):
        m = constant_model((48, 48), with_density=False)
        p = IsotropicPropagator(m, boundary_width=8)
        p.run(20)
        assert float(np.abs(p.snapshot_field()).max()) == 0.0
