import numpy as np
import pytest

from repro.model import constant_model
from repro.propagators import ElasticPropagator2D, ElasticPropagator3D
from repro.source import PointSource, ricker
from repro.utils.errors import ConfigurationError

VP, VS_RATIO, H, F = 2000.0, 0.5, 10.0, 12.0


class TestConstruction:
    def test_2d_needs_2d_model(self, small_model_3d):
        with pytest.raises(ConfigurationError):
            ElasticPropagator2D(small_model_3d, boundary_width=8)

    def test_3d_needs_3d_model(self, small_model_2d):
        with pytest.raises(ConfigurationError):
            ElasticPropagator3D(small_model_2d, boundary_width=8)

    def test_model_without_vs_rejected(self):
        m = constant_model((32, 32))
        with pytest.raises(ConfigurationError):
            ElasticPropagator2D(m, boundary_width=8)

    def test_2d_field_set(self, small_model_2d):
        p = ElasticPropagator2D(small_model_2d, boundary_width=8)
        assert set(p.fields) == {"vx", "vz", "sxx", "szz", "sxz"}

    def test_3d_field_set(self, small_model_3d):
        p = ElasticPropagator3D(small_model_3d, boundary_width=8)
        assert set(p.fields) == {
            "vx", "vy", "vz", "sxx", "syy", "szz", "sxy", "sxz", "syz",
        }

    def test_3d_workload_count(self, small_model_3d):
        """The paper's elastic 3-D step: 3 velocity + 1 diagonal-stress +
        3 shear-stress kernels (the async-study kernel set)."""
        p = ElasticPropagator3D(small_model_3d, boundary_width=8)
        assert len(p.kernel_workloads()) == 7


class TestWaveTypes:
    def test_explosive_source_generates_p_and_s_energy(self):
        m = constant_model((161, 161), spacing=H, vp=VP, vs_ratio=VS_RATIO)
        p = ElasticPropagator2D(m, boundary_width=16)
        w = ricker(130, p.dt, F)
        p.run(120, source=PointSource.at_center(m.grid, w))
        assert float(np.abs(p.vx).max()) > 0
        assert float(np.abs(p.vz).max()) > 0
        assert float(np.abs(p.sxz).max()) > 0

    def test_shear_speed_bounds_energy(self):
        """No energy beyond the P-front, and the S/P structure sits inside:
        the radial profile must vanish outside vp * t."""
        m = constant_model((161, 161), spacing=H, vp=VP, vs_ratio=VS_RATIO)
        p = ElasticPropagator2D(m, boundary_width=16)
        nsteps = 100
        w = ricker(nsteps + 5, p.dt, F)
        p.run(nsteps, source=PointSource.at_center(m.grid, w))
        u = np.abs(p.snapshot_field())
        r_p = VP * nsteps * p.dt / H  # front radius in cells
        line = u[80, 80:]
        beyond = line[int(r_p) + 6:]
        assert float(beyond.max()) < 1e-3 * float(u.max())

    def test_fluid_region_carries_no_shear(self):
        """vs = 0 everywhere: sxz must stay (numerically) zero."""
        m = constant_model((101, 101), spacing=H, vp=VP)
        m.vs = np.zeros_like(m.vp)
        p = ElasticPropagator2D(m, boundary_width=12)
        w = ricker(70, p.dt, F)
        p.run(60, source=PointSource.at_center(m.grid, w))
        peak = float(np.abs(p.snapshot_field()).max())
        assert float(np.abs(p.sxz).max()) < 1e-6 * max(peak, 1e-30)

    def test_diagonal_symmetry_3d(self):
        """Isotropic medium + centre source: sxx and syy are related by the
        x<->y transpose."""
        m = constant_model((49, 49, 49), spacing=H, vp=VP, vs_ratio=VS_RATIO)
        p = ElasticPropagator3D(m, boundary_width=10)
        w = ricker(40, p.dt, F)
        p.run(35, source=PointSource.at_center(m.grid, w))
        sxx = p.sxx
        syy_t = np.swapaxes(p.syy, 1, 2)
        peak = float(np.abs(sxx).max())
        np.testing.assert_allclose(sxx, syy_t, atol=2e-5 * max(peak, 1e-30))


class TestEnergyBehaviour:
    def test_energy_grows_then_absorbed(self):
        m = constant_model((121, 121), spacing=H, vp=VP, vs_ratio=VS_RATIO)
        p = ElasticPropagator2D(m, boundary_width=16)
        nsteps = 90
        w = ricker(nsteps + 300, p.dt, F)
        p.run(nsteps, source=PointSource.at_center(m.grid, w))
        mid = float(np.abs(p.snapshot_field()).max())
        p.run(700)
        late = float(np.abs(p.snapshot_field()).max())
        assert late < 0.12 * mid
