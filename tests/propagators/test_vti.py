"""VTI pseudo-acoustic extension (the paper's deferred anisotropic case)."""

import numpy as np
import pytest

from repro.model import constant_model, with_thomsen
from repro.propagators import IsotropicPropagator, VTIPropagator, make_propagator
from repro.source import PointSource, ricker
from repro.utils.errors import ConfigurationError

VP, H, F = 2000.0, 10.0, 12.0


def _vti_model(eps, delta, shape=(161, 161)):
    return with_thomsen(
        constant_model(shape, spacing=H, vp=VP, with_density=False), eps, delta
    )


class TestConstruction:
    def test_factory_dispatch(self):
        p = make_propagator("vti", _vti_model(0.1, 0.05), boundary_width=16)
        assert isinstance(p, VTIPropagator)

    def test_fields(self):
        p = VTIPropagator(_vti_model(0.1, 0.05), boundary_width=16)
        assert set(p.fields) == {"p", "p_prev", "q", "q_prev"}

    def test_epsilon_below_delta_rejected(self):
        with pytest.raises(ConfigurationError):
            VTIPropagator(_vti_model(0.0, 0.2), boundary_width=16)

    def test_missing_thomsen_defaults_isotropic(self):
        m = constant_model((64, 64), with_density=False)
        p = VTIPropagator(m, boundary_width=16)
        assert float(np.abs(p.epsilon).max()) == 0.0

    def test_thomsen_out_of_range_rejected(self):
        with pytest.raises(ConfigurationError):
            _vti_model(2.0, 0.0)

    def test_cfl_includes_anisotropic_stretch(self):
        iso = IsotropicPropagator(
            constant_model((64, 64), with_density=False), boundary_width=16
        )
        vti = VTIPropagator(_vti_model(0.3, 0.1, (64, 64)), boundary_width=16)
        assert vti.dt < iso.dt  # faster horizontal speed -> stricter dt


class TestPhysics:
    def test_isotropic_limit(self):
        """epsilon = delta = 0 must reproduce the isotropic propagator."""
        m_iso = constant_model((121, 121), spacing=H, vp=VP, with_density=False)
        vti = VTIPropagator(_vti_model(0.0, 0.0, (121, 121)), boundary_width=16)
        iso = IsotropicPropagator(m_iso, dt=vti.dt, boundary_width=16)
        w = ricker(100, vti.dt, F)
        for p in (vti, iso):
            p.run(90, source=PointSource.at_center(p.grid, w))
        a, b = vti.snapshot_field(), iso.snapshot_field()
        peak = float(np.abs(b).max())
        np.testing.assert_allclose(a, b, atol=2e-5 * peak)

    def test_elliptical_stretch(self):
        """epsilon = delta = 0.2: horizontal front radius / vertical radius
        ~ sqrt(1 + 2 * 0.2)."""
        p = VTIPropagator(_vti_model(0.2, 0.2), boundary_width=16)
        w = ricker(130, p.dt, F)
        p.run(120, source=PointSource.at_center(p.grid, w))
        u = p.snapshot_field()
        r_h = int(np.argmax(np.abs(u[80, 80:])))
        r_v = int(np.argmax(np.abs(u[80:, 80])))
        assert r_h / r_v == pytest.approx(np.sqrt(1.4), abs=0.12)

    def test_anelliptic_faster_horizontal(self):
        """epsilon > delta still stretches horizontally vs vertically."""
        p = VTIPropagator(_vti_model(0.25, 0.1), boundary_width=16)
        w = ricker(130, p.dt, F)
        p.run(120, source=PointSource.at_center(p.grid, w))
        u = p.snapshot_field()
        r_h = int(np.argmax(np.abs(u[80, 80:])))
        r_v = int(np.argmax(np.abs(u[80:, 80])))
        assert r_h > r_v

    def test_vertical_speed_unchanged(self):
        """Along the symmetry axis the P speed stays vp, whatever epsilon."""
        # the anisotropic run has the stricter CFL bound; share its dt
        p1 = VTIPropagator(_vti_model(0.3, 0.1), boundary_width=16)
        p0 = VTIPropagator(_vti_model(0.0, 0.0), dt=p1.dt, boundary_width=16)
        w = ricker(130, p0.dt, F)
        nsteps = 120
        for p in (p0, p1):
            p.run(nsteps, source=PointSource.at_center(p.grid, w))
        r0 = int(np.argmax(np.abs(p0.snapshot_field()[80:, 80])))
        r1 = int(np.argmax(np.abs(p1.snapshot_field()[80:, 80])))
        assert abs(r0 - r1) <= 2

    def test_absorbing_boundary(self):
        p = VTIPropagator(_vti_model(0.2, 0.1, (121, 121)), boundary_width=16)
        w = ricker(700, p.dt, F)
        p.run(100, source=PointSource.at_center(p.grid, w))
        mid = float(np.abs(p.snapshot_field()).max())
        p.run(700)
        assert float(np.abs(p.snapshot_field()).max()) < 0.25 * mid

    def test_3d(self):
        m = _vti_model(0.15, 0.05, (49, 49, 49))
        p = VTIPropagator(m, boundary_width=10)
        w = ricker(40, p.dt, F)
        p.run(35, source=PointSource.at_center(m.grid, w))
        assert np.all(np.isfinite(p.snapshot_field()))
        assert float(np.abs(p.snapshot_field()).max()) > 0


class TestWorkloads:
    def test_single_fused_kernel(self):
        p = VTIPropagator(_vti_model(0.1, 0.05, (64, 64)), boundary_width=16)
        (w,) = p.kernel_workloads()
        assert w.name == "vti_update_pq"
        assert w.gather_axes == 2

    def test_estimate_path_works(self):
        from repro.core import estimate_modeling

        t = estimate_modeling("vti", (256, 256, 256), nt=5, snap_period=5)
        assert t.success and t.total > 0


class TestModelSupport:
    def test_with_thomsen_copies(self):
        base = constant_model((32, 32))
        m = with_thomsen(base, 0.1, 0.05)
        assert m.is_anisotropic()
        assert not base.is_anisotropic()
        assert float(m.epsilon[0, 0]) == pytest.approx(0.1)

    def test_max_wave_speed_stretched(self):
        m = with_thomsen(constant_model((32, 32), vp=2000.0), 0.5, 0.1)
        assert m.max_wave_speed() == pytest.approx(2000.0 * np.sqrt(2.0), rel=1e-6)

    def test_io_roundtrip_with_thomsen(self, tmp_path):
        from repro.model import load_model, save_model

        m = with_thomsen(constant_model((16, 16)), 0.2, 0.1)
        save_model(m, tmp_path / "vti.npz")
        m2 = load_model(tmp_path / "vti.npz")
        np.testing.assert_array_equal(m2.epsilon, m.epsilon)
        np.testing.assert_array_equal(m2.delta, m.delta)
