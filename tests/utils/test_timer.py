import pytest

from repro.utils.timer import SimClock, WallTimer


class TestWallTimer:
    def test_measures_elapsed(self):
        with WallTimer() as t:
            sum(range(1000))
        assert t.elapsed >= 0.0

    def test_elapsed_zero_before_use(self):
        assert WallTimer().elapsed == 0.0


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance(self):
        c = SimClock()
        assert c.advance(1.5) == 1.5
        assert c.advance(0.5) == 2.0

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1.0)

    def test_advance_categorised(self):
        c = SimClock()
        c.advance(1.0, "kernel")
        c.advance(2.0, "kernel")
        c.advance(0.5, "h2d")
        assert c.categories["kernel"] == pytest.approx(3.0)
        assert c.categories["h2d"] == pytest.approx(0.5)

    def test_advance_to_future(self):
        c = SimClock()
        c.advance_to(5.0)
        assert c.now == 5.0

    def test_advance_to_past_is_noop(self):
        c = SimClock(now=10.0)
        c.advance_to(5.0)
        assert c.now == 10.0

    def test_charge_does_not_move_clock(self):
        c = SimClock()
        c.charge(2.0, "overlapped")
        assert c.now == 0.0
        assert c.categories["overlapped"] == 2.0

    def test_charge_negative_rejected(self):
        with pytest.raises(ValueError):
            SimClock().charge(-0.1, "x")

    def test_reset(self):
        c = SimClock()
        c.advance(3.0, "kernel")
        c.reset()
        assert c.now == 0.0
        assert c.categories == {}
