import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.utils.arrays import (
    DTYPE,
    as_f32,
    interior_slices,
    l2_norm,
    pad_tuple,
    relative_l2_error,
    shifted_slices,
)


class TestAsF32:
    def test_converts_dtype(self):
        a = as_f32(np.arange(5, dtype=np.float64))
        assert a.dtype == DTYPE

    def test_no_copy_when_compliant(self):
        a = np.zeros(4, dtype=DTYPE)
        assert as_f32(a) is a or np.shares_memory(as_f32(a), a)

    def test_accepts_lists(self):
        assert as_f32([1.0, 2.0]).dtype == DTYPE


class TestInteriorSlices:
    def test_zero_radius_full(self):
        a = np.arange(12).reshape(3, 4)
        assert a[interior_slices(2, 0)].shape == (3, 4)

    def test_radius_trims_both_sides(self):
        a = np.zeros((10, 10))
        assert a[interior_slices(2, 2)].shape == (6, 6)

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            interior_slices(2, -1)


class TestShiftedSlices:
    def test_alignment_with_interior(self):
        """u[shifted(+s)] must align with u[interior] element-for-element."""
        a = np.arange(20.0)
        r = 3
        for s in (-3, -1, 0, 2, 3):
            shifted = a[shifted_slices(1, 0, s, r)]
            base = a[interior_slices(1, r)]
            np.testing.assert_array_equal(shifted, base + s)

    def test_shift_beyond_radius_rejected(self):
        with pytest.raises(ValueError):
            shifted_slices(2, 0, 4, 3)

    @given(st.integers(min_value=1, max_value=4), st.integers(min_value=-4, max_value=4))
    def test_shapes_always_match_interior(self, radius, shift):
        if abs(shift) > radius:
            return
        n = 16
        a = np.zeros(n)
        assert a[shifted_slices(1, 0, shift, radius)].shape == a[interior_slices(1, radius)].shape


class TestPadTuple:
    def test_scalar_broadcast(self):
        assert pad_tuple(3, 3) == (3, 3, 3)

    def test_sequence_passthrough(self):
        assert pad_tuple([1, 2], 2) == (1, 2)

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            pad_tuple([1, 2, 3], 2)


class TestNorms:
    def test_l2_norm(self):
        assert l2_norm(np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_relative_error_zero_for_identical(self):
        a = np.arange(5.0)
        assert relative_l2_error(a, a) == 0.0

    def test_relative_error_guard_for_zero_reference(self):
        assert relative_l2_error(np.ones(3), np.zeros(3)) == pytest.approx(np.sqrt(3))

    @given(st.floats(min_value=0.01, max_value=100.0))
    def test_scale_invariance(self, scale):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.1, 2.1, 2.9])
        assert relative_l2_error(scale * a, scale * b) == pytest.approx(
            relative_l2_error(a, b), rel=1e-6
        )
