import pytest

from repro.utils.units import (
    GB,
    GiB,
    KiB,
    MiB,
    bytes_to_human,
    seconds_to_human,
)


class TestConstants:
    def test_binary_multiples(self):
        assert KiB == 1024
        assert MiB == 1024**2
        assert GiB == 1024**3

    def test_decimal_vs_binary(self):
        assert GB < GiB


class TestBytesToHuman:
    def test_bytes(self):
        assert bytes_to_human(512) == "512 B"

    def test_kib(self):
        assert bytes_to_human(2048) == "2.00 KiB"

    def test_gib(self):
        assert bytes_to_human(6 * GiB) == "6.00 GiB"

    def test_fractional(self):
        assert bytes_to_human(1536) == "1.50 KiB"

    def test_negative(self):
        assert bytes_to_human(-2048) == "-2.00 KiB"

    def test_zero(self):
        assert bytes_to_human(0) == "0 B"


class TestSecondsToHuman:
    def test_seconds(self):
        assert seconds_to_human(1.5) == "1.500 s"

    def test_milliseconds(self):
        assert seconds_to_human(0.0123) == "12.300 ms"

    def test_microseconds(self):
        assert seconds_to_human(5e-6) == "5.000 us"

    def test_nanoseconds(self):
        assert seconds_to_human(3e-9) == "3.0 ns"

    def test_negative(self):
        assert seconds_to_human(-0.5).startswith("-")
