import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.source import gaussian, gaussian_derivative, integrated_ricker, ricker
from repro.utils.errors import ConfigurationError


class TestRicker:
    def test_shape_dtype(self):
        w = ricker(100, 0.001, 25.0)
        assert w.shape == (100,)
        assert w.dtype == np.float32

    def test_peak_at_delay(self):
        dt, f = 0.001, 20.0
        w = ricker(400, dt, f)
        t0 = 1.5 / f
        assert abs(np.argmax(w) * dt - t0) <= dt

    def test_peak_amplitude_is_one(self):
        w = ricker(400, 0.001, 20.0)
        assert float(w.max()) == pytest.approx(1.0, abs=1e-6)

    def test_starts_near_zero(self):
        w = ricker(400, 0.001, 20.0)
        assert abs(float(w[0])) < 1e-3

    def test_near_zero_mean(self):
        """The Ricker wavelet integrates to ~0 (band-limited, no DC)."""
        w = ricker(2000, 0.0005, 15.0)
        assert abs(float(np.sum(w))) < 1e-2 * np.sum(np.abs(w))

    def test_custom_delay(self):
        dt = 0.001
        w = ricker(500, dt, 20.0, delay=0.3)
        assert abs(np.argmax(w) * dt - 0.3) <= dt

    def test_spectrum_peaks_near_peak_freq(self):
        dt, f = 0.001, 18.0
        w = ricker(1024, dt, f).astype(np.float64)
        spec = np.abs(np.fft.rfft(w))
        freqs = np.fft.rfftfreq(len(w), dt)
        f_meas = freqs[np.argmax(spec)]
        assert abs(f_meas - f) / f < 0.15

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            ricker(0, 0.001, 10.0)
        with pytest.raises(ConfigurationError):
            ricker(10, -0.001, 10.0)
        with pytest.raises(ConfigurationError):
            ricker(10, 0.001, 0.0)


class TestGaussian:
    def test_positive_pulse(self):
        w = gaussian(200, 0.001, 20.0)
        assert float(w.min()) >= 0.0
        assert float(w.max()) == pytest.approx(1.0, abs=1e-6)

    def test_derivative_zero_mean(self):
        w = gaussian_derivative(1000, 0.001, 20.0)
        assert abs(float(np.sum(w))) < 1e-2 * np.sum(np.abs(w))

    def test_derivative_antisymmetric_about_peak(self):
        dt, f = 0.001, 20.0
        w = gaussian_derivative(400, dt, f)
        i0 = int(round(1.5 / f / dt))
        k = 40
        np.testing.assert_allclose(w[i0 - k : i0], -w[i0 + k : i0 : -1], atol=5e-3)


class TestIntegratedRicker:
    def test_is_antiderivative(self):
        """Differencing the integral recovers the wavelet."""
        dt = 0.0005
        w = ricker(800, dt, 15.0).astype(np.float64)
        iw = integrated_ricker(800, dt, 15.0).astype(np.float64)
        recovered = np.diff(iw) / dt
        mid = 0.5 * (w[1:] + w[:-1])
        assert np.max(np.abs(recovered - mid)) < 1e-3 * np.max(np.abs(w))

    def test_starts_at_zero(self):
        assert integrated_ricker(100, 0.001, 20.0)[0] == 0.0

    def test_returns_to_near_zero(self):
        """Integral of a zero-mean wavelet ends near zero."""
        iw = integrated_ricker(3000, 0.0005, 15.0)
        assert abs(float(iw[-1])) < 0.05 * float(np.max(np.abs(iw)))

    @given(st.floats(min_value=5.0, max_value=50.0))
    def test_finite_for_any_frequency(self, f):
        assert np.all(np.isfinite(integrated_ricker(256, 0.001, f)))
