import numpy as np
import pytest

from repro.grid import Grid
from repro.source import PointSource, extract, inject, ricker
from repro.utils.errors import ConfigurationError


class TestPointSource:
    def test_at_coords_snaps(self):
        g = Grid((20, 20), spacing=10.0)
        src = PointSource.at_coords(g, (52.0, 101.0), np.zeros(4))
        assert src.index == (5, 10)

    def test_at_center(self):
        g = Grid((21, 21))
        src = PointSource.at_center(g, np.zeros(4))
        assert src.index == (10, 10)

    def test_at_center_with_depth(self):
        g = Grid((21, 21))
        src = PointSource.at_center(g, np.zeros(4), depth_index=3)
        assert src.index == (3, 10)

    def test_depth_out_of_range(self):
        g = Grid((21, 21))
        with pytest.raises(ConfigurationError):
            PointSource.at_center(g, np.zeros(4), depth_index=30)

    def test_amplitude_within_and_beyond_wavelet(self):
        src = PointSource((0, 0), np.array([1.0, 2.0, 3.0]))
        assert src.amplitude(1) == 2.0
        assert src.amplitude(3) == 0.0
        assert src.amplitude(-1) == 0.0


class TestInject:
    def test_single_point(self):
        f = np.zeros((8, 8), dtype=np.float32)
        inject(f, np.array([[2, 3]]), 5.0)
        assert f[2, 3] == 5.0
        assert np.count_nonzero(f) == 1

    def test_scale(self):
        f = np.zeros((8, 8), dtype=np.float32)
        inject(f, np.array([[1, 1]]), 2.0, scale=3.0)
        assert f[1, 1] == 6.0

    def test_accumulates_into_existing(self):
        f = np.ones((4, 4), dtype=np.float32)
        inject(f, np.array([[0, 0]]), 1.5)
        assert f[0, 0] == 2.5

    def test_duplicate_indices_superpose(self):
        """np.add.at semantics: collocated receivers add."""
        f = np.zeros((4, 4), dtype=np.float32)
        inject(f, np.array([[1, 1], [1, 1]]), np.array([2.0, 3.0]))
        assert f[1, 1] == 5.0

    def test_vector_amplitudes(self):
        f = np.zeros((4, 4), dtype=np.float32)
        inject(f, np.array([[0, 1], [2, 3]]), np.array([1.0, 2.0]))
        assert f[0, 1] == 1.0 and f[2, 3] == 2.0

    def test_1d_index_promoted(self):
        f = np.zeros((4, 4), dtype=np.float32)
        inject(f, np.array([1, 2]), 7.0)
        assert f[1, 2] == 7.0

    def test_dim_mismatch_rejected(self):
        f = np.zeros((4, 4), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            inject(f, np.array([[1, 2, 3]]), 1.0)

    def test_3d(self):
        f = np.zeros((4, 4, 4), dtype=np.float32)
        inject(f, np.array([[1, 2, 3]]), 9.0)
        assert f[1, 2, 3] == 9.0


class TestExtract:
    def test_samples(self):
        f = np.arange(16, dtype=np.float32).reshape(4, 4)
        vals = extract(f, np.array([[0, 1], [3, 3]]))
        np.testing.assert_array_equal(vals, [1.0, 15.0])

    def test_inject_extract_roundtrip(self):
        f = np.zeros((6, 6), dtype=np.float32)
        idx = np.array([[2, 2], [4, 1]])
        inject(f, idx, np.array([3.0, 4.0]))
        np.testing.assert_array_equal(extract(f, idx), [3.0, 4.0])

    def test_dim_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            extract(np.zeros((4, 4), dtype=np.float32), np.array([[1, 2, 3]]))
