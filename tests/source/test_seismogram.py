import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.source import (
    agc,
    first_breaks,
    mute_direct_arrival,
    normalize_traces,
    resample,
    trace_energy,
)
from repro.utils.errors import ConfigurationError


def synth_record(nt=200, ntr=8, arrival_rows=None, seed=0):
    rng = np.random.default_rng(seed)
    s = np.zeros((nt, ntr), dtype=np.float32)
    arrivals = arrival_rows or [20 + 5 * j for j in range(ntr)]
    for j, a in enumerate(arrivals):
        s[a : a + 10, j] = rng.standard_normal(10).astype(np.float32) + 2.0
        s[a + 80 : a + 85, j] = 0.05  # weak late event
    return s, arrivals


class TestAGC:
    def test_boosts_weak_late_events(self):
        s, _ = synth_record()
        g = agc(s, window=21)
        raw_ratio = np.abs(s[100:110, 0]).max() / np.abs(s[20:30, 0]).max()
        agc_ratio = np.abs(g[100:110, 0]).max() / np.abs(g[20:30, 0]).max()
        assert agc_ratio > 3 * raw_ratio

    def test_window_bounds(self):
        s, _ = synth_record()
        with pytest.raises(ConfigurationError):
            agc(s, window=0)
        with pytest.raises(ConfigurationError):
            agc(s, window=1000)

    def test_preserves_shape_dtype(self):
        s, _ = synth_record()
        g = agc(s, 11)
        assert g.shape == s.shape and g.dtype == np.float32


class TestNormalizeTraces:
    def test_unit_peaks(self):
        s, _ = synth_record()
        n = normalize_traces(s)
        peaks = np.abs(n).max(axis=0)
        np.testing.assert_allclose(peaks, 1.0, rtol=1e-5)

    def test_dead_trace_stays_zero(self):
        s, _ = synth_record()
        s[:, 3] = 0.0
        n = normalize_traces(s)
        assert np.all(n[:, 3] == 0.0)

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_traces(np.zeros(10))


class TestMute:
    def test_zeroes_before_direct(self):
        s = np.ones((100, 4), dtype=np.float32)
        offsets = np.array([0.0, 100.0, 200.0, 400.0])
        out = mute_direct_arrival(s, dt=0.002, offsets_m=offsets,
                                  velocity=2000.0, pad_s=0.0)
        # offset 400 m at 2000 m/s -> 0.2 s -> 100 samples: whole trace muted
        assert np.all(out[:, 3] == 0.0)
        # offset 100 m -> 25 samples
        assert np.all(out[:25, 1] == 0.0)
        assert np.all(out[25:, 1] == 1.0)

    def test_offset_count_mismatch(self):
        s = np.ones((10, 3), dtype=np.float32)
        with pytest.raises(ConfigurationError):
            mute_direct_arrival(s, 0.001, np.zeros(2), 1500.0)


class TestFirstBreaks:
    def test_picks_match_arrivals(self):
        s, arrivals = synth_record()
        picks = first_breaks(s, threshold=0.2)
        for p, a in zip(picks, arrivals):
            assert abs(int(p) - a) <= 2

    def test_dead_trace_minus_one(self):
        s, _ = synth_record()
        s[:, 0] = 0.0
        assert first_breaks(s)[0] == -1

    def test_threshold_validated(self):
        s, _ = synth_record()
        with pytest.raises(ConfigurationError):
            first_breaks(s, threshold=2.0)


class TestResample:
    def test_factor_one_identity(self):
        s, _ = synth_record()
        np.testing.assert_allclose(resample(s, 1), s, rtol=1e-6)

    def test_length_divides(self):
        s, _ = synth_record(nt=205)
        out = resample(s, 4)
        assert out.shape == (51, s.shape[1])

    def test_preserves_dc(self):
        s = np.full((64, 2), 3.0, dtype=np.float32)
        np.testing.assert_allclose(resample(s, 8), 3.0, rtol=1e-6)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=8))
    def test_energy_never_increases(self, factor):
        s, _ = synth_record()
        out = resample(s, factor)
        # box averaging is a contraction in per-sample amplitude
        assert np.abs(out).max() <= np.abs(s).max() + 1e-6


class TestTraceEnergy:
    def test_energy_values(self):
        s = np.zeros((10, 2), dtype=np.float32)
        s[:, 1] = 2.0
        np.testing.assert_allclose(trace_energy(s), [0.0, 40.0])
