import numpy as np
import pytest

from repro.grid import Grid
from repro.source import (
    PointSource,
    Receivers,
    Shot,
    grid_receivers,
    line_receivers,
    ricker,
)
from repro.utils.errors import ConfigurationError


class TestReceivers:
    def test_count_ndim(self):
        r = Receivers(np.array([[1, 2], [3, 4]]))
        assert r.count == 2
        assert r.ndim == 2

    def test_empty_rejected(self):
        with pytest.raises(Exception):
            Receivers(np.zeros((0, 2), dtype=int))

    def test_record(self):
        f = np.arange(16, dtype=np.float32).reshape(4, 4)
        r = Receivers(np.array([[0, 0], [1, 1]]))
        np.testing.assert_array_equal(r.record(f), [0.0, 5.0])

    def test_inject_traces(self):
        f = np.zeros((4, 4), dtype=np.float32)
        r = Receivers(np.array([[0, 0], [1, 1]]))
        r.inject_traces(f, np.array([1.0, 2.0]), scale=2.0)
        assert f[0, 0] == 2.0 and f[1, 1] == 4.0

    def test_inject_traces_shape_mismatch(self):
        f = np.zeros((4, 4), dtype=np.float32)
        r = Receivers(np.array([[0, 0]]))
        with pytest.raises(ConfigurationError):
            r.inject_traces(f, np.array([1.0, 2.0]))


class TestLineReceivers:
    def test_2d_line(self):
        g = Grid((50, 100))
        r = line_receivers(g, depth_index=5, stride=2, margin=10)
        assert r.ndim == 2
        assert np.all(r.indices[:, 0] == 5)
        assert r.indices[0, 1] == 10
        assert np.all(np.diff(r.indices[:, 1]) == 2)

    def test_3d_line_constant_y(self):
        g = Grid((20, 40, 30))
        r = line_receivers(g, depth_index=3)
        assert r.ndim == 3
        assert np.all(r.indices[:, 2] == 15)

    def test_depth_out_of_range(self):
        with pytest.raises(ConfigurationError):
            line_receivers(Grid((10, 10)), depth_index=20)

    def test_margin_too_large(self):
        with pytest.raises(ConfigurationError):
            line_receivers(Grid((10, 10)), 2, margin=6)


class TestGridReceivers:
    def test_areal_spread(self):
        g = Grid((20, 32, 32))
        r = grid_receivers(g, depth_index=2, stride=8)
        assert r.count == 16
        assert np.all(r.indices[:, 0] == 2)

    def test_2d_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_receivers(Grid((10, 10)), 2)


class TestShot:
    def test_record_flow(self):
        g = Grid((16, 16))
        src = PointSource.at_center(g, ricker(10, 0.001, 25.0))
        shot = Shot(src, line_receivers(g, 2, stride=4))
        data = shot.allocate_data(5)
        assert data.shape == (5, shot.receivers.count)
        f = np.ones(g.shape, dtype=np.float32)
        shot.record_step(0, f)
        np.testing.assert_array_equal(shot.data[0], 1.0)

    def test_record_before_allocate_rejected(self):
        g = Grid((16, 16))
        src = PointSource.at_center(g, ricker(10, 0.001, 25.0))
        shot = Shot(src, line_receivers(g, 2))
        with pytest.raises(ConfigurationError):
            shot.record_step(0, np.zeros(g.shape, dtype=np.float32))
