import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.grid import CartesianDecomposition, Grid, best_dims
from repro.utils.errors import ConfigurationError


class TestBestDims:
    def test_perfect_square(self):
        assert best_dims(4, 2) == (2, 2)

    def test_prime(self):
        assert best_dims(7, 2) == (7, 1)

    def test_balanced_factorisation(self):
        assert best_dims(12, 2) == (4, 3)

    def test_3d(self):
        assert best_dims(8, 3) == (2, 2, 2)

    def test_one_rank(self):
        assert best_dims(1, 3) == (1, 1, 1)

    @given(st.integers(min_value=1, max_value=64), st.integers(min_value=1, max_value=3))
    def test_product_preserved(self, n, d):
        assert int(np.prod(best_dims(n, d))) == n


class TestDecompositionGeometry:
    def test_nranks(self):
        g = Grid((64, 64))
        d = CartesianDecomposition(g, (2, 3), halo=4)
        assert d.nranks == 6

    def test_scalar_dims_factored(self):
        g = Grid((64, 64))
        d = CartesianDecomposition(g, 4, halo=4)
        assert d.dims == (2, 2)

    def test_owned_regions_tile_domain(self):
        """Owned slices must partition the global grid exactly."""
        g = Grid((30, 50))
        d = CartesianDecomposition(g, (3, 2), halo=2)
        cover = np.zeros(g.shape, dtype=int)
        for sub in d:
            cover[sub.owned] += 1
        assert np.all(cover == 1)

    def test_uneven_distribution(self):
        g = Grid((10, 10))
        d = CartesianDecomposition(g, (3, 1), halo=2)
        sizes = [d.subdomain(r).owned_shape[0] for r in range(3)]
        assert sorted(sizes) == [3, 3, 4]
        assert sum(sizes) == 10

    def test_local_shape_includes_halo(self):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 2), halo=3)
        sub = d.subdomain(0)
        assert sub.local_grid.shape == (16 + 6, 16 + 6)

    def test_slab_thinner_than_halo_rejected(self):
        g = Grid((8, 8))
        with pytest.raises(ConfigurationError):
            CartesianDecomposition(g, (4, 1), halo=4)

    def test_neighbours(self):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 2), halo=2)
        assert d.neighbour(0, 0, "hi") == d.rank_of((1, 0))
        assert d.neighbour(0, 0, "lo") is None
        assert d.neighbour(0, 1, "hi") == d.rank_of((0, 1))

    def test_coords_rank_roundtrip(self):
        g = Grid((32, 32, 32))
        d = CartesianDecomposition(g, (2, 2, 2), halo=2)
        for r in range(d.nranks):
            assert d.rank_of(d.coords_of(r)) == r

    def test_halo_spec_edges(self):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 2), halo=2)
        corner = d.subdomain(0)
        assert corner.halo.lo == (False, False)
        assert corner.halo.hi == (True, True)
        assert len(corner.halo.exchange_faces()) == 2


class TestScatterGather:
    def test_roundtrip(self, rng):
        g = Grid((24, 24))
        d = CartesianDecomposition(g, (2, 2), halo=4)
        field = rng.standard_normal(g.shape).astype(np.float32)
        out = np.zeros_like(field)
        for sub in d:
            local = sub.scatter(field)
            sub.gather_into(out, local)
        np.testing.assert_array_equal(out, field)

    def test_scatter_interior_matches_owned(self, rng):
        g = Grid((24, 24))
        d = CartesianDecomposition(g, (2, 2), halo=3)
        field = rng.standard_normal(g.shape).astype(np.float32)
        for sub in d:
            local = sub.scatter(field)
            np.testing.assert_array_equal(local[sub.interior()], field[sub.owned])

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([(1, 1), (2, 1), (2, 2), (3, 2)]),
        st.integers(min_value=1, max_value=4),
    )
    def test_roundtrip_property(self, dims, halo):
        g = Grid((24, 26))
        d = CartesianDecomposition(g, dims, halo=halo)
        field = np.arange(g.npoints, dtype=np.float32).reshape(g.shape)
        out = np.zeros_like(field)
        for sub in d:
            sub.gather_into(out, sub.scatter(field))
        np.testing.assert_array_equal(out, field)


class TestMessageGeometry:
    def test_send_recv_slices_shapes_match(self):
        g = Grid((32, 32))
        d = CartesianDecomposition(g, (2, 1), halo=4)
        shape = d.subdomain(0).local_grid.shape
        send = d.send_slices(0, "hi", shape)
        recv = d.recv_slices(0, "hi", shape)
        a = np.zeros(shape)
        assert a[send].shape == a[recv].shape

    def test_face_bytes_positive_for_interior_rank(self):
        g = Grid((48, 48))
        d = CartesianDecomposition(g, (3, 1), halo=4)
        assert d.face_bytes(1) > d.face_bytes(0) > 0

    def test_single_rank_no_exchange(self):
        g = Grid((16, 16))
        d = CartesianDecomposition(g, 1, halo=4)
        assert d.face_bytes(0) == 0
