import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.grid import Grid
from repro.utils.errors import ConfigurationError


class TestConstruction:
    def test_2d(self):
        g = Grid((10, 20), spacing=5.0)
        assert g.ndim == 2
        assert g.shape == (10, 20)
        assert g.spacing == (5.0, 5.0)

    def test_3d(self):
        g = Grid((4, 5, 6), spacing=(1.0, 2.0, 3.0))
        assert g.ndim == 3
        assert g.spacing == (1.0, 2.0, 3.0)

    def test_1d_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((10,))

    def test_4d_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((2, 2, 2, 2))

    def test_tiny_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((1, 10))

    def test_negative_spacing_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((10, 10), spacing=-1.0)

    def test_spacing_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((10, 10), spacing=(1.0, 2.0, 3.0))

    def test_origin_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            Grid((10, 10), origin=(0.0,))


class TestGeometry:
    def test_npoints(self):
        assert Grid((10, 20)).npoints == 200

    def test_axis_names(self):
        assert Grid((4, 4)).axis_names == ("z", "x")
        assert Grid((4, 4, 4)).axis_names == ("z", "x", "y")

    def test_extent(self):
        g = Grid((11, 21), spacing=10.0)
        assert g.extent == (100.0, 200.0)

    def test_axis_coordinates(self):
        g = Grid((5, 5), spacing=2.0, origin=1.0)
        np.testing.assert_allclose(g.axis(0), [1, 3, 5, 7, 9])

    def test_axes_returns_all(self):
        g = Grid((3, 4, 5))
        assert len(g.axes()) == 3

    def test_min_spacing(self):
        assert Grid((4, 4), spacing=(2.0, 3.0)).min_spacing == 2.0


class TestFields:
    def test_zeros_shape_dtype(self):
        a = Grid((6, 7)).zeros()
        assert a.shape == (6, 7)
        assert a.dtype == np.float32

    def test_full(self):
        a = Grid((4, 4)).full(2.5)
        assert np.all(a == np.float32(2.5))

    def test_field_bytes(self):
        assert Grid((10, 10)).field_bytes() == 400


class TestIndexing:
    def test_nearest_index_roundtrip(self):
        g = Grid((20, 20), spacing=10.0)
        idx = g.nearest_index((55.0, 140.0))
        assert idx == (6, 14)

    def test_nearest_index_out_of_range(self):
        g = Grid((10, 10), spacing=10.0)
        with pytest.raises(ConfigurationError):
            g.nearest_index((1000.0, 0.0))

    def test_index_coords_inverse(self):
        g = Grid((20, 20), spacing=10.0, origin=5.0)
        coords = g.index_coords((3, 4))
        assert g.nearest_index(coords) == (3, 4)

    def test_center_index(self):
        assert Grid((10, 11)).center_index() == (5, 5)

    @given(st.integers(min_value=0, max_value=19), st.integers(min_value=0, max_value=19))
    def test_roundtrip_property(self, i, j):
        g = Grid((20, 20), spacing=7.5, origin=-30.0)
        assert g.nearest_index(g.index_coords((i, j))) == (i, j)


class TestDerivedGrids:
    def test_with_shape(self):
        g = Grid((10, 10), spacing=3.0, origin=1.0)
        h = g.with_shape((5, 6))
        assert h.shape == (5, 6)
        assert h.spacing == g.spacing
        assert h.origin == g.origin

    def test_scaled_preserves_extent(self):
        g = Grid((11, 11), spacing=10.0)
        h = g.scaled(2)
        assert h.extent == g.extent
        assert h.shape == (21, 21)

    def test_scaled_identity(self):
        g = Grid((11, 11))
        assert g.scaled(1).shape == g.shape

    def test_scaled_invalid(self):
        with pytest.raises(ConfigurationError):
            Grid((5, 5)).scaled(0)

    def test_iter_yields_shape(self):
        assert tuple(Grid((3, 4))) == (3, 4)
