import pytest

from repro.grid.staggered import FULL, HALF, StaggerOffset, staggered_shape


class TestStaggerOffset:
    def test_centered(self):
        s = StaggerOffset.centered(3)
        assert s.offsets == (FULL, FULL, FULL)
        assert not any(s.is_half(i) for i in range(3))

    def test_half_along(self):
        s = StaggerOffset.half_along(3, 1)
        assert s.is_half(1)
        assert not s.is_half(0)
        assert not s.is_half(2)

    def test_half_along_multiple(self):
        s = StaggerOffset.half_along(2, 0, 1)
        assert s.is_half(0) and s.is_half(1)

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            StaggerOffset((0, 2))

    def test_ndim(self):
        assert StaggerOffset.centered(2).ndim == 2


class TestDerivativeFlavour:
    def test_forward_full_to_half(self):
        full = StaggerOffset.centered(2)
        half = StaggerOffset.half_along(2, 0)
        assert full.derivative_flavour(0, half) == "forward"

    def test_backward_half_to_full(self):
        full = StaggerOffset.centered(2)
        half = StaggerOffset.half_along(2, 0)
        assert half.derivative_flavour(0, full) == "backward"

    def test_same_stagger_rejected(self):
        full = StaggerOffset.centered(2)
        with pytest.raises(ValueError):
            full.derivative_flavour(0, full)

    def test_virieux_2d_consistency(self):
        """The P-SV staggering used by the elastic propagator: every
        derivative in the update equations connects compatible staggers."""
        sxx = StaggerOffset.centered(2)
        vz = StaggerOffset.half_along(2, 0)
        vx = StaggerOffset.half_along(2, 1)
        sxz = StaggerOffset.half_along(2, 0, 1)
        # vx update: d(sxx)/dx forward; d(sxz)/dz backward
        assert sxx.derivative_flavour(1, vx) == "forward"
        assert sxz.derivative_flavour(0, vx) == "backward"
        # sxz update: d(vx)/dz forward, d(vz)/dx forward
        assert vx.derivative_flavour(0, sxz) == "forward"
        assert vz.derivative_flavour(1, sxz) == "forward"


class TestStaggeredShape:
    def test_same_shape_convention(self):
        assert staggered_shape((8, 9), StaggerOffset.half_along(2, 0)) == (8, 9)

    def test_ndim_mismatch_rejected(self):
        with pytest.raises(ValueError):
            staggered_shape((8, 9, 10), StaggerOffset.centered(2))
