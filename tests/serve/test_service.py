"""The survey scheduler: determinism under chaos, recovery, coalescing.

The load-bearing contract: the service's stacked image is **bitwise**
equal to the fault-free serial :func:`run_survey` stack, for any worker
count, arrival order and (recovered) fault plan — float32 stacking is
pinned to canonical shot order, and shot physics is worker-invariant.
"""

import numpy as np
import pytest

from repro.core.config import RTMConfig
from repro.core.survey import run_survey, shot_line
from repro.model import layered_model
from repro.resilience.faults import FaultPlan, parse_faults
from repro.serve import SurveyRejectedError, SurveyScheduler
from repro.utils.errors import ConfigurationError

SHOTS = 3
NT = 8


def _config():
    model = layered_model(
        (48, 48), spacing=10.0, interfaces=[240.0],
        velocities=[1500.0, 2600.0],
    )
    return RTMConfig(
        physics="isotropic", model=model, nt=NT, peak_freq=12.0,
        space_order=8, boundary_width=8, snap_period=4,
    )


@pytest.fixture(scope="module")
def config():
    return _config()


@pytest.fixture(scope="module")
def xs(config):
    return shot_line(config.model, SHOTS, margin=12)


@pytest.fixture(scope="module")
def golden(config, xs):
    """(raw stack, final image, per-shot raw images) — serial, fault-free."""
    ref = run_survey(config, shot_x_indices=xs)
    stack = np.zeros(config.model.grid.shape, dtype=np.float32)
    for img in ref.shot_images:
        stack += img
    return stack, ref.image, ref.shot_images


def _run(config, xs, workers=2, faults=None, seed=7, **kw):
    plan = FaultPlan(
        seed=seed, specs=parse_faults(faults) if faults else ()
    )
    sched = SurveyScheduler(workers=workers, plan=plan, seed=seed, **kw)
    sched.submit_survey("s", config, xs)
    return sched.run()


class TestWorkerInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_stack_bitwise_equals_serial(self, config, xs, golden, workers):
        res = _run(config, xs, workers=workers)
        assert res.completed_shots("s") == list(range(len(xs)))
        assert np.array_equal(res.stacks["s"], golden[0])
        assert np.array_equal(res.images["s"], golden[1])


class TestDeadWorker:
    def test_shots_requeue_to_survivors_bitwise(self, config, xs, golden):
        res = _run(config, xs, workers=2, faults="mpi-rank-dead@x1")
        m = res.metrics()
        assert m["workers_lost"] == 1.0
        assert m["requeued"] >= 1.0
        # every shot still completes, and the image is *identical*
        assert res.completed_shots("s") == list(range(len(xs)))
        assert np.array_equal(res.stacks["s"], golden[0])
        assert np.array_equal(res.images["s"], golden[1])
        # the requeued job remembers who failed it
        requeued = [j for j in res.jobs if j.requeues]
        assert requeued and all(j.failed_workers for j in requeued)

    def test_metrics_reproducible_bitwise(self, config, xs):
        a = _run(config, xs, workers=2, faults="mpi-rank-dead@x1")
        b = _run(config, xs, workers=2, faults="mpi-rank-dead@x1")
        assert a.metrics() == b.metrics()
        assert np.array_equal(a.stacks["s"], b.stacks["s"])


class TestPoisonQuarantine:
    def test_poison_shot_quarantined_survivors_stack(
        self, config, xs, golden
    ):
        res = _run(config, xs, workers=2, faults="shot-poison:1")
        assert res.quarantined == [1]
        assert res.completed_shots("s") == [0, 2]
        bad = next(j for j in res.jobs if j.status == "quarantined")
        assert bad.failures == 3  # default quarantine_after
        # degraded stack == golden stack of the surviving shots, summed
        # in canonical order
        expected = np.zeros(config.model.grid.shape, dtype=np.float32)
        expected += golden[2][0]
        expected += golden[2][2]
        assert np.array_equal(res.stacks["s"], expected)
        m = res.metrics()
        assert m["quarantined"] == 1.0
        assert 0.0 < m["completed_fraction"] < 1.0

    def test_quarantine_after_one_skips_retries(self, config, xs):
        res = _run(
            config, xs, workers=2, faults="shot-poison:0",
            quarantine_after=1,
        )
        assert res.quarantined == [0]
        bad = next(j for j in res.jobs if j.status == "quarantined")
        assert bad.failures == 1


class TestStranded:
    def test_all_workers_dead_never_deadlocks(self, config, xs):
        res = _run(config, xs, workers=1, faults="mpi-rank-dead@x1")
        m = res.metrics()
        assert m["workers_lost"] == 1.0
        assert m["completed_fraction"] == 0.0
        assert res.stranded == len(xs)
        assert all(
            j.status == "stranded" for j in res.jobs
        )
        assert "s" not in res.stacks  # nothing completed, nothing stacked


class TestNodeMode:
    def test_two_card_nodes_verified(self, config, xs, golden):
        res = _run(config, xs, workers=2, gpus=2)
        assert res.completed_shots("s") == list(range(len(xs)))
        assert np.array_equal(res.stacks["s"], golden[0])

    def test_dead_card_degrades_inside_the_node(self, config, xs, golden):
        res = _run(config, xs, workers=2, gpus=2, faults="rank-dead@x1")
        m = res.metrics()
        # one card of worker 0 died; the node re-decomposed and survived
        assert m["workers_lost"] == 0.0
        assert res.completed_shots("s") == list(range(len(xs)))
        assert np.array_equal(res.stacks["s"], golden[0])


class TestCoalescing:
    def test_duplicate_survey_served_from_cache(self, config, xs, golden):
        sched = SurveyScheduler(workers=2, seed=7)
        sched.submit_survey("a", config, xs)
        sched.submit_survey("b", config, xs, primary=False)
        res = sched.run()
        m = res.metrics()
        # each shot computed exactly once; the twin survey is all hits
        assert m["cache_misses"] == float(len(xs))
        assert m["cache_hits"] == float(len(xs))
        assert all(j.cache_hit for j in res.completed("b"))
        assert not any(j.cache_hit for j in res.completed("a"))
        assert np.array_equal(res.stacks["a"], golden[0])
        assert np.array_equal(res.stacks["b"], golden[0])


class TestBackpressure:
    def test_reject_policy_refuses_oversized_survey(self, config, xs):
        sched = SurveyScheduler(workers=2, capacity=2, seed=7)
        with pytest.raises(SurveyRejectedError):
            sched.submit_survey("s", config, xs)  # 3 shots, 2 slots

    def test_shed_policy_completes_admitted_prefix(self, config, xs, golden):
        sched = SurveyScheduler(workers=2, capacity=2, policy="shed", seed=7)
        jobs = sched.submit_survey("s", config, xs)
        assert [j.status for j in jobs] == ["queued", "queued", "shed"]
        res = sched.run()
        m = res.metrics()
        assert m["shed"] == 1.0
        assert res.completed_shots("s") == [0, 1]
        expected = np.zeros(config.model.grid.shape, dtype=np.float32)
        expected += golden[2][0]
        expected += golden[2][1]
        assert np.array_equal(res.stacks["s"], expected)


class TestValidation:
    def test_bad_parameters(self, config, xs):
        with pytest.raises(ConfigurationError):
            SurveyScheduler(workers=0)
        with pytest.raises(ConfigurationError):
            SurveyScheduler(gpus=0)
        with pytest.raises(ConfigurationError):
            SurveyScheduler(quarantine_after=0)

    def test_run_before_submit(self):
        with pytest.raises(ConfigurationError):
            SurveyScheduler(workers=1).run()

    def test_duplicate_survey_id(self, config, xs):
        sched = SurveyScheduler(workers=1, seed=7)
        sched.submit_survey("s", config, xs)
        with pytest.raises(ConfigurationError):
            sched.submit_survey("s", config, xs)
