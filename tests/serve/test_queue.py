"""Bounded shot queue: admission atomicity, backpressure, requeue."""

import pytest

from repro.serve.cache import ShotKey
from repro.serve.queue import (
    QueueFullError,
    ShotJob,
    ShotQueue,
    SurveyRejectedError,
)
from repro.utils.errors import ConfigurationError, ReproError


def _job(shot=0, survey="s", eligible=0.0):
    key = ShotKey(
        case="iso2d", model_hash="m", plan_hash=None, shot_x=10 * shot, nt=8
    )
    return ShotJob(
        survey=survey, case="iso2d", shot=shot, shot_x=10 * shot,
        key=key, eligible_s=eligible,
    )


class TestConstruction:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ShotQueue(capacity=0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            ShotQueue(policy="drop-newest")


class TestRejectPolicy:
    def test_whole_survey_fits(self):
        q = ShotQueue(capacity=4)
        accepted, shed = q.admit([_job(i) for i in range(3)])
        assert len(accepted) == 3 and shed == []
        assert q.admitted == 3 and len(q) == 3

    def test_rejection_is_atomic(self):
        q = ShotQueue(capacity=4, policy="reject")
        q.admit([_job(i) for i in range(3)])
        with pytest.raises(SurveyRejectedError) as exc:
            q.admit([_job(i, survey="big") for i in range(2)])
        # nothing from the refused batch was enqueued
        assert len(q) == 3
        assert exc.value.survey == "big"
        assert exc.value.requested == 2 and exc.value.free == 1
        assert q.rejected_surveys == 1 and q.rejected_shots == 2

    def test_rejection_is_a_typed_repro_error(self):
        q = ShotQueue(capacity=1)
        q.admit([_job(0)])
        with pytest.raises(ReproError):
            q.admit([_job(1, survey="t")])

    def test_empty_survey_is_a_config_error(self):
        with pytest.raises(ConfigurationError):
            ShotQueue().admit([])


class TestShedPolicy:
    def test_overflow_is_shed_not_raised(self):
        q = ShotQueue(capacity=2, policy="shed")
        jobs = [_job(i, survey="s") for i in range(4)]
        accepted, shed = q.admit(jobs)
        assert [j.shot for j in accepted] == [0, 1]
        assert [j.shot for j in shed] == [2, 3]
        assert all(j.status == "shed" for j in shed)
        assert q.shed == 2 and len(q) == 2


class TestPush:
    def test_full_queue_raises_typed_error(self):
        q = ShotQueue(capacity=1)
        q.push(_job(0))
        with pytest.raises(QueueFullError) as exc:
            q.push(_job(1))
        assert exc.value.capacity == 1
        assert q.rejected_shots == 1


class TestRequeue:
    def test_requeue_bypasses_capacity_and_goes_front(self):
        q = ShotQueue(capacity=2)
        q.admit([_job(0), _job(1)])
        lost = _job(9)
        q.requeue(lost, eligible_s=5.0)  # queue already full: still lands
        assert len(q) == 3
        assert q.requeued == 1
        # front of the queue once its backoff expires...
        assert q.pop_eligible(10.0).shot == 9
        # ...but before that, eligibility gating skips it
        assert q.pop_eligible(0.0).shot == 0

    def test_eligibility_gating(self):
        q = ShotQueue(capacity=4)
        q.requeue(_job(3), eligible_s=2.0)
        assert q.pop_eligible(1.0) is None
        assert q.next_eligible_s() == 2.0
        assert q.pop_eligible(2.0).shot == 3

    def test_restore_does_not_count_a_requeue(self):
        q = ShotQueue(capacity=4)
        q.admit([_job(0)])
        j = q.pop_eligible(0.0)
        q.restore(j)
        assert q.requeued == 0
        assert q.pop_eligible(0.0) is j


class TestCounters:
    def test_counters_shape(self):
        q = ShotQueue(capacity=3, policy="shed")
        q.admit([_job(i) for i in range(5)])
        c = q.counters()
        assert c["admitted"] == 3.0
        assert c["shed"] == 2.0
        assert c["queue_max_depth"] == 3.0
        assert set(c) == {
            "admitted", "rejected_surveys", "rejected_shots",
            "shed", "requeued", "queue_max_depth",
        }

    def test_drain_empties_the_queue(self):
        q = ShotQueue(capacity=4)
        q.admit([_job(i) for i in range(3)])
        left = q.drain()
        assert [j.shot for j in left] == [0, 1, 2]
        assert not q
