"""Result cache: content keys, counted lookups, generation invalidation."""

import numpy as np

from repro.model import layered_model
from repro.serve.cache import ResultCache, ShotKey, model_hash


def _model(**kw):
    kw.setdefault("spacing", 10.0)
    kw.setdefault("interfaces", [200.0])
    kw.setdefault("velocities", [1500.0, 2600.0])
    return layered_model((40, 40), **kw)


def _key(shot_x=10, mhash="m0", phash=None, case="iso2d", nt=8):
    return ShotKey(
        case=case, model_hash=mhash, plan_hash=phash, shot_x=shot_x, nt=nt
    )


class TestModelHash:
    def test_stable(self):
        assert model_hash(_model()) == model_hash(_model())

    def test_sensitive_to_velocity(self):
        a = _model()
        b = _model(velocities=[1500.0, 2601.0])
        assert model_hash(a) != model_hash(b)

    def test_sensitive_to_field_content(self):
        a = _model()
        b = _model()
        b.vp[3, 3] += 1.0
        assert model_hash(a) != model_hash(b)


class TestLookup:
    def test_lookup_counts_miss_then_hit(self):
        cache = ResultCache()
        key = _key()
        assert cache.lookup(key) is None
        cache.store(key, np.zeros((2, 2), dtype=np.float32), 0.5)
        entry = cache.lookup(key)
        assert entry is not None and entry.device_s == 0.5
        assert cache.misses == 1 and cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_peek_is_uncounted(self):
        cache = ResultCache()
        key = _key()
        cache.store(key, np.zeros((2, 2), dtype=np.float32), 0.1)
        assert cache.peek(key) is not None
        assert cache.peek(_key(shot_x=99)) is None
        assert cache.hits == 0 and cache.misses == 0

    def test_distinct_keys_do_not_collide(self):
        cache = ResultCache()
        cache.store(_key(nt=8), np.ones((2, 2), dtype=np.float32), 0.1)
        assert cache.peek(_key(nt=16)) is None
        assert cache.peek(_key(phash="plan")) is None


class TestGenerations:
    def test_same_generation_keeps_entries(self):
        cache = ResultCache()
        cache.begin_case("iso2d", ("m0", None))
        cache.store(_key(), np.zeros((2, 2), dtype=np.float32), 0.1)
        dropped = cache.begin_case("iso2d", ("m0", None))
        assert dropped == 0 and len(cache) == 1

    def test_generation_drift_invalidates_case(self):
        cache = ResultCache()
        cache.begin_case("iso2d", ("m0", None))
        cache.store(_key(shot_x=10), np.zeros((2, 2), dtype=np.float32), 0.1)
        cache.store(_key(shot_x=20), np.zeros((2, 2), dtype=np.float32), 0.1)
        # other cases are untouched by iso2d's drift
        cache.begin_case("ac2d", ("m9", None))
        cache.store(
            _key(case="ac2d", mhash="m9"),
            np.zeros((2, 2), dtype=np.float32), 0.1,
        )
        dropped = cache.begin_case("iso2d", ("m1", None))
        assert dropped == 2
        assert cache.invalidations == 2
        assert cache.peek(_key(shot_x=10)) is None
        assert cache.peek(_key(case="ac2d", mhash="m9")) is not None

    def test_plan_drift_alone_invalidates(self):
        cache = ResultCache()
        cache.begin_case("iso2d", ("m0", "planA"))
        cache.store(
            _key(phash="planA"), np.zeros((2, 2), dtype=np.float32), 0.1
        )
        assert cache.begin_case("iso2d", ("m0", "planB")) == 1

    def test_counters_shape(self):
        c = ResultCache().counters()
        assert set(c) == {
            "cache_hits", "cache_misses",
            "cache_invalidations", "cache_hit_rate",
        }
