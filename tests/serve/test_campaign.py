"""The serve campaign and its CLI contract."""

import argparse
import json

import pytest

from repro.serve.campaign import (
    run_serve_case,
    run_serve_command,
    serve_case_config,
)
from repro.utils.errors import ConfigurationError


def _args(tmp_path, **over):
    kw = dict(
        case="iso2d", shots=2, workers="2", gpus=1, nt=8, faults=None,
        seed=7, capacity=64, policy="reject", no_resubmit=False,
        quarantine_after=3, format="text",
        out=str(tmp_path / "BENCH_service.json"),
        ledger=str(tmp_path / "ledger.jsonl"), no_ledger=False,
    )
    kw.update(over)
    return argparse.Namespace(**kw)


class TestConfig:
    def test_serve_case_config_shapes(self):
        cfg = serve_case_config("iso2d", nt=8)
        assert cfg.physics == "isotropic"
        assert cfg.nt == 8
        assert tuple(cfg.model.grid.shape) == (64, 64)

    def test_rejects_3d_cases(self):
        with pytest.raises(ConfigurationError):
            serve_case_config("iso3d")


class TestCase:
    def test_case_verified_across_worker_counts(self):
        doc = run_serve_case(
            "iso2d", workers=(1, 2), shots=2, nt=8, ledger_path=None
        )
        assert doc["verified"]
        assert set(doc["points"]) == {"1", "2"}
        for p in doc["points"].values():
            m = p["metrics"]
            assert p["completed_shots"] == [0, 1]
            assert m["completed_fraction"] == 1.0
            assert m["verified"] == 1.0
            assert m["shots_per_hour"] > 0
            assert m["queue_p50_s"] <= m["queue_p95_s"] <= m["queue_max_s"]
            # the default duplicate submission exercises the cache
            assert m["cache_hits"] >= 1.0


class TestCommand:
    def test_dead_rank_run_writes_bench_and_ledger(self, tmp_path, capsys):
        args = _args(tmp_path, faults="mpi-rank-dead@x1")
        rc = run_serve_command(args)
        assert rc == 0
        out = capsys.readouterr().out
        assert "verified bitwise" in out
        doc = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert doc["verified"]
        # the alias spelling normalises to the canonical spec string
        assert doc["faults"] == "rank-dead"
        point = doc["cases"]["iso2d"]["points"]["2"]
        assert point["metrics"]["requeued"] >= 1.0
        assert point["metrics"]["completed_fraction"] == 1.0
        # one ledger record per (case, workers) point
        lines = (tmp_path / "ledger.jsonl").read_text().splitlines()
        recs = [json.loads(x) for x in lines]
        assert [r["command"] for r in recs] == ["serve"]
        assert recs[0]["metrics"]["verified"] == 1.0

    def test_json_format_round_trips(self, tmp_path, capsys):
        args = _args(tmp_path, format="json", no_ledger=True)
        assert run_serve_command(args) == 0
        printed = json.loads(
            capsys.readouterr().out.rsplit("wrote", 1)[0]
        )
        on_disk = json.loads((tmp_path / "BENCH_service.json").read_text())
        assert printed == on_disk
