"""Satellite contract: a compiled survey compiles its pipeline ONCE.

``run_survey`` with ``GPUOptions(compiled=True)`` must hit the memoised
compiled-pipeline cache for every shot after the first — one compile
span on the trace, ``nshots - 1`` cache hits on the run log.
"""

from repro.compile import runner
from repro.core.config import GPUOptions, RTMConfig
from repro.core.survey import run_survey, shot_line
from repro.model import layered_model
from repro.observe.runlog import RunLog
from repro.trace.tracer import Tracer

SHOTS = 3


def _config():
    model = layered_model(
        (48, 48), spacing=10.0, interfaces=[240.0],
        velocities=[1500.0, 2600.0],
    )
    return RTMConfig(
        physics="isotropic", model=model, nt=8, peak_freq=12.0,
        space_order=8, boundary_width=8, snap_period=4,
    )


def test_one_compile_span_per_survey():
    runner.clear_cache()
    config = _config()
    xs = shot_line(config.model, SHOTS, margin=12)
    tracer = Tracer()
    runlog = RunLog(command="test", case="iso2d", mode="rtm")
    with runlog.activate():
        result = run_survey(
            config, shot_x_indices=xs,
            gpu_options=GPUOptions(compiled=True), tracer=tracer,
        )
    assert len(result.shot_images) == SHOTS
    assert runlog.counters["compile.compilations"] == 1.0
    assert runlog.counters["compile.cache_hits"] == float(SHOTS - 1)
    spans = [e for e in tracer.events if e.name == "compile"]
    assert len(spans) == 1
    runner.clear_cache()


def test_compiled_survey_reports_gpu_times():
    runner.clear_cache()
    config = _config()
    xs = shot_line(config.model, 2, margin=12)
    result = run_survey(
        config, shot_x_indices=xs, gpu_options=GPUOptions(compiled=True)
    )
    assert len(result.gpu) == 2
    assert all(t.total > 0 for t in result.gpu)
    runner.clear_cache()
