"""The ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["migrate-everything"])


class TestCommands:
    def test_plan(self, capsys):
        assert main(["plan", "acoustic", "512", "512", "512"]) == 0
        out = capsys.readouterr().out
        assert "Tesla M2090" in out and "Tesla K40" in out
        assert "swap" in out  # the Fermi acoustic-3D verdict

    def test_plan_vti(self, capsys):
        assert main(["plan", "vti", "256", "256"]) == 0
        assert "resident" in capsys.readouterr().out

    def test_figures_single(self, capsys):
        assert main(["figures", "fig12"]) == 0
        out = capsys.readouterr().out
        assert "fission" in out
        assert "M2090" in out

    def test_figures_fig10(self, capsys):
        assert main(["figures", "fig10"]) == 0
        assert "registers" in capsys.readouterr().out

    def test_sweep(self, capsys):
        assert main(["sweep", "--nt", "20"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_json_export(self, tmp_path, capsys):
        path = tmp_path / "results.json"
        assert main(["json", str(path)]) == 0
        data = json.loads(path.read_text())
        assert "table3_modeling" in data
        assert data["fig10_best_maxregcount"] == 64


class TestTuneCommand:
    def test_tune_writes_plan(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main([
            "tune", "acoustic-2d", "--budget", "2", "--out", str(path),
        ]) == 0
        out = capsys.readouterr().out
        assert "TuningPlan" in out and "step time" in out
        data = json.loads(path.read_text())
        assert data["case"] == "acoustic-2d"
        assert data["tuned_step_seconds"] <= data["baseline_step_seconds"]
        assert data["kernels"], "plan must carry per-kernel entries"
        for entry in data["kernels"].values():
            assert entry["vector_length"] >= 1
            assert "model_error" in entry

    def test_tune_unknown_compiler(self, tmp_path):
        import pytest

        from repro.utils.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            main([
                "tune", "iso2d", "--compiler", "gcc-4.9",
                "--out", str(tmp_path / "p.json"),
            ])

    def test_figures_tuned_study(self, tmp_path, capsys):
        path = tmp_path / "plan.json"
        assert main([
            "tune", "el2d", "--mode", "modeling", "--budget", "2",
            "--out", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["figures", "tuned", "--plan", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Auto-tuned" in out
        assert "default" in out and "auto-tuned" in out
