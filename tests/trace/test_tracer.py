"""Tracer span/instant semantics and the metrics registry."""

import threading

import pytest

from repro.trace import NULL_TRACER, INSTANT, SPAN, MetricsRegistry, Tracer


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestSpans:
    def test_span_records_interval(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("step", phase="forward", shot=3):
            clk.t = 2.0
        (ev,) = tr.events
        assert ev.name == "step"
        assert ev.kind == SPAN
        assert (ev.start, ev.end) == (0.0, 2.0)
        assert ev.args == {"phase": "forward", "shot": 3}

    def test_nesting_order(self):
        """Inner spans close (and record) before their parents."""
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("outer"):
            clk.t = 1.0
            with tr.span("inner"):
                clk.t = 2.0
            clk.t = 3.0
        names = [e.name for e in tr.events]
        assert names == ["inner", "outer"]
        inner, outer = tr.events
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_zero_duration_span_clamped(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        clk.t = 5.0
        with tr.span("empty"):
            pass
        (ev,) = tr.events
        assert ev.start == ev.end == 5.0
        assert ev.duration == 0.0

    def test_instant_marker(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        clk.t = 1.5
        tr.instant("cudaMalloc:u", bytes=4096)
        (ev,) = tr.events
        assert ev.kind == INSTANT
        assert ev.start == ev.end == 1.5
        assert ev.args["bytes"] == 4096

    def test_emit_pretimed(self):
        tr = Tracer(clock=FakeClock())
        tr.emit("kernel", 1.0, 2.5, process="gpu", track="queue:1")
        (ev,) = tr.events
        assert (ev.start, ev.end, ev.track) == (1.0, 2.5, "queue:1")

    def test_find_and_by_category(self):
        clk = FakeClock()
        tr = Tracer(clock=clk)
        with tr.span("a", cat="x"):
            pass
        with tr.span("b", cat="y"):
            pass
        assert [e.name for e in tr.find("a")] == ["a"]
        assert [e.name for e in tr.by_category("y")] == ["b"]

    def test_disabled_tracer_records_nothing(self):
        with NULL_TRACER.span("ghost"):
            NULL_TRACER.instant("marker")
        assert NULL_TRACER.events == []

    def test_bind_default_clock_only_when_unbound(self):
        clk = FakeClock()
        tr = Tracer()  # wall clock by default
        tr.bind_default_clock(clk)
        clk.t = 7.0
        assert tr.now() == 7.0
        # an explicitly constructed clock is never overridden
        tr2 = Tracer(clock=clk)
        tr2.bind_default_clock(lambda: 99.0)
        assert tr2.now() == 7.0

    def test_clear(self):
        tr = Tracer(clock=FakeClock())
        with tr.span("a"):
            pass
        tr.metrics.counter("c").add(3)
        tr.clear()
        assert tr.events == []
        assert tr.metrics.counter("c").value == 0


class TestMetrics:
    def test_counter_accumulates_across_shots(self):
        m = MetricsRegistry()
        for shot in range(4):
            m.counter("pipeline.snapshots").add(2)
            m.counter("gpu.kernel_launches").add()
        assert m.counter("pipeline.snapshots").value == 8
        assert m.counter("gpu.kernel_launches").value == 4

    def test_counter_rejects_negative(self):
        m = MetricsRegistry()
        with pytest.raises(ValueError):
            m.counter("c").add(-1)

    def test_gauge_tracks_max(self):
        g = MetricsRegistry().gauge("resident")
        g.set(10)
        g.set(4)
        assert g.value == 4
        assert g.max == 10

    def test_histogram_summary(self):
        h = MetricsRegistry().histogram("t")
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert (s["min"], s["max"]) == (1.0, 3.0)

    def test_create_or_get_same_instance(self):
        m = MetricsRegistry()
        assert m.counter("x") is m.counter("x")
        assert m.histogram("h") is m.histogram("h")

    def test_thread_safety(self):
        m = MetricsRegistry()

        def work():
            for _ in range(1000):
                m.counter("n").add()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert m.counter("n").value == 8000

    def test_snapshot_and_text(self):
        m = MetricsRegistry()
        m.counter("gpu.h2d_bytes").add(1024)
        m.gauge("g").set(2)
        m.histogram("h").observe(1.0)
        snap = m.snapshot()
        assert snap["counters"]["gpu.h2d_bytes"] == 1024
        text = m.to_text()
        assert "KiB" in text  # *_bytes names render human-readable
