"""Perfetto / JSONL exporters."""

import json

import pytest

from repro.trace import (
    Tracer,
    summary_text,
    to_jsonl,
    to_perfetto,
    validate_perfetto,
    write_perfetto,
)


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


def _sample_tracer():
    clk = FakeClock()
    tr = Tracer(clock=clk)
    with tr.span("outer", track="pipeline"):
        clk.t = 1e-3
        with tr.span("inner", track="pipeline"):
            clk.t = 2e-3
        tr.instant("marker", track="pipeline")
        clk.t = 3e-3
    tr.emit("kernel_a", 0.5e-3, 1.5e-3, process="gpu", track="queue:1",
            cat="kernel")
    tr.emit("zero", 2e-3, 2e-3, process="gpu", track="queue:1", cat="kernel")
    tr.metrics.counter("gpu.h2d_bytes").add(2048)
    return tr


class TestPerfetto:
    def test_roundtrip_validates(self, tmp_path):
        tr = _sample_tracer()
        trace = write_perfetto(tr, tmp_path / "t.json")
        validate_perfetto(trace)
        on_disk = json.loads((tmp_path / "t.json").read_text())
        validate_perfetto(on_disk)

    def test_timestamps_sorted(self):
        trace = to_perfetto(_sample_tracer())
        ts = [e["ts"] for e in trace["traceEvents"] if "ts" in e]
        assert ts == sorted(ts)

    def test_b_e_pairs_match_per_track(self):
        trace = to_perfetto(_sample_tracer())
        depth = {}
        for e in trace["traceEvents"]:
            key = (e.get("pid"), e.get("tid"))
            if e["ph"] == "B":
                depth[key] = depth.get(key, 0) + 1
            elif e["ph"] == "E":
                depth[key] = depth.get(key, 0) - 1
                assert depth[key] >= 0
        assert all(v == 0 for v in depth.values())

    def test_nesting_encoded_as_enclosing_b_e(self):
        trace = to_perfetto(_sample_tracer())
        begins = [e["name"] for e in trace["traceEvents"] if e["ph"] == "B"
                  and e.get("name") in ("outer", "inner")]
        assert begins == ["outer", "inner"]  # parent opens before child
        ends = [e["ts"] for e in trace["traceEvents"] if e["ph"] == "E"]
        assert ends == sorted(ends)  # children close before parents

    def test_metadata_names_processes_and_tracks(self):
        trace = to_perfetto(_sample_tracer())
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        procs = {e["args"]["name"] for e in meta if e["name"] == "process_name"}
        tracks = {e["args"]["name"] for e in meta if e["name"] == "thread_name"}
        assert {"host", "gpu"} <= procs
        assert {"pipeline", "queue:1"} <= tracks

    def test_metrics_embedded(self):
        trace = to_perfetto(_sample_tracer())
        assert trace["metrics"]["counters"]["gpu.h2d_bytes"] == 2048

    def test_validator_rejects_unsorted(self):
        trace = to_perfetto(_sample_tracer())
        bad = [e for e in trace["traceEvents"] if "ts" in e]
        bad[0], bad[-1] = bad[-1], bad[0]
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": bad})

    def test_validator_rejects_unmatched_begin(self):
        with pytest.raises(ValueError):
            validate_perfetto({"traceEvents": [
                {"ph": "B", "ts": 0, "pid": 1, "tid": 1, "name": "x"},
            ]})

    def test_empty_tracer_exports(self):
        trace = to_perfetto(Tracer(clock=FakeClock()))
        validate_perfetto(trace)


class TestJsonl:
    def test_every_line_parses(self):
        lines = to_jsonl(_sample_tracer()).strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records[-1]["kind"] == "metrics"
        names = {r.get("name") for r in records[:-1]}
        assert {"outer", "inner", "kernel_a"} <= names


class TestSummary:
    def test_shares_and_metrics_rendered(self):
        text = summary_text(_sample_tracer())
        assert "kernel" in text
        assert "%" in text
        assert "gpu.h2d_bytes" in text
