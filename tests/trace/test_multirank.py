"""Multi-rank trace CLI: per-rank tracers merged into one timeline."""

import json

from repro.trace.cli import MultiGpuTraceResult, trace_case
from repro.trace.export import write_perfetto
from repro.trace.tracer import Tracer


class TestAbsorb:
    def test_prefixes_processes_and_counts(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        with b.span("step", process="gpu", track="q0"):
            pass
        b.instant("mark", process="host")
        n = a.absorb(b, process_prefix="rank1:")
        assert n == 2
        assert {e.process for e in a.events} == {"rank1:gpu", "rank1:host"}

    def test_no_prefix_copies_verbatim(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        b.instant("mark", process="mpi")
        a.absorb(b)
        assert a.events[0].process == "mpi"

    def test_metrics_merge_under_prefix(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        a.metrics.counter("halo.bytes").add(10)
        b.metrics.counter("halo.bytes").add(32)
        b.metrics.gauge("queue.depth").set(4)
        b.metrics.gauge("queue.depth").set(2)
        b.metrics.histogram("gpu.kernel_seconds").observe(1.0)
        b.metrics.histogram("gpu.kernel_seconds").observe(3.0)
        a.absorb(b, process_prefix="rank1:")
        assert a.metrics.counter("halo.bytes").value == 10
        assert a.metrics.counter("rank1:halo.bytes").value == 32
        gauge = a.metrics.gauge("rank1:queue.depth")
        assert gauge.value == 2 and gauge.max == 4
        hist = a.metrics.histogram("rank1:gpu.kernel_seconds")
        assert hist.count == 2 and hist.total == 4.0
        assert hist.min == 1.0 and hist.max == 3.0

    def test_metrics_merge_without_prefix_adds_counters(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        a.metrics.counter("halo.messages").add(2)
        b.metrics.counter("halo.messages").add(3)
        a.absorb(b)
        assert a.metrics.counter("halo.messages").value == 5

    def test_merged_summary_surfaces_rank_metrics(self):
        from repro.trace.export import summary_text

        merged, rank = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        rank.metrics.counter("gpu.kernel_launches").add(7)
        merged.absorb(rank, process_prefix="rank0:")
        assert "rank0:gpu.kernel_launches" in summary_text(merged)


class TestTraceRanks:
    def test_two_rank_modeling_merges_rank_timelines(self, tmp_path):
        tracer, result = trace_case("ac2d", mode="modeling", nt=8, ranks=2)
        assert isinstance(result, MultiGpuTraceResult)
        assert len(result.rank_times) == 2
        assert result.gpu is None

        processes = {e.process for e in tracer.events}
        assert any(p.startswith("rank0:") for p in processes)
        assert any(p.startswith("rank1:") for p in processes)
        # halo-exchange spans stay on the unprefixed shared timeline
        assert any(e.cat == "halo" for e in tracer.events)

        umbrella = tracer.find("trace.modeling")
        assert len(umbrella) == 1 and umbrella[0].args["ranks"] == 2

        out = tmp_path / "trace.json"
        doc = write_perfetto(tracer, str(out))
        assert json.loads(out.read_text())["traceEvents"]
        assert doc["traceEvents"]
