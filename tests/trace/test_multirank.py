"""Multi-rank trace CLI: per-rank tracers merged into one timeline."""

import json

from repro.trace.cli import MultiGpuTraceResult, trace_case
from repro.trace.export import write_perfetto
from repro.trace.tracer import Tracer


class TestAbsorb:
    def test_prefixes_processes_and_counts(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        with b.span("step", process="gpu", track="q0"):
            pass
        b.instant("mark", process="host")
        n = a.absorb(b, process_prefix="rank1:")
        assert n == 2
        assert {e.process for e in a.events} == {"rank1:gpu", "rank1:host"}

    def test_no_prefix_copies_verbatim(self):
        a, b = Tracer(clock=lambda: 0.0), Tracer(clock=lambda: 0.0)
        b.instant("mark", process="mpi")
        a.absorb(b)
        assert a.events[0].process == "mpi"


class TestTraceRanks:
    def test_two_rank_modeling_merges_rank_timelines(self, tmp_path):
        tracer, result = trace_case("ac2d", mode="modeling", nt=8, ranks=2)
        assert isinstance(result, MultiGpuTraceResult)
        assert len(result.rank_times) == 2
        assert result.gpu is None

        processes = {e.process for e in tracer.events}
        assert any(p.startswith("rank0:") for p in processes)
        assert any(p.startswith("rank1:") for p in processes)
        # halo-exchange spans stay on the unprefixed shared timeline
        assert any(e.cat == "halo" for e in tracer.events)

        umbrella = tracer.find("trace.modeling")
        assert len(umbrella) == 1 and umbrella[0].args["ranks"] == 2

        out = tmp_path / "trace.json"
        doc = write_perfetto(tracer, str(out))
        assert json.loads(out.read_text())["traceEvents"]
        assert doc["traceEvents"]
