"""End-to-end instrumentation: acc runtime, device, pipeline, mpisim, CLI."""

import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.acc import PGI_14_6
from repro.core import GPUOptions, RTMConfig
from repro.core.rtm import run_rtm
from repro.grid.decomposition import CartesianDecomposition
from repro.grid.grid import Grid
from repro.model import layered_model
from repro.mpisim.comm import SimMPI
from repro.mpisim.halo import HaloExchanger
from repro.trace import Tracer, validate_perfetto
from repro.trace.cli import parse_case, trace_case
from repro.utils.errors import ConfigurationError


def _small_rtm(tracer):
    m = layered_model((64, 64), spacing=10.0, interfaces=[320.0],
                      velocities=[1500.0, 2600.0], vs_ratio=0.5)
    cfg = RTMConfig(physics="isotropic", model=m, nt=16, peak_freq=12.0,
                    boundary_width=8, snap_period=4)
    return run_rtm(cfg, gpu_options=GPUOptions(compiler=PGI_14_6),
                   tracer=tracer)


class TestRuntimeInstrumentation:
    def test_all_layers_emit(self):
        tracer = Tracer()
        res = _small_rtm(tracer)
        cats = {e.cat for e in tracer.events}
        assert {"acc", "kernel", "phase"} <= cats
        assert {"h2d", "d2h"} <= cats
        # the tracer clock was rebound to the simulated device timeline
        assert res.gpu is not None
        assert tracer.now() == pytest.approx(res.gpu.total)

    def test_spans_use_simulated_seconds(self):
        tracer = Tracer()
        res = _small_rtm(tracer)
        last = max(e.end for e in tracer.events)
        assert last <= res.gpu.total + 1e-9

    def test_device_metrics_populated(self):
        tracer = Tracer()
        _small_rtm(tracer)
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["gpu.kernel_launches"] > 0
        assert snap["counters"]["gpu.h2d_bytes"] > 0
        assert snap["counters"]["pipeline.snapshots"] > 0
        assert snap["histograms"]["gpu.occupancy"]["count"] > 0

    def test_gpu_times_categories_filled(self):
        """Satellite fix: per-category clock charges are surfaced, not
        write-only."""
        res = _small_rtm(Tracer())
        cats = res.gpu.categories
        assert cats["kernel"] == pytest.approx(res.gpu.kernel)
        assert cats["h2d"] == pytest.approx(res.gpu.h2d)
        assert cats["d2h"] == pytest.approx(res.gpu.d2h)
        assert res.gpu.alloc > 0
        assert res.gpu.other >= 0

    def test_untraced_run_matches_traced_run(self):
        """Instrumentation must not perturb the modelled numbers."""
        plain = _small_rtm(None)
        traced = _small_rtm(Tracer())
        assert traced.gpu.total == pytest.approx(plain.gpu.total)
        assert traced.gpu.kernel == pytest.approx(plain.gpu.kernel)
        np.testing.assert_allclose(traced.image, plain.image)


class TestHaloInstrumentation:
    def test_exchange_emits_spans_and_counters(self):
        g = Grid((32, 32), 10.0)
        d = CartesianDecomposition(g, (2, 1), halo=4)
        tracer = Tracer(clock=lambda: 0.0)
        ex = HaloExchanger(d, SimMPI(2), tracer=tracer)
        field = np.arange(32 * 32, dtype=np.float32).reshape(32, 32)
        locals_ = [d.subdomain(r).scatter(field) for r in range(2)]
        ex.exchange([{"f": a} for a in locals_])
        recvs = tracer.find("halo.recv")
        assert len(recvs) == 2  # one per rank along the split axis
        assert all(e.cat == "halo" and e.duration > 0 for e in recvs)
        assert {e.track for e in recvs} == {"rank:0", "rank:1"}
        snap = tracer.metrics.snapshot()
        assert snap["counters"]["halo.messages"] == 2
        assert snap["counters"]["halo.bytes"] > 0
        assert snap["counters"]["mpi.messages"] == 2

    def test_exchange_untraced_unchanged(self):
        g = Grid((32, 32), 10.0)
        d = CartesianDecomposition(g, (2, 1), halo=4)
        field = np.arange(32 * 32, dtype=np.float32).reshape(32, 32)
        a = [d.subdomain(r).scatter(field) for r in range(2)]
        b = [x.copy() for x in a]
        HaloExchanger(d, SimMPI(2)).exchange([{"f": x} for x in a])
        HaloExchanger(d, SimMPI(2), tracer=Tracer(clock=lambda: 0.0)).exchange(
            [{"f": x} for x in b]
        )
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)


class TestCaseParsing:
    @pytest.mark.parametrize("text,expect", [
        ("iso2d", ("isotropic", 2)),
        ("ISO3D", ("isotropic", 3)),
        ("acoustic2d", ("acoustic", 2)),
        ("ac3d", ("acoustic", 3)),
        ("el-2d", ("elastic", 2)),
        ("elastic_3d", ("elastic", 3)),
    ])
    def test_aliases(self, text, expect):
        assert parse_case(text) == expect

    @pytest.mark.parametrize("bad", ["iso", "2d", "vti2d", "iso4d", ""])
    def test_rejects_unknown(self, bad):
        with pytest.raises(ConfigurationError):
            parse_case(bad)


class TestTraceCli:
    def test_golden_iso2d(self, tmp_path, capsys):
        """``python -m repro trace iso2d`` writes a Perfetto-loadable trace
        containing spans from every instrumented layer."""
        out = tmp_path / "trace.json"
        rc = main(["trace", "iso2d", "--nt", "12", "--out", str(out)])
        assert rc == 0
        trace = json.loads(out.read_text())
        validate_perfetto(trace)
        cats = {e.get("cat") for e in trace["traceEvents"]
                if e.get("ph") in ("B", "i")}
        assert {"acc", "kernel", "phase"} <= cats
        assert cats & {"h2d", "d2h"}
        stdout = capsys.readouterr().out
        assert "Trace summary" in stdout
        assert str(out) in stdout

    def test_ranks_add_halo_track(self, tmp_path):
        out = tmp_path / "trace.json"
        rc = main(["trace", "iso2d", "--nt", "8", "--ranks", "2",
                   "--out", str(out)])
        assert rc == 0
        trace = json.loads(out.read_text())
        validate_perfetto(trace)
        procs = {e["args"]["name"] for e in trace["traceEvents"]
                 if e.get("ph") == "M" and e.get("name") == "process_name"}
        assert "mpi" in procs
        assert trace["metrics"]["counters"]["halo.messages"] > 0

    def test_modeling_mode_and_jsonl(self, tmp_path):
        out = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        rc = main(["trace", "ac2d", "--mode", "modeling", "--nt", "8",
                   "--out", str(out), "--jsonl", str(jsonl)])
        assert rc == 0
        validate_perfetto(json.loads(out.read_text()))
        lines = jsonl.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_trace_case_api(self):
        tracer, result = trace_case("el2d", mode="modeling", nt=6)
        assert result.gpu is not None
        assert tracer.find("trace.modeling")

    def test_harness_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "h.json"
        rc = main(["sweep", "--nt", "2", "--trace", str(path)])
        assert rc == 0
        validate_perfetto(json.loads(path.read_text()))
