#!/usr/bin/env python
"""Reproduce the paper's Figure 5: a 2-D RTM seismic image in acoustic
media.

Migrates one shot over a faulted two-layer model; the image should light up
along the interface, including the fault throw. The image is rendered as
ASCII art and saved to ``outputs/rtm_image.npy``.
"""

import os

import numpy as np

from repro.core import RTMConfig, run_rtm
from repro.model import fault_model
from repro.source import line_receivers


def ascii_render(image: np.ndarray, width: int = 72, height: int = 36) -> str:
    zs = np.linspace(0, image.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, image.shape[1] - 1, width).astype(int)
    view = np.abs(image[np.ix_(zs, xs)]).astype(np.float64)
    peak = view.max() or 1.0
    chars = " .:-=+*#%@"
    return "\n".join(
        "".join(chars[int(min(v / peak, 1.0) * (len(chars) - 1))] for v in row)
        for row in view
    )


def main() -> None:
    model = fault_model(
        (160, 160),
        spacing=10.0,
        interface_depth=700.0,
        throw=200.0,
        velocities=(1500.0, 2700.0),
    )
    config = RTMConfig(
        physics="acoustic",
        model=model,
        nt=800,
        peak_freq=12.0,
        boundary_width=16,
        snap_period=4,
        receivers=line_receivers(model.grid, 18, stride=2, margin=16),
        source_depth_index=18,
        mute_cells=44,
    )
    result = run_rtm(config)

    print("Figure 5 analogue: 2-D RTM image (acoustic media, faulted model)")
    print(f"interface at 700 m (row 70) left / 900 m (row 90) right of centre")
    print(ascii_render(result.image))

    profile = np.sum(result.image[:, 20:70].astype(np.float64) ** 2, axis=1)
    print(f"left-block image peak at row {int(np.argmax(profile))} (expect ~70)")
    profile_r = np.sum(result.image[:, 90:140].astype(np.float64) ** 2, axis=1)
    print(f"right-block image peak at row {int(np.argmax(profile_r))} (expect ~90)")

    os.makedirs("outputs", exist_ok=True)
    np.save("outputs/rtm_image.npy", result.image)
    print("image -> outputs/rtm_image.npy")


if __name__ == "__main__":
    main()
