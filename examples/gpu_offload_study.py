#!/usr/bin/env python
"""Drive one modeling run on both simulated platforms and both compilers,
reproducing the paper's optimization workflow (its Figure 1 loop): port,
measure, optimize, compare against the full-socket CPU reference.

Shows the modelled breakdown (kernel / transfer / launch counts) for the
acoustic 2-D case, plus the effect of the paper's headline optimizations.
"""

from repro.acc import CRAY_8_2_6, PGI_14_3, PGI_14_6, CompileFlags
from repro.core import GPUOptions, estimate_modeling, estimate_rtm
from repro.core.platform import CRAY_K40, IBM_M2090
from repro.core.reference import cpu_modeling_time
from repro.utils.units import seconds_to_human

SHAPE = (1024, 1024)
NT = 500
SNAP = 10


def report(label, times, cpu_total=None):
    line = (
        f"  {label:<34} total {seconds_to_human(times.total):>11}  "
        f"kernel {seconds_to_human(times.kernel):>11}  "
        f"transfers {seconds_to_human(times.transfer):>11}  "
        f"launches {times.launches}"
    )
    if cpu_total is not None and times.total > 0:
        line += f"  speedup vs CPU {cpu_total / times.total:.2f}x"
    print(line)


def main() -> None:
    print(f"Acoustic 2-D modeling, grid {SHAPE}, {NT} steps (modelled times)\n")
    for platform, persona in (
        (CRAY_K40, PGI_14_6),
        (CRAY_K40, CRAY_8_2_6),
        (IBM_M2090, PGI_14_3),
    ):
        cpu = cpu_modeling_time(platform.cluster, "acoustic", SHAPE, NT, SNAP)
        t = estimate_modeling(
            "acoustic", SHAPE, NT, SNAP,
            platform=platform,
            options=GPUOptions(compiler=persona, flags=CompileFlags(maxregcount=64)),
        )
        report(f"{platform.name} + {persona.name}", t, cpu.total)

    print("\nOptimization ablations (CRAY XC30 + K40, PGI 14.6, RTM):")
    base = GPUOptions(compiler=PGI_14_6, flags=CompileFlags(maxregcount=64))
    variants = {
        "tuned (reuse + pinned + regs 64)": base,
        "original backward kernel": GPUOptions(
            compiler=PGI_14_6, flags=CompileFlags(maxregcount=64),
            reuse_forward_kernel=False,
        ),
        "transpose fix instead of reuse": GPUOptions(
            compiler=PGI_14_6, flags=CompileFlags(maxregcount=64),
            reuse_forward_kernel=False, transpose_fix=True,
        ),
        "pageable host memory (no pin)": GPUOptions(
            compiler=PGI_14_6, flags=CompileFlags(maxregcount=64, pin=False),
        ),
        "imaging on the CPU": GPUOptions(
            compiler=PGI_14_6, flags=CompileFlags(maxregcount=64),
            image_on_gpu=False,
        ),
    }
    for label, options in variants.items():
        t = estimate_rtm("acoustic", SHAPE, NT, SNAP, platform=CRAY_K40, options=options)
        report(label, t)


if __name__ == "__main__":
    main()
