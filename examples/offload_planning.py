#!/usr/bin/env python
"""Plan device residency for the paper's seismic cases, and pick grid
spacing from the dispersion analysis — the two decisions that precede any
port (the paper's data-allocation step and its width-8 operator choice).
"""

from repro.bench.workloads import ALL_CASES
from repro.core import plan_offload
from repro.gpusim import K40, M2090
from repro.stencil import points_per_wavelength_for_accuracy


def main() -> None:
    print("=== Device residency plans (RTM working sets) ===\n")
    for case in ALL_CASES:
        for spec in (M2090, K40):
            plan = plan_offload(case.physics, case.shape, spec)
            print(
                f"{case.name:<14} on {spec.name:<12}: {plan.strategy:<9} "
                f"(forward {plan.forward_bytes / 2**30:.2f} GiB / "
                f"usable {plan.usable_bytes / 2**30:.2f} GiB)"
            )
    print()
    print("=== Grid-spacing guidance (0.1 % phase-velocity error) ===\n")
    for scheme, label in (("second_order", "isotropic (centered)"),
                          ("staggered", "acoustic/elastic (staggered)")):
        for order in (2, 4, 8):
            ppw = points_per_wavelength_for_accuracy(
                1e-3, scheme, order, courant=0.05
            )
            print(f"  {label:<28} order {order}: {ppw:5.1f} points per wavelength")
        print()
    print("The width-8 operators let the paper's codes run ~3-7x coarser "
          "grids than 2nd-order ones at equal accuracy — an 8-300x saving "
          "in points for 2-D/3-D domains.")


if __name__ == "__main__":
    main()
