#!/usr/bin/env python
"""The paper's CPU reference path: domain-decomposed modeling over the
simulated MPI substrate.

Splits a 2-D acoustic model across 4 ranks (the paper's 'sub-domains mapped
onto several hosts'), steps each rank's local propagator with ghost-node
exchanges via ISend/IRecv/WaitAny, and verifies bitwise agreement of the
owned regions with a single-domain run.
"""

import numpy as np

from repro.grid import CartesianDecomposition
from repro.model import constant_model, EarthModel
from repro.mpisim import HaloExchanger, SimMPI
from repro.propagators import AcousticPropagator
from repro.source import PointSource, integrated_ricker

SHAPE = (96, 96)
NT = 120
NRANKS = 4


def main() -> None:
    model = constant_model(SHAPE, spacing=10.0, vp=2000.0)

    # --- single-domain reference -------------------------------------
    ref = AcousticPropagator(model, boundary_width=0, check_health_every=0)
    wavelet = integrated_ricker(NT + 5, ref.dt, 15.0)
    src = PointSource.at_center(model.grid, wavelet)
    ref.run(NT, source=src)

    # --- decomposed run ------------------------------------------------
    decomp = CartesianDecomposition(model.grid, NRANKS, halo=4)
    mpi = SimMPI(decomp.nranks)
    exchanger = HaloExchanger(decomp, mpi)
    props = []
    for sub in decomp:
        local_model = EarthModel(
            sub.local_grid,
            sub.scatter(model.vp),
            rho=sub.scatter(model.density()),
        )
        props.append(
            AcousticPropagator(
                local_model, dt=ref.dt, boundary_width=0, check_health_every=0
            )
        )

    # lockstep leapfrog: exchange flow halos, update pressures everywhere,
    # exchange the *fresh* pressure halos, then update flows — the staggered
    # scheme's second sub-stage differentiates the new pressure, so a single
    # per-step exchange is not enough
    for n in range(NT):
        exchanger.exchange([{k: p.fields[k] for k in ("qz", "qx")} for p in props])
        amp = src.amplitude(n)
        for sub, p in zip(decomp, props):
            srcs = []
            if amp != 0.0:
                gz, gx = src.index
                oz, ox = sub.owned[0], sub.owned[1]
                if oz.start <= gz < oz.stop and ox.start <= gx < ox.stop:
                    local = (gz - oz.start + 4, gx - ox.start + 4)
                    srcs.append((local, amp))
            p.step_pressure(srcs)
        exchanger.exchange([{"p": p.fields["p"]} for p in props])
        for p in props:
            p.step_flow()

    gathered = np.zeros(SHAPE, dtype=np.float32)
    for sub, p in zip(decomp, props):
        sub.gather_into(gathered, p.snapshot_field())

    interior = (slice(8, -8), slice(8, -8))
    err = float(np.abs(gathered[interior] - ref.snapshot_field()[interior]).max())
    peak = float(np.abs(ref.snapshot_field()).max())
    print(f"decomposition : {decomp.dims} ranks, halo 4")
    print(f"messages sent : {mpi.stats.messages} "
          f"({mpi.stats.bytes_sent / 1e6:.1f} MB of ghost nodes)")
    print(f"peak field    : {peak:.4e}")
    print(f"max |error|   : {err:.3e} (vs single-domain run)")
    assert err <= 1e-5 * peak, "decomposed run diverged from the reference!"
    print("OK: decomposed modeling matches the single-domain reference.")


if __name__ == "__main__":
    main()
