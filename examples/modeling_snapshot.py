#!/usr/bin/env python
"""Reproduce the paper's Figure 3: a 2-D seismic modeling snapshot in
acoustic media.

Propagates a Ricker source through a two-layer acoustic medium and renders
the expanding (and refracting) wavefront as ASCII art; the raw snapshot is
saved to ``outputs/modeling_snapshot.npy``.
"""

import os

import numpy as np

from repro.core import ModelingConfig, run_modeling
from repro.model import layered_model


def ascii_render(field: np.ndarray, width: int = 72, height: int = 36) -> str:
    """Coarse ASCII view of a wavefield (sign + amplitude)."""
    zs = np.linspace(0, field.shape[0] - 1, height).astype(int)
    xs = np.linspace(0, field.shape[1] - 1, width).astype(int)
    view = field[np.ix_(zs, xs)].astype(np.float64)
    peak = np.abs(view).max() or 1.0
    chars = " .:-=+*#%@"
    lines = []
    for row in view:
        line = []
        for v in row:
            a = min(abs(v) / peak, 1.0)
            c = chars[int(a * (len(chars) - 1))]
            line.append(c)
        lines.append("".join(line))
    return "\n".join(lines)


def main() -> None:
    model = layered_model(
        (192, 192),
        spacing=10.0,
        interfaces=[1000.0],
        velocities=[1500.0, 2800.0],
    )
    config = ModelingConfig(
        physics="acoustic",
        model=model,
        nt=520,
        peak_freq=10.0,
        boundary_width=16,
        snap_period=40,
        snapshot_decimate=1,
        source_depth_index=40,
    )
    result = run_modeling(config)
    snap = result.snapshots.frames()[-1]

    print("Figure 3 analogue: 2-D seismic modeling snapshot (acoustic media)")
    print(f"grid {model.grid}, t = {config.nt * result.dt:.2f} s, "
          f"interface at 1000 m (row {int(1000 / 10)})")
    print(ascii_render(snap))

    os.makedirs("outputs", exist_ok=True)
    np.save("outputs/modeling_snapshot.npy", snap)
    print("raw snapshot -> outputs/modeling_snapshot.npy")


if __name__ == "__main__":
    main()
