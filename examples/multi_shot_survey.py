#!/usr/bin/env python
"""Multi-shot RTM survey: the imaging condition 'summed over the sources'.

Migrates five shots across a faulted model and compares the lateral
coverage of a single-shot image with the stacked survey image.
"""

import numpy as np

from repro.core import RTMConfig, run_survey
from repro.model import fault_model
from repro.source import line_receivers


def reflector_band_coverage(image: np.ndarray, rows: slice, thresh=0.2) -> int:
    band = np.abs(image[rows, :]).astype(np.float64).sum(axis=0)
    peak = band.max() or 1.0
    return int((band / peak > thresh).sum())


def main() -> None:
    model = fault_model(
        (144, 160), spacing=10.0, interface_depth=640.0, throw=160.0,
        velocities=(1500.0, 2700.0),
    )
    cfg = RTMConfig(
        physics="acoustic", model=model, nt=700, peak_freq=12.0,
        boundary_width=16, snap_period=4,
        receivers=line_receivers(model.grid, 18, stride=2, margin=16),
        source_depth_index=18, mute_cells=44,
    )
    survey = run_survey(cfg, nshots=5)

    rows = slice(58, 86)  # the faulted reflector band (640-800 m)
    single = reflector_band_coverage(
        np.abs(survey.shot_images[2]) / (np.abs(survey.shot_images[2]).max() or 1),
        rows,
    )
    stacked = reflector_band_coverage(survey.image, rows)
    print("multi-shot RTM survey (5 shots, faulted model)")
    print(f"  shot positions (x-index)  : {survey.shot_x_indices}")
    print(f"  reflector coverage, 1 shot: {single} columns above threshold")
    print(f"  reflector coverage, stack : {stacked} columns above threshold")
    profile = np.sum(survey.image[:, 20:70].astype(np.float64) ** 2, axis=1)
    print(f"  left-block image peak row : {int(np.argmax(profile))} (expect ~64)")
    profile_r = np.sum(survey.image[:, 90:140].astype(np.float64) ** 2, axis=1)
    print(f"  right-block image peak row: {int(np.argmax(profile_r))} (expect ~80)")


if __name__ == "__main__":
    main()
