#!/usr/bin/env python
"""The paper's future-work case: anisotropic (VTI) seismic modeling.

Propagates the same Ricker source through an isotropic medium and a VTI
medium (Thomsen epsilon = 0.25, delta = 0.1) and shows the horizontal
stretch of the wavefront the anisotropy produces.
"""

import numpy as np

from repro.model import constant_model, with_thomsen
from repro.propagators import VTIPropagator
from repro.source import PointSource, ricker


def front_radii(prop, nsteps, freq):
    w = ricker(nsteps + 10, prop.dt, freq)
    prop.run(nsteps, source=PointSource.at_center(prop.grid, w))
    u = prop.snapshot_field()
    c = prop.grid.center_index()
    r_h = int(np.argmax(np.abs(u[c[0], c[1]:])))
    r_v = int(np.argmax(np.abs(u[c[0]:, c[1]])))
    return r_h, r_v


def main() -> None:
    base = constant_model((161, 161), spacing=10.0, vp=2000.0, with_density=False)
    eps, delta = 0.25, 0.10

    aniso = VTIPropagator(with_thomsen(base, eps, delta), boundary_width=16)
    iso = VTIPropagator(with_thomsen(base, 0.0, 0.0), dt=aniso.dt, boundary_width=16)

    nsteps, freq = 120, 12.0
    rh_i, rv_i = front_radii(iso, nsteps, freq)
    rh_a, rv_a = front_radii(aniso, nsteps, freq)

    print("VTI pseudo-acoustic modeling (Thomsen parameters)")
    print(f"  medium          : vp = 2000 m/s, eps = {eps}, delta = {delta}")
    print(f"  isotropic front : horizontal r = {rh_i} cells, vertical r = {rv_i}")
    print(f"  VTI front       : horizontal r = {rh_a} cells, vertical r = {rv_a}")
    print(f"  measured H/V    : {rh_a / rv_a:.3f}")
    print(f"  NMO prediction  : sqrt(1 + 2 eps) = {np.sqrt(1 + 2 * eps):.3f} "
          "(group-velocity stretch at 90 degrees)")
    print(f"  vertical speed  : unchanged "
          f"({'yes' if abs(rv_a - rv_i) <= 2 else 'NO'})")


if __name__ == "__main__":
    main()
