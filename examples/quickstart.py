#!/usr/bin/env python
"""Quickstart: seismic modeling of a two-layer medium in five lines of API.

Runs the variable-density acoustic propagator (Eq. 2 of the paper) over a
layered model, records a surface seismogram, and prints a run summary.
"""

import numpy as np

from repro.core import ModelingConfig, run_modeling
from repro.model import layered_model


def main() -> None:
    # a 1.28 x 1.28 km two-layer medium (10 m cells)
    model = layered_model(
        (128, 128),
        spacing=10.0,
        interfaces=[640.0],
        velocities=[1500.0, 2600.0],
    )
    config = ModelingConfig(
        physics="acoustic",
        model=model,
        nt=500,
        peak_freq=12.0,
        boundary_width=16,
    )
    result = run_modeling(config)

    print("repro quickstart — acoustic seismic modeling")
    print(f"  grid            : {model.grid}")
    print(f"  time step       : {result.dt * 1e3:.3f} ms, {config.nt} steps")
    print(f"  seismogram      : {result.seismogram.shape} (steps x receivers)")
    print(f"  snapshots saved : {result.snapshots.count}")
    peak = float(np.abs(result.seismogram).max())
    first = int(np.argmax(np.abs(result.seismogram).max(axis=1) > 1e-3 * peak))
    print(f"  first arrival   : step {first} (~{first * result.dt:.3f} s)")
    print(f"  peak amplitude  : {peak:.3e}")


if __name__ == "__main__":
    main()
