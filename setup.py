"""Setup shim for environments without the `wheel` package (offline PEP 660
fallback): allows `pip install -e . --no-build-isolation --no-use-pep517`
and `python setup.py develop`."""
from setuptools import setup

setup()
