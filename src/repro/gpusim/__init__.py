"""Simulated NVIDIA accelerator.

The paper's hardware (Tesla M2090 / K40) is replaced by an analytic device
model parameterised by the real spec sheets (the paper's Table 2). The model
captures exactly the mechanisms the paper's optimizations act through:

* global-memory capacity (the elastic-3D OOM on the 6 GB M2090),
* PCIe transfers — pageable vs pinned, whole-field vs partial/ghost-node,
  contiguous vs strided (:mod:`repro.gpusim.pcie`),
* CUDA occupancy from registers-per-thread and block size, with Fermi
  (CC 2.0) vs Kepler (CC 3.5) limits (:mod:`repro.gpusim.occupancy`),
* a roofline kernel cost model with coalescing, branch-divergence and
  register-spill derates (:mod:`repro.gpusim.kernelmodel`),
* async stream timelines with launch-gap packing
  (:mod:`repro.gpusim.streams`),
* a profiler reproducing the per-kernel utilization breakdowns of the
  paper's Figures 11, 14 and 15 (:mod:`repro.gpusim.profiler`).
"""

from repro.gpusim.specs import (
    GPUSpec,
    M2090,
    K40,
    CudaToolkit,
    CUDA_5_0,
    CUDA_5_5,
    GPU_CARDS,
)
from repro.gpusim.memory import DeviceMemory, Allocation
from repro.gpusim.pcie import PCIeModel, TransferStats
from repro.gpusim.occupancy import occupancy, OccupancyResult
from repro.gpusim.kernelmodel import (
    LaunchConfig,
    KernelEstimate,
    estimate_kernel_time,
    estimate_register_demand,
)
from repro.gpusim.streams import StreamPool
from repro.gpusim.profiler import Profiler, ProfileEvent, ProfileReport
from repro.gpusim.device import Device

__all__ = [
    "GPUSpec",
    "M2090",
    "K40",
    "CudaToolkit",
    "CUDA_5_0",
    "CUDA_5_5",
    "GPU_CARDS",
    "DeviceMemory",
    "Allocation",
    "PCIeModel",
    "TransferStats",
    "occupancy",
    "OccupancyResult",
    "LaunchConfig",
    "KernelEstimate",
    "estimate_kernel_time",
    "estimate_register_demand",
    "StreamPool",
    "Profiler",
    "ProfileEvent",
    "ProfileReport",
    "Device",
]
