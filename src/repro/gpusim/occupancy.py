"""CUDA occupancy calculator (simplified but faithful to the limit rules).

Occupancy — "number of concurrently running threads" in the paper's words —
is bounded per SM by (a) the register file, (b) the max resident threads,
and (c) the max resident blocks. The paper tunes ``maxregcount`` and finds
64 registers/thread optimal on both cards (its Figure 10); the register-
spill side of that trade-off lives in :mod:`repro.gpusim.kernelmodel`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpusim.specs import GPUSpec
from repro.utils.errors import ConfigurationError

#: register allocation granularity per warp (both Fermi and Kepler allocate
#: registers in warp-granular chunks; 256 regs/warp covers both)
_REG_GRANULARITY = 256


@dataclass(frozen=True)
class OccupancyResult:
    """Occupancy figures for one launch configuration on one card."""

    active_blocks_per_sm: int
    active_warps_per_sm: int
    max_warps_per_sm: int
    limited_by: str  # 'registers' | 'threads' | 'blocks'

    @property
    def occupancy(self) -> float:
        """Fraction of the SM's warp slots occupied (0..1)."""
        if self.max_warps_per_sm == 0:
            return 0.0
        return self.active_warps_per_sm / self.max_warps_per_sm


def occupancy(
    spec: GPUSpec, regs_per_thread: int, threads_per_block: int
) -> OccupancyResult:
    """Occupancy of a kernel using ``regs_per_thread`` registers launched in
    blocks of ``threads_per_block`` threads.

    ``regs_per_thread`` is the *allocated* count (post ``maxregcount``
    clamping); it must not exceed the architecture limit.
    """
    if threads_per_block < 1 or threads_per_block > spec.max_threads_per_block:
        raise ConfigurationError(
            f"threads_per_block {threads_per_block} outside 1..{spec.max_threads_per_block}"
        )
    if regs_per_thread < 1 or regs_per_thread > spec.max_regs_per_thread:
        raise ConfigurationError(
            f"regs_per_thread {regs_per_thread} outside 1..{spec.max_regs_per_thread} "
            f"for {spec.name}"
        )
    warps_per_block = -(-threads_per_block // spec.warp_size)  # ceil
    # register limit: registers are allocated per warp with granularity
    regs_per_warp = regs_per_thread * spec.warp_size
    regs_per_warp = -(-regs_per_warp // _REG_GRANULARITY) * _REG_GRANULARITY
    regs_per_block = regs_per_warp * warps_per_block
    blocks_by_regs = spec.regs_per_sm // regs_per_block if regs_per_block else spec.max_blocks_per_sm
    blocks_by_threads = spec.max_threads_per_sm // threads_per_block
    blocks_by_limit = spec.max_blocks_per_sm
    active = min(blocks_by_regs, blocks_by_threads, blocks_by_limit)
    if active == blocks_by_regs and active < min(blocks_by_threads, blocks_by_limit):
        limiter = "registers"
    elif active == blocks_by_threads and active <= blocks_by_limit:
        limiter = "threads"
    else:
        limiter = "blocks"
    active = max(active, 0)
    return OccupancyResult(
        active_blocks_per_sm=active,
        active_warps_per_sm=active * warps_per_block,
        max_warps_per_sm=spec.max_warps_per_sm,
        limited_by=limiter if active > 0 else "registers",
    )
