"""PCIe transfer cost model.

Captures the three effects the paper leans on:

* **pinned vs pageable** host memory — the PGI ``pin`` option "avoid[s] the
  cost of transfers between pageable and pinned host arrays"; pageable
  transfers are staged through a driver bounce buffer at roughly half the
  bus rate;
* **partial (ghost-node) transfers** — "Exchanging only ghost nodes ...
  significantly reduces the amount of data exchange";
* **non-contiguous data** — "exchanging non-contiguous data remains a
  non-optimal solution": strided faces move as many small DMA chunks, each
  paying per-transaction latency, until a transposition packs them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.errors import ConfigurationError
from repro.utils.units import GB


@dataclass(frozen=True)
class TransferStats:
    """Outcome of one modelled transfer."""

    nbytes: int
    seconds: float
    pinned: bool
    chunks: int
    direction: str  # 'h2d' | 'd2h'

    @property
    def effective_bandwidth(self) -> float:
        return self.nbytes / self.seconds if self.seconds > 0 else 0.0


@dataclass(frozen=True)
class PCIeModel:
    """Cost model for one card's host link.

    Parameters are per *direction*; defaults model a Gen2 x16 link (the
    M2090's "dedicated PCIe2x16"). The K40/XC30 uses Gen3 rates.
    """

    #: peak bus bandwidth with pinned host memory (bytes/s)
    pinned_bandwidth: float = 6.0 * GB
    #: achievable rate through the pageable bounce buffer (bytes/s)
    pageable_bandwidth: float = 3.0 * GB
    #: fixed per-transfer (per-DMA-chunk) setup latency (s)
    latency: float = 8e-6

    def transfer_time(
        self, nbytes: int, pinned: bool = False, chunks: int = 1
    ) -> float:
        """Seconds to move ``nbytes`` split over ``chunks`` DMA transactions."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be >= 0")
        if chunks < 1:
            raise ConfigurationError("chunks must be >= 1")
        bw = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return chunks * self.latency + nbytes / bw

    def transfer(
        self, nbytes: int, direction: str, pinned: bool = False, chunks: int = 1
    ) -> TransferStats:
        if direction not in ("h2d", "d2h"):
            raise ConfigurationError(f"direction must be h2d/d2h, got {direction}")
        t = self.transfer_time(nbytes, pinned, chunks)
        return TransferStats(int(nbytes), t, pinned, int(chunks), direction)


def checked_transfer(
    model: PCIeModel,
    direction: str,
    nbytes: int,
    *,
    name: str = "",
    pinned: bool = False,
    chunks: int = 1,
    injector=None,
) -> float:
    """Model one DMA transfer, consulting the fault ``injector`` first.

    This is the single bus-level choke point the resilience layer hooks:
    an armed PCIe fault raises :class:`~repro.utils.errors.PCIeTransferError`
    *before* any simulated time is charged, so a retried transfer re-enters
    with a clean clock. Returns the modelled duration in seconds.
    """
    if injector is not None:
        injector.on_transfer(direction, name, int(nbytes))
    return model.transfer_time(nbytes, pinned=pinned, chunks=chunks)


#: Link models used by the two evaluation platforms.
PCIE_GEN2_X16 = PCIeModel(pinned_bandwidth=6.0 * GB, pageable_bandwidth=3.0 * GB, latency=10e-6)
PCIE_GEN3_X16 = PCIeModel(pinned_bandwidth=11.0 * GB, pageable_bandwidth=5.5 * GB, latency=8e-6)
