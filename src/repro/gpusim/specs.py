"""Device and toolkit specifications.

Numbers come from the paper's Table 2 (GFLOPS, bandwidth, memory, cores)
completed with the public CUDA architecture limits for Fermi CC 2.0 and
Kepler CC 3.5 (registers per thread/SM, threads per SM, ...).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.units import GB, GFLOP, GiB


@dataclass(frozen=True)
class GPUSpec:
    """Static description of a simulated GPU card."""

    name: str
    chip: str  # 'fermi' | 'kepler'
    compute_capability: tuple[int, int]
    cuda_cores: int
    sm_count: int
    clock_ghz: float
    peak_gflops_sp: float
    mem_bandwidth_bytes: float
    memory_bytes: int
    #: architecture limits (per SM unless noted)
    max_regs_per_thread: int
    regs_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    max_threads_per_block: int
    warp_size: int = 32
    #: number of independent copy engines (overlap H2D/D2H with compute)
    copy_engines: int = 2
    #: hardware limit on concurrently resident kernels
    max_concurrent_kernels: int = 16
    #: host-visible kernel launch overhead (seconds)
    launch_overhead_s: float = 7e-6

    @property
    def cores_per_sm(self) -> int:
        return self.cuda_cores // self.sm_count

    @property
    def max_warps_per_sm(self) -> int:
        return self.max_threads_per_sm // self.warp_size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


#: Tesla M2090 (Fermi GF110, CC 2.0) on the IBM cluster — paper Table 2.
M2090 = GPUSpec(
    name="Tesla M2090",
    chip="fermi",
    compute_capability=(2, 0),
    cuda_cores=512,
    sm_count=16,
    clock_ghz=1.3,
    peak_gflops_sp=1331.2,
    mem_bandwidth_bytes=180 * GB,
    memory_bytes=6 * GiB,
    max_regs_per_thread=63,
    regs_per_sm=32768,
    max_threads_per_sm=1536,
    max_blocks_per_sm=8,
    max_threads_per_block=1024,
    max_concurrent_kernels=16,
    launch_overhead_s=9e-6,
)

#: Tesla K40 (Kepler GK110B, CC 3.5) on the Cray XC30 — paper Table 2.
K40 = GPUSpec(
    name="Tesla K40",
    chip="kepler",
    compute_capability=(3, 5),
    cuda_cores=2880,
    sm_count=15,
    clock_ghz=0.745,
    peak_gflops_sp=4291.0,
    mem_bandwidth_bytes=288 * GB,
    memory_bytes=12 * GiB,
    max_regs_per_thread=255,
    regs_per_sm=65536,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    max_threads_per_block=1024,
    max_concurrent_kernels=32,
    launch_overhead_s=7e-6,
)

GPU_CARDS = {"M2090": M2090, "K40": K40, "fermi": M2090, "kepler": K40}


@dataclass(frozen=True)
class CudaToolkit:
    """Code-generation characteristics of a CUDA toolkit version.

    The paper observes: "The CUDA version used affects GPU code generation
    and justifies performance variation" (PGI 14.3 defaults to CUDA 5.0,
    14.6 to CUDA 5.5). The factors below scale the achievable compute and
    memory efficiency of generated kernels and how well the backend handles
    divergent branches — the knobs behind the Figure 6 vs Figure 7 contrast.
    """

    name: str
    #: multiplier on achievable FLOP throughput of generated code
    compute_factor: float
    #: multiplier on achievable DRAM bandwidth of generated code
    memory_factor: float
    #: how much of the branch-divergence penalty the backend removes via
    #: predication (0 = none, 1 = all)
    predication_quality: float


#: CUDA 5.0 (default backend of PGI 14.3): slightly better straight-line
#: codegen for these stencils, poor handling of divergent branches.
CUDA_5_0 = CudaToolkit(
    name="CUDA 5.0", compute_factor=1.00, memory_factor=1.00, predication_quality=0.15
)

#: CUDA 5.5 (default of PGI 14.6): LLVM front-end with good predication —
#: branchy kernels no longer pay, but straight-line code is a touch slower,
#: which is why the paper's 14.3-era restructuring wins vanish under 14.6.
CUDA_5_5 = CudaToolkit(
    name="CUDA 5.5", compute_factor=0.93, memory_factor=0.95, predication_quality=0.85
)
