"""Roofline kernel cost model with occupancy, coalescing, divergence and
register-spill derates.

The model estimates one kernel launch's execution time from the
:class:`~repro.propagators.base.KernelWorkload` metadata and a
:class:`LaunchConfig` produced by the directive compiler:

``time = max(compute_time, memory_time) * wave_quantization + fixed_cost``

* **memory side** — DRAM traffic is the *compulsory* traffic
  ``4 bytes * (read streams + writes)`` per point (the stencil's spatial
  reuse is captured by the cache hierarchy on both CPU and GPU), divided by
  the achievable bandwidth: peak x toolkit codegen factor x base OpenACC
  efficiency x occupancy derate x coalescing factor x divergence factor.
* **compute side** — flops over peak x codegen x base efficiency x
  occupancy derate x divergence factor.
* **registers** — demand is estimated from the body's address streams and
  arithmetic (the paper: "most of the register pressure ... was with the
  array address variables"). A ``maxregcount`` clamp below demand is mostly
  absorbed by rematerialization (the compiler has slack); demand beyond the
  *architectural* per-thread maximum spills for real. This asymmetry is what
  makes loop fission worth 3x on Fermi (63-register ceiling) and nothing on
  Kepler (255) — the paper's Figure 12 finding — while ``maxregcount 64``
  stays optimal on Kepler (Figure 10).
* **wave quantization** — the block grid executes in waves of
  ``SMs x resident blocks``; the ceil() on the last partial wave is the
  small-kernel penalty that caps 2-D GPU utilization (~70 % in the paper)
  below 3-D (~90 %).

Calibration constants are module-level and named; the benchmark suite's
shape assertions (Tables 3-4, Figures 6-13) pin their joint behaviour.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.gpusim.occupancy import OccupancyResult, occupancy
from repro.gpusim.specs import CUDA_5_0, CudaToolkit, GPUSpec
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError

# ----------------------------------------------------------------------
# calibration constants
# ----------------------------------------------------------------------
#: fraction of peak DRAM bandwidth OpenACC-generated stencil code reaches
#: with perfect coalescing. Calibrated low: 2014-era OpenACC codegen has no
#: shared-memory blocking (the paper notes the tile/cache directives "are
#: not working properly"), no read-only/texture path, and re-fetches stencil
#: neighbours through L2 — the paper's own kernel speedups (~1.2x a 10-core
#: socket for the memory-bound isotropic case) pin this value.
BASE_MEM_EFFICIENCY = 0.135
#: fraction of peak FLOP throughput generated straight-line code reaches
BASE_COMPUTE_EFFICIENCY = 0.55
#: bandwidth multiplier when the innermost parallel loop is *not*
#: unit-stride (each warp access splinters into many memory transactions) —
#: the transposition fix of the paper's Figure 13 buys ~3x end to end
UNCOALESCED_FACTOR = 1.0 / 4.0
#: device-side floor of any kernel execution (setup/teardown on the GPU,
#: visible in the profiler even for one-point kernels — how 408k tiny
#: receiver-injection launches reach 26 % of the paper's Figure 14 profile)
KERNEL_DEVICE_FLOOR_S = 7.0e-6
#: throughput multiplier when gridification failed (imperfect nest left one
#: loop level serialized inside each thread)
UNGRIDIFIED_FACTOR = 0.40
#: raw slowdown of a fully divergent body before backend predication
DIVERGENCE_COST = 1.2
#: registers: base demand + per-address-stream and per-flop terms
REG_BASE = 10
REG_PER_STREAM_PER_DIM = 2.0
REG_PER_FLOP = 0.10
#: fraction of a maxregcount deficit the compiler absorbs by rematerializing
REMAT_SLACK = 0.25
#: DRAM bytes per point per hard-spilled register (spill store + reload)
SPILL_BYTES_PER_REG = 8.0
#: extra flops per point per register of deficit (rematerialization cost)
REMAT_FLOPS_PER_REG = 0.5
#: occupancy below which bandwidth cannot be saturated; the derate ramps
#: linearly and saturates at OCC_SATURATION
OCC_SATURATION = 0.50
OCC_FLOOR = 0.30
#: 2-D kernels reach ~70% of the utilization 3-D kernels do (paper
#: Section 6.2: "around 70% for the most intensive compute kernel, in
#: contrast with 90% in the 3D cases") — thin iteration spaces give the
#: scheduler fewer full waves and shorter bursts per block
TWOD_UTILIZATION_DERATE = 0.78
#: bandwidth penalty per extra stencil gather axis beyond the first: a
#: multi-axis gather (the isotropic 25-point cross) scatters each thread's
#: reads over many strided cache lines; 2014-era OpenACC codegen has no
#: shared-memory tiling to recover the waste. Per extra axis the effective
#: bandwidth is divided by (1 + GATHER_AXIS_PENALTY).
GATHER_AXIS_PENALTY = 0.05


def occupancy_bandwidth_derate(occ: float) -> float:
    """Achievable-bandwidth fraction as a function of occupancy: enough
    resident warps are needed to cover DRAM latency; beyond ~50 % extra
    occupancy buys nothing."""
    if occ <= 0:
        return OCC_FLOOR * 0.5
    return min(1.0, OCC_FLOOR + (1.0 - OCC_FLOOR) * occ / OCC_SATURATION)


@dataclass(frozen=True)
class LaunchConfig:
    """How the directive compiler mapped a loop nest onto the device."""

    #: threads per block (the OpenACC vector length x workers)
    threads_per_block: int = 128
    #: -maxregcount compiler flag; None = unclamped
    maxregcount: int | None = None
    #: innermost parallel loop walks unit-stride memory
    coalesced: bool = True
    #: a 2-D (or wider) grid of blocks was formed from the nest
    gridified: bool = True
    #: number of nest levels collapsed into the block grid
    collapsed_levels: int = 2
    #: asynchronous queue id (None = default stream, synchronous semantics)
    async_queue: int | None = None

    def __post_init__(self):
        if self.threads_per_block < 1:
            raise ConfigurationError("threads_per_block must be >= 1")
        if self.maxregcount is not None and self.maxregcount < 16:
            raise ConfigurationError("maxregcount below 16 is not supported")


@dataclass(frozen=True)
class KernelEstimate:
    """Modelled execution of one kernel launch."""

    seconds: float
    limited_by: str  # 'memory' | 'compute'
    occupancy: float
    regs_demand: int
    regs_allocated: int
    spilled_regs: int
    dram_bytes: float
    flops: float
    achieved_bandwidth: float
    achieved_gflops: float
    waves: int

    @property
    def efficiency(self) -> float:
        """Achieved fraction of the binding roofline resource — the number
        the paper calls 'GPU utilization' of a kernel."""
        return self._eff

    _eff: float = 0.0


def estimate_register_demand(workload: KernelWorkload, ndim: int | None = None) -> int:
    """Estimated register demand of the kernel body.

    Dominated by address arithmetic: each distinct array base indexed in an
    ``ndim``-deep nest holds ~``ndim`` offset temporaries (the paper's
    explanation for the acoustic-3D fission win), plus a share of the
    arithmetic live range.
    """
    if ndim is None:
        ndim = len(workload.loop_dims)
    demand = (
        REG_BASE
        + REG_PER_STREAM_PER_DIM * ndim * workload.address_streams
        + REG_PER_FLOP * workload.flops_per_point
    )
    return max(16, int(round(demand)))


def estimate_kernel_time(
    spec: GPUSpec,
    workload: KernelWorkload,
    launch: LaunchConfig | None = None,
    toolkit: CudaToolkit = CUDA_5_0,
) -> KernelEstimate:
    """Model one launch of ``workload`` under ``launch`` on ``spec``.

    The returned time excludes the host-side launch overhead (charged by
    :class:`~repro.gpusim.device.Device` so async queues can hide it).
    """
    if launch is None:
        launch = LaunchConfig()
    # --- registers -----------------------------------------------------
    demand = estimate_register_demand(workload)
    arch_max = spec.max_regs_per_thread
    clamp = min(launch.maxregcount or arch_max, arch_max)
    allocated = min(demand, clamp)
    deficit = demand - allocated
    if demand > arch_max:
        # architectural ceiling: unavoidable true spills
        hard_spill = demand - arch_max
    elif launch.maxregcount is not None and launch.maxregcount < demand:
        # flag clamp: the compiler rematerializes away a slack fraction
        hard_spill = max(0, int(deficit - REMAT_SLACK * demand))
    else:
        hard_spill = 0
    # --- occupancy -------------------------------------------------------
    tpb = min(launch.threads_per_block, spec.max_threads_per_block)
    occ_res: OccupancyResult = occupancy(spec, max(16, allocated), tpb)
    occ = occ_res.occupancy
    occ_bw = occupancy_bandwidth_derate(occ)
    # --- divergence ------------------------------------------------------
    div_factor = 1.0
    if workload.has_branches:
        div_factor = 1.0 + DIVERGENCE_COST * (1.0 - toolkit.predication_quality)
    grid_factor = 1.0 if launch.gridified else UNGRIDIFIED_FACTOR
    coal_factor = 1.0 if (launch.coalesced and workload.inner_contiguous) else UNCOALESCED_FACTOR
    gather_factor = 1.0 / (1.0 + GATHER_AXIS_PENALTY * max(0, workload.gather_axes - 1))
    if len(workload.loop_dims) <= 2:
        gather_factor *= TWOD_UTILIZATION_DERATE
    # --- memory side ------------------------------------------------------
    dram_bytes_per_point = 4.0 * (workload.address_streams + workload.writes_per_point)
    dram_bytes_per_point += SPILL_BYTES_PER_REG * hard_spill
    dram_bytes = dram_bytes_per_point * workload.points
    eff_bw = (
        spec.mem_bandwidth_bytes
        * BASE_MEM_EFFICIENCY
        * toolkit.memory_factor
        * occ_bw
        * coal_factor
        * grid_factor
        * gather_factor
        / div_factor
    )
    mem_time = dram_bytes / eff_bw
    # --- compute side -----------------------------------------------------
    flops_per_point = workload.flops_per_point + REMAT_FLOPS_PER_REG * deficit
    flops = flops_per_point * workload.points
    eff_flops = (
        spec.peak_gflops_sp
        * 1e9
        * BASE_COMPUTE_EFFICIENCY
        * toolkit.compute_factor
        * min(1.0, OCC_FLOOR + (1.0 - OCC_FLOOR) * occ / OCC_SATURATION)
        * grid_factor
        / div_factor
    )
    comp_time = flops / eff_flops
    # --- wave quantization --------------------------------------------------
    blocks = max(1, math.ceil(workload.points / tpb))
    resident = max(1, occ_res.active_blocks_per_sm * spec.sm_count)
    waves = max(1, math.ceil(blocks / resident))
    full_wave_fraction = blocks / (waves * resident)
    quant = 1.0 / max(full_wave_fraction, 1e-6)
    body = max(mem_time, comp_time) * quant + KERNEL_DEVICE_FLOOR_S
    limited = "memory" if mem_time >= comp_time else "compute"
    est = KernelEstimate(
        seconds=body,
        limited_by=limited,
        occupancy=occ,
        regs_demand=demand,
        regs_allocated=allocated,
        spilled_regs=hard_spill,
        dram_bytes=dram_bytes,
        flops=flops,
        achieved_bandwidth=dram_bytes / body if body > 0 else 0.0,
        achieved_gflops=flops / body / 1e9 if body > 0 else 0.0,
        waves=waves,
    )
    eff = (
        est.achieved_bandwidth / spec.mem_bandwidth_bytes
        if limited == "memory"
        else est.achieved_gflops / spec.peak_gflops_sp
    )
    object.__setattr__(est, "_eff", eff)
    return est
