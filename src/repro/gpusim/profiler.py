"""Execution profiler for the simulated device.

Collects kernel and memcpy events and renders the grouped time-share tables
the paper reads off the Nvidia Visual Profiler (its Figures 11, 14 and 15 —
e.g. ``73.4% [8502] kernel_2d_139_gpu / 26.2% [408096] sample_put_real_118 /
0.4% [4251] sample_put_real_98``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.units import bytes_to_human, seconds_to_human


@dataclass(frozen=True)
class ProfileEvent:
    """One timeline entry (timestamps in simulated seconds)."""

    kind: str  # 'kernel' | 'h2d' | 'd2h'
    name: str
    start: float
    end: float
    nbytes: int = 0
    queue: int | None = None
    #: modelled achieved occupancy of a kernel launch (None for copies and
    #: for events produced before the launch was modelled)
    occupancy: float | None = None
    #: hard-spilled registers/thread of a kernel launch (None for copies)
    spilled_regs: int | None = None

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class KernelLine:
    """Aggregated row of the compute section of a profile report."""

    name: str
    count: int
    total_seconds: float
    share: float  # of total compute time


@dataclass
class ProfileReport:
    """Grouped view over one run's events."""

    kernels: list[KernelLine]
    memcpy_h2d_seconds: float
    memcpy_d2h_seconds: float
    memcpy_h2d_bytes: int
    memcpy_d2h_bytes: int
    compute_seconds: float
    span_seconds: float

    def kernel_share(self, name_prefix: str) -> float:
        """Combined compute-time share of kernels whose name starts with
        ``name_prefix`` (0..1)."""
        return sum(k.share for k in self.kernels if k.name.startswith(name_prefix))

    def to_text(self) -> str:
        """Render in the style of the paper's profiler figures."""
        lines = ["Compute:"]
        if not self.kernels:
            lines.append("  (no kernels launched)")
        for k in sorted(self.kernels, key=lambda k: k.share, reverse=True):
            share = 100 * k.share if self.compute_seconds > 0 else 0.0
            lines.append(
                f"  {share:5.1f}% [{k.count}] {k.name}"
            )
        lines.append(
            f"MemCpy (HtoD): {seconds_to_human(self.memcpy_h2d_seconds)} "
            f"({bytes_to_human(self.memcpy_h2d_bytes)})"
        )
        lines.append(
            f"MemCpy (DtoH): {seconds_to_human(self.memcpy_d2h_seconds)} "
            f"({bytes_to_human(self.memcpy_d2h_bytes)})"
        )
        lines.append(f"Total span: {seconds_to_human(self.span_seconds)}")
        return "\n".join(lines)

    def to_json(self) -> dict:
        """Machine-readable report (the ``python -m repro json`` path)."""
        return {
            "kernels": [
                {
                    "name": k.name,
                    "count": k.count,
                    "total_seconds": k.total_seconds,
                    "share": k.share,
                }
                for k in sorted(self.kernels, key=lambda k: k.share, reverse=True)
            ],
            "memcpy_h2d_seconds": self.memcpy_h2d_seconds,
            "memcpy_d2h_seconds": self.memcpy_d2h_seconds,
            "memcpy_h2d_bytes": self.memcpy_h2d_bytes,
            "memcpy_d2h_bytes": self.memcpy_d2h_bytes,
            "compute_seconds": self.compute_seconds,
            "span_seconds": self.span_seconds,
        }


@dataclass
class Profiler:
    """Event recorder; negligible overhead, always on."""

    events: list[ProfileEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: ProfileEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    # ------------------------------------------------------------------
    def report(self) -> ProfileReport:
        """Aggregate all recorded events."""
        per_kernel: dict[str, list[float]] = {}
        h2d_t = d2h_t = 0.0
        h2d_b = d2h_b = 0
        t_min = float("inf")
        t_max = 0.0
        for ev in self.events:
            t_min = min(t_min, ev.start)
            t_max = max(t_max, ev.end)
            if ev.kind == "kernel":
                per_kernel.setdefault(ev.name, []).append(ev.duration)
            elif ev.kind == "h2d":
                h2d_t += ev.duration
                h2d_b += ev.nbytes
            elif ev.kind == "d2h":
                d2h_t += ev.duration
                d2h_b += ev.nbytes
        compute = sum(sum(v) for v in per_kernel.values())
        kernels = [
            KernelLine(
                name=name,
                count=len(durs),
                total_seconds=sum(durs),
                share=(sum(durs) / compute) if compute > 0 else 0.0,
            )
            for name, durs in per_kernel.items()
        ]
        kernels.sort(key=lambda k: k.total_seconds, reverse=True)
        span = (t_max - t_min) if self.events else 0.0
        return ProfileReport(
            kernels=kernels,
            memcpy_h2d_seconds=h2d_t,
            memcpy_d2h_seconds=d2h_t,
            memcpy_h2d_bytes=h2d_b,
            memcpy_d2h_bytes=d2h_b,
            compute_seconds=compute,
            span_seconds=span,
        )
