"""The simulated device: memory + PCIe + streams + profiler + clock.

A :class:`Device` is the execution target of the :mod:`repro.acc` runtime.
All operations advance the device's :class:`~repro.utils.timer.SimClock`
according to the cost models; nothing here touches real wavefield data (the
acc runtime executes the NumPy kernels and merely *accounts* their modelled
device time here).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.gpusim.kernelmodel import (
    KernelEstimate,
    LaunchConfig,
    estimate_kernel_time,
)
from repro.gpusim.memory import DeviceMemory
from repro.gpusim.pcie import PCIE_GEN2_X16, PCIeModel, checked_transfer
from repro.gpusim.profiler import ProfileEvent, Profiler
from repro.gpusim.specs import CUDA_5_0, CudaToolkit, GPUSpec
from repro.gpusim.streams import StreamPool
from repro.propagators.base import KernelWorkload
from repro.trace.tracer import Tracer
from repro.utils.timer import SimClock


@dataclass
class DeviceTimes:
    """Per-category simulated time accumulated by a device."""

    kernel: float = 0.0
    h2d: float = 0.0
    d2h: float = 0.0
    alloc: float = 0.0


class Device:
    """One simulated accelerator card.

    Parameters
    ----------
    spec:
        The card (:data:`~repro.gpusim.specs.M2090` or
        :data:`~repro.gpusim.specs.K40`).
    pcie:
        Link model; defaults to Gen2 x16 (override per platform).
    toolkit:
        CUDA backend used for code generation (5.0 / 5.5).
    pinned_host:
        Whether host arrays live in pinned memory (the PGI ``pin`` target
        option); raises effective PCIe rates.
    """

    #: modelled cost of one cudaMalloc/cudaFree (driver round trip)
    ALLOC_COST_S = 1.0e-4
    #: host-side present-table lookup per kernel argument: the OpenACC
    #: runtime resolves every array in the construct against its present
    #: table before each launch — the per-launch 'lag time' async queueing
    #: hides (the paper's Figure 11 30 % win)
    PRESENT_LOOKUP_S = 3.0e-6

    def __init__(
        self,
        spec: GPUSpec,
        pcie: PCIeModel | None = None,
        toolkit: CudaToolkit = CUDA_5_0,
        pinned_host: bool = False,
    ):
        self.spec = spec
        self.pcie = pcie if pcie is not None else PCIE_GEN2_X16
        self.toolkit = toolkit
        self.pinned_host = bool(pinned_host)
        self.clock = SimClock()
        self.memory = DeviceMemory(spec.memory_bytes)
        self.streams = StreamPool(self.clock, max_queues=spec.max_concurrent_kernels)
        self.profiler = Profiler()
        self.times = DeviceTimes()
        self.kernel_launches = 0
        # every timeline event flows through the sink list; the profiler is
        # simply the first consumer of the trace stream, and an attached
        # Tracer re-emits the same events on per-queue Perfetto tracks
        self._sinks: list[Callable[[ProfileEvent], None]] = [self.profiler.record]
        self._tracer: Tracer | None = None
        self._trace_process = f"gpu:{spec.name}"
        # resilience hook: a (possibly rank-bound) FaultInjector consulted at
        # the top of allocate/h2d/d2h/launch, before any time is charged
        self.injector = None

    # ------------------------------------------------------------------
    # trace stream
    # ------------------------------------------------------------------
    def add_sink(self, sink: Callable[[ProfileEvent], None]) -> None:
        """Subscribe a consumer to the device's timeline event stream."""
        self._sinks.append(sink)

    def attach_tracer(self, tracer: Tracer, process: str | None = None) -> None:
        """Re-emit kernel/copy events as tracer spans (one track per async
        queue, one for the default stream) and feed the device metrics."""
        if self._tracer is tracer:
            return
        self._tracer = tracer
        if process is not None:
            self._trace_process = process
        self.add_sink(self._trace_sink)

    def _trace_sink(self, ev: ProfileEvent) -> None:
        tracer = self._tracer
        assert tracer is not None
        track = "stream:0" if ev.queue is None else f"queue:{ev.queue}"
        args = {"bytes": ev.nbytes} if ev.nbytes else {}
        if ev.occupancy is not None:
            args["occupancy"] = ev.occupancy
        if ev.spilled_regs is not None:
            args["spilled_regs"] = ev.spilled_regs
        tracer.emit(
            ev.name, ev.start, ev.end,
            process=self._trace_process, track=track, cat=ev.kind, **args,
        )
        m = tracer.metrics
        if ev.kind == "kernel":
            m.counter("gpu.kernel_launches").add()
            m.histogram("gpu.kernel_seconds").observe(ev.duration)
        elif ev.kind == "h2d":
            m.counter("gpu.h2d_bytes").add(ev.nbytes)
        elif ev.kind == "d2h":
            m.counter("gpu.d2h_bytes").add(ev.nbytes)

    def _emit(self, ev: ProfileEvent) -> None:
        for sink in self._sinks:
            sink(ev)

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def allocate(self, name: str, nbytes: int) -> None:
        """Device allocation (charges the driver round trip)."""
        if self.injector is not None:
            self.injector.on_allocate(name, int(nbytes), self.memory)
        self.memory.allocate(name, nbytes)
        self.clock.advance(self.ALLOC_COST_S, "alloc")
        self.times.alloc += self.ALLOC_COST_S
        if self._tracer is not None:
            self._tracer.instant(
                f"cudaMalloc:{name}", process=self._trace_process,
                track="stream:0", cat="alloc", bytes=int(nbytes),
            )
            self._memory_gauges()

    def release(self, name: str) -> None:
        self.memory.release(name)
        self.clock.advance(self.ALLOC_COST_S * 0.5, "alloc")
        self.times.alloc += self.ALLOC_COST_S * 0.5
        if self._tracer is not None:
            self._tracer.instant(
                f"cudaFree:{name}", process=self._trace_process,
                track="stream:0", cat="alloc",
            )
            self._memory_gauges()

    def _memory_gauges(self) -> None:
        """Residency gauges: live bytes, the high-water mark, and the
        card's usable capacity — the observed side of the capacity
        prover's static prediction."""
        m = self._tracer.metrics
        m.gauge("gpu.resident_bytes").set(self.memory.used)
        m.gauge("gpu.peak_bytes").set(self.memory.peak_bytes)
        m.gauge("gpu.usable_bytes").set(self.memory.usable_bytes)

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def h2d(self, nbytes: int, name: str = "h2d", chunks: int = 1, queue: int | None = None) -> float:
        """Host-to-device copy of ``nbytes`` (``chunks`` DMA transactions for
        strided/partial data). Returns the modelled duration."""
        t = checked_transfer(
            self.pcie, "h2d", nbytes, name=name,
            pinned=self.pinned_host, chunks=chunks, injector=self.injector,
        )
        if queue is None:
            start, end = self.streams.run_copy_sync(t)
        else:
            start, end = self.streams.run_copy_async(queue, t)
        self.times.h2d += t
        self.clock.charge(t, "h2d")
        self._emit(ProfileEvent("h2d", name, start, end, int(nbytes), queue))
        return t

    def d2h(self, nbytes: int, name: str = "d2h", chunks: int = 1, queue: int | None = None) -> float:
        """Device-to-host copy."""
        t = checked_transfer(
            self.pcie, "d2h", nbytes, name=name,
            pinned=self.pinned_host, chunks=chunks, injector=self.injector,
        )
        if queue is None:
            start, end = self.streams.run_copy_sync(t)
        else:
            start, end = self.streams.run_copy_async(queue, t)
        self.times.d2h += t
        self.clock.charge(t, "d2h")
        self._emit(ProfileEvent("d2h", name, start, end, int(nbytes), queue))
        return t

    # ------------------------------------------------------------------
    # kernels
    # ------------------------------------------------------------------
    def launch(
        self,
        workload: KernelWorkload,
        launch: LaunchConfig | None = None,
        enqueue_cost_factor: float = 1.0,
    ) -> KernelEstimate:
        """Model one kernel launch; honours the launch config's async queue.

        ``enqueue_cost_factor`` lets a compiler persona inflate the async
        enqueue cost (the PGI-async regression the paper reports).
        """
        if self.injector is not None:
            self.injector.on_kernel_launch(workload.name)
        est = estimate_kernel_time(self.spec, workload, launch, self.toolkit)
        queue = launch.async_queue if launch is not None else None
        host_admin = self.PRESENT_LOOKUP_S * (2 + workload.address_streams)
        if queue is None:
            start, end = self.streams.run_kernel_sync(
                est.seconds, self.spec.launch_overhead_s + host_admin
            )
        else:
            from repro.gpusim.streams import ASYNC_ENQUEUE_COST

            start, end = self.streams.run_kernel_async(
                queue,
                est.seconds,
                (ASYNC_ENQUEUE_COST + host_admin) * enqueue_cost_factor,
            )
        self.times.kernel += est.seconds
        self.clock.charge(est.seconds, "kernel")
        self.kernel_launches += 1
        self._emit(ProfileEvent(
            "kernel", workload.name, start, end, 0, queue,
            occupancy=est.occupancy, spilled_regs=est.spilled_regs,
        ))
        if self._tracer is not None:
            self._tracer.metrics.histogram("gpu.occupancy").observe(est.occupancy)
        return est

    def wait(self, queue: int | None = None) -> float:
        """``acc wait``: advance the host clock to queued-work completion."""
        return self.streams.wait(queue)

    # ------------------------------------------------------------------
    @property
    def elapsed(self) -> float:
        """Host wall time of everything run so far (simulated seconds)."""
        return self.clock.now

    def reset(self) -> None:
        """Fresh timeline and profile; device memory is also cleared."""
        self.clock.reset()
        self.memory.release_all()
        self.streams = StreamPool(self.clock, max_queues=self.spec.max_concurrent_kernels)
        self.profiler.clear()
        self.times = DeviceTimes()
        self.kernel_launches = 0
