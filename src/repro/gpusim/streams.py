"""Async queue (CUDA stream) timeline.

Models what the paper measured (its Figure 11 discussion): kernels from
different async queues do **not** overlap on the SMs for these grid-sized
kernels ("the available streaming multiprocessors are occupied by one or few
kernels"), but queuing removes the host-side launch gap between consecutive
kernels — "using multiple streams can lead to small jobs packing on to the
device all at once and ... reduced lag time between kernel launches. The
30% improvement was due to this reason."

The device therefore exposes two serial resources — the compute engine and
the copy engines — plus per-queue completion times. Synchronous operations
hold the host until completion; asynchronous ones cost the host only the
enqueue time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import ConfigurationError
from repro.utils.timer import SimClock

#: host cost of enqueueing onto a non-default queue
ASYNC_ENQUEUE_COST = 1.5e-6


@dataclass
class StreamPool:
    """Tracks engine and queue availability against a :class:`SimClock`."""

    clock: SimClock
    max_queues: int = 16
    compute_free: float = 0.0
    copy_free: float = 0.0
    #: cumulative engine-busy seconds (observability: the utilization the
    #: paper reads off the profiler timelines — ~70 % in 2-D, ~90 % in 3-D)
    compute_busy: float = 0.0
    copy_busy: float = 0.0
    _queue_end: dict[int, float] = field(default_factory=dict)

    def _check_queue(self, queue: int) -> None:
        if not 0 <= queue < self.max_queues:
            raise ConfigurationError(
                f"async queue {queue} outside 0..{self.max_queues - 1}"
            )

    # ------------------------------------------------------------------
    def run_kernel_sync(self, duration: float, launch_overhead: float) -> tuple[float, float]:
        """Default-stream kernel: host pays the launch overhead, kernel runs
        when the compute engine frees, host blocks until completion."""
        submit = self.clock.now + launch_overhead
        start = max(submit, self.compute_free)
        end = start + duration
        self.compute_free = end
        self.compute_busy += duration
        self.clock.advance_to(end)
        return start, end

    def run_kernel_async(
        self, queue: int, duration: float, enqueue_cost: float = ASYNC_ENQUEUE_COST
    ) -> tuple[float, float]:
        """Queued kernel: host pays only the enqueue cost; the kernel body
        still serializes on the compute engine (no SM sharing)."""
        self._check_queue(queue)
        self.clock.advance(enqueue_cost)
        start = max(self.clock.now, self.compute_free, self._queue_end.get(queue, 0.0))
        end = start + duration
        self.compute_free = end
        self.compute_busy += duration
        self._queue_end[queue] = end
        return start, end

    def run_copy_sync(self, duration: float, setup: float = 0.0) -> tuple[float, float]:
        """Blocking memcpy on the copy engine."""
        submit = self.clock.now + setup
        start = max(submit, self.copy_free)
        end = start + duration
        self.copy_free = end
        self.copy_busy += duration
        self.clock.advance_to(end)
        return start, end

    def run_copy_async(
        self, queue: int, duration: float, enqueue_cost: float = ASYNC_ENQUEUE_COST
    ) -> tuple[float, float]:
        """Queued memcpy: overlaps host work and (on a second engine) compute;
        ordered after prior work on the same queue."""
        self._check_queue(queue)
        self.clock.advance(enqueue_cost)
        start = max(self.clock.now, self.copy_free, self._queue_end.get(queue, 0.0))
        end = start + duration
        self.copy_free = end
        self.copy_busy += duration
        self._queue_end[queue] = end
        return start, end

    # ------------------------------------------------------------------
    def wait(self, queue: int | None = None) -> float:
        """``acc wait``: block the host until the queue (or all work when
        None) completes."""
        if queue is None:
            t = max(
                [self.compute_free, self.copy_free, *self._queue_end.values()],
                default=self.clock.now,
            )
        else:
            self._check_queue(queue)
            t = self._queue_end.get(queue, self.clock.now)
        return self.clock.advance_to(t)

    def utilization(self) -> dict[str, float]:
        """Busy fraction of each engine over the elapsed timeline (0..1)."""
        span = max(self.clock.now, self.compute_free, self.copy_free)
        if span <= 0:
            return {"compute": 0.0, "copy": 0.0}
        return {
            "compute": min(1.0, self.compute_busy / span),
            "copy": min(1.0, self.copy_busy / span),
        }

    def pending_queues(self) -> tuple[int, ...]:
        """Queues with enqueued work that has not retired relative to the
        host clock — what a host-side consumer (an MPI send packing a halo
        buffer) would race against. Used by the coherence sanitizer."""
        return tuple(sorted(
            q for q, end in self._queue_end.items() if end > self.clock.now
        ))

    def idle(self) -> bool:
        """Whether all queued work has retired relative to the host clock."""
        pending = max(
            [self.compute_free, self.copy_free, *self._queue_end.values()],
            default=0.0,
        )
        return pending <= self.clock.now
