"""Device global-memory allocator.

Tracks named allocations against the card's capacity and raises
:class:`~repro.utils.errors.DeviceOutOfMemoryError` on exhaustion — the
mechanism behind the paper's elastic-3D ``x`` entries on the 6 GB M2090 and
behind its data-allocation strategy ("the forward and backward wave-field
variables of RTM cannot be allocated at the same time on GPU").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.errors import DeviceError, DeviceOutOfMemoryError
from repro.utils.units import bytes_to_human

#: cudaMalloc alignment granularity.
_ALIGN = 256


def _aligned(nbytes: int) -> int:
    return (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass
class Allocation:
    """One live device allocation."""

    name: str
    nbytes: int
    aligned_bytes: int


@dataclass
class DeviceMemory:
    """Capacity-checked allocator keyed by allocation name.

    ``reserved_bytes`` models the CUDA context/ECC/display footprint that is
    unavailable to the application (~3 % of the card by default).
    """

    capacity: int
    reserved_fraction: float = 0.03
    _allocs: dict[str, Allocation] = field(default_factory=dict)
    peak_bytes: int = 0

    def __post_init__(self):
        if self.capacity <= 0:
            raise DeviceError("capacity must be positive")
        if not 0 <= self.reserved_fraction < 1:
            raise DeviceError("reserved_fraction must be in [0, 1)")

    # ------------------------------------------------------------------
    @property
    def usable(self) -> int:
        return int(self.capacity * (1.0 - self.reserved_fraction))

    @property
    def usable_bytes(self) -> int:
        """Alias of :attr:`usable` — the name the capacity prover and the
        tracer gauges use (``gpu.usable_bytes``)."""
        return self.usable

    @property
    def used(self) -> int:
        return sum(a.aligned_bytes for a in self._allocs.values())

    @property
    def free(self) -> int:
        return self.usable - self.used

    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocs.values())

    def allocation_table(self) -> tuple[tuple[str, int], ...]:
        """Live allocations as ``(name, aligned_bytes)`` pairs — the table
        :class:`DeviceOutOfMemoryError` embeds in its message."""
        return tuple((a.name, a.aligned_bytes) for a in self._allocs.values())

    def holds(self, name: str) -> bool:
        return name in self._allocs

    # ------------------------------------------------------------------
    def allocate(self, name: str, nbytes: int) -> Allocation:
        """Reserve ``nbytes`` under ``name``.

        Raises :class:`DeviceOutOfMemoryError` when the aligned request does
        not fit, and :class:`DeviceError` on a duplicate name (a real
        runtime would leak; we fail fast).
        """
        if nbytes < 0:
            raise DeviceError(f"negative allocation size {nbytes}")
        if name in self._allocs:
            raise DeviceError(f"allocation '{name}' already exists on device")
        aligned = _aligned(int(nbytes))
        if aligned > self.free:
            raise DeviceOutOfMemoryError(
                aligned, self.free, self.usable,
                allocations=self.allocation_table(), request_name=name,
            )
        alloc = Allocation(name, int(nbytes), aligned)
        self._allocs[name] = alloc
        self.peak_bytes = max(self.peak_bytes, self.used)
        return alloc

    def release(self, name: str) -> None:
        """Free the allocation named ``name`` (error if absent)."""
        if name not in self._allocs:
            raise DeviceError(f"allocation '{name}' not present on device")
        del self._allocs[name]

    def release_all(self) -> None:
        self._allocs.clear()

    def would_fit(self, nbytes: int) -> bool:
        """Whether a new allocation of ``nbytes`` would currently succeed."""
        return _aligned(int(nbytes)) <= self.free

    def summary(self) -> str:
        """Human-readable usage line (what ``nvidia-smi`` told the authors)."""
        return (
            f"{bytes_to_human(self.used)} / {bytes_to_human(self.usable)} used, "
            f"{len(self._allocs)} allocations, peak {bytes_to_human(self.peak_bytes)}"
        )
