"""Isotropic constant-density propagator — Eq. 1 of the paper.

Second-order-in-time leapfrog over a width-8 (25-point in 3-D) Laplacian
stencil with standard PML. The same kernel serves the forward and backward
phases ("The isotropic kernel used in both phases was the same"), which is
why the isotropic RTM does not suffer the backward-coalescing problem of the
staggered models.

Three code variants, matching the paper's Figures 6-7 study of the PML
if-statements:

* ``pml_variant="branchy"`` — the original code: plain update in the
  interior, damped update in the boundary slabs, selected by per-point
  conditions (modelled as divergent branches on the GPU);
* ``pml_variant="restructured"`` — the paper's first approach: "remove these
  if-conditions by changing the loop indices and restructuring the loop
  region accordingly" — the same region split expressed as separate perfectly
  nested loops (no branches; one kernel per region);
* ``pml_variant="everywhere"`` — the second approach: "compute PML everywhere
  in the grid domain" — one branch-free kernel applying the damped formula at
  every point (more flops, perfect gridification).

All three produce **identical numerics** (the damped formula reduces exactly
to the plain one where sigma == 0); they differ only in the kernel workload
metadata the GPU model sees. The test suite asserts the numerical identity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boundary.pml import StandardPML
from repro.model.earth_model import EarthModel
from repro.propagators.base import KernelWorkload, Propagator
from repro.stencil.operators import (
    laplacian,
    laplacian_flops_per_point,
    laplacian_reads_per_point,
)
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError

_VARIANTS = ("branchy", "restructured", "everywhere")


def boundary_slabs(shape: tuple[int, ...], width: int) -> list[tuple[slice, ...]]:
    """Decompose the boundary frame of thickness ``width`` into
    non-overlapping slabs (two per axis, shrinking laterally with axis
    index so slabs never overlap)."""
    slabs: list[tuple[slice, ...]] = []
    if width == 0:
        return slabs
    for axis in range(len(shape)):
        for side in ("lo", "hi"):
            sl: list[slice] = []
            for ax2, n in enumerate(shape):
                if ax2 < axis:
                    sl.append(slice(width, n - width))
                elif ax2 == axis:
                    sl.append(slice(0, width) if side == "lo" else slice(n - width, n))
                else:
                    sl.append(slice(None))
            slabs.append(tuple(sl))
    return slabs


class IsotropicPropagator(Propagator):
    """Constant-density acoustic (isotropic) propagator.

    Fields: ``u`` (current) and ``u_prev``; the update writes ``u_next``
    into the ``u_prev`` storage and swaps references, mirroring the paper's
    "logically swapping t_n and t_{n+1} arrays".
    """

    scheme = "second_order"
    physics = "isotropic"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        pml_variant: str = "branchy",
        pml_reflection: float = 1e-4,
        **kwargs,
    ):
        super().__init__(model, dt, space_order, boundary_width, **kwargs)
        if pml_variant not in _VARIANTS:
            raise ConfigurationError(
                f"pml_variant must be one of {_VARIANTS}, got '{pml_variant}'"
            )
        self.pml_variant = pml_variant
        self.pml = StandardPML(
            self.grid,
            boundary_width,
            model.max_wave_speed(),
            self.dt,
            reflection=pml_reflection,
        )
        self.u = self._new_field("u")
        self.u_prev = self._new_field("u_prev")
        self._lap = np.zeros(self.grid.shape, dtype=DTYPE)
        # precomputed: dt^2 * vp^2 (the paper's Q operator weight)
        self.vp2dt2 = (self.model.vp.astype(np.float64) ** 2 * self.dt**2).astype(DTYPE)
        self._slabs = boundary_slabs(self.grid.shape, self.pml.width)
        self._interior = self.pml.interior_slices()

    def snapshot_field(self) -> np.ndarray:
        return self.u

    # ------------------------------------------------------------------
    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        lap = laplacian(self.u, self.grid.spacing, self.space_order, out=self._lap)
        u, up = self.u, self.u_prev
        if self.pml_variant == "everywhere" or not self.pml.is_absorbing():
            rhs = self.vp2dt2 * lap - (self.dt**2 * self.pml.sigma2) * u
            u_next = self.pml.coeff_curr * u - self.pml.coeff_prev * up + self.pml.coeff_rhs * rhs
            up[...] = u_next
        else:
            # plain leapfrog everywhere, then damped overwrite in the slabs
            u_next = 2.0 * u - up + self.vp2dt2 * lap
            for sl in self._slabs:
                rhs = (
                    self.vp2dt2[sl] * lap[sl]
                    - (self.dt**2 * self.pml.sigma2[sl]) * u[sl]
                )
                u_next[sl] = (
                    self.pml.coeff_curr[sl] * u[sl]
                    - self.pml.coeff_prev[sl] * up[sl]
                    + self.pml.coeff_rhs[sl] * rhs
                )
            up[...] = u_next
        # source injection: + dt^2 vp^2 f^n at the source point (Eq. 1)
        for index, amp in sources:
            up[index] += self.vp2dt2[index] * np.float32(amp)
        # logical swap of t_n / t_{n+1}
        self.u, self.u_prev = self.u_prev, self.u
        self.fields["u"], self.fields["u_prev"] = self.u, self.u_prev

    # ------------------------------------------------------------------
    def kernel_workloads(self) -> list[KernelWorkload]:
        from repro.propagators.workloads import isotropic_workloads

        return isotropic_workloads(
            self.grid.shape, self.space_order, self.pml.width, self.pml_variant
        )
