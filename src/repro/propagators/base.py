"""Common propagator machinery.

A :class:`Propagator` owns named wavefield arrays (``fields``), advances them
one leapfrog step at a time, and reports per-step *kernel workloads* — the
iteration space, flop and byte counts the OpenACC/GPU layers use to model
execution cost. The physics itself always runs for real in NumPy; the
workload metadata is pure bookkeeping.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.grid.grid import Grid
from repro.model.earth_model import EarthModel
from repro.propagators.cfl import default_dt, max_stable_dt
from repro.source.injection import PointSource
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError, StabilityError


@dataclass
class KernelWorkload:
    """Cost metadata of one compute kernel launched per time step.

    Attributes
    ----------
    name:
        Kernel identity (stable across steps; the profiler groups by it).
    points:
        Iteration-space size (grid points updated).
    flops_per_point:
        Floating-point operations per updated point.
    reads_per_point / writes_per_point:
        Array elements read/written per point (element = 4 bytes here).
    loop_dims:
        Extents of the perfectly-nested loop levels, outermost first —
        consumed by the directive compiler to choose a launch configuration.
    address_streams:
        Number of distinct multi-dimensional array bases indexed in the body
        — a proxy for the address-arithmetic register pressure the paper
        blames for the acoustic-3D fission win ("most of the register
        pressure ... was with the array address variables").
    has_branches:
        Whether the body carries data-dependent branches (the PML
        if-statements of the isotropic kernel).
    inner_contiguous:
        Whether the innermost parallel loop walks unit-stride memory —
        drives the coalescing factor of the GPU model.
    """

    name: str
    points: int
    flops_per_point: float
    reads_per_point: float
    writes_per_point: float
    loop_dims: tuple[int, ...]
    address_streams: int = 4
    has_branches: bool = False
    inner_contiguous: bool = True
    #: whether successive iterations of a parallelizable level genuinely
    #: depend on each other — asserting ``independent`` on such a nest is
    #: wrong-code territory, which the static analyzer flags
    loop_carried: bool = False
    #: number of grid axes the body's widest stencil gathers along: the
    #: isotropic Laplacian reads a 25-point cross spanning every axis
    #: (``ndim``), while staggered first-derivative kernels gather along one
    #: axis per array. Multi-axis gathers waste GPU memory transactions
    #: (no shared-memory tiling under 2014-era OpenACC codegen).
    gather_axes: int = 1

    @property
    def flops(self) -> float:
        return self.points * self.flops_per_point

    @property
    def bytes_moved(self) -> float:
        return self.points * 4.0 * (self.reads_per_point + self.writes_per_point)


@dataclass
class PropagatorState:
    """Diagnostics snapshot: step counter and wavefield health."""

    step: int = 0
    last_max_amplitude: float = 0.0


class Propagator(ABC):
    """Base class: named fields + leapfrog stepping + workload metadata.

    Subclasses implement :meth:`_step_impl` (pure physics on ``self.fields``)
    and :meth:`kernel_workloads`.

    Parameters
    ----------
    model:
        Earth model providing the physical parameters.
    dt:
        Time step in seconds; ``None`` picks a safe default from the CFL
        bound. An explicitly unstable ``dt`` raises
        :class:`~repro.utils.errors.StabilityError` immediately.
    space_order:
        FD accuracy order (the paper's operators are order 8).
    boundary_width:
        Absorbing-layer width in cells.
    check_health_every:
        Period (steps) of the non-finite wavefield check; 0 disables.
    """

    #: 'second_order' or 'staggered' — the CFL family of the subclass.
    scheme: str = "second_order"
    #: short physics tag ('isotropic', 'acoustic', 'elastic')
    physics: str = "base"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        check_health_every: int = 50,
    ):
        self.model = model
        self.grid: Grid = model.grid
        self.space_order = int(space_order)
        if self.space_order <= 0 or self.space_order % 2:
            raise ConfigurationError("space_order must be a positive even integer")
        self.radius = self.space_order // 2
        self.boundary_width = int(boundary_width)
        if self.boundary_width < 0:
            raise ConfigurationError("boundary_width must be >= 0")
        if self.boundary_width and self.boundary_width < self.radius:
            raise ConfigurationError(
                f"boundary_width {boundary_width} thinner than stencil radius "
                f"{self.radius}"
            )
        limit = max_stable_dt(model.max_wave_speed(), self.grid.spacing, self.scheme, self.space_order)
        if dt is None:
            dt = default_dt(model.max_wave_speed(), self.grid.spacing, self.scheme, self.space_order)
        elif dt <= 0:
            raise ConfigurationError("dt must be positive")
        elif dt > limit:
            raise StabilityError(
                f"dt={dt:g}s exceeds the CFL limit {limit:g}s for "
                f"{self.physics}/{self.scheme} on this grid"
            )
        self.dt = float(dt)
        self.check_health_every = int(check_health_every)
        self.state = PropagatorState()
        self.fields: dict[str, np.ndarray] = {}
        #: called between the two sub-stages of a staggered leapfrog step
        #: (after pressure/velocity updates, before flow/stress updates).
        #: Domain-decomposed runs hang their mid-step ghost exchange here:
        #: the second sub-stage differentiates the *freshly updated* fields,
        #: so their halos must be refreshed mid-step.
        self.mid_step_hook: Callable[[], None] | None = None

    # ------------------------------------------------------------------
    # field management
    # ------------------------------------------------------------------
    def _new_field(self, name: str) -> np.ndarray:
        a = np.zeros(self.grid.shape, dtype=DTYPE)
        self.fields[name] = a
        return a

    def reset(self) -> None:
        """Zero all wavefields and restart the step counter (coefficients and
        material fields are kept)."""
        for a in self.fields.values():
            a.fill(0.0)
        self.state = PropagatorState()

    def wavefield_bytes(self) -> int:
        """Bytes of all time-varying fields (what must live on the device)."""
        return sum(a.nbytes for a in self.fields.values())

    # ------------------------------------------------------------------
    # checkpoint support (repro.resilience)
    # ------------------------------------------------------------------
    def capture_state(self) -> dict:
        """Deep-copy the complete time-varying state: every wavefield, the
        step counter, and (for the C-PML systems) the boundary memory
        variables. Restoring this dict and replaying the same steps is
        bitwise identical to never having stopped."""
        state: dict = {
            "step": self.state.step,
            "fields": {name: a.copy() for name, a in self.fields.items()},
        }
        cpml = getattr(self, "cpml", None)
        if cpml is not None:
            state["psi"] = cpml.capture()
        return state

    def restore_state(self, state: dict) -> None:
        """Restore :meth:`capture_state`'s snapshot in place (array
        identities survive — any device present-table entry keyed by these
        arrays' names stays valid; only the *values* roll back)."""
        for name, a in state["fields"].items():
            self.fields[name][...] = a
        self.state = PropagatorState(step=int(state["step"]))
        cpml = getattr(self, "cpml", None)
        if cpml is not None:
            cpml.restore(state.get("psi", {}))

    @abstractmethod
    def snapshot_field(self) -> np.ndarray:
        """The observable wavefield recorded in snapshots/seismograms
        (displacement for isotropic, pressure for acoustic/elastic)."""

    def inject_pressure(
        self,
        indices: np.ndarray,
        amplitudes: np.ndarray | float,
        scale: float = 1.0,
    ) -> None:
        """Add a pressure-like perturbation at grid points — the receiver
        injection of the RTM backward phase. The default writes into the
        observable field directly (valid when :meth:`snapshot_field`
        returns real propagator state); the elastic propagators override it
        to drive the diagonal stresses."""
        from repro.source.injection import inject

        inject(self.snapshot_field(), indices, amplitudes, scale=scale)

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    @abstractmethod
    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        """Advance all fields by one time step, injecting the given
        ``(index, amplitude)`` source terms."""

    def step(
        self,
        sources: Sequence[tuple[tuple[int, ...], float]] = (),
        injector: Callable[[np.ndarray], None] | None = None,
    ) -> None:
        """Advance one time step.

        ``sources`` carries point-source injections for this step;
        ``injector``, when given, is called with the snapshot field *after*
        the update (receiver injection in the RTM backward phase).
        """
        self._step_impl(sources)
        if injector is not None:
            injector(self.snapshot_field())
        self.state.step += 1
        if self.check_health_every and self.state.step % self.check_health_every == 0:
            self._check_health()

    def run(
        self,
        nt: int,
        source: PointSource | None = None,
        on_step: Callable[[int, "Propagator"], None] | None = None,
    ) -> None:
        """Run ``nt`` steps with an optional point source and per-step hook."""
        if nt < 0:
            raise ConfigurationError("nt must be >= 0")
        for n in range(nt):
            srcs: list[tuple[tuple[int, ...], float]] = []
            if source is not None:
                amp = source.amplitude(n)
                if amp != 0.0:
                    srcs.append((source.index, amp))
            self.step(srcs)
            if on_step is not None:
                on_step(n, self)

    def _check_health(self) -> None:
        u = self.snapshot_field()
        peak = float(np.max(np.abs(u)))
        self.state.last_max_amplitude = peak
        if not np.isfinite(peak):
            raise StabilityError(
                f"{self.physics} wavefield turned non-finite at step "
                f"{self.state.step} (dt too large or model pathological?)"
            )

    # ------------------------------------------------------------------
    # cost metadata
    # ------------------------------------------------------------------
    @abstractmethod
    def kernel_workloads(self) -> list[KernelWorkload]:
        """The compute kernels launched per forward time step, with their
        cost metadata (consumed by :mod:`repro.acc` / :mod:`repro.gpusim`)."""

    def total_flops_per_step(self) -> float:
        return sum(w.flops for w in self.kernel_workloads())

    def total_bytes_per_step(self) -> float:
        return sum(w.bytes_moved for w in self.kernel_workloads())


def staggered_average(param: np.ndarray, axis: int) -> np.ndarray:
    """Arithmetic average of a material parameter onto half points along
    ``axis`` (same-shape convention: sample ``i`` -> location ``i + 1/2``;
    the last sample replicates its neighbour)."""
    out = param.astype(np.float64).copy()
    sl_lo = [slice(None)] * param.ndim
    sl_hi = [slice(None)] * param.ndim
    sl_lo[axis] = slice(0, -1)
    sl_hi[axis] = slice(1, None)
    out[tuple(sl_lo)] = 0.5 * (
        param[tuple(sl_lo)].astype(np.float64) + param[tuple(sl_hi)].astype(np.float64)
    )
    return out.astype(DTYPE)


def staggered_harmonic_average(param: np.ndarray, axes: Iterable[int]) -> np.ndarray:
    """Harmonic average onto points half-shifted along all ``axes`` — the
    physically correct interpolation for the shear modulus at shear-stress
    positions (a zero in any contributing cell keeps the average zero, as a
    fluid cell must)."""
    inv = np.where(param > 0, 1.0 / np.maximum(param.astype(np.float64), 1e-300), np.inf)
    acc = inv.copy()
    count = 1
    for axis in axes:
        sl_hi = [slice(None)] * param.ndim
        sl_hi[axis] = slice(1, None)
        shifted = np.empty_like(acc)
        sl_lo = [slice(None)] * param.ndim
        sl_lo[axis] = slice(0, -1)
        shifted[tuple(sl_lo)] = acc[tuple(sl_hi)]
        sl_last = [slice(None)] * param.ndim
        sl_last[axis] = slice(-1, None)
        shifted[tuple(sl_last)] = acc[tuple(sl_last)]
        acc = acc + shifted
        count *= 2
    with np.errstate(divide="ignore"):
        out = np.where(np.isinf(acc), 0.0, count / np.maximum(acc, 1e-300))
    return out.astype(DTYPE)
