"""Wave-equation propagators for the paper's three formulations.

* :class:`IsotropicPropagator` — Eq. 1, constant-density second-order system
  with standard PML (25-point / width-8 Laplacian stencil).
* :class:`AcousticPropagator` — Eq. 2, variable-density first-order
  staggered-grid system with C-PML.
* :class:`ElasticPropagator2D` / :class:`ElasticPropagator3D` — Eq. 3,
  velocity-stress staggered-grid system with C-PML.

All are implemented dimension-explicitly in single precision, matching the
paper's experimental setup, and validated by the test suite against
analytic wavefront kinematics, energy decay in the absorbing layers, and
convergence behaviour.
"""

from repro.propagators.base import Propagator, PropagatorState
from repro.propagators.cfl import (
    courant_number,
    max_stable_dt,
    default_dt,
    points_per_wavelength,
    check_dispersion,
)
from repro.propagators.isotropic import IsotropicPropagator
from repro.propagators.acoustic import AcousticPropagator
from repro.propagators.elastic2d import ElasticPropagator2D
from repro.propagators.elastic3d import ElasticPropagator3D
from repro.propagators.vti import VTIPropagator
from repro.propagators.factory import make_propagator, PHYSICS_NAMES, EXTENDED_PHYSICS_NAMES

__all__ = [
    "Propagator",
    "PropagatorState",
    "courant_number",
    "max_stable_dt",
    "default_dt",
    "points_per_wavelength",
    "check_dispersion",
    "IsotropicPropagator",
    "AcousticPropagator",
    "ElasticPropagator2D",
    "ElasticPropagator3D",
    "VTIPropagator",
    "make_propagator",
    "PHYSICS_NAMES",
    "EXTENDED_PHYSICS_NAMES",
]
