"""Stability (CFL) and dispersion bounds for the FD schemes.

The bounds are derived from the actual stencil coefficients rather than
hard-coded: for the second-order-in-time leapfrog scheme the von Neumann
limit is ``dt <= 2 / (vmax * sqrt(lambda_max))`` where ``lambda_max`` bounds
the discrete Laplacian symbol; for the staggered first-order leapfrog it is
``dt <= 1 / (vmax * sqrt(sum_i (S / h_i)^2))`` with ``S = 2 * sum|c_m|`` the
peak of the staggered first-derivative symbol... both reduce to the familiar
Courant numbers when evaluated for 2nd-order coefficients.
"""

from __future__ import annotations

import math

from repro.stencil.coefficients import (
    DEFAULT_SPACE_ORDER,
    second_derivative_coefficients,
    staggered_coefficients,
)
from repro.utils.errors import ConfigurationError

#: Safety factor applied on top of the theoretical limit.
DEFAULT_SAFETY = 0.8


def _second_order_symbol_max(order: int) -> float:
    """Upper bound of ``|symbol|`` of the centered 2nd-derivative stencil at
    unit spacing: ``|c0| + 2 * sum|ck|``."""
    c0, side = second_derivative_coefficients(order)
    return abs(c0) + 2.0 * sum(abs(c) for c in side)


def _staggered_symbol_max(order: int) -> float:
    """Peak of the staggered first-derivative symbol at unit spacing:
    ``2 * sum|cm|`` (attained at the Nyquist wavenumber)."""
    return 2.0 * sum(abs(c) for c in staggered_coefficients(order))


def courant_number(
    scheme: str, ndim: int, order: int = DEFAULT_SPACE_ORDER
) -> float:
    """Dimensionless Courant limit ``C`` such that ``dt <= C * h / vmax``
    for isotropic spacing ``h``.

    ``scheme`` is ``'second_order'`` (leapfrog on the 2nd-order wave
    equation — isotropic model) or ``'staggered'`` (first-order staggered
    leapfrog — acoustic/elastic models).
    """
    if ndim not in (1, 2, 3):
        raise ConfigurationError(f"ndim must be 1..3, got {ndim}")
    if scheme == "second_order":
        lam = ndim * _second_order_symbol_max(order)
        return 2.0 / math.sqrt(lam)
    if scheme == "staggered":
        s = _staggered_symbol_max(order)
        return 2.0 / (s * math.sqrt(ndim))
    raise ConfigurationError(f"unknown scheme '{scheme}'")


def max_stable_dt(
    vmax: float,
    spacing: tuple[float, ...],
    scheme: str,
    order: int = DEFAULT_SPACE_ORDER,
) -> float:
    """Theoretical stability limit on ``dt`` for anisotropic spacing."""
    if vmax <= 0:
        raise ConfigurationError("vmax must be positive")
    ndim = len(spacing)
    if any(h <= 0 for h in spacing):
        raise ConfigurationError("spacings must be positive")
    if scheme == "second_order":
        m2 = _second_order_symbol_max(order)
        lam = sum(m2 / h**2 for h in spacing)
        return 2.0 / (vmax * math.sqrt(lam))
    if scheme == "staggered":
        s = _staggered_symbol_max(order)
        acc = sum((s / h) ** 2 for h in spacing)
        return 2.0 / (vmax * math.sqrt(acc))
    raise ConfigurationError(f"unknown scheme '{scheme}' (ndim={ndim})")


def default_dt(
    vmax: float,
    spacing: tuple[float, ...],
    scheme: str,
    order: int = DEFAULT_SPACE_ORDER,
    safety: float = DEFAULT_SAFETY,
) -> float:
    """A safe production time step: ``safety`` times the stability limit."""
    if not 0 < safety <= 1:
        raise ConfigurationError("safety must be in (0, 1]")
    return safety * max_stable_dt(vmax, spacing, scheme, order)


def points_per_wavelength(vmin: float, peak_freq: float, spacing_max: float) -> float:
    """Grid points per *minimum* wavelength at ~2.5x the Ricker peak
    frequency (its effective maximum)."""
    if vmin <= 0 or peak_freq <= 0 or spacing_max <= 0:
        raise ConfigurationError("vmin, peak_freq, spacing_max must be positive")
    f_max = 2.5 * peak_freq
    return vmin / (f_max * spacing_max)


def check_dispersion(
    vmin: float,
    peak_freq: float,
    spacing_max: float,
    min_points: float = 3.0,
) -> None:
    """Raise :class:`ConfigurationError` when the grid undersamples the
    wavelet (numerical dispersion would corrupt the simulation).

    The 8th-order operators stay accurate down to roughly 3 points per
    minimum wavelength; callers wanting the classic conservative rule can
    pass ``min_points=4``.
    """
    ppw = points_per_wavelength(vmin, peak_freq, spacing_max)
    if ppw < min_points:
        raise ConfigurationError(
            f"grid undersamples the source: {ppw:.2f} points per minimum "
            f"wavelength < required {min_points} (reduce peak_freq or spacing)"
        )
