"""Acoustic variable-density propagator — Eq. 2 of the paper.

First-order pressure/velocity-flow system on a staggered grid (the paper's
"25-point stencil staggered grid first order system"), absorbed by C-PML.
Dimension-agnostic: the same class covers the 2-D system of Eq. 2 and its
3-D extension (an extra ``q_y`` flow component).

Staggering (same-shape storage): pressure ``p`` on integer points, flow
``q_i`` half-shifted along axis ``i``. The leapfrog step is

1. ``p += dt * rho * vp^2 * (sum_i D-_i q_i) + dt * rho * vp^2 * F(t)``
   with ``F`` the *time-integrated* wavelet (Eq. 2 injects
   :math:`\\partial_t^{-1} f`);
2. ``q_i += dt * (1/rho)_i * D+_i p`` for each axis.

Every spatial derivative passes through the C-PML convolution.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boundary.cpml import CPML
from repro.model.earth_model import EarthModel
from repro.propagators.base import KernelWorkload, Propagator, staggered_average
from repro.stencil.operators import staggered_diff_backward, staggered_diff_forward
from repro.utils.arrays import DTYPE

_AXIS_TAGS = {2: ("z", "x"), 3: ("z", "x", "y")}


class AcousticPropagator(Propagator):
    """Variable-density acoustic propagator (2-D or 3-D, from the model)."""

    scheme = "staggered"
    physics = "acoustic"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        cpml_alpha_max: float = 0.0,
        **kwargs,
    ):
        super().__init__(model, dt, space_order, boundary_width, **kwargs)
        self.p = self._new_field("p")
        self.q: list[np.ndarray] = [
            self._new_field(f"q{_AXIS_TAGS[self.grid.ndim][ax]}")
            for ax in range(self.grid.ndim)
        ]
        rho = model.density().astype(np.float64)
        vp = model.vp.astype(np.float64)
        #: bulk-modulus-like coefficient of the pressure update: rho * vp^2
        self.kappa = (rho * vp**2).astype(DTYPE)
        #: buoyancy 1/rho averaged to each flow component's half position
        self.buoyancy: list[np.ndarray] = [
            staggered_average((1.0 / rho).astype(DTYPE), ax)
            for ax in range(self.grid.ndim)
        ]
        self.cpml = CPML(
            self.grid,
            boundary_width,
            model.max_wave_speed(),
            self.dt,
            alpha_max=cpml_alpha_max,
        )
        self._deriv = np.zeros(self.grid.shape, dtype=DTYPE)
        self._div = np.zeros(self.grid.shape, dtype=DTYPE)

    def snapshot_field(self) -> np.ndarray:
        return self.p

    # ------------------------------------------------------------------
    def step_pressure(self, sources: Sequence[tuple[tuple[int, ...], float]] = ()) -> None:
        """First leapfrog sub-stage: update ``p`` from the flow divergence
        and inject sources. Exposed separately so domain-decomposed drivers
        can exchange the fresh pressure halos before :meth:`step_flow`."""
        h = self.grid.spacing
        div = self._div
        div.fill(0.0)
        for ax in range(self.grid.ndim):
            # the operator only writes the valid interior; clear the reused
            # buffer so stale border values never leak into div or the C-PML
            # memory variables
            self._deriv.fill(0.0)
            d = staggered_diff_backward(
                self.q[ax], ax, h[ax], self.space_order, out=self._deriv
            )
            d = self.cpml.damp(f"dq{ax}", ax, d, half=False)
            div += d
        self.p += np.float32(self.dt) * self.kappa * div
        # source: Eq. 2 injects rho*vp^2 * time-integral of the wavelet; the
        # driver passes the integrated amplitude
        for index, amp in sources:
            self.p[index] += np.float32(self.dt) * self.kappa[index] * np.float32(amp)

    def step_flow(self) -> None:
        """Second leapfrog sub-stage: update the flow components from the
        (fresh) pressure gradient."""
        h = self.grid.spacing
        for ax in range(self.grid.ndim):
            self._deriv.fill(0.0)
            d = staggered_diff_forward(
                self.p, ax, h[ax], self.space_order, out=self._deriv
            )
            d = self.cpml.damp(f"dp{ax}", ax, d, half=True)
            self.q[ax] += np.float32(self.dt) * self.buoyancy[ax] * d

    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        self.step_pressure(sources)
        if self.mid_step_hook is not None:
            self.mid_step_hook()
        self.step_flow()

    # ------------------------------------------------------------------
    def kernel_workloads(self) -> list[KernelWorkload]:
        from repro.propagators.workloads import acoustic_workloads

        return acoustic_workloads(self.grid.shape, self.space_order)
