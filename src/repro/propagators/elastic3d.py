"""Elastic 3-D velocity-stress propagator — Eq. 3 of the paper in full.

Nine wavefields on the standard 3-D staggered lattice, axes ``(z, x, y)``:

==============================  ============================
field                           stagger (half-shifted along)
==============================  ============================
``sxx``, ``syy``, ``szz``       — (integer points)
``vz`` / ``vx`` / ``vy``        z / x / y
``sxy``                         x and y
``sxz``                         x and z
``syz``                         y and z
==============================  ============================

This is "the most computationally intensive case" of the paper — nine field
updates with 22 C-PML-damped spatial derivatives per time step — and the one
whose wavefields exceed the Fermi M2090's 6 GB at the paper's 3-D sizes
(the ``x`` entries in its Tables 3 and 4).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boundary.cpml import CPML
from repro.model.earth_model import EarthModel
from repro.propagators.base import (
    KernelWorkload,
    Propagator,
    staggered_average,
    staggered_harmonic_average,
)
from repro.stencil.operators import staggered_diff_backward, staggered_diff_forward
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError

_Z, _X, _Y = 0, 1, 2


class ElasticPropagator3D(Propagator):
    """Isotropic elastic velocity-stress propagator in 3-D."""

    scheme = "staggered"
    physics = "elastic"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        cpml_alpha_max: float = 0.0,
        **kwargs,
    ):
        if model.grid.ndim != 3:
            raise ConfigurationError("ElasticPropagator3D needs a 3-D model")
        super().__init__(model, dt, space_order, boundary_width, **kwargs)
        lam, mu = model.lame_parameters()
        rho = model.density().astype(np.float64)
        self.lam = lam
        self.lam2mu = (lam.astype(np.float64) + 2.0 * mu.astype(np.float64)).astype(DTYPE)
        inv_rho = (1.0 / rho).astype(DTYPE)
        self.buoy = {
            _Z: staggered_average(inv_rho, _Z),
            _X: staggered_average(inv_rho, _X),
            _Y: staggered_average(inv_rho, _Y),
        }
        self.mu_xy = staggered_harmonic_average(mu, (_X, _Y))
        self.mu_xz = staggered_harmonic_average(mu, (_X, _Z))
        self.mu_yz = staggered_harmonic_average(mu, (_Y, _Z))
        self.vx = self._new_field("vx")
        self.vy = self._new_field("vy")
        self.vz = self._new_field("vz")
        self.sxx = self._new_field("sxx")
        self.syy = self._new_field("syy")
        self.szz = self._new_field("szz")
        self.sxy = self._new_field("sxy")
        self.sxz = self._new_field("sxz")
        self.syz = self._new_field("syz")
        self.cpml = CPML(
            self.grid,
            boundary_width,
            model.max_wave_speed(),
            self.dt,
            alpha_max=cpml_alpha_max,
        )
        self._buf = np.zeros(self.grid.shape, dtype=DTYPE)
        self._pressure = np.zeros(self.grid.shape, dtype=DTYPE)

    def snapshot_field(self) -> np.ndarray:
        """Pressure-like observable ``-(sxx + syy + szz)/3``."""
        np.add(self.sxx, self.syy, out=self._pressure)
        self._pressure += self.szz
        self._pressure *= np.float32(-1.0 / 3.0)
        return self._pressure

    def inject_pressure(self, indices, amplitudes, scale: float = 1.0) -> None:
        """Pressure injection drives the three diagonal stresses."""
        from repro.source.injection import inject

        for field in (self.sxx, self.syy, self.szz):
            inject(field, indices, amplitudes, scale=-scale)

    # ------------------------------------------------------------------
    def _diff(self, f: np.ndarray, axis: int, fwd: bool, name: str) -> np.ndarray:
        """One damped derivative into a fresh array (22 per step; fresh
        allocation keeps the data flow simple and is amortised by the
        kernel-sized arithmetic around it)."""
        self._buf.fill(0.0)
        h = self.grid.spacing[axis]
        if fwd:
            d = staggered_diff_forward(f, axis, h, self.space_order, out=self._buf)
        else:
            d = staggered_diff_backward(f, axis, h, self.space_order, out=self._buf)
        d = self.cpml.damp(name, axis, d, half=fwd)
        return d.copy()

    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        dt = np.float32(self.dt)
        # --- velocities -----------------------------------------------
        self.vx += dt * self.buoy[_X] * (
            self._diff(self.sxx, _X, True, "dsxx_dx")
            + self._diff(self.sxy, _Y, False, "dsxy_dy")
            + self._diff(self.sxz, _Z, False, "dsxz_dz")
        )
        self.vy += dt * self.buoy[_Y] * (
            self._diff(self.sxy, _X, False, "dsxy_dx")
            + self._diff(self.syy, _Y, True, "dsyy_dy")
            + self._diff(self.syz, _Z, False, "dsyz_dz")
        )
        self.vz += dt * self.buoy[_Z] * (
            self._diff(self.sxz, _X, False, "dsxz_dx")
            + self._diff(self.syz, _Y, False, "dsyz_dy")
            + self._diff(self.szz, _Z, True, "dszz_dz")
        )
        if self.mid_step_hook is not None:
            self.mid_step_hook()
        # --- diagonal stresses (sharing the three divergence terms) ----
        dvx_dx = self._diff(self.vx, _X, False, "dvx_dx")
        dvy_dy = self._diff(self.vy, _Y, False, "dvy_dy")
        dvz_dz = self._diff(self.vz, _Z, False, "dvz_dz")
        self.sxx += dt * (self.lam2mu * dvx_dx + self.lam * (dvy_dy + dvz_dz))
        self.syy += dt * (self.lam2mu * dvy_dy + self.lam * (dvx_dx + dvz_dz))
        self.szz += dt * (self.lam2mu * dvz_dz + self.lam * (dvx_dx + dvy_dy))
        # --- shear stresses --------------------------------------------
        self.sxy += dt * self.mu_xy * (
            self._diff(self.vy, _X, True, "dvy_dx") + self._diff(self.vx, _Y, True, "dvx_dy")
        )
        self.sxz += dt * self.mu_xz * (
            self._diff(self.vz, _X, True, "dvz_dx") + self._diff(self.vx, _Z, True, "dvx_dz")
        )
        self.syz += dt * self.mu_yz * (
            self._diff(self.vz, _Y, True, "dvz_dy") + self._diff(self.vy, _Z, True, "dvy_dz")
        )
        # --- explosive source ------------------------------------------
        for index, amp in sources:
            a = dt * np.float32(amp)
            self.sxx[index] += a
            self.syy[index] += a
            self.szz[index] += a

    # ------------------------------------------------------------------
    def kernel_workloads(self) -> list[KernelWorkload]:
        from repro.propagators.workloads import elastic_workloads

        return elastic_workloads(self.grid.shape, self.space_order)
