"""Elastic 2-D (P-SV) velocity-stress propagator — Eq. 3 of the paper,
restricted to the (z, x) plane.

Virieux staggering with our (z, x) axis order and same-shape storage:

====================  =========================
field                 stagger
====================  =========================
``sxx``, ``szz``      integer points
``vz``                half along z (axis 0)
``vx``                half along x (axis 1)
``sxz``               half along z and x
====================  =========================

Per step (leapfrog, velocities then stresses):

* ``vx += dt * (1/rho)_x * (D+_x sxx + D-_z sxz)``
* ``vz += dt * (1/rho)_z * (D-_x sxz + D+_z szz)``
* ``sxx += dt * ((lam + 2 mu) * D-_x vx + lam * D-_z vz)``
* ``szz += dt * ((lam + 2 mu) * D-_z vz + lam * D-_x vx)``
* ``sxz += dt * mu_xz * (D+_z vx + D+_x vz)``

``mu_xz`` is harmonically averaged to the shear position (so fluid cells
carry zero shear stress), densities arithmetically to the velocity
positions. Every derivative passes through C-PML. Explosive sources add to
both diagonal stresses.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boundary.cpml import CPML
from repro.model.earth_model import EarthModel
from repro.propagators.base import (
    KernelWorkload,
    Propagator,
    staggered_average,
    staggered_harmonic_average,
)
from repro.stencil.operators import staggered_diff_backward, staggered_diff_forward
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError

_Z, _X = 0, 1


class ElasticPropagator2D(Propagator):
    """Isotropic elastic P-SV propagator in the (z, x) plane."""

    scheme = "staggered"
    physics = "elastic"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        cpml_alpha_max: float = 0.0,
        **kwargs,
    ):
        if model.grid.ndim != 2:
            raise ConfigurationError("ElasticPropagator2D needs a 2-D model")
        super().__init__(model, dt, space_order, boundary_width, **kwargs)
        lam, mu = model.lame_parameters()
        rho = model.density().astype(np.float64)
        self.lam = lam
        self.mu = mu
        self.lam2mu = (lam.astype(np.float64) + 2.0 * mu.astype(np.float64)).astype(DTYPE)
        self.buoy_x = staggered_average((1.0 / rho).astype(DTYPE), _X)
        self.buoy_z = staggered_average((1.0 / rho).astype(DTYPE), _Z)
        self.mu_xz = staggered_harmonic_average(mu, (_Z, _X))
        self.vx = self._new_field("vx")
        self.vz = self._new_field("vz")
        self.sxx = self._new_field("sxx")
        self.szz = self._new_field("szz")
        self.sxz = self._new_field("sxz")
        self.cpml = CPML(
            self.grid,
            boundary_width,
            model.max_wave_speed(),
            self.dt,
            alpha_max=cpml_alpha_max,
        )
        self._d1 = np.zeros(self.grid.shape, dtype=DTYPE)
        self._d2 = np.zeros(self.grid.shape, dtype=DTYPE)
        self._pressure = np.zeros(self.grid.shape, dtype=DTYPE)

    def snapshot_field(self) -> np.ndarray:
        """Pressure-like observable ``-(sxx + szz)/2`` (what a hydrophone in
        the solid would sense; the RTM imaging condition correlates it)."""
        np.add(self.sxx, self.szz, out=self._pressure)
        self._pressure *= np.float32(-0.5)
        return self._pressure

    def inject_pressure(self, indices, amplitudes, scale: float = 1.0) -> None:
        """Pressure injection drives both diagonal stresses: adding dp to
        the observable ``-(sxx+szz)/2`` means subtracting dp from each."""
        from repro.source.injection import inject

        inject(self.sxx, indices, amplitudes, scale=-scale)
        inject(self.szz, indices, amplitudes, scale=-scale)

    # ------------------------------------------------------------------
    def _dx_fwd(self, f, name):
        self._d1.fill(0.0)
        d = staggered_diff_forward(f, _X, self.grid.spacing[_X], self.space_order, out=self._d1)
        return self.cpml.damp(name, _X, d, half=True)

    def _dx_bwd(self, f, name):
        self._d1.fill(0.0)
        d = staggered_diff_backward(f, _X, self.grid.spacing[_X], self.space_order, out=self._d1)
        return self.cpml.damp(name, _X, d, half=False)

    def _dz_fwd(self, f, name):
        self._d2.fill(0.0)
        d = staggered_diff_forward(f, _Z, self.grid.spacing[_Z], self.space_order, out=self._d2)
        return self.cpml.damp(name, _Z, d, half=True)

    def _dz_bwd(self, f, name):
        self._d2.fill(0.0)
        d = staggered_diff_backward(f, _Z, self.grid.spacing[_Z], self.space_order, out=self._d2)
        return self.cpml.damp(name, _Z, d, half=False)

    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        dt = np.float32(self.dt)
        # --- velocities ---------------------------------------------------
        self.vx += dt * self.buoy_x * (
            self._dx_fwd(self.sxx, "dsxx_dx") + self._dz_bwd(self.sxz, "dsxz_dz")
        )
        self.vz += dt * self.buoy_z * (
            self._dx_bwd(self.sxz, "dsxz_dx") + self._dz_fwd(self.szz, "dszz_dz")
        )
        if self.mid_step_hook is not None:
            self.mid_step_hook()
        # --- stresses ------------------------------------------------------
        dvx_dx = self._dx_bwd(self.vx, "dvx_dx").copy()
        dvz_dz = self._dz_bwd(self.vz, "dvz_dz")
        self.sxx += dt * (self.lam2mu * dvx_dx + self.lam * dvz_dz)
        self.szz += dt * (self.lam2mu * dvz_dz + self.lam * dvx_dx)
        self.sxz += dt * self.mu_xz * (
            self._dz_fwd(self.vx, "dvx_dz") + self._dx_fwd(self.vz, "dvz_dx")
        )
        # --- explosive source: equal push on the diagonal stresses ---------
        for index, amp in sources:
            a = dt * np.float32(amp)
            self.sxx[index] += a
            self.szz[index] += a

    # ------------------------------------------------------------------
    def kernel_workloads(self) -> list[KernelWorkload]:
        from repro.propagators.workloads import elastic_workloads

        return elastic_workloads(self.grid.shape, self.space_order)
