"""Kernel workload metadata, independent of live wavefields.

The propagator classes delegate here, and the benchmark harness calls these
functions directly to model the paper's full-size grids (e.g. 512^3
elastic) without allocating them. Counts are derived from the same formulas
the propagators use; a consistency test pins the two views together.

Also defines the RTM-specific kernels that are not part of a propagator
step: source injection, receiver injection (inlined or per-receiver) and
the even/odd imaging-condition kernels of the paper's Section 5.4.
"""

from __future__ import annotations

import numpy as np

from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError


def _check_shape(shape: tuple[int, ...]) -> tuple[int, ...]:
    shape = tuple(int(n) for n in shape)
    if len(shape) not in (2, 3) or any(n < 1 for n in shape):
        raise ConfigurationError(f"bad grid shape {shape}")
    return shape


def _npoints(shape: tuple[int, ...]) -> int:
    return int(np.prod(shape))


# ----------------------------------------------------------------------
# isotropic (Eq. 1)
# ----------------------------------------------------------------------
def isotropic_workloads(
    shape: tuple[int, ...],
    order: int = 8,
    pml_width: int = 16,
    variant: str = "branchy",
) -> list[KernelWorkload]:
    """Per-step kernels of the isotropic propagator for the given variant
    (see :class:`~repro.propagators.isotropic.IsotropicPropagator`)."""
    from repro.propagators.isotropic import boundary_slabs
    from repro.stencil.operators import (
        laplacian_flops_per_point,
        laplacian_reads_per_point,
    )

    shape = _check_shape(shape)
    ndim = len(shape)
    npts = _npoints(shape)
    lap_flops = laplacian_flops_per_point(ndim, order)
    lap_reads = laplacian_reads_per_point(ndim, order)
    plain_flops = lap_flops + 4
    plain_reads = lap_reads + 2
    damped_extra_flops = 8
    damped_extra_reads = 4
    if variant == "everywhere":
        return [
            KernelWorkload(
                name="iso_update_everywhere",
                points=npts,
                flops_per_point=plain_flops + damped_extra_flops,
                reads_per_point=plain_reads + damped_extra_reads,
                writes_per_point=1,
                loop_dims=shape,
                address_streams=8,
                has_branches=False,
                inner_contiguous=True,
                gather_axes=ndim,
            )
        ]
    if variant == "branchy":
        return [
            KernelWorkload(
                name="iso_update_branchy",
                points=npts,
                flops_per_point=plain_flops + 2,
                reads_per_point=plain_reads + 1,
                writes_per_point=1,
                loop_dims=shape,
                # the branch skips the PML coefficient loads at interior
                # points, so the effective stream count is near the plain
                # kernel's
                address_streams=5,
                has_branches=True,
                inner_contiguous=True,
                gather_axes=ndim,
            )
        ]
    if variant != "restructured":
        raise ConfigurationError(f"unknown isotropic variant '{variant}'")
    w = pml_width
    kernels = [
        KernelWorkload(
            name="iso_update_interior",
            points=int(np.prod([max(n - 2 * w, 0) for n in shape])),
            flops_per_point=plain_flops,
            reads_per_point=plain_reads,
            writes_per_point=1,
            loop_dims=tuple(max(n - 2 * w, 0) for n in shape),
            address_streams=4,
            has_branches=False,
            inner_contiguous=True,
            gather_axes=len(shape),
        )
    ]
    for i, sl in enumerate(boundary_slabs(shape, w)):
        dims = []
        for s, n in zip(sl, shape):
            start, stop, _ = s.indices(n)
            dims.append(stop - start)
        kernels.append(
            KernelWorkload(
                name=f"iso_update_pml_slab{i}",
                points=int(np.prod(dims)),
                flops_per_point=plain_flops + damped_extra_flops,
                reads_per_point=plain_reads + damped_extra_reads,
                writes_per_point=1,
                loop_dims=tuple(dims),
                address_streams=8,
                has_branches=False,
                inner_contiguous=(sl[-1] == slice(None)),
                gather_axes=len(shape),
            )
        )
    return kernels


# ----------------------------------------------------------------------
# acoustic (Eq. 2)
# ----------------------------------------------------------------------
def acoustic_workloads(
    shape: tuple[int, ...],
    order: int = 8,
    fissioned: bool = False,
    backward_uncoalesced: bool = False,
) -> list[KernelWorkload]:
    """Per-step kernels of the acoustic propagator.

    ``fissioned`` splits the fused flow-update kernel into one kernel per
    axis (the paper's Figure 12 optimization). ``backward_uncoalesced``
    marks the flow kernel's inner loop non-contiguous — the original RTM
    backward-phase kernel of Figure 13 before transposition.
    """
    shape = _check_shape(shape)
    ndim = len(shape)
    npts = _npoints(shape)
    m = order // 2
    deriv_flops = 2 * 2 * m
    cpml_flops = 4
    kernels = [
        KernelWorkload(
            name="acoustic_update_p",
            points=npts,
            flops_per_point=ndim * (deriv_flops + cpml_flops) + 2 * ndim + 3,
            reads_per_point=ndim * (2 * m) + ndim + 2,
            writes_per_point=1 + ndim,
            loop_dims=shape,
            address_streams=1 + 2 * ndim + 1,
            has_branches=False,
            inner_contiguous=True,
        )
    ]
    if fissioned:
        for ax in range(ndim):
            kernels.append(
                KernelWorkload(
                    name=f"acoustic_update_q_axis{ax}",
                    points=npts,
                    flops_per_point=deriv_flops + cpml_flops + 3,
                    reads_per_point=2 * m + 3,
                    writes_per_point=2,
                    loop_dims=shape,
                    address_streams=4,
                    has_branches=False,
                    inner_contiguous=not backward_uncoalesced,
                )
            )
    else:
        kernels.append(
            KernelWorkload(
                name="acoustic_update_q_fused",
                points=npts,
                flops_per_point=ndim * (deriv_flops + cpml_flops + 3),
                reads_per_point=ndim * (2 * m + 3),
                writes_per_point=2 * ndim,
                loop_dims=shape,
                address_streams=1 + 3 * ndim,
                has_branches=False,
                inner_contiguous=not backward_uncoalesced,
            )
        )
    return kernels


def transpose_workloads(shape: tuple[int, ...]) -> list[KernelWorkload]:
    """The on-GPU transposition pair of the paper's Figure 13 fix: copy to
    a transposed temporary before the kernel and back after. The generated
    transpose keeps one side of each access coalesced (the 2-D
    gridification walks the output contiguously), so the copies run near
    streaming rate — which is why paying for two of them still nets ~3x."""
    shape = _check_shape(shape)
    npts = _npoints(shape)
    return [
        KernelWorkload(
            name=name,
            points=npts,
            flops_per_point=0.0,
            reads_per_point=1,
            writes_per_point=1,
            loop_dims=shape,
            address_streams=2,
            has_branches=False,
            inner_contiguous=True,
        )
        for name in ("transpose_to_tmp", "transpose_from_tmp")
    ]


# ----------------------------------------------------------------------
# elastic (Eq. 3)
# ----------------------------------------------------------------------
def elastic_workloads(shape: tuple[int, ...], order: int = 8) -> list[KernelWorkload]:
    """Per-step kernels of the elastic propagator (2-D or 3-D by shape)."""
    shape = _check_shape(shape)
    ndim = len(shape)
    npts = _npoints(shape)
    m = order // 2
    deriv = 2 * 2 * m + 4
    if ndim == 2:
        return [
            KernelWorkload(
                name="elastic2d_update_v",
                points=npts,
                flops_per_point=4 * deriv + 8,
                reads_per_point=4 * (2 * m + 1) + 4,
                writes_per_point=2 + 4,
                loop_dims=shape,
                address_streams=9,
                has_branches=False,
                inner_contiguous=True,
            ),
            KernelWorkload(
                name="elastic2d_update_s",
                points=npts,
                flops_per_point=4 * deriv + 14,
                reads_per_point=4 * (2 * m + 1) + 6,
                writes_per_point=3 + 4,
                loop_dims=shape,
                address_streams=12,
                has_branches=False,
                inner_contiguous=True,
            ),
        ]
    kernels = []
    for comp in ("vx", "vy", "vz"):
        kernels.append(
            KernelWorkload(
                name=f"elastic3d_update_{comp}",
                points=npts,
                flops_per_point=3 * deriv + 5,
                reads_per_point=3 * (2 * m + 1) + 3,
                writes_per_point=1 + 3,
                loop_dims=shape,
                address_streams=8,
                has_branches=False,
                inner_contiguous=True,
            )
        )
    kernels.append(
        KernelWorkload(
            name="elastic3d_update_sdiag",
            points=npts,
            flops_per_point=3 * deriv + 21,
            reads_per_point=3 * (2 * m + 1) + 5,
            writes_per_point=3 + 3,
            loop_dims=shape,
            address_streams=11,
            has_branches=False,
            inner_contiguous=True,
        )
    )
    for comp in ("sxy", "sxz", "syz"):
        kernels.append(
            KernelWorkload(
                name=f"elastic3d_update_{comp}",
                points=npts,
                flops_per_point=2 * deriv + 4,
                reads_per_point=2 * (2 * m + 1) + 2,
                writes_per_point=1 + 2,
                loop_dims=shape,
                address_streams=7,
                has_branches=False,
                inner_contiguous=True,
            )
        )
    return kernels


def vti_workloads(shape: tuple[int, ...], order: int = 8) -> list[KernelWorkload]:
    """Per-step kernel of the VTI pseudo-acoustic extension: one fused
    update of the coupled (p, q) pair — a horizontal Laplacian of p, a
    vertical second derivative of q and two leapfrog combinations."""
    from repro.stencil.operators import laplacian_flops_per_point

    shape = _check_shape(shape)
    ndim = len(shape)
    npts = _npoints(shape)
    lap_flops = laplacian_flops_per_point(ndim, order)
    return [
        KernelWorkload(
            name="vti_update_pq",
            points=npts,
            flops_per_point=lap_flops + 2 * 12,
            reads_per_point=(ndim - 1) * order + order + 2 + 4 + 3,
            writes_per_point=2,
            loop_dims=shape,
            address_streams=11,  # p, p_prev, q, q_prev, 3 coef, 4 pml
            has_branches=False,
            inner_contiguous=True,
            gather_axes=ndim,
        )
    ]


def workloads_for(
    physics: str, shape: tuple[int, ...], order: int = 8, **kwargs
) -> list[KernelWorkload]:
    """Dispatch on the paper's physics names (plus the VTI extension)."""
    physics = physics.lower()
    if physics == "isotropic":
        return isotropic_workloads(shape, order, **kwargs)
    if physics == "acoustic":
        return acoustic_workloads(shape, order, **kwargs)
    if physics == "elastic":
        return elastic_workloads(shape, order)
    if physics == "vti":
        return vti_workloads(shape, order)
    raise ConfigurationError(f"unknown physics '{physics}'")


# ----------------------------------------------------------------------
# injection and imaging kernels (paper Section 5.4)
# ----------------------------------------------------------------------
def source_injection_workload(ndim: int) -> KernelWorkload:
    """The single-point source injection — 0.04 % GPU utilization in the
    paper's Figure 14 profile, ported anyway 'to avoid updating the host
    with the wave-field at each time step'."""
    return KernelWorkload(
        name="source_injection",
        points=1,
        flops_per_point=4,
        reads_per_point=3,
        writes_per_point=1,
        loop_dims=(1,),
        address_streams=3,
        has_branches=False,
        inner_contiguous=True,
    )


def receiver_injection_workloads(
    nreceivers: int, inlined: bool
) -> list[KernelWorkload]:
    """Receiver injection in the backward phase.

    Inlined (CRAY): one kernel encapsulating the receiver loop. Not inlined
    (PGI, 'inlining ... could not be processed by the PGI compiler'): one
    kernel launch **per receiver**, paying #receivers launch overheads per
    time step — the RTM cost the paper calls out.
    """
    if nreceivers < 1:
        raise ConfigurationError("nreceivers must be >= 1")
    if inlined:
        return [
            KernelWorkload(
                name="receiver_injection_inlined",
                points=nreceivers,
                flops_per_point=4,
                reads_per_point=3,
                writes_per_point=1,
                loop_dims=(nreceivers,),
                address_streams=3,
                has_branches=False,
                # receiver positions scatter over the wavefield
                inner_contiguous=False,
            )
        ]
    return [
        KernelWorkload(
            name="receiver_injection_single",
            points=1,
            flops_per_point=4,
            reads_per_point=3,
            writes_per_point=1,
            loop_dims=(1,),
            address_streams=3,
            has_branches=False,
            inner_contiguous=True,
        )
        for _ in range(nreceivers)
    ]


def imaging_condition_workloads(shape: tuple[int, ...]) -> list[KernelWorkload]:
    """The two imaging-condition kernels (even/odd time steps) the paper
    ports in its Figure 15 variant — low utilization (~1.9 %) but they spare
    the per-snap host update of the source wavefield."""
    shape = _check_shape(shape)
    npts = _npoints(shape)
    half = npts // 2
    return [
        KernelWorkload(
            name=f"imaging_condition_{parity}",
            points=max(1, half),
            flops_per_point=2,  # multiply-accumulate
            reads_per_point=3,  # S, R, I
            writes_per_point=1,
            loop_dims=shape,
            address_streams=3,
            has_branches=False,
            inner_contiguous=True,
        )
        for parity in ("even", "odd")
    ]
