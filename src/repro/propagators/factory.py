"""Propagator factory keyed by the paper's physics names."""

from __future__ import annotations

from repro.model.earth_model import EarthModel
from repro.propagators.acoustic import AcousticPropagator
from repro.propagators.base import Propagator
from repro.propagators.elastic2d import ElasticPropagator2D
from repro.propagators.elastic3d import ElasticPropagator3D
from repro.propagators.isotropic import IsotropicPropagator
from repro.utils.errors import ConfigurationError

#: The paper's three formulations (Section 3.3).
PHYSICS_NAMES = ("isotropic", "acoustic", "elastic")
#: plus the anisotropic extension the paper defers to future work
EXTENDED_PHYSICS_NAMES = PHYSICS_NAMES + ("vti",)


def make_propagator(
    physics: str,
    model: EarthModel,
    dt: float | None = None,
    space_order: int = 8,
    boundary_width: int = 16,
    **kwargs,
) -> Propagator:
    """Build the propagator for ``physics`` in the model's dimensionality.

    ``kwargs`` pass through to the concrete class (``pml_variant`` for
    isotropic, ``cpml_alpha_max`` for the staggered systems, ...).
    """
    physics = physics.lower()
    if physics == "isotropic":
        return IsotropicPropagator(
            model, dt, space_order, boundary_width, **kwargs
        )
    if physics == "acoustic":
        return AcousticPropagator(model, dt, space_order, boundary_width, **kwargs)
    if physics == "elastic":
        cls = ElasticPropagator2D if model.grid.ndim == 2 else ElasticPropagator3D
        return cls(model, dt, space_order, boundary_width, **kwargs)
    if physics == "vti":
        from repro.propagators.vti import VTIPropagator

        return VTIPropagator(model, dt, space_order, boundary_width, **kwargs)
    raise ConfigurationError(
        f"unknown physics '{physics}'; expected one of {EXTENDED_PHYSICS_NAMES}"
    )
