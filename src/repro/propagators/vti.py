"""VTI (vertically transversely isotropic) pseudo-acoustic propagator —
the anisotropic formulation the paper defers to future work ("However, we
will consider the anisotropic case in the future", Section 3.3).

Implements the coupled second-order pseudo-acoustic system (Zhou, Zhang &
Bloor 2006) in Thomsen parameters epsilon/delta:

.. math::

    \\partial_t^2 p &= v_p^2 [ (1 + 2\\varepsilon) \\nabla_h^2 p
                                + \\partial_z^2 q ] \\\\
    \\partial_t^2 q &= v_p^2 [ (1 + 2\\delta) \\nabla_h^2 p
                                + \\partial_z^2 q ]

with :math:`\\nabla_h^2` the horizontal Laplacian and ``q`` the auxiliary
(vertical) wavefield. For :math:`\\varepsilon = \\delta = 0` the two
equations coincide and the system reduces exactly to the isotropic Eq. 1 —
a property the test suite asserts. Elliptical anisotropy
(:math:`\\varepsilon = \\delta`) stretches the wavefront horizontally by
:math:`\\sqrt{1 + 2\\varepsilon}` — also asserted.

Boundary treatment and time discretisation follow the isotropic propagator
(leapfrog + standard damping PML applied to both fields).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.boundary.pml import StandardPML
from repro.model.earth_model import EarthModel
from repro.propagators.base import KernelWorkload, Propagator
from repro.stencil.operators import second_derivative
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


class VTIPropagator(Propagator):
    """Pseudo-acoustic VTI propagator (2-D or 3-D).

    Requires a model with Thomsen fields (``model.epsilon``,
    ``model.delta``); missing fields default to zero (isotropic).
    The CFL bound uses the fastest phase velocity
    ``vp * sqrt(1 + 2 max(eps, delta, 0))``.
    """

    scheme = "second_order"
    physics = "vti"

    def __init__(
        self,
        model: EarthModel,
        dt: float | None = None,
        space_order: int = 8,
        boundary_width: int = 16,
        pml_reflection: float = 1e-4,
        **kwargs,
    ):
        eps = getattr(model, "epsilon", None)
        delta = getattr(model, "delta", None)
        self.epsilon = self._thomsen(model, eps, "epsilon")
        self.delta = self._thomsen(model, delta, "delta")
        if np.any(self.epsilon < self.delta - 1e-6):
            # epsilon < delta makes the pseudo-acoustic system weakly
            # unstable (negative anelliptic term); refuse upfront
            raise ConfigurationError(
                "VTI pseudo-acoustic system needs epsilon >= delta everywhere"
            )
        # the base-class CFL check is anisotropy-aware through
        # EarthModel.max_wave_speed() (vp stretched by sqrt(1+2 epsilon))
        self._vmax_aniso = float(
            (model.vp.astype(np.float64)
             * np.sqrt(1.0 + 2.0 * np.maximum(self.epsilon, 0.0))).max()
        )
        super().__init__(model, dt, space_order, boundary_width, **kwargs)
        self.pml = StandardPML(
            self.grid, boundary_width, self._vmax_aniso, self.dt,
            reflection=pml_reflection,
        )
        self.p = self._new_field("p")
        self.p_prev = self._new_field("p_prev")
        self.q = self._new_field("q")
        self.q_prev = self._new_field("q_prev")
        vp2dt2 = model.vp.astype(np.float64) ** 2 * self.dt**2
        self.vp2dt2 = vp2dt2.astype(DTYPE)
        self.coef_h_p = ((1.0 + 2.0 * self.epsilon.astype(np.float64)) * vp2dt2).astype(DTYPE)
        self.coef_h_q = ((1.0 + 2.0 * self.delta.astype(np.float64)) * vp2dt2).astype(DTYPE)
        self._lap_h = np.zeros(self.grid.shape, dtype=DTYPE)
        self._dzz = np.zeros(self.grid.shape, dtype=DTYPE)

    # ------------------------------------------------------------------
    def _thomsen(self, model: EarthModel, field, name: str) -> np.ndarray:
        if field is None:
            return np.zeros(model.grid.shape, dtype=DTYPE)
        a = np.ascontiguousarray(field, dtype=DTYPE)
        if a.shape != model.grid.shape:
            raise ConfigurationError(
                f"{name} has shape {a.shape}, grid is {model.grid.shape}"
            )
        if not np.all(np.isfinite(a)):
            raise ConfigurationError(f"{name} contains non-finite values")
        return a

    def snapshot_field(self) -> np.ndarray:
        return self.p

    # ------------------------------------------------------------------
    def _step_impl(self, sources: Sequence[tuple[tuple[int, ...], float]]) -> None:
        h = self.grid.spacing
        # horizontal Laplacian of p (axes 1..ndim-1) and vertical d2 of q
        lap_h = self._lap_h
        lap_h.fill(0.0)
        for ax in range(1, self.grid.ndim):
            second_derivative(self.p, ax, h[ax], self.space_order,
                              out=lap_h, accumulate=True)
        dzz = second_derivative(self.q, 0, h[0], self.space_order, out=self._dzz)
        pml = self.pml
        dt2sig2 = self.dt**2 * pml.sigma2
        for field, prev, coef_h in (
            (self.p, self.p_prev, self.coef_h_p),
            (self.q, self.q_prev, self.coef_h_q),
        ):
            rhs = coef_h * lap_h + self.vp2dt2 * dzz - dt2sig2 * field
            prev[...] = (
                pml.coeff_curr * field
                - pml.coeff_prev * prev
                + pml.coeff_rhs * rhs
            )
        for index, amp in sources:
            a = self.vp2dt2[index] * np.float32(amp)
            self.p_prev[index] += a
            self.q_prev[index] += a
        self.p, self.p_prev = self.p_prev, self.p
        self.q, self.q_prev = self.q_prev, self.q
        self.fields["p"], self.fields["p_prev"] = self.p, self.p_prev
        self.fields["q"], self.fields["q_prev"] = self.q, self.q_prev

    # ------------------------------------------------------------------
    def kernel_workloads(self) -> list[KernelWorkload]:
        from repro.propagators.workloads import vti_workloads

        return vti_workloads(self.grid.shape, self.space_order)
