"""Parse OpenACC directive strings into runtime operations.

Accepts both the Fortran sentinel the paper's code uses (``!$acc ...``,
e.g. the ``ACC ENTER DATA COPYIN`` / ``ACC EXIT DATA DELETE`` pairs of its
Section 5.1) and the C/C++ form (``#pragma acc ...``). The parser produces
:class:`Directive` objects that :func:`apply_directive` executes against a
:class:`~repro.acc.runtime.Runtime`, so the paper's directive sequences can
be written verbatim::

    apply_directive(rt, "!$acc enter data copyin(u, v)", data={"u": u, "v": v})
    apply_directive(rt, "!$acc update host(u)")
    apply_directive(rt, "!$acc exit data delete(u, v)")

Compute constructs parse their loop-scheduling clauses into a
:class:`~repro.acc.clauses.LoopSchedule`::

    d = parse_directive("!$acc parallel loop gang worker vector "
                        "vector_length(128) collapse(2) async(1)")
    d.schedule.explicit  # True
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.acc.clauses import LoopSchedule
from repro.utils.errors import ConfigurationError

_SENTINELS = ("!$acc", "#pragma acc", "c$acc", "*$acc")

#: clause(arg, arg) pattern
_CLAUSE_RE = re.compile(r"([a-z_]+)\s*(\(([^)]*)\))?", re.IGNORECASE)

_DATA_CLAUSES = ("copyin", "copyout", "copy", "create", "present", "delete")
_CONSTRUCTS = ("kernels", "parallel", "data", "enter", "exit", "update",
               "wait", "loop", "cache")


@dataclass
class Directive:
    """A parsed directive: construct + clause table."""

    construct: str
    #: data clauses: clause name -> variable names
    data: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: loop schedule (compute constructs only)
    schedule: LoopSchedule | None = None
    #: async queue id; True for bare ``async``
    async_: int | bool | None = None
    #: queue ids of a wait directive (empty = wait all)
    wait_on: tuple[int, ...] = ()
    #: a bare ``wait`` clause on a compute construct — OpenACC semantics
    #: join *all* queues, so this is distinct from no clause at all
    wait_all: bool = False
    #: update targets
    update_host: tuple[str, ...] = ()
    update_device: tuple[str, ...] = ()
    #: cache targets
    cache_vars: tuple[str, ...] = ()


def _strip_sentinel(text: str) -> str:
    t = text.strip()
    low = t.lower()
    for s in _SENTINELS:
        if low.startswith(s):
            return t[len(s):].strip()
    raise ConfigurationError(
        f"not an OpenACC directive (expected one of {_SENTINELS}): {text!r}"
    )


def _names(arg: str | None) -> tuple[str, ...]:
    if not arg:
        return ()
    return tuple(a.strip() for a in arg.split(",") if a.strip())


def parse_directive(text: str) -> Directive:
    """Parse one directive line."""
    body = _strip_sentinel(text)
    if not body:
        raise ConfigurationError("empty directive")
    tokens = list(_CLAUSE_RE.finditer(body))
    if not tokens:
        raise ConfigurationError(f"unparsable directive: {text!r}")
    head = tokens[0].group(1).lower()
    idx = 1
    if head == "enter" or head == "exit":
        if len(tokens) < 2 or tokens[1].group(1).lower() != "data":
            raise ConfigurationError(f"'{head}' must be followed by 'data'")
        construct = f"{head} data"
        idx = 2
    elif head in ("kernels", "parallel", "data", "update", "wait", "loop", "cache"):
        construct = head
        # 'kernels loop' / 'parallel loop' combined forms
        if head in ("kernels", "parallel") and len(tokens) > 1 and tokens[1].group(1).lower() == "loop":
            idx = 2
    else:
        raise ConfigurationError(f"unknown construct '{head}' in {text!r}")

    d = Directive(construct=construct)
    sched_kw: dict = {}
    if construct == "cache":
        # the whole argument list is the variable set: cache(a, b)
        m = tokens[0]
        d.cache_vars = _names(m.group(3))
        return d
    if construct == "wait" and tokens[0].group(3):
        # 'wait(1, 2)': queue ids ride on the construct token itself
        d.wait_on = tuple(int(a) for a in _names(tokens[0].group(3)))
    for m in tokens[idx:]:
        clause = m.group(1).lower()
        arg = m.group(3)
        if clause in _DATA_CLAUSES:
            d.data.setdefault(clause, ())
            d.data[clause] = d.data[clause] + _names(arg)
        elif clause == "async":
            d.async_ = int(arg) if arg else True
        elif clause == "wait":
            if arg:
                d.wait_on = tuple(int(a) for a in _names(arg))
            else:
                d.wait_all = True
        elif clause in ("host", "self") and construct == "update":
            # 'self' is the OpenACC 2.x spelling of 'host'
            d.update_host += _names(arg)
        elif clause == "device" and construct == "update":
            d.update_device += _names(arg)
        elif clause in ("gang", "worker", "vector", "independent", "seq"):
            if clause == "vector" and arg:
                sched_kw["vector"] = True
                sched_kw["vector_length"] = int(arg)
            else:
                sched_kw[clause] = True
        elif clause == "vector_length":
            sched_kw["vector_length"] = int(arg)
        elif clause == "collapse":
            sched_kw["collapse"] = int(arg)
        elif clause == "tile":
            sched_kw["tile"] = tuple(int(a) for a in _names(arg))
        elif clause == "num_gangs" or clause == "num_workers":
            pass  # accepted; the simulated mapping derives these
        elif clause == "loop":
            pass  # already folded into the combined construct
        else:
            raise ConfigurationError(
                f"unsupported clause '{clause}' in {text!r}"
            )
    if construct in ("kernels", "parallel", "loop"):
        # a compute construct always carries a schedule: explicit clauses
        # when given, otherwise the compiler-decides marker — downstream
        # code can rely on `d.schedule` being populated
        d.schedule = LoopSchedule(**sched_kw) if sched_kw else LoopSchedule.auto()
    if construct == "wait" and not d.wait_on:
        # bare 'wait' or 'wait(1,2)' parsed above; also allow wait async(n)
        pass
    if construct == "update" and not (d.update_host or d.update_device):
        raise ConfigurationError("update needs host(...) or device(...)")
    return d


def apply_directive(rt, text: str, data: dict | None = None, workload=None, fn=None):
    """Execute a parsed directive against a runtime.

    ``data`` maps variable names to arrays/byte-counts for clauses that
    attach new data; compute constructs need the ``workload`` metadata (and
    optionally the real ``fn``).
    """
    d = parse_directive(text)
    data = data or {}

    def sized(names):
        out = {}
        for n in names:
            if n not in data:
                raise ConfigurationError(
                    f"directive references '{n}' but no size/array was given"
                )
            out[n] = data[n]
        return out

    if d.construct == "enter data":
        rt.enter_data(
            copyin=sized(d.data.get("copyin", ())),
            create=sized(d.data.get("create", ())),
        )
        return d
    if d.construct == "exit data":
        rt.exit_data(
            delete=d.data.get("delete", ()),
            copyout=d.data.get("copyout", ()),
        )
        return d
    if d.construct == "update":
        for n in d.update_host:
            rt.update_host(n)
        for n in d.update_device:
            rt.update_device(n)
        return d
    if d.construct == "wait":
        if d.wait_on:
            for q in d.wait_on:
                rt.wait(q)
        else:
            rt.wait()
        return d
    if d.construct == "cache":
        rt.cache(*d.cache_vars)
        return d
    if d.construct in ("kernels", "parallel"):
        if workload is None:
            raise ConfigurationError(
                f"compute construct '{d.construct}' needs a workload"
            )
        launcher = rt.kernels if d.construct == "kernels" else rt.parallel
        return launcher(
            workload,
            present=d.data.get("present", ()),
            schedule=d.schedule,
            async_=d.async_,
            fn=fn,
            wait_on=d.wait_on,
            wait_all=d.wait_all,
        )
    raise ConfigurationError(f"cannot apply construct '{d.construct}'")
