"""Compiler feedback messages — the ``-Minfo=accel`` experience.

The paper's best PGI strategy includes ``-Minfo=accel,loop,opt``; the
messages that flag emits (is the loop parallelizable? what got collapsed?
how many registers? was the body gridified?) are how the authors debugged
their mappings. :func:`minfo` renders the same kind of report from a
persona's lowering decision, so users of the simulated toolchain get the
same feedback loop.
"""

from __future__ import annotations

from repro.acc.clauses import CompileFlags, LoopSchedule
from repro.acc.compiler import CompilerPersona
from repro.gpusim.kernelmodel import estimate_register_demand
from repro.gpusim.specs import GPUSpec, K40
from repro.propagators.base import KernelWorkload


def minfo(
    persona: CompilerPersona,
    construct: str,
    workload: KernelWorkload,
    schedule: LoopSchedule | None = None,
    flags: CompileFlags | None = None,
    spec: GPUSpec = K40,
) -> list[str]:
    """Compiler-style diagnostics for one construct lowering.

    Returns the message lines (also suitable for printing verbatim); the
    wording follows PGI's accelerator-information style for PGI personas
    and CCE's loopmark style for CRAY.
    """
    schedule = schedule if schedule is not None else LoopSchedule.auto()
    flags = flags if flags is not None else CompileFlags()
    cfg = persona.lower(construct, workload, schedule, flags)
    demand = estimate_register_demand(workload)
    allocated = min(demand, flags.maxregcount or spec.max_regs_per_thread,
                    spec.max_regs_per_thread)
    msgs: list[str] = []
    name = workload.name
    if persona.vendor == "pgi":
        msgs.append(f"{name}:")
        if workload.has_branches and not persona.gridifies_branchy_bodies:
            msgs.append(
                "     Loop carried control flow prevents gridification; "
                "generating sequential inner loop"
            )
        elif schedule.independent or schedule.explicit:
            msgs.append("     Loop is parallelizable")
        else:
            msgs.append(
                "     Complex loop carried dependence: parallelization "
                "requires the independent clause"
            )
        msgs.append(f"     Accelerator kernel generated ({spec.name})")
        if cfg.gridified and cfg.collapsed_levels >= 2:
            msgs.append(
                f"     {cfg.collapsed_levels} innermost loops collapsed into "
                f"a {min(cfg.collapsed_levels, 2)}-D thread grid"
            )
        msgs.append(
            f"     gang, vector({cfg.threads_per_block}) "
            f"/* blockIdx.x threadIdx.x */"
        )
        msgs.append(f"     {allocated} registers used (demand {demand})")
        if allocated < demand and demand > spec.max_regs_per_thread:
            msgs.append(
                f"     {demand - spec.max_regs_per_thread} registers spilled "
                "to local memory"
            )
        if not (cfg.coalesced and workload.inner_contiguous):
            msgs.append(
                "     Non-stride-1 accesses detected on the vector loop; "
                "memory coalescing degraded"
            )
    else:  # CRAY loopmark style
        tag = "G" if cfg.gridified else "g"
        v = "V" if (cfg.coalesced and workload.inner_contiguous) else "v"
        msgs.append(f"{tag}{v}---- < {name} >")
        if schedule.explicit:
            msgs.append(
                f"       A loop starting at line 1 was partitioned: gang, "
                f"worker, vector({cfg.threads_per_block})"
            )
        else:
            msgs.append(
                "       Autothreading selected a vector loop heuristically; "
                "consider an explicit gang/worker/vector schedule"
            )
        if persona.auto_async_kernels and cfg.async_queue is None:
            msgs.append(
                "       auto_async_kernels: kernel will be placed on an "
                "asynchronous queue"
            )
        msgs.append(f"       registers: {allocated} (demand {demand})")
    return msgs


def explain_lowering(
    persona: CompilerPersona,
    workload: KernelWorkload,
    flags: CompileFlags | None = None,
) -> str:
    """One-call report for the persona's *preferred* construct/schedule —
    what `Runtime.compute` would do."""
    lines = minfo(
        persona,
        persona.preferred_construct(),
        workload,
        persona.preferred_schedule(),
        flags,
    )
    return "\n".join(lines)
