"""OpenACC-style directive layer.

A Python rendering of the OpenACC 2.0 constructs the paper uses:

* **data management** — structured ``data`` regions, dynamic
  ``enter data``/``exit data`` lifetimes (the OpenACC 2.0 feature the paper
  adopts for RTM's forward/backward phase swap), ``update host/device``
  (full or partial/ghost-node), ``present``/``create``/``copyin``/
  ``copyout`` clauses with reference-counted present-table semantics;
* **compute constructs** — ``kernels`` and ``parallel`` with
  ``loop gang/worker/vector``, ``collapse``, ``independent`` scheduling
  clauses and ``async``/``wait`` queues;
* **compiler personas** — PGI 13.7/14.3/14.6 and CRAY 8.2.6 lower the same
  directives differently (kernels- vs parallel-preference, gridification
  heuristics, inlining support, auto-async), reproducing the paper's
  compiler findings.

The runtime executes the *real* NumPy kernel a construct wraps, then charges
the modelled device time — numerics are bit-identical to the host path while
timing follows :mod:`repro.gpusim`.
"""

from repro.acc.clauses import LoopSchedule, CompileFlags, IneffectiveDirectiveWarning
from repro.acc.minfo import minfo, explain_lowering
from repro.acc.compiler import (
    CompilerPersona,
    PGI_13_7,
    PGI_14_3,
    PGI_14_6,
    CRAY_8_2_6,
    COMPILERS,
)
from repro.acc.parser import Directive, parse_directive, apply_directive
from repro.acc.runtime import Runtime, PresentEntry

__all__ = [
    "LoopSchedule",
    "CompileFlags",
    "IneffectiveDirectiveWarning",
    "minfo",
    "explain_lowering",
    "CompilerPersona",
    "PGI_13_7",
    "PGI_14_3",
    "PGI_14_6",
    "CRAY_8_2_6",
    "COMPILERS",
    "Directive",
    "parse_directive",
    "apply_directive",
    "Runtime",
    "PresentEntry",
]
