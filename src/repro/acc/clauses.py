"""Loop-scheduling and compilation-flag clauses."""

from __future__ import annotations

import warnings
from dataclasses import dataclass

from repro.utils.errors import ConfigurationError


class IneffectiveDirectiveWarning(UserWarning):
    """A directive was accepted but has no performance effect — the fate of
    ``tile`` and ``cache`` under the 2014 compilers ("The tile and cache
    features are not working properly in both CRAY and PGI", paper S6.3)."""


@dataclass(frozen=True)
class LoopSchedule:
    """The ``loop`` directive's scheduling clauses.

    ``gang``/``worker``/``vector`` mirror OpenACC's three parallelism
    levels (SM blocks / warps / threads-in-warp on NVIDIA mappings);
    ``vector_length`` sets the vector width when ``vector`` is given;
    ``collapse`` fuses that many nest levels; ``independent`` asserts no
    loop-carried dependencies (what lets PGI gridify ``kernels`` nests);
    ``seq`` forces sequential execution of the annotated level.
    """

    gang: bool = False
    worker: bool = False
    vector: bool = False
    vector_length: int = 128
    collapse: int = 1
    independent: bool = False
    seq: bool = False
    #: requested tile sizes (the OpenACC ``tile`` clause). Accepted and
    #: faithfully ignored: see :class:`IneffectiveDirectiveWarning`.
    tile: tuple[int, ...] | None = None

    def __post_init__(self):
        if self.vector_length < 1 or self.vector_length > 1024:
            raise ConfigurationError("vector_length must be in 1..1024")
        if self.collapse < 1:
            raise ConfigurationError("collapse must be >= 1")
        if self.seq and (self.gang or self.worker or self.vector):
            raise ConfigurationError("seq cannot combine with gang/worker/vector")
        if self.tile is not None:
            if not self.tile or any(t < 1 for t in self.tile):
                raise ConfigurationError("tile sizes must be positive")
            warnings.warn(
                "the tile clause is accepted but not exploited (the paper: "
                "'The tile and cache features are not working properly in "
                "both CRAY and PGI')",
                IneffectiveDirectiveWarning,
                stacklevel=3,
            )

    @property
    def explicit(self) -> bool:
        """Whether the programmer spelled out a gang/worker/vector mapping
        (the style the CRAY compiler rewards)."""
        return self.gang and self.vector

    @staticmethod
    def gwv(vector_length: int = 128, collapse: int = 1) -> "LoopSchedule":
        """The fully explicit ``gang worker vector`` schedule."""
        return LoopSchedule(
            gang=True,
            worker=True,
            vector=True,
            vector_length=vector_length,
            collapse=collapse,
            independent=True,
        )

    @staticmethod
    def auto() -> "LoopSchedule":
        """No scheduling clauses — leave everything to the compiler."""
        return LoopSchedule()


@dataclass(frozen=True)
class CompileFlags:
    """Command-line options of the paper's best PGI strategy
    ``-ta=nvidia:pin,ptxinfo,maxregcount:64 -Minfo=...``."""

    #: ``maxregcount:N`` — clamp registers per thread; None leaves it to
    #: the backend
    maxregcount: int | None = 64
    #: ``pin`` — allocate host arrays in pinned memory
    pin: bool = True
    #: honour/force automatic async queueing of kernels (the CRAY
    #: ``auto_async_kernels`` default)
    auto_async: bool | None = None

    def __post_init__(self):
        if self.maxregcount is not None and self.maxregcount < 16:
            raise ConfigurationError("maxregcount below 16 is not supported")
