"""Compiler personas: how PGI and CRAY lower the same directives.

The paper's Section 5.2 catalogues the asymmetry this module encodes:

* **PGI** — "it was more efficient to use the *kernels* directive to allow
  the compiler to handle the existing worksharing ... the loop *independent*
  scheduling in PGI triggers gridification in kernels regions, and 2D
  gridification requires perfectly nested loops". A ``parallel`` region
  without a full explicit schedule maps gangs to the outer loop only.
  PGI 14.3 (CUDA 5.0 backend) cannot gridify a branchy body — the
  restructured/PML-everywhere variants win big (Figure 7); PGI 14.6
  (CUDA 5.5) predicates branches, so the rewrite no longer pays (Figure 6).
  PGI could not inline the receiver-injection routine, and its async
  enqueue path is expensive enough that async *hurts* ("PGI compilers gave
  a worst performance ... when async was used").
* **CRAY** — "the more information you pass to the compiler, the better
  performance you get": ``parallel`` with explicit gang/worker/vector is
  best; bare ``kernels`` lets the compiler pick which loop to vectorize and
  it often picks a non-contiguous one (Figures 8-9). CRAY inlines routines
  and enables ``auto_async_kernels`` by default (the 30 % Figure 11 win).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.acc.clauses import CompileFlags, LoopSchedule
from repro.gpusim.kernelmodel import LaunchConfig
from repro.gpusim.specs import CUDA_5_0, CUDA_5_5, CudaToolkit
from repro.propagators.base import KernelWorkload
from repro.utils.errors import ConfigurationError

_CONSTRUCTS = ("kernels", "parallel")


@dataclass(frozen=True)
class CompilerPersona:
    """One compiler version's lowering behaviour."""

    name: str
    vendor: str  # 'pgi' | 'cray'
    version: tuple[int, ...]
    default_toolkit: CudaToolkit
    #: whether `acc routine` bodies can be inlined into calling kernels
    #: (CRAY yes, PGI no — the paper's receiver-injection finding)
    supports_inlining: bool
    #: multiplier on the async enqueue cost (PGI's async path is expensive)
    async_enqueue_factor: float
    #: queue kernels asynchronously even without an async clause
    auto_async_kernels: bool
    #: can the backend gridify a loop nest whose body branches?
    gridifies_branchy_bodies: bool
    #: configurations this compiler version cannot build (the paper's
    #: Table 4 marks elastic-3D RTM 'x' under the CRAY compiler)
    known_failures: tuple[str, ...] = ()

    # ------------------------------------------------------------------
    def lower(
        self,
        construct: str,
        workload: KernelWorkload,
        schedule: LoopSchedule | None = None,
        flags: CompileFlags | None = None,
        async_queue: int | None = None,
    ) -> LaunchConfig:
        """Map a compute construct + loop schedule onto a launch config."""
        if construct not in _CONSTRUCTS:
            raise ConfigurationError(
                f"construct must be one of {_CONSTRUCTS}, got '{construct}'"
            )
        schedule = schedule if schedule is not None else LoopSchedule.auto()
        flags = flags if flags is not None else CompileFlags()
        if self.vendor == "pgi":
            cfg = self._lower_pgi(construct, workload, schedule)
        else:
            cfg = self._lower_cray(construct, workload, schedule)
        return LaunchConfig(
            threads_per_block=cfg.threads_per_block,
            maxregcount=flags.maxregcount,
            coalesced=cfg.coalesced,
            gridified=cfg.gridified,
            collapsed_levels=cfg.collapsed_levels,
            async_queue=async_queue,
        )

    def _lower_pgi(
        self, construct: str, workload: KernelWorkload, schedule: LoopSchedule
    ) -> LaunchConfig:
        nlevels = len(workload.loop_dims)
        if construct == "kernels":
            # the generator collapses the two innermost loops into a 2-D
            # thread grid when the nest is perfect and iterations are
            # declared (or proven) independent
            gridified = schedule.independent or schedule.explicit
            if workload.has_branches and not self.gridifies_branchy_bodies:
                gridified = False
            return LaunchConfig(
                threads_per_block=schedule.vector_length,
                coalesced=workload.inner_contiguous,
                gridified=gridified,
                collapsed_levels=min(2, nlevels),
            )
        # parallel: gang-redundant unless fully scheduled; without an
        # explicit vector clause PGI maps gangs over the outer loop only
        if schedule.explicit:
            gridified = not (
                workload.has_branches and not self.gridifies_branchy_bodies
            )
            return LaunchConfig(
                threads_per_block=schedule.vector_length,
                coalesced=workload.inner_contiguous,
                gridified=gridified,
                collapsed_levels=min(schedule.collapse, nlevels),
            )
        return LaunchConfig(
            threads_per_block=128,
            coalesced=workload.inner_contiguous,
            gridified=False,
            collapsed_levels=1,
        )

    def _lower_cray(
        self, construct: str, workload: KernelWorkload, schedule: LoopSchedule
    ) -> LaunchConfig:
        nlevels = len(workload.loop_dims)
        if construct == "parallel" and schedule.explicit:
            # "vectorizing the innermost loop explicitly improved mapping"
            return LaunchConfig(
                threads_per_block=schedule.vector_length,
                coalesced=workload.inner_contiguous,
                gridified=True,
                collapsed_levels=min(max(schedule.collapse, 2), nlevels),
            )
        if construct == "parallel":
            # gangs on the outer i-loop; the heuristic "analyzes the j and k
            # loops to determine which loop looks most profitable to be
            # vectorized" — and which one wins "is completely dependent on
            # the code inside the loop"; for these stencil bodies it tends
            # to pick a non-unit-stride loop
            return LaunchConfig(
                threads_per_block=128,
                coalesced=False,
                gridified=True,
                collapsed_levels=1,
            )
        # kernels on CRAY: each nest becomes a kernel with auto scheduling;
        # same vectorization heuristic, so coalescing is again at risk
        return LaunchConfig(
            threads_per_block=128,
            coalesced=False,
            gridified=True,
            collapsed_levels=min(2, nlevels),
        )

    def preferred_construct(self) -> str:
        """The construct this compiler rewards (paper Section 5.2)."""
        return "kernels" if self.vendor == "pgi" else "parallel"

    def preferred_schedule(self) -> LoopSchedule:
        """The schedule the paper found best for this compiler."""
        if self.vendor == "pgi":
            # kernels + independent, let PGI do the worksharing
            return LoopSchedule(independent=True, vector_length=128)
        return LoopSchedule.gwv(vector_length=128)


#: PGI 13.7 — first version the authors used; CUDA 5.0 backend, no
#: branchy-body gridification, expensive async.
PGI_13_7 = CompilerPersona(
    name="PGI 13.7",
    vendor="pgi",
    version=(13, 7),
    default_toolkit=CUDA_5_0,
    supports_inlining=False,
    async_enqueue_factor=8.0,
    auto_async_kernels=False,
    gridifies_branchy_bodies=False,
)

#: PGI 14.3 — defaults to CUDA 5.0; the version whose Figure 7 shows big
#: wins from removing the PML if-statements.
PGI_14_3 = CompilerPersona(
    name="PGI 14.3",
    vendor="pgi",
    version=(14, 3),
    default_toolkit=CUDA_5_0,
    supports_inlining=False,
    async_enqueue_factor=8.0,
    auto_async_kernels=False,
    gridifies_branchy_bodies=False,
)

#: PGI 14.6 — defaults to CUDA 5.5, whose predicating backend makes the
#: Figure 6 restructuring wins vanish.
PGI_14_6 = CompilerPersona(
    name="PGI 14.6",
    vendor="pgi",
    version=(14, 6),
    default_toolkit=CUDA_5_5,
    supports_inlining=False,
    async_enqueue_factor=8.0,
    auto_async_kernels=False,
    gridifies_branchy_bodies=True,
)

#: CRAY CCE 8.2.6 on the XC30 — inlines routines, auto_async_kernels on.
CRAY_8_2_6 = CompilerPersona(
    name="CRAY 8.2.6",
    vendor="cray",
    version=(8, 2, 6),
    default_toolkit=CUDA_5_5,
    supports_inlining=True,
    async_enqueue_factor=1.0,
    auto_async_kernels=True,
    gridifies_branchy_bodies=True,
    known_failures=("elastic-3d-rtm",),
)

COMPILERS = {
    "pgi-13.7": PGI_13_7,
    "pgi-14.3": PGI_14_3,
    "pgi-14.6": PGI_14_6,
    "cray-8.2.6": CRAY_8_2_6,
}
