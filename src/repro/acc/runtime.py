"""The OpenACC runtime: present table + data directives + compute constructs.

Host NumPy arrays remain the single source of truth for *values*; a present-
table entry is the bookkeeping for the array's virtual device mirror. Every
directive charges the modelled device time (allocation, PCIe, kernel) on the
bound :class:`~repro.gpusim.device.Device`, and a compute construct runs the
real NumPy callable it wraps, so results are bit-identical with the pure
host path.

Present-table semantics follow OpenACC 2.0:

* structured ``data`` regions and dynamic ``enter data`` both *attach* data,
  incrementing a reference count; transfers happen only on the 0 -> 1
  transition (``copyin``) and 1 -> 0 transition (``copyout``);
* ``present`` clauses on kernels verify liveness and raise
  :class:`~repro.utils.errors.PresentTableError` otherwise;
* ``exit data delete`` / region exit decrement and free at zero;
* ``update device``/``update host`` move bytes for *present* data without
  lifetime changes, with optional partial (ghost-node) extents and
  non-contiguous chunk counts.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from repro.acc.clauses import CompileFlags, LoopSchedule
from repro.acc.compiler import CompilerPersona, PGI_14_6
from repro.gpusim.device import Device
from repro.gpusim.kernelmodel import KernelEstimate
from repro.propagators.base import KernelWorkload
from repro.trace.tracer import NULL_TRACER, Tracer
from repro.utils.errors import PresentTableError


@dataclass
class PresentEntry:
    """One present-table row (a host array's device mirror)."""

    name: str
    nbytes: int
    refcount: int = 1
    #: whether the final detach should copy back to the host
    copyout_on_exit: bool = False


class Runtime:
    """OpenACC runtime bound to one device and one compiler persona.

    Parameters
    ----------
    device:
        The simulated accelerator.
    compiler:
        Persona that lowers compute constructs (defaults to PGI 14.6, the
        paper's newest). Sets the device's CUDA toolkit unless the device
        was explicitly configured.
    flags:
        Compile-line options (``maxregcount``, ``pin``, auto-async).
    tracer:
        Optional :class:`~repro.trace.tracer.Tracer`. When given, the
        runtime emits spans for data regions, updates and compute
        constructs, attaches the tracer to the device (kernel/copy events
        re-emitted on per-queue tracks) and — unless the tracer was built
        with an explicit clock — rebinds its clock to the device's
        simulated clock so all spans share the modelled timeline.
    """

    def __init__(
        self,
        device: Device,
        compiler: CompilerPersona = PGI_14_6,
        flags: CompileFlags | None = None,
        tracer: Tracer | None = None,
    ):
        self.device = device
        self.compiler = compiler
        self.flags = flags if flags is not None else CompileFlags()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if tracer is not None:
            tracer.bind_default_clock(lambda: device.clock.now)
            device.attach_tracer(tracer)
        device.toolkit = compiler.default_toolkit
        device.pinned_host = self.flags.pin
        self._table: dict[str, PresentEntry] = {}
        auto = self.flags.auto_async
        self._auto_async = compiler.auto_async_kernels if auto is None else auto
        self._next_queue = 1
        self._recorders: list = []

    # ------------------------------------------------------------------
    # recording hook (repro.analyze)
    # ------------------------------------------------------------------
    def attach_recorder(self, recorder) -> None:
        """Attach a :class:`~repro.analyze.recorder.ProgramRecorder`: every
        directive this runtime executes is re-emitted as an IR event, so a
        live run produces a lintable DirectiveProgram."""
        recorder.bind_runtime(self)
        self._recorders.append(recorder)

    def _record(self, kind: str, sizes=None, **fields) -> None:
        for rec in self._recorders:
            rec.record(kind, sizes=sizes, **fields)

    # ------------------------------------------------------------------
    # injection hook (repro.resilience)
    # ------------------------------------------------------------------
    def attach_injector(self, injector, rank: int | None = None) -> None:
        """Install a :class:`~repro.resilience.injector.FaultInjector` on
        this runtime's device. Every directive that allocates, transfers or
        launches consults it before charging simulated time, so a retried
        directive re-enters cleanly. ``rank`` tags the device's operations
        for rank-scoped fault specs."""
        injector.attach_device(self.device, rank=rank)

    def note_host_write(
        self,
        *names: str,
        offset: int = 0,
        nbytes: int | None = None,
    ) -> None:
        """Mark the *host* copies of ``names`` as changed outside directives
        (snapshot restore, host-side physics, a ghost-slab landing from an
        MPI receive). A no-op for execution; the analyzer uses it to tell
        legitimate full refreshes from redundant re-transfers, and the
        sanitizer to track which byte range went stale on the device.
        ``offset``/``nbytes`` restrict the marker to a byte range (default:
        the whole array)."""
        if self._recorders and names:
            self._record(
                "host_write", writes=tuple(names),
                offset=int(offset), nbytes=nbytes,
            )

    def note_host_read(
        self,
        *names: str,
        offset: int = 0,
        nbytes: int | None = None,
    ) -> None:
        """Mark the *host* copies of ``names`` as consumed outside
        directives (an MPI send packing a halo face, host-side I/O). A
        no-op for execution; the sanitizer checks the range against its
        device-dirty shadow intervals."""
        if self._recorders and names:
            self._record(
                "host_read", reads=tuple(names),
                offset=int(offset), nbytes=nbytes,
            )

    # ------------------------------------------------------------------
    # present-table helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _nbytes(data: np.ndarray | int) -> int:
        return int(data.nbytes if isinstance(data, np.ndarray) else data)

    def is_present(self, name: str) -> bool:
        return name in self._table

    def present_entry(self, name: str) -> PresentEntry:
        entry = self._table.get(name)
        if entry is None:
            raise PresentTableError(self._absent_message(name))
        return entry

    def _absent_message(self, name: str) -> str:
        """Diagnostic for a present-table miss: what *is* present, plus the
        nearest present name when the miss looks like a typo."""
        import difflib

        msg = f"'{name}' is not present on the device (missing data clause?)"
        if not self._table:
            return msg + "; present table is empty"
        present = sorted(self._table)
        msg += "; currently present: " + ", ".join(present)
        close = difflib.get_close_matches(name, present, n=1, cutoff=0.6)
        if close:
            msg += f" — did you mean '{close[0]}'?"
        return msg

    def present_bytes(self) -> int:
        """Bytes currently attached through the present table."""
        return sum(e.nbytes for e in self._table.values())

    def present_names(self) -> tuple[str, ...]:
        """Names currently attached, in attach order — what a residency
        teardown (:meth:`~repro.core.pipeline.OffloadPipeline.drop_residency`)
        must ``exit data delete``."""
        return tuple(self._table)

    def _attach(
        self, name: str, data: np.ndarray | int, transfer: bool, copyout: bool
    ) -> None:
        entry = self._table.get(name)
        if entry is not None:
            entry.refcount += 1
            entry.copyout_on_exit = entry.copyout_on_exit or copyout
            return
        nbytes = self._nbytes(data)
        self.device.allocate(name, nbytes)
        if transfer:
            try:
                self.device.h2d(nbytes, name=f"copyin:{name}")
            except Exception:
                # failed copyin must not leak the allocation: the name never
                # became present, so nothing else will ever release it
                self.device.release(name)
                raise
        self._table[name] = PresentEntry(name, nbytes, 1, copyout)

    def _detach(self, name: str, force_copyout: bool | None = None) -> None:
        entry = self.present_entry(name)
        entry.refcount -= 1
        if entry.refcount > 0:
            return
        copyout = entry.copyout_on_exit if force_copyout is None else force_copyout
        if copyout:
            self.device.d2h(entry.nbytes, name=f"copyout:{name}")
        self.device.release(name)
        del self._table[name]

    # ------------------------------------------------------------------
    # data directives
    # ------------------------------------------------------------------
    def enter_data(
        self,
        copyin: Mapping[str, np.ndarray | int] | None = None,
        create: Mapping[str, np.ndarray | int] | None = None,
    ) -> None:
        """``acc enter data copyin(...) create(...)`` — dynamic attach."""
        with self.tracer.span(
            "acc.enter_data", track="acc", cat="acc",
            copyin=sorted(copyin or ()), create=sorted(create or ()),
        ):
            for name, data in (copyin or {}).items():
                self._attach(name, data, transfer=True, copyout=False)
            for name, data in (create or {}).items():
                self._attach(name, data, transfer=False, copyout=False)
            if self._recorders:
                sizes = {
                    name: self._nbytes(data)
                    for src in (copyin, create) if src
                    for name, data in src.items()
                }
                self._record(
                    "enter",
                    sizes=sizes,
                    copyin=tuple(copyin or ()),
                    create=tuple(create or ()),
                )

    def exit_data(
        self,
        delete: Iterable[str] = (),
        copyout: Iterable[str] = (),
    ) -> None:
        """``acc exit data delete(...) copyout(...)`` — dynamic detach."""
        delete = tuple(delete)
        copyout = tuple(copyout)
        with self.tracer.span(
            "acc.exit_data", track="acc", cat="acc",
            delete=sorted(delete), copyout=sorted(copyout),
        ):
            self._record("exit", delete=delete, copyout=copyout)
            for name in copyout:
                self._detach(name, force_copyout=True)
            for name in delete:
                self._detach(name, force_copyout=False)

    @contextmanager
    def data(
        self,
        copyin: Mapping[str, np.ndarray | int] | None = None,
        copyout: Mapping[str, np.ndarray | int] | None = None,
        copy: Mapping[str, np.ndarray | int] | None = None,
        create: Mapping[str, np.ndarray | int] | None = None,
        present: Iterable[str] = (),
    ) -> Iterator["Runtime"]:
        """Structured ``acc data`` region."""
        for name in present:
            self.present_entry(name)
        attached: list[str] = []
        with self.tracer.span(
            "acc.data", track="acc", cat="acc",
            copyin=sorted(copyin or ()), copyout=sorted(copyout or ()),
            copy=sorted(copy or ()), create=sorted(create or ()),
        ):
            try:
                for name, d in (copyin or {}).items():
                    self._attach(name, d, transfer=True, copyout=False)
                    attached.append(name)
                for name, d in (copy or {}).items():
                    self._attach(name, d, transfer=True, copyout=True)
                    attached.append(name)
                for name, d in (copyout or {}).items():
                    self._attach(name, d, transfer=False, copyout=True)
                    attached.append(name)
                for name, d in (create or {}).items():
                    self._attach(name, d, transfer=False, copyout=False)
                    attached.append(name)
                if self._recorders:
                    sizes = {
                        name: self._nbytes(d)
                        for src in (copyin, copy, copyout, create) if src
                        for name, d in src.items()
                    }
                    self._record(
                        "enter",
                        sizes=sizes,
                        structured=True,
                        copyin=tuple(copyin or ()) + tuple(copy or ()),
                        create=tuple(copyout or ()) + tuple(create or ()),
                    )
                yield self
            finally:
                self._record(
                    "exit",
                    structured=True,
                    copyout=tuple(copy or ()) + tuple(copyout or ()),
                    delete=tuple(copyin or ()) + tuple(create or ()),
                )
                for name in reversed(attached):
                    self._detach(name)

    def _update_extent(self, name: str, nbytes, offset: int, what: str) -> int:
        """Validate a (possibly partial) update against the present entry;
        returns the byte count actually moved."""
        entry = self.present_entry(name)
        n = entry.nbytes if nbytes is None else int(nbytes)
        offset = int(offset)
        if offset < 0:
            raise PresentTableError(
                f"{what} of '{name}' with negative offset {offset}"
            )
        if offset + n > entry.nbytes:
            raise PresentTableError(
                f"{what} of bytes [{offset}, {offset + n}) exceeds "
                f"'{name}' extent {entry.nbytes}"
            )
        return n

    def update_device(
        self,
        name: str,
        nbytes: int | None = None,
        chunks: int = 1,
        queue: int | None = None,
        offset: int = 0,
    ) -> float:
        """``acc update device(...)`` — host-to-device refresh of present
        data. ``nbytes`` restricts to a partial (e.g. ghost-node) extent
        starting ``offset`` bytes in; ``chunks`` models non-contiguous
        strided sections."""
        n = self._update_extent(name, nbytes, offset, "update device")
        with self.tracer.span(
            "acc.update_device", track="acc", cat="acc",
            var=name, bytes=n, chunks=chunks, queue=queue,
        ):
            self._record(
                "update", direction="device", var=name,
                nbytes=None if nbytes is None else n, chunks=chunks,
                queue=queue, offset=int(offset),
            )
            return self.device.h2d(
                n, name=f"update_device:{name}", chunks=chunks, queue=queue
            )

    def update_host(
        self,
        name: str,
        nbytes: int | None = None,
        chunks: int = 1,
        queue: int | None = None,
        offset: int = 0,
    ) -> float:
        """``acc update host(...)`` — device-to-host refresh."""
        n = self._update_extent(name, nbytes, offset, "update host")
        with self.tracer.span(
            "acc.update_host", track="acc", cat="acc",
            var=name, bytes=n, chunks=chunks, queue=queue,
        ):
            self._record(
                "update", direction="host", var=name,
                nbytes=None if nbytes is None else n, chunks=chunks,
                queue=queue, offset=int(offset),
            )
            return self.device.d2h(
                n, name=f"update_host:{name}", chunks=chunks, queue=queue
            )

    # ------------------------------------------------------------------
    # compute constructs
    # ------------------------------------------------------------------
    def _queue_for(self, async_: int | bool | None) -> int | None:
        if async_ is None:
            if self._auto_async:
                q = self._next_queue
                self._next_queue = (self._next_queue % (self.device.spec.max_concurrent_kernels - 1)) + 1
                return q
            return None
        if async_ is True:
            q = self._next_queue
            self._next_queue = (self._next_queue % (self.device.spec.max_concurrent_kernels - 1)) + 1
            return q
        if async_ is False:
            return None
        return int(async_)

    def _run_construct(
        self,
        construct: str,
        workload: KernelWorkload,
        present: Iterable[str],
        schedule: LoopSchedule | None,
        async_: int | bool | None,
        fn: Callable[[], None] | None,
        wait_on: Sequence[int] = (),
        wait_all: bool = False,
    ) -> KernelEstimate:
        present = tuple(present)
        for name in present:
            self.present_entry(name)
        if wait_all:
            # a bare 'wait' clause joins *all* queues (OpenACC semantics),
            # not none of them
            self.device.wait(None)
        for q in wait_on:
            # the OpenACC wait *clause*: the construct does not start until
            # the listed queues drain (modelled as a host-side wait)
            self.device.wait(int(q))
        queue = self._queue_for(async_)
        launch = self.compiler.lower(
            construct, workload, schedule, self.flags, async_queue=queue
        )
        with self.tracer.span(
            f"acc.{construct}", track="acc", cat="acc",
            kernel=workload.name, queue=queue,
        ):
            if self._recorders:
                from repro.gpusim.kernelmodel import estimate_register_demand

                self._record(
                    "compute",
                    construct=construct,
                    kernel=workload.name,
                    queue=queue,
                    reads=present,
                    writes_known=False,
                    schedule=schedule,
                    loop_dims=tuple(workload.loop_dims),
                    inner_contiguous=workload.inner_contiguous,
                    loop_carried=workload.loop_carried,
                    regs_demand=estimate_register_demand(workload),
                    wait_on=tuple(int(q) for q in wait_on),
                    wait_all=wait_all,
                )
            if fn is not None:
                fn()  # the real NumPy computation (host arrays are truth)
            return self.device.launch(
                workload,
                launch,
                enqueue_cost_factor=self.compiler.async_enqueue_factor,
            )

    def kernels(
        self,
        workload: KernelWorkload,
        present: Iterable[str] = (),
        schedule: LoopSchedule | None = None,
        async_: int | bool | None = None,
        fn: Callable[[], None] | None = None,
        wait_on: Sequence[int] = (),
        wait_all: bool = False,
    ) -> KernelEstimate:
        """``acc kernels`` construct around one loop nest. ``wait_on``
        models the ``wait(...)`` clause: queues drained before launch;
        ``wait_all`` is the bare ``wait`` clause (drain every queue)."""
        return self._run_construct(
            "kernels", workload, present, schedule, async_, fn, wait_on,
            wait_all,
        )

    def parallel(
        self,
        workload: KernelWorkload,
        present: Iterable[str] = (),
        schedule: LoopSchedule | None = None,
        async_: int | bool | None = None,
        fn: Callable[[], None] | None = None,
        wait_on: Sequence[int] = (),
        wait_all: bool = False,
    ) -> KernelEstimate:
        """``acc parallel`` construct."""
        return self._run_construct(
            "parallel", workload, present, schedule, async_, fn, wait_on,
            wait_all,
        )

    def compute(
        self,
        workload: KernelWorkload,
        present: Iterable[str] = (),
        async_: int | bool | None = None,
        fn: Callable[[], None] | None = None,
        wait_on: Sequence[int] = (),
        wait_all: bool = False,
    ) -> KernelEstimate:
        """Launch with this compiler's preferred construct and schedule —
        what the paper's tuned code paths use."""
        return self._run_construct(
            self.compiler.preferred_construct(),
            workload,
            present,
            self.compiler.preferred_schedule(),
            async_,
            fn,
            wait_on,
            wait_all,
        )

    def wait(self, queue: int | None = None) -> float:
        """``acc wait`` directive."""
        with self.tracer.span("acc.wait", track="acc", cat="acc", queue=queue):
            self._record(
                "wait", wait_on=() if queue is None else (int(queue),)
            )
            return self.device.wait(queue)

    def cache(self, *names: str) -> None:
        """The ``acc cache`` directive: request shared-memory staging of the
        named arrays. Present-checked, then faithfully ignored — the paper:
        "How to explicitly use shared memory for specific variables is
        still a bottleneck. The tile and cache features are not working
        properly in both CRAY and PGI."""
        import warnings

        from repro.acc.clauses import IneffectiveDirectiveWarning

        for name in names:
            self.present_entry(name)
        warnings.warn(
            "the cache directive is accepted but has no effect under the "
            "modelled 2014 compilers",
            IneffectiveDirectiveWarning,
            stacklevel=2,
        )

    # ------------------------------------------------------------------
    def shutdown_check(self) -> None:
        """Raise if data is still attached (leak detector for tests)."""
        if self._table:
            leaked = ", ".join(sorted(self._table))
            raise PresentTableError(f"present table not empty at shutdown: {leaked}")
