"""Shared utilities: units, timers, errors, array helpers."""

from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    KB,
    MB,
    GB,
    GFLOP,
    bytes_to_human,
    seconds_to_human,
)
from repro.utils.errors import (
    ReproError,
    ConfigurationError,
    StabilityError,
    DeviceError,
    DeviceOutOfMemoryError,
    PresentTableError,
    CommunicationError,
)
from repro.utils.timer import WallTimer, SimClock
from repro.utils.arrays import (
    as_f32,
    interior_slices,
    shifted_slices,
    pad_tuple,
    l2_norm,
    relative_l2_error,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "KB",
    "MB",
    "GB",
    "GFLOP",
    "bytes_to_human",
    "seconds_to_human",
    "ReproError",
    "ConfigurationError",
    "StabilityError",
    "DeviceError",
    "DeviceOutOfMemoryError",
    "PresentTableError",
    "CommunicationError",
    "WallTimer",
    "SimClock",
    "as_f32",
    "interior_slices",
    "shifted_slices",
    "pad_tuple",
    "l2_norm",
    "relative_l2_error",
]
