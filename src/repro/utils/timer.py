"""Wall-clock timing and the simulated clock.

:class:`WallTimer` measures real elapsed time (used by pytest-benchmark hooks
and examples). :class:`SimClock` is the *modelled* clock that the GPU
simulator and cluster cost model advance; all speedups the benchmark harness
reports are ratios of simulated times, mirroring how the paper reports
CPU/GPU time ratios.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


class WallTimer:
    """Context-manager stopwatch.

    Example::

        with WallTimer() as t:
            work()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "WallTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start


@dataclass
class SimClock:
    """Monotonic simulated clock measured in seconds.

    The clock only moves forward; :meth:`advance` with a negative duration is
    a programming error and raises ``ValueError``. :meth:`advance_to` is used
    by the stream timeline to jump to an event completion time that may be in
    the past relative to another stream, in which case it is a no-op.
    """

    now: float = 0.0
    #: Cumulative time attributed to named categories (kernel, h2d, d2h, ...).
    categories: dict[str, float] = field(default_factory=dict)

    def advance(self, dt: float, category: str | None = None) -> float:
        """Move the clock forward by ``dt`` seconds and return the new time."""
        if dt < 0:
            raise ValueError(f"cannot advance simulated clock by {dt} s")
        self.now += dt
        if category is not None:
            self.categories[category] = self.categories.get(category, 0.0) + dt
        return self.now

    def advance_to(self, t: float) -> float:
        """Move the clock to absolute time ``t`` if it is in the future."""
        if t > self.now:
            self.now = t
        return self.now

    def charge(self, dt: float, category: str) -> None:
        """Attribute ``dt`` seconds to ``category`` without moving the clock.

        Used for overlapped work (async streams) where the wall time is
        governed by the timeline but per-category accounting is still wanted.
        """
        if dt < 0:
            raise ValueError(f"cannot charge negative time {dt} s")
        self.categories[category] = self.categories.get(category, 0.0) + dt

    def reset(self) -> None:
        self.now = 0.0
        self.categories.clear()
