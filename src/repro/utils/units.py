"""Unit constants and human-readable formatting helpers.

The GPU simulator and cluster cost models speak in bytes, seconds and flops;
the spec sheets in the paper (its Table 2) speak in GB, GB/s and GFLOPS.
These constants keep conversions explicit and greppable.
"""

from __future__ import annotations

#: Binary byte multiples (used for device memory capacities).
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

#: Decimal byte multiples (used for bandwidth figures, which vendors quote
#: in powers of ten).
KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB

#: One billion floating-point operations.
GFLOP = 1_000_000_000

#: Microsecond in seconds, handy for launch overheads.
MICROSECOND = 1e-6
MILLISECOND = 1e-3


def bytes_to_human(n: float) -> str:
    """Format a byte count for logs, e.g. ``bytes_to_human(3 * GiB)`` ->
    ``'3.00 GiB'``.

    Negative values are formatted with their sign preserved.
    """
    sign = "-" if n < 0 else ""
    n = abs(float(n))
    for unit, name in ((GiB, "GiB"), (MiB, "MiB"), (KiB, "KiB")):
        if n >= unit:
            return f"{sign}{n / unit:.2f} {name}"
    return f"{sign}{n:.0f} B"


def seconds_to_human(t: float) -> str:
    """Format a duration, scaling to ns/us/ms/s as appropriate."""
    sign = "-" if t < 0 else ""
    t = abs(float(t))
    if t >= 1.0:
        return f"{sign}{t:.3f} s"
    if t >= 1e-3:
        return f"{sign}{t * 1e3:.3f} ms"
    if t >= 1e-6:
        return f"{sign}{t * 1e6:.3f} us"
    return f"{sign}{t * 1e9:.1f} ns"
