"""Small NumPy helpers shared across the stencil and propagator code.

All wavefields in the package are single-precision C-contiguous arrays, as in
the paper ("All computations were carried out in single precision"). The
helpers here centralise dtype policy and the index gymnastics of applying
wide stencils to array interiors without copying (views, not copies — the
dominant cost in these kernels is memory traffic).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

#: The package-wide floating dtype (the paper uses single precision).
DTYPE = np.float32


def as_f32(a: np.ndarray | Sequence[float]) -> np.ndarray:
    """Return ``a`` as a C-contiguous float32 array, avoiding copies when
    the input already complies."""
    return np.ascontiguousarray(a, dtype=DTYPE)


def interior_slices(ndim: int, radius: int) -> tuple[slice, ...]:
    """Slices selecting the interior of an ``ndim``-D array, excluding a
    border of ``radius`` points on every side.

    ``radius=0`` returns full slices.
    """
    if radius < 0:
        raise ValueError("radius must be >= 0")
    if radius == 0:
        return (slice(None),) * ndim
    return (slice(radius, -radius),) * ndim


def shifted_slices(
    ndim: int, axis: int, shift: int, radius: int
) -> tuple[slice, ...]:
    """Slices selecting the interior shifted by ``shift`` along ``axis``.

    Used to express ``u[i + s]`` relative to the interior ``u[i]`` without
    fancy indexing: for an interior defined by ``radius``, the view
    ``u[shifted_slices(u.ndim, axis, s, radius)]`` aligns element-for-element
    with ``u[interior_slices(u.ndim, radius)]``.

    ``abs(shift)`` must not exceed ``radius``.
    """
    if abs(shift) > radius:
        raise ValueError(f"|shift|={abs(shift)} exceeds radius={radius}")
    sl = [slice(radius, -radius)] * ndim
    lo = radius + shift
    hi = -radius + shift
    sl[axis] = slice(lo, hi if hi != 0 else None)
    return tuple(sl)


def pad_tuple(value: int | Sequence[int], ndim: int, name: str = "value") -> tuple[int, ...]:
    """Broadcast a scalar to an ``ndim``-tuple, or validate a sequence length."""
    if np.isscalar(value):
        return (int(value),) * ndim  # type: ignore[arg-type]
    t = tuple(int(v) for v in value)  # type: ignore[union-attr]
    if len(t) != ndim:
        raise ValueError(f"{name} must have length {ndim}, got {len(t)}")
    return t


def l2_norm(a: np.ndarray) -> float:
    """Root-sum-square of an array in float64 accumulation."""
    return float(np.sqrt(np.sum(np.asarray(a, dtype=np.float64) ** 2)))


def relative_l2_error(a: np.ndarray, b: np.ndarray) -> float:
    """``||a - b|| / ||b||`` with a guard for an all-zero reference."""
    ref = l2_norm(b)
    if ref == 0.0:
        return l2_norm(a)
    return l2_norm(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)) / ref
