"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so callers
can catch package failures with a single ``except`` clause while still
distinguishing device, numerical and communication problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or out-of-range options."""


class StabilityError(ReproError):
    """A simulation would violate (or has violated) the CFL stability bound.

    Raised before time stepping when the requested ``dt`` exceeds the CFL
    limit, and during stepping when a wavefield turns non-finite.
    """


class DeviceError(ReproError):
    """Base class for simulated-accelerator failures."""


class DeviceOutOfMemoryError(DeviceError):
    """Allocation request exceeded the simulated device's global memory.

    The paper hits this for real: the elastic 3-D variables do not fit the
    6 GB Fermi M2090, producing the ``x`` entries in its Tables 3 and 4.
    """

    def __init__(self, requested: int, free: int, capacity: int):
        from repro.utils.units import bytes_to_human

        self.requested = int(requested)
        self.free = int(free)
        self.capacity = int(capacity)
        super().__init__(
            f"device OOM: requested {bytes_to_human(requested)}, "
            f"free {bytes_to_human(free)} of {bytes_to_human(capacity)}"
        )


class PresentTableError(DeviceError):
    """OpenACC present-table violation.

    Raised when a kernel declares a ``present`` clause for host data that has
    no live device copy, when ``exit data`` deletes data that was never
    entered, or when nested data regions disagree about lifetimes — the same
    classes of runtime error a real OpenACC runtime reports.
    """


class CommunicationError(ReproError):
    """Malformed or mismatched message-passing operation in :mod:`repro.mpisim`."""


class AnalysisError(ReproError):
    """The static analyzer refused a directive program.

    Raised by strict-mode pipelines (``GPUOptions.strict_lint``) when
    :mod:`repro.analyze` reports findings at or above the gate severity
    for the schedule about to run.
    """
