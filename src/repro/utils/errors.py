"""Exception hierarchy for the repro package.

Every error raised by the package derives from :class:`ReproError` so callers
can catch package failures with a single ``except`` clause while still
distinguishing device, numerical and communication problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigurationError(ReproError):
    """An object was constructed with inconsistent or out-of-range options."""


class StabilityError(ReproError):
    """A simulation would violate (or has violated) the CFL stability bound.

    Raised before time stepping when the requested ``dt`` exceeds the CFL
    limit, and during stepping when a wavefield turns non-finite.
    """


class DeviceError(ReproError):
    """Base class for simulated-accelerator failures."""


class DeviceOutOfMemoryError(DeviceError):
    """Allocation request exceeded the simulated device's global memory.

    The paper hits this for real: the elastic 3-D variables do not fit the
    6 GB Fermi M2090, producing the ``x`` entries in its Tables 3 and 4.

    Beyond the requested/free/capacity byte counts, the error carries the
    live-allocation table at the moment of failure (``allocations``: a
    sequence of ``(name, bytes)`` pairs) and the name of the failed request,
    so an OOM — injected by the chaos harness or hit for real — is
    diagnosable from the message alone.
    """

    def __init__(
        self,
        requested: int,
        free: int,
        capacity: int,
        allocations: tuple[tuple[str, int], ...] = (),
        request_name: str | None = None,
    ):
        from repro.utils.units import bytes_to_human

        self.requested = int(requested)
        self.free = int(free)
        self.capacity = int(capacity)
        self.allocations = tuple((str(n), int(b)) for n, b in allocations)
        self.request_name = request_name
        what = f"'{request_name}' " if request_name else ""
        msg = (
            f"device OOM: requested {what}{bytes_to_human(requested)}, "
            f"free {bytes_to_human(free)} of {bytes_to_human(capacity)}"
        )
        if self.allocations:
            live = sorted(self.allocations, key=lambda a: -a[1])
            total = sum(b for _, b in live)
            head = ", ".join(f"{n}={bytes_to_human(b)}" for n, b in live[:6])
            more = f", +{len(live) - 6} more" if len(live) > 6 else ""
            msg += (
                f"; {len(live)} live allocation(s) holding "
                f"{bytes_to_human(total)} (largest: {head}{more})"
            )
        super().__init__(msg)


class PCIeTransferError(DeviceError):
    """A host<->device DMA transfer failed (the bus-level analogue of
    ``cudaErrorUnknown`` on a cudaMemcpy). Transient instances succeed on
    retry; a permanent link fault keeps failing until the 'card' is reset
    by a restart-level recovery."""

    def __init__(self, direction: str, name: str, nbytes: int, detail: str = ""):
        self.direction = direction
        self.name = name
        self.nbytes = int(nbytes)
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"PCIe {direction} transfer '{name}' of {nbytes} bytes failed{suffix}"
        )


class KernelLaunchError(DeviceError):
    """A kernel launch failed (``cudaErrorLaunchFailure``). Device state is
    assumed intact; relaunching is the standard recovery."""

    def __init__(self, kernel: str, detail: str = ""):
        self.kernel = kernel
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"kernel launch '{kernel}' failed{suffix}")


class DeviceECCError(DeviceError):
    """An uncorrectable (double-bit) ECC event. Device-resident data is
    corrupt: retrying the failed operation is not sufficient — recovery must
    refresh device state from the host (restart from checkpoint)."""

    def __init__(self, where: str = ""):
        self.where = where
        suffix = f" during {where}" if where else ""
        super().__init__(
            f"uncorrectable ECC error{suffix}: device memory contents lost"
        )


class DeviceLostError(DeviceError):
    """The card fell off the bus (``cudaErrorDeviceUnavailable``) — a
    permanent fault. Single-device runs cannot recover; decomposed runs
    degrade by re-decomposing onto the surviving ranks."""

    def __init__(self, rank: int | None = None):
        self.rank = rank
        where = f"rank {rank}" if rank is not None else "device"
        super().__init__(f"{where} is lost (permanent device failure)")


class PresentTableError(DeviceError):
    """OpenACC present-table violation.

    Raised when a kernel declares a ``present`` clause for host data that has
    no live device copy, when ``exit data`` deletes data that was never
    entered, or when nested data regions disagree about lifetimes — the same
    classes of runtime error a real OpenACC runtime reports.
    """


class CommunicationError(ReproError):
    """Malformed or mismatched message-passing operation in :mod:`repro.mpisim`."""


class AnalysisError(ReproError):
    """The static analyzer refused a directive program.

    Raised by strict-mode pipelines (``GPUOptions.strict_lint``) when
    :mod:`repro.analyze` reports findings at or above the gate severity
    for the schedule about to run.
    """


class CompileError(ReproError):
    """The fused-kernel compiler refused to lower a program.

    Raised by :mod:`repro.compile` when a recorded schedule cannot be
    flattened into a steady-state step template, when an opportunity
    fails its structural legality re-check, or when the compiled step's
    replay fingerprint is not bitwise-identical to the interpreted
    pipeline's. The compiler always fails closed: a program that cannot
    be *proven* equivalent is never executed compiled.
    """


class StaleArtifactError(CompileError):
    """An opportunities artifact no longer matches the program it proves.

    The artifact carries the ``program_sha`` of the recording it was
    verified against; :mod:`repro.compile` recomputes the hash of the
    schedule it is about to transform and refuses on mismatch rather
    than apply proofs to a program they do not describe.
    """
