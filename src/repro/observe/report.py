"""``python -m repro report``: diff the latest run against the ledger.

For every (command, case, mode, ranks) group in the run ledger the
report compares the newest record's metrics against a baseline built
from the group's history (the median of up to ``window`` prior runs —
robust to a single outlier run poisoning the trend). Each metric has a
direction: ``step_seconds`` regressing means *growing*, an overlap
fraction regressing means *shrinking*. A relative threshold (default
10%) gates the verdict; fraction-valued metrics whose baseline is zero
are compared in absolute points instead.

``--check`` turns the report into a CI gate: exit 1 iff any group
regressed. Groups with no history yet report as ``new`` and never gate —
a freshly seeded ledger must not fail its own first run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observe.ledger import DEFAULT_LEDGER_PATH, LedgerRecord, RunLedger

#: metrics where smaller is better (times, costs)
LOWER_IS_BETTER = frozenset({
    "makespan_s",
    "step_seconds",
    "compute_s",
    "transfer_s",
    "comm_s",
    "critical_chain_s",
    "kernel_total_s",
    "baseline_step_seconds",
    "tuned_step_seconds",
    "recovery_cost_s",
    "unrecovered",
    "lint_errors",
    "lint_warnings",
    "df_findings",
    # serve: recovery actions and queue health (fewer / shorter is better)
    "recovery_retries",
    "recovery_restarts",
    "recovery_requeues",
    "recovery_degrades",
    "queue_p50_s",
    "queue_p95_s",
    "queue_max_s",
    "shed",
    "rejected_shots",
    "rejected_surveys",
    "quarantined",
    "stranded",
    "workers_lost",
})
#: metrics where larger is better (overlap, efficiency, recovery)
HIGHER_IS_BETTER = frozenset({
    "comm_overlap_fraction",
    "transfer_overlap_fraction",
    "speedup",
    "efficiency",
    "improvement",
    "recovered_fraction",
    "opportunities",
    "verified_opportunities",
    # serve: throughput, cache effectiveness and completion
    "shots_per_hour",
    "cache_hit_rate",
    "completed_fraction",
    "verified",
})
#: metrics that are fractions in [0, 1]: when their baseline is 0 a
#: relative delta is meaningless, so these compare in absolute points
FRACTION_METRICS = frozenset({
    "comm_overlap_fraction",
    "transfer_overlap_fraction",
    "efficiency",
    "improvement",
    "recovered_fraction",
    "cache_hit_rate",
    "completed_fraction",
    "verified",
})

DEFAULT_THRESHOLD = 0.10
DEFAULT_WINDOW = 5


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    return ordered[mid] if n % 2 else (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass
class MetricDelta:
    """One metric's latest-vs-baseline comparison."""

    metric: str
    latest: float
    baseline: float
    #: relative delta (latest/baseline - 1), or absolute points delta for
    #: fraction metrics on a zero baseline
    delta: float
    absolute: bool
    direction: str  # 'lower' | 'higher' | 'info'
    regression: bool

    def to_json(self) -> dict:
        return {
            "metric": self.metric,
            "latest": self.latest,
            "baseline": self.baseline,
            "delta": self.delta,
            "absolute": self.absolute,
            "direction": self.direction,
            "regression": self.regression,
        }


def compare_metric(
    metric: str, latest: float, baseline: float, threshold: float
) -> MetricDelta:
    """Compare one metric value against its baseline under the policy."""
    if metric in LOWER_IS_BETTER:
        direction = "lower"
    elif metric in HIGHER_IS_BETTER:
        direction = "higher"
    else:
        direction = "info"
    absolute = metric in FRACTION_METRICS and abs(baseline) < 1e-12
    if absolute:
        delta = latest - baseline
    elif abs(baseline) < 1e-12:
        # non-fraction zero baseline: any appearance is reported as-is
        delta = latest
        absolute = True
    else:
        delta = latest / baseline - 1.0
    regression = False
    if direction == "lower":
        regression = delta > threshold
    elif direction == "higher":
        regression = delta < -threshold
    return MetricDelta(
        metric=metric, latest=latest, baseline=baseline,
        delta=delta, absolute=absolute, direction=direction,
        regression=regression,
    )


@dataclass
class GroupReport:
    """One ledger group's verdict."""

    command: str
    case: str | None
    mode: str | None
    ranks: int
    run_id: str
    timestamp: str
    history: int
    deltas: list[MetricDelta] = field(default_factory=list)

    @property
    def status(self) -> str:
        if self.history == 0:
            return "new"
        return "regression" if self.regressions else "ok"

    @property
    def regressions(self) -> list[MetricDelta]:
        return [d for d in self.deltas if d.regression]

    @property
    def label(self) -> str:
        parts = [self.command]
        if self.case:
            parts.append(self.case)
        if self.mode:
            parts.append(self.mode)
        parts.append(f"r{self.ranks}")
        return ":".join(parts)

    def to_json(self) -> dict:
        return {
            "command": self.command,
            "case": self.case,
            "mode": self.mode,
            "ranks": self.ranks,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "history": self.history,
            "status": self.status,
            "deltas": [d.to_json() for d in self.deltas],
        }


@dataclass
class LedgerReport:
    """The whole ledger's latest-vs-trajectory diff."""

    groups: list[GroupReport]
    threshold: float
    window: int
    warnings: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[GroupReport]:
        return [g for g in self.groups if g.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def to_json(self) -> dict:
        return {
            "threshold": self.threshold,
            "window": self.window,
            "ok": self.ok,
            "groups": [g.to_json() for g in self.groups],
            "warnings": list(self.warnings),
        }

    def to_text(self) -> str:
        title = (
            f"Run-ledger report — {len(self.groups)} group(s), "
            f"threshold {100 * self.threshold:.0f}%, window {self.window}"
        )
        lines = [title, "=" * len(title)]
        if not self.groups:
            lines.append("(ledger is empty)")
        for g in self.groups:
            marker = {"ok": " ", "new": "+", "regression": "!"}[g.status]
            lines.append(
                f"{marker} {g.label:<28} {g.status:<10} "
                f"history={g.history} run={g.run_id}"
            )
            shown = g.regressions if g.status == "regression" else []
            for d in shown:
                unit = "pts" if d.absolute else "%"
                value = d.delta if d.absolute else 100 * d.delta
                lines.append(
                    f"    {d.metric:<28} {d.baseline:.6g} -> {d.latest:.6g} "
                    f"({value:+.2f} {unit}, {d.direction} is better)"
                )
        for w in self.warnings:
            lines.append(f"warning: {w}")
        lines.append("OK" if self.ok else
                     f"REGRESSION in {len(self.regressions)} group(s)")
        return "\n".join(lines)


def diff_ledger(
    ledger: RunLedger,
    threshold: float = DEFAULT_THRESHOLD,
    window: int = DEFAULT_WINDOW,
    command: str | None = None,
) -> LedgerReport:
    """Build the latest-vs-trajectory report from one ledger."""
    groups: list[GroupReport] = []
    buckets = ledger.groups()
    for key in sorted(buckets, key=lambda k: tuple(str(x) for x in k)):
        records = buckets[key]
        if command is not None and key[0] != command:
            continue
        latest = records[-1]
        history = records[:-1][-window:]
        report = GroupReport(
            command=latest.command,
            case=latest.case,
            mode=latest.mode,
            ranks=latest.ranks,
            run_id=latest.run_id,
            timestamp=latest.timestamp,
            history=len(history),
        )
        if history:
            report.deltas = _deltas(latest, history, threshold)
        groups.append(report)
    return LedgerReport(
        groups=groups, threshold=threshold, window=window,
        warnings=list(ledger.warnings),
    )


def _deltas(
    latest: LedgerRecord, history: list[LedgerRecord], threshold: float
) -> list[MetricDelta]:
    out: list[MetricDelta] = []
    for metric in sorted(latest.metrics):
        values = [
            r.metrics[metric] for r in history if metric in r.metrics
        ]
        if not values:
            continue
        out.append(
            compare_metric(
                metric, float(latest.metrics[metric]),
                _median([float(v) for v in values]), threshold,
            )
        )
    return out


def run_report_command(args) -> int:
    """``python -m repro report`` entry point (argparse namespace in)."""
    ledger = RunLedger(args.ledger or DEFAULT_LEDGER_PATH)
    report = diff_ledger(
        ledger,
        threshold=args.threshold / 100.0,
        window=args.window,
        command=args.command_filter,
    )
    if args.format == "json":
        print(json.dumps(report.to_json(), indent=2))
    else:
        print(report.to_text())
    if args.check and not report.ok:
        return 1
    return 0


__all__ = [
    "LOWER_IS_BETTER",
    "HIGHER_IS_BETTER",
    "FRACTION_METRICS",
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "MetricDelta",
    "compare_metric",
    "GroupReport",
    "LedgerReport",
    "diff_ledger",
    "run_report_command",
]
