"""Run-scoped structured logging: one context, many subsystems.

A :class:`RunLog` carries the identity of the invocation being observed
(command, case, mode, ranks) and accumulates structured events and
counters while the run executes. Instrumented layers never hold a
reference to it — they call the module-level :func:`emit` / :func:`count`
with whatever context they have (``rank=...``, ``phase=...``) and the
ambient log, if any, records it. With no active log both are no-ops, so
the pipeline/recovery hot paths stay unconditional, mirroring the
``NULL_TRACER`` convention of :mod:`repro.trace`.

The accumulated events and counters are exactly what
:class:`~repro.observe.ledger.LedgerRecord` persists, so a chaos
campaign's retries, restarts and degrade actions land in the same ledger
line as the run's reduced metrics.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Iterator

#: ambient run log (None outside any `activate` scope)
_current: contextvars.ContextVar["RunLog | None"] = contextvars.ContextVar(
    "repro_runlog", default=None
)

#: cap on stored events per run — a runaway loop (nt in the thousands)
#: must not turn the ledger into a trace; overflow is counted, not kept
MAX_EVENTS = 512


class RunLog:
    """Structured event + counter accumulator for one observed run."""

    def __init__(
        self,
        command: str,
        case: str | None = None,
        mode: str | None = None,
        ranks: int = 1,
        **context: Any,
    ):
        self.command = command
        self.case = case
        self.mode = mode
        self.ranks = int(ranks)
        self.context = dict(context)
        self.events: list[dict] = []
        self.counters: dict[str, float] = {}
        self.dropped_events = 0

    # ------------------------------------------------------------------
    def log(self, kind: str, **fields: Any) -> None:
        """Record one structured event (``kind`` plus free-form fields)."""
        if len(self.events) >= MAX_EVENTS:
            self.dropped_events += 1
            return
        event = {"kind": kind}
        event.update(fields)
        self.events.append(event)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Bump a named run counter."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    # ------------------------------------------------------------------
    def identity(self) -> dict:
        """The grouping key fields of this run (ledger trend axis)."""
        return {
            "command": self.command,
            "case": self.case,
            "mode": self.mode,
            "ranks": self.ranks,
        }

    def to_json(self) -> dict:
        doc = dict(self.identity())
        if self.context:
            doc["context"] = dict(self.context)
        doc["events"] = list(self.events)
        doc["counters"] = dict(sorted(self.counters.items()))
        if self.dropped_events:
            doc["dropped_events"] = self.dropped_events
        return doc

    # ------------------------------------------------------------------
    @contextmanager
    def activate(self) -> Iterator["RunLog"]:
        """Install this log as the ambient one for the ``with`` body."""
        token = _current.set(self)
        try:
            yield self
        finally:
            _current.reset(token)


def current_runlog() -> RunLog | None:
    """The ambient RunLog, or None when nothing is being observed."""
    return _current.get()


def emit(kind: str, **fields: Any) -> None:
    """Record an event on the ambient log; no-op outside a run scope."""
    log = _current.get()
    if log is not None:
        log.log(kind, **fields)


def count(name: str, amount: float = 1.0) -> None:
    """Bump a counter on the ambient log; no-op outside a run scope."""
    log = _current.get()
    if log is not None:
        log.count(name, amount)


__all__ = [
    "MAX_EVENTS",
    "RunLog",
    "current_runlog",
    "emit",
    "count",
]
