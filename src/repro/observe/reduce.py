"""The trace reduction engine: raw spans in, scaling quantities out.

The :class:`~repro.trace.tracer.Tracer` records *when* every kernel, PCIe
copy and halo message ran; nothing in the trace layer says whether the
comm was hidden under compute — the quantity the paper's Section 7 path
forward ("overlapping MPI communications with GPU computations") and the
cluster figures of Paul et al. are about. This module reduces an event
stream (single-rank, or a multi-rank merge built by
:meth:`~repro.trace.tracer.Tracer.absorb`) to:

* per-rank busy time by class (compute / transfer / comm) as measures of
  the *union* of that class's spans, plus the pairwise overlap fractions
  (what share of transfer and comm time ran concurrently with compute);
* per-queue utilization (busy seconds vs. the run makespan) for every
  device stream track;
* per-kernel aggregates — count, total, mean, p95 and max span seconds;
* a critical-path estimate: the maximum-duration chain of
  non-overlapping work spans through the span DAG (a span can only
  depend on spans that finished before it started, so the heaviest such
  chain lower-bounds the serial backbone of the run), together with a
  priority sweep that decomposes the makespan into compute / comm /
  transfer / other / idle segments.

Everything is a pure function of the event list; all times are in the
trace's own clock domain (simulated seconds for device traces).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable

from repro.trace.tracer import SPAN, Tracer, TraceEvent

#: span categories counted as device compute
COMPUTE_CATS = frozenset({"kernel"})
#: span categories counted as host<->device transfer
TRANSFER_CATS = frozenset({"h2d", "d2h"})
#: span categories counted as inter-rank communication
COMM_CATS = frozenset({"halo"})
#: every category that is "work" for critical-path purposes (umbrella
#: phase spans wrap the whole run and would trivially dominate a chain)
WORK_CATS = COMPUTE_CATS | TRANSFER_CATS | COMM_CATS

_RANK_PROCESS = re.compile(r"^rank(\d+):")
_RANK_TRACK = re.compile(r"^rank:(\d+)$")


# ----------------------------------------------------------------------
# interval algebra
# ----------------------------------------------------------------------
def merge_intervals(
    intervals: Iterable[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of half-open intervals as a sorted, disjoint list."""
    out: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if end <= start:
            continue
        if out and start <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], end))
        else:
            out.append((start, end))
    return out


def interval_measure(intervals: Iterable[tuple[float, float]]) -> float:
    """Total length of a *disjoint* interval list."""
    return sum(end - start for start, end in intervals)


def intersect_intervals(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Intersection of two disjoint sorted interval lists."""
    out: list[tuple[float, float]] = []
    i = j = 0
    while i < len(a) and j < len(b):
        lo = max(a[i][0], b[j][0])
        hi = min(a[i][1], b[j][1])
        if lo < hi:
            out.append((lo, hi))
        if a[i][1] <= b[j][1]:
            i += 1
        else:
            j += 1
    return out


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 1])."""
    if not sorted_values:
        return 0.0
    idx = max(0, min(len(sorted_values) - 1,
                     int(round(q * len(sorted_values) + 0.5)) - 1))
    return sorted_values[idx]


# ----------------------------------------------------------------------
# reduction records
# ----------------------------------------------------------------------
@dataclass
class RankReduction:
    """One rank's busy-time classes and overlap fractions."""

    rank: int
    compute_s: float = 0.0
    transfer_s: float = 0.0
    comm_s: float = 0.0
    #: seconds of transfer that ran concurrently with compute on this rank
    transfer_overlap_s: float = 0.0
    #: seconds of comm that ran concurrently with compute on this rank
    comm_overlap_s: float = 0.0
    #: this rank's own first-to-last span extent
    makespan_s: float = 0.0

    @property
    def transfer_overlap_fraction(self) -> float:
        """Share of transfer time hidden under compute (0 when no transfer)."""
        return self.transfer_overlap_s / self.transfer_s if self.transfer_s else 0.0

    @property
    def comm_overlap_fraction(self) -> float:
        """Share of comm time hidden under compute (0 when no comm)."""
        return self.comm_overlap_s / self.comm_s if self.comm_s else 0.0

    @property
    def busy_s(self) -> float:
        return self.compute_s + self.transfer_s + self.comm_s

    def to_json(self) -> dict:
        return {
            "rank": self.rank,
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "comm_s": self.comm_s,
            "transfer_overlap_s": self.transfer_overlap_s,
            "comm_overlap_s": self.comm_overlap_s,
            "transfer_overlap_fraction": self.transfer_overlap_fraction,
            "comm_overlap_fraction": self.comm_overlap_fraction,
            "makespan_s": self.makespan_s,
        }


@dataclass
class KernelAggregate:
    """Per-kernel span statistics across the whole (merged) trace."""

    name: str
    count: int
    total_s: float
    mean_s: float
    p95_s: float
    max_s: float

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "p95_s": self.p95_s,
            "max_s": self.max_s,
        }


@dataclass
class QueueUtilization:
    """Busy share of one device stream track over the run makespan."""

    process: str
    track: str
    busy_s: float
    utilization: float

    def to_json(self) -> dict:
        return {
            "process": self.process,
            "track": self.track,
            "busy_s": self.busy_s,
            "utilization": self.utilization,
        }


@dataclass
class CriticalPath:
    """Serial-backbone estimate through the work-span DAG."""

    makespan_s: float
    #: maximum total duration of a chain of non-overlapping work spans
    chain_s: float
    #: makespan decomposed by a priority sweep (compute > comm > transfer),
    #: with 'idle' the uncovered remainder
    composition: dict[str, float] = field(default_factory=dict)

    @property
    def chain_fraction(self) -> float:
        return self.chain_s / self.makespan_s if self.makespan_s else 0.0

    def to_json(self) -> dict:
        return {
            "makespan_s": self.makespan_s,
            "chain_s": self.chain_s,
            "chain_fraction": self.chain_fraction,
            "composition": dict(self.composition),
        }


@dataclass
class TraceReduction:
    """Everything the observatory and the ledger read off one trace."""

    ranks: dict[int, RankReduction]
    kernels: dict[str, KernelAggregate]
    queues: list[QueueUtilization]
    critical_path: CriticalPath
    events: int = 0

    # -- aggregates ------------------------------------------------------
    @property
    def nranks(self) -> int:
        return len(self.ranks)

    @property
    def compute_s(self) -> float:
        """Max per-rank compute (ranks step concurrently, so the slowest
        slab binds the run)."""
        return max((r.compute_s for r in self.ranks.values()), default=0.0)

    @property
    def comm_s(self) -> float:
        return max((r.comm_s for r in self.ranks.values()), default=0.0)

    @property
    def transfer_s(self) -> float:
        return max((r.transfer_s for r in self.ranks.values()), default=0.0)

    @property
    def comm_overlap_fraction(self) -> float:
        """Comm-hidden-under-compute share, weighted across ranks."""
        comm = sum(r.comm_s for r in self.ranks.values())
        hidden = sum(r.comm_overlap_s for r in self.ranks.values())
        return hidden / comm if comm else 0.0

    @property
    def transfer_overlap_fraction(self) -> float:
        transfer = sum(r.transfer_s for r in self.ranks.values())
        hidden = sum(r.transfer_overlap_s for r in self.ranks.values())
        return hidden / transfer if transfer else 0.0

    @property
    def makespan_s(self) -> float:
        return self.critical_path.makespan_s

    def summary_metrics(self) -> dict:
        """The flat metric dict ledger records carry (stable key names —
        ``repro report`` trends and thresholds are keyed on these)."""
        return {
            "makespan_s": self.makespan_s,
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "comm_s": self.comm_s,
            "comm_overlap_fraction": self.comm_overlap_fraction,
            "transfer_overlap_fraction": self.transfer_overlap_fraction,
            "critical_chain_s": self.critical_path.chain_s,
            "kernel_total_s": sum(k.total_s for k in self.kernels.values()),
            "kernel_launches": sum(k.count for k in self.kernels.values()),
        }

    def to_json(self) -> dict:
        return {
            "events": self.events,
            "nranks": self.nranks,
            "summary": self.summary_metrics(),
            "ranks": [self.ranks[r].to_json() for r in sorted(self.ranks)],
            "kernels": [
                self.kernels[n].to_json() for n in sorted(self.kernels)
            ],
            "queues": [q.to_json() for q in self.queues],
            "critical_path": self.critical_path.to_json(),
        }

    def to_text(self, title: str = "Trace reduction") -> str:
        lines = [title, "=" * len(title)]
        cp = self.critical_path
        lines.append(
            f"makespan {cp.makespan_s:.6f} s, critical chain {cp.chain_s:.6f} s"
            f" ({100 * cp.chain_fraction:.1f}%)"
        )
        comp = ", ".join(
            f"{k} {v:.6f}" for k, v in sorted(cp.composition.items())
        )
        lines.append(f"composition: {comp}")
        lines.append("per-rank overlap:")
        for r in sorted(self.ranks):
            rr = self.ranks[r]
            lines.append(
                f"  rank {r}: compute {rr.compute_s:.6f} s, "
                f"transfer {rr.transfer_s:.6f} s "
                f"({100 * rr.transfer_overlap_fraction:5.1f}% hidden), "
                f"comm {rr.comm_s:.6f} s "
                f"({100 * rr.comm_overlap_fraction:5.1f}% hidden)"
            )
        busiest = sorted(
            self.kernels.values(), key=lambda k: k.total_s, reverse=True
        )[:8]
        if busiest:
            lines.append("hottest kernels:")
            for k in busiest:
                lines.append(
                    f"  {k.name:<32} n={k.count:<5} total {k.total_s:.6f} s "
                    f"mean {k.mean_s:.3g} p95 {k.p95_s:.3g}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# the reduction
# ----------------------------------------------------------------------
def rank_of_event(event: TraceEvent) -> int | None:
    """Which MPI rank an event belongs to, if any.

    Per-rank tracers merged via ``Tracer.absorb`` carry ``rank<r>:``
    process prefixes; halo spans live on the shared ``mpi`` process with
    ``rank:<r>`` tracks. Everything else (single-card runs, harness
    spans) has no rank."""
    m = _RANK_PROCESS.match(event.process)
    if m:
        return int(m.group(1))
    m = _RANK_TRACK.match(event.track)
    if m:
        return int(m.group(1))
    return None


def _class_of(cat: str) -> str | None:
    if cat in COMPUTE_CATS:
        return "compute"
    if cat in TRANSFER_CATS:
        return "transfer"
    if cat in COMM_CATS:
        return "comm"
    return None


def _longest_chain(spans: list[TraceEvent]) -> float:
    """Maximum total duration of mutually non-overlapping spans — the
    heaviest antichain-free path through the happens-before DAG (a span
    can only depend on spans that ended at or before its start)."""
    if not spans:
        return 0.0
    import bisect

    ordered = sorted(spans, key=lambda e: e.end)
    ends = [e.end for e in ordered]
    best: list[float] = []  # best[i]: max chain duration using spans [0..i]
    prefix = 0.0
    for ev in ordered:
        # the heaviest chain that finished by ev.start
        j = bisect.bisect_right(ends, ev.start, hi=len(best))
        before = best[j - 1] if j else 0.0
        prefix = max(prefix, before + ev.duration)
        best.append(prefix)
    return best[-1]


def _priority_sweep(
    classed: dict[str, list[tuple[float, float]]], t0: float, t1: float
) -> dict[str, float]:
    """Decompose [t0, t1] by class priority compute > comm > transfer:
    each instant is attributed to the highest-priority active class;
    'idle' is the remainder."""
    out: dict[str, float] = {}
    covered: list[tuple[float, float]] = []
    for cls in ("compute", "comm", "transfer"):
        busy = classed.get(cls, [])
        exclusive = _subtract(busy, covered)
        out[cls] = interval_measure(exclusive)
        covered = merge_intervals(covered + busy)
    span = max(0.0, t1 - t0)
    out["idle"] = max(0.0, span - interval_measure(covered))
    return out


def _subtract(
    a: list[tuple[float, float]], b: list[tuple[float, float]]
) -> list[tuple[float, float]]:
    """Disjoint sorted a minus disjoint sorted b."""
    if not b:
        return list(a)
    out: list[tuple[float, float]] = []
    j = 0
    for start, end in a:
        cur = start
        while j < len(b) and b[j][1] <= cur:
            j += 1
        k = j
        while k < len(b) and b[k][0] < end:
            if b[k][0] > cur:
                out.append((cur, b[k][0]))
            cur = max(cur, b[k][1])
            if cur >= end:
                break
            k += 1
        if cur < end:
            out.append((cur, end))
    return out


def reduce_trace(
    source: Tracer | Iterable[TraceEvent],
) -> TraceReduction:
    """Reduce a tracer (or raw event list) to scaling quantities."""
    events = source.events if isinstance(source, Tracer) else list(source)
    spans = [e for e in events if e.kind == SPAN]
    work = [e for e in spans if e.cat in WORK_CATS]

    # -- per-rank class intervals ---------------------------------------
    per_rank: dict[int, dict[str, list[tuple[float, float]]]] = {}
    extents: dict[int, tuple[float, float]] = {}
    for ev in work:
        cls = _class_of(ev.cat)
        assert cls is not None
        rank = rank_of_event(ev)
        rank = 0 if rank is None else rank
        per_rank.setdefault(rank, {}).setdefault(cls, []).append(
            (ev.start, ev.end)
        )
        lo, hi = extents.get(rank, (ev.start, ev.end))
        extents[rank] = (min(lo, ev.start), max(hi, ev.end))

    ranks: dict[int, RankReduction] = {}
    for rank, classes in sorted(per_rank.items()):
        compute = merge_intervals(classes.get("compute", []))
        transfer = merge_intervals(classes.get("transfer", []))
        comm = merge_intervals(classes.get("comm", []))
        lo, hi = extents[rank]
        ranks[rank] = RankReduction(
            rank=rank,
            compute_s=interval_measure(compute),
            transfer_s=interval_measure(transfer),
            comm_s=interval_measure(comm),
            transfer_overlap_s=interval_measure(
                intersect_intervals(compute, transfer)
            ),
            comm_overlap_s=interval_measure(
                intersect_intervals(compute, comm)
            ),
            makespan_s=hi - lo,
        )

    # -- per-kernel aggregates ------------------------------------------
    kernels: dict[str, KernelAggregate] = {}
    durations: dict[str, list[float]] = {}
    for ev in spans:
        if ev.cat in COMPUTE_CATS:
            durations.setdefault(ev.name, []).append(ev.duration)
    for name, durs in durations.items():
        durs.sort()
        kernels[name] = KernelAggregate(
            name=name,
            count=len(durs),
            total_s=sum(durs),
            mean_s=sum(durs) / len(durs),
            p95_s=_percentile(durs, 0.95),
            max_s=durs[-1],
        )

    # -- global makespan + queue utilization ----------------------------
    if work:
        t0 = min(e.start for e in work)
        t1 = max(e.end for e in work)
    else:
        t0 = t1 = 0.0
    makespan = t1 - t0

    queue_busy: dict[tuple[str, str], list[tuple[float, float]]] = {}
    for ev in work:
        if ev.cat in COMPUTE_CATS or ev.cat in TRANSFER_CATS:
            queue_busy.setdefault((ev.process, ev.track), []).append(
                (ev.start, ev.end)
            )
    queues = [
        QueueUtilization(
            process=proc,
            track=track,
            busy_s=(busy := interval_measure(merge_intervals(ivs))),
            utilization=busy / makespan if makespan else 0.0,
        )
        for (proc, track), ivs in sorted(queue_busy.items())
    ]

    # -- critical path ---------------------------------------------------
    classed_all: dict[str, list[tuple[float, float]]] = {}
    for ev in work:
        cls = _class_of(ev.cat)
        classed_all.setdefault(cls, []).append((ev.start, ev.end))
    classed_merged = {
        cls: merge_intervals(ivs) for cls, ivs in classed_all.items()
    }
    critical = CriticalPath(
        makespan_s=makespan,
        chain_s=_longest_chain(work),
        composition=_priority_sweep(classed_merged, t0, t1),
    )

    return TraceReduction(
        ranks=ranks,
        kernels=kernels,
        queues=queues,
        critical_path=critical,
        events=len(events),
    )


__all__ = [
    "COMPUTE_CATS",
    "TRANSFER_CATS",
    "COMM_CATS",
    "WORK_CATS",
    "merge_intervals",
    "interval_measure",
    "intersect_intervals",
    "rank_of_event",
    "RankReduction",
    "KernelAggregate",
    "QueueUtilization",
    "CriticalPath",
    "TraceReduction",
    "reduce_trace",
]
