"""The multi-rank scaling observatory: ``python -m repro scale``.

Sweeps the *executed* :class:`~repro.core.multigpu.MultiGpuPipeline`
across a set of rank counts, merges the per-rank tracers, reduces each
merged timeline with :func:`~repro.observe.reduce.reduce_trace`, and
asserts the scaling *shape* against the paper's closed-form cluster
model (:func:`~repro.core.multigpu.estimate_multi_gpu_modeling`): more
cards must shrink the compute backbone, grow the comm share from zero,
and never slow the modelled step down — the qualitative figure Paul et
al.'s hybrid distributed RTM publishes and the ROADMAP's scaling-study
item asks us to regenerate.

Shapes are larger than the trace CLI's (256^2 / 64^3): at 96^2 the
per-launch overheads dominate the slab kernels and strong scaling is
invisible. Grid data never moves through NumPy kernels here — the
per-rank pipelines run in estimate mode — so the sweep stays cheap while
every directive, transfer and halo message is real.

The sweep's artifact is ``BENCH_scaling.json``; each (case, ranks) point
also appends a ``scale`` record to the run ledger so ``repro report``
watches the overlap fractions drift over time (Assis et al.'s
dynamic-scheduling motivation) instead of measuring them once.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.observe.reduce import TraceReduction, reduce_trace
from repro.utils.errors import ConfigurationError

#: observatory grid sizes per dimensionality (bigger than the trace
#: CLI's so the slab kernels, not the launch overheads, set the shape)
SCALE_SHAPES = {2: (256, 256), 3: (64, 64, 64)}
#: time steps per point; the schedule pattern repeats, so few are needed
SCALE_NT = 16
SCALE_SNAP = 4
#: default rank counts of the study (the acceptance sweep)
DEFAULT_RANKS = (1, 2, 4, 8)
#: the seed cases of the observatory sweep
SCALE_CASES = ("iso2d", "ac2d", "el2d", "iso3d", "ac3d", "el3d")
#: relative slack on monotonicity assertions (modelled clocks are exact,
#: but slab remainders make per-rank work slightly uneven)
SHAPE_TOL = 0.10

BENCH_SCHEMA = 1


@dataclass
class ScalePoint:
    """One (case, rank-count) run of the executed pipeline, reduced."""

    ranks: int
    makespan_s: float
    step_seconds: float
    compute_s: float
    transfer_s: float
    comm_s: float
    comm_overlap_fraction: float
    transfer_overlap_fraction: float
    critical_chain_s: float
    kernel_launches: int
    per_rank: list[dict] = field(default_factory=list)
    #: the paper cluster model's per-step prediction (None when the model
    #: refuses the decomposition, e.g. too-thin slabs)
    model_step_seconds: float | None = None
    model_comm_s: float | None = None
    #: filled by the case result once the ranks=1 anchor is known
    speedup: float | None = None
    efficiency: float | None = None

    def metrics(self) -> dict:
        """Flat ledger metrics for this point."""
        out = {
            "makespan_s": self.makespan_s,
            "step_seconds": self.step_seconds,
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "comm_s": self.comm_s,
            "comm_overlap_fraction": self.comm_overlap_fraction,
            "transfer_overlap_fraction": self.transfer_overlap_fraction,
            "critical_chain_s": self.critical_chain_s,
            "kernel_launches": float(self.kernel_launches),
        }
        if self.speedup is not None:
            out["speedup"] = self.speedup
        if self.efficiency is not None:
            out["efficiency"] = self.efficiency
        return out

    def to_json(self) -> dict:
        doc = {
            "ranks": self.ranks,
            "makespan_s": self.makespan_s,
            "step_seconds": self.step_seconds,
            "compute_s": self.compute_s,
            "transfer_s": self.transfer_s,
            "comm_s": self.comm_s,
            "comm_overlap_fraction": self.comm_overlap_fraction,
            "transfer_overlap_fraction": self.transfer_overlap_fraction,
            "critical_chain_s": self.critical_chain_s,
            "kernel_launches": self.kernel_launches,
            "speedup": self.speedup,
            "efficiency": self.efficiency,
            "model_step_seconds": self.model_step_seconds,
            "model_comm_s": self.model_comm_s,
            "per_rank": list(self.per_rank),
        }
        return doc


@dataclass
class ScaleCaseResult:
    """One case's sweep over rank counts, with shape verdicts."""

    case: str
    mode: str
    nt: int
    shape: tuple[int, ...]
    points: list[ScalePoint]
    violations: list[str] = field(default_factory=list)

    @property
    def shape_ok(self) -> bool:
        return not self.violations

    def point(self, ranks: int) -> ScalePoint:
        for p in self.points:
            if p.ranks == ranks:
                return p
        raise ConfigurationError(f"no point at ranks={ranks}")

    def to_json(self) -> dict:
        return {
            "case": self.case,
            "mode": self.mode,
            "nt": self.nt,
            "shape": list(self.shape),
            "shape_ok": self.shape_ok,
            "violations": list(self.violations),
            "points": [p.to_json() for p in self.points],
        }

    def to_text(self) -> str:
        head = f"{self.case} ({self.mode}, {'x'.join(map(str, self.shape))})"
        lines = [head, "-" * len(head)]
        lines.append(
            f"  {'ranks':>5} {'ms/step':>9} {'speedup':>8} {'eff':>6} "
            f"{'comm ms':>8} {'ovl%':>6} {'model ms/step':>13}"
        )
        for p in self.points:
            model = (
                f"{p.model_step_seconds * 1e3:13.4f}"
                if p.model_step_seconds is not None
                else f"{'x':>13}"
            )
            lines.append(
                f"  {p.ranks:>5} {p.step_seconds * 1e3:9.4f} "
                f"{p.speedup if p.speedup is not None else 1.0:8.2f} "
                f"{p.efficiency if p.efficiency is not None else 1.0:6.2f} "
                f"{p.comm_s * 1e3:8.4f} "
                f"{100 * p.comm_overlap_fraction:6.1f} {model}"
            )
        verdict = "shape OK" if self.shape_ok else "SHAPE VIOLATIONS:"
        lines.append(f"  {verdict}")
        for v in self.violations:
            lines.append(f"    - {v}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# one point
# ----------------------------------------------------------------------
def run_scale_point(
    case: str,
    ranks: int,
    mode: str = "rtm",
    nt: int = SCALE_NT,
    snap_period: int = SCALE_SNAP,
) -> tuple[ScalePoint, TraceReduction]:
    """Run one executed (case, ranks) point under per-rank tracers and
    reduce the merged timeline."""
    from repro.core import GPUOptions
    from repro.core.multigpu import MultiGpuPipeline, estimate_multi_gpu_modeling
    from repro.trace.cli import parse_case
    from repro.trace.tracer import Tracer

    if ranks < 1:
        raise ConfigurationError("ranks must be >= 1")
    if mode not in ("modeling", "rtm"):
        raise ConfigurationError(f"mode must be 'modeling' or 'rtm', not '{mode}'")
    physics, ndim = parse_case(case)
    shape = SCALE_SHAPES[ndim]
    space_order = 4 if ndim == 3 else 8

    rank_tracers = [Tracer() for _ in range(ranks)]
    merged = Tracer()
    pipeline = MultiGpuPipeline(
        physics, shape, ranks,
        options=GPUOptions(),
        space_order=space_order,
        boundary_width=8,
        tracers=rank_tracers,
        exchange_tracer=merged,
    )
    if mode == "rtm":
        pipeline.run_rtm(nt, snap_period)
    else:
        pipeline.run_modeling(nt, snap_period)
    for r, rt in enumerate(rank_tracers):
        merged.absorb(rt, process_prefix=f"rank{r}:")

    reduction = reduce_trace(merged)
    summary = reduction.summary_metrics()

    model = estimate_multi_gpu_modeling(
        physics, shape, nt, snap_period, ranks,
        space_order=space_order, boundary_width=8,
    )
    point = ScalePoint(
        ranks=ranks,
        makespan_s=summary["makespan_s"],
        step_seconds=summary["makespan_s"] / nt,
        compute_s=summary["compute_s"],
        transfer_s=summary["transfer_s"],
        comm_s=summary["comm_s"],
        comm_overlap_fraction=summary["comm_overlap_fraction"],
        transfer_overlap_fraction=summary["transfer_overlap_fraction"],
        critical_chain_s=summary["critical_chain_s"],
        kernel_launches=int(summary["kernel_launches"]),
        per_rank=[r.to_json() for r in reduction.ranks.values()],
        model_step_seconds=(model.total / nt) if model.success else None,
        model_comm_s=(model.comm if model.success else None),
    )
    return point, reduction


# ----------------------------------------------------------------------
# shape assertion
# ----------------------------------------------------------------------
def assert_scaling_shape(
    result: ScaleCaseResult, tol: float = SHAPE_TOL
) -> list[str]:
    """Check the sweep against the cluster model's qualitative shape;
    returns the violations (empty when the shape holds) and records them
    on ``result``."""
    v: list[str] = []
    pts = sorted(result.points, key=lambda p: p.ranks)
    if not pts:
        result.violations = ["no points"]
        return result.violations
    anchor = pts[0]
    if anchor.ranks != 1:
        v.append(f"sweep has no single-rank anchor (starts at {anchor.ranks})")
    else:
        if anchor.comm_s > 0.0:
            v.append(f"ranks=1 shows comm time ({anchor.comm_s:.3g} s)")
    for prev, cur in zip(pts, pts[1:]):
        # compute backbone shrinks (the strong-scaling axis)
        if cur.compute_s > prev.compute_s * (1.0 + tol):
            v.append(
                f"compute grew {prev.compute_s:.4g} -> {cur.compute_s:.4g} s "
                f"at ranks {prev.ranks} -> {cur.ranks}"
            )
        # comm appears and never shrinks (more interfaces, never fewer)
        if cur.comm_s < prev.comm_s * (1.0 - tol):
            v.append(
                f"comm shrank {prev.comm_s:.4g} -> {cur.comm_s:.4g} s "
                f"at ranks {prev.ranks} -> {cur.ranks}"
            )
        # modelled step never slows down
        if cur.makespan_s > prev.makespan_s * (1.0 + tol):
            v.append(
                f"makespan grew {prev.makespan_s:.4g} -> {cur.makespan_s:.4g} s "
                f"at ranks {prev.ranks} -> {cur.ranks}"
            )
    for p in pts[1:]:
        if p.comm_s <= 0.0:
            v.append(f"ranks={p.ranks} shows no comm time")
        if p.speedup is not None and p.efficiency is not None:
            if p.efficiency > 1.0 + tol:
                v.append(
                    f"super-linear efficiency {p.efficiency:.2f} at "
                    f"ranks={p.ranks}"
                )
        # agreement with the paper's cluster model: where the closed form
        # accepts the decomposition it must agree scaling does not hurt
        if p.model_step_seconds is not None and anchor.model_step_seconds:
            model_speedup = anchor.model_step_seconds / p.model_step_seconds
            if model_speedup < 1.0 - tol:
                v.append(
                    f"cluster model predicts slowdown {model_speedup:.2f}x "
                    f"at ranks={p.ranks} — measured shape unanchored"
                )
            if p.speedup is not None and p.speedup < 1.0 - tol:
                v.append(
                    f"measured slowdown {p.speedup:.2f}x at ranks={p.ranks} "
                    "contradicts the cluster model"
                )
    result.violations = v
    return v


# ----------------------------------------------------------------------
# the sweep
# ----------------------------------------------------------------------
def run_scale_case(
    case: str,
    ranks: tuple[int, ...] = DEFAULT_RANKS,
    mode: str = "rtm",
    nt: int = SCALE_NT,
    ledger_path: str | None = None,
) -> ScaleCaseResult:
    """Sweep one case over ``ranks``; optionally append each point to the
    run ledger."""
    from repro.observe.ledger import append_run
    from repro.observe.runlog import RunLog
    from repro.trace.cli import parse_case

    _, ndim = parse_case(case)
    points: list[ScalePoint] = []
    for n in sorted(set(int(r) for r in ranks)):
        runlog = RunLog(command="scale", case=case, mode=mode, ranks=n, nt=nt)
        with runlog.activate():
            point, _ = run_scale_point(case, n, mode=mode, nt=nt)
        points.append(point)
        if points[0].ranks == 1 and point.ranks > 1:
            point.speedup = points[0].makespan_s / point.makespan_s
            point.efficiency = point.speedup / point.ranks
        append_run(ledger_path, runlog, point.metrics())
    result = ScaleCaseResult(
        case=case, mode=mode, nt=nt, shape=SCALE_SHAPES[ndim], points=points,
    )
    assert_scaling_shape(result)
    return result


def run_scale_sweep(
    cases: tuple[str, ...] = SCALE_CASES,
    ranks: tuple[int, ...] = DEFAULT_RANKS,
    mode: str = "rtm",
    nt: int = SCALE_NT,
    ledger_path: str | None = None,
) -> dict:
    """The full observatory sweep; returns the BENCH_scaling document."""
    results = [
        run_scale_case(c, ranks=ranks, mode=mode, nt=nt,
                       ledger_path=ledger_path)
        for c in cases
    ]
    return {
        "schema": BENCH_SCHEMA,
        "mode": mode,
        "nt": nt,
        "ranks": sorted(set(int(r) for r in ranks)),
        "shapes": {str(d): list(s) for d, s in sorted(SCALE_SHAPES.items())},
        "shape_ok": all(r.shape_ok for r in results),
        "cases": {r.case: r.to_json() for r in results},
    }


def parse_ranks(text: str) -> tuple[int, ...]:
    """``'1,2,4,8'`` -> ``(1, 2, 4, 8)``."""
    try:
        ranks = tuple(int(part) for part in text.split(",") if part.strip())
    except ValueError:
        raise ConfigurationError(
            f"--ranks wants a comma-separated int list, not '{text}'"
        ) from None
    if not ranks or any(r < 1 for r in ranks):
        raise ConfigurationError(f"--ranks values must be >= 1 (got '{text}')")
    return ranks


def run_scale_command(args) -> int:
    """``python -m repro scale`` entry point (argparse namespace in)."""
    from repro.observe.ledger import ledger_path_from_args

    cases = SCALE_CASES if args.case == "all" else tuple(args.case.split(","))
    ranks = parse_ranks(args.ranks)
    ledger_path = ledger_path_from_args(args)
    doc = run_scale_sweep(
        cases=cases, ranks=ranks, mode=args.mode, nt=args.nt,
        ledger_path=ledger_path,
    )
    for case in doc["cases"].values():
        result = ScaleCaseResult(
            case=case["case"], mode=case["mode"], nt=case["nt"],
            shape=tuple(case["shape"]),
            points=[_point_from_json(p) for p in case["points"]],
            violations=list(case["violations"]),
        )
        print(result.to_text())
        print()
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    if ledger_path is not None:
        print(f"ledger {ledger_path}")
    if not doc["shape_ok"]:
        print("scaling shape violations detected")
        return 1
    return 0


def _point_from_json(doc: dict) -> ScalePoint:
    return ScalePoint(
        ranks=doc["ranks"],
        makespan_s=doc["makespan_s"],
        step_seconds=doc["step_seconds"],
        compute_s=doc["compute_s"],
        transfer_s=doc["transfer_s"],
        comm_s=doc["comm_s"],
        comm_overlap_fraction=doc["comm_overlap_fraction"],
        transfer_overlap_fraction=doc["transfer_overlap_fraction"],
        critical_chain_s=doc["critical_chain_s"],
        kernel_launches=doc["kernel_launches"],
        per_rank=list(doc.get("per_rank", ())),
        model_step_seconds=doc.get("model_step_seconds"),
        model_comm_s=doc.get("model_comm_s"),
        speedup=doc.get("speedup"),
        efficiency=doc.get("efficiency"),
    )


__all__ = [
    "SCALE_SHAPES",
    "SCALE_NT",
    "SCALE_CASES",
    "DEFAULT_RANKS",
    "SHAPE_TOL",
    "ScalePoint",
    "ScaleCaseResult",
    "run_scale_point",
    "assert_scaling_shape",
    "run_scale_case",
    "run_scale_sweep",
    "parse_ranks",
    "run_scale_command",
]
