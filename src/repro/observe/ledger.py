"""The run ledger: an append-only JSONL trajectory of observed runs.

Every ``trace`` / ``tune`` / ``chaos`` / ``scale`` invocation appends one
:class:`LedgerRecord` — run identity (command, case, mode, ranks), the
TuningPlan fingerprint in effect, the run's reduced metrics, and the
structured events its :class:`~repro.observe.runlog.RunLog` accumulated
(recoveries, degrades, phase transitions). ``python -m repro report``
reads the trajectory back and diffs the latest run of each group against
its history, so a schedule change that quietly costs 10% of step time is
caught by CI rather than by a reader of BENCH files.

The on-disk format is one JSON object per line (schema-versioned). Lines
with a newer schema or unparseable content are surfaced as warnings, not
errors: the ledger is history, and history survives format drift.
"""

from __future__ import annotations

import hashlib
import json
import os
import uuid
from dataclasses import dataclass, field
from datetime import datetime, timezone

from repro.utils.errors import ConfigurationError

#: current record schema
LEDGER_SCHEMA = 1
#: default ledger location, relative to the working directory
DEFAULT_LEDGER_PATH = os.path.join(".repro", "ledger.jsonl")


def plan_fingerprint(plan) -> str | None:
    """Stable short hash of a :class:`~repro.optim.autotune.TuningPlan`
    (or None) — ledger records carry it so a metric shift can be tied to
    the plan that caused it."""
    if plan is None:
        return None
    doc = json.dumps(plan.to_json(), sort_keys=True)
    return hashlib.sha256(doc.encode()).hexdigest()[:12]


def _utcnow() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


@dataclass
class LedgerRecord:
    """One observed run."""

    command: str
    case: str | None
    mode: str | None
    ranks: int
    metrics: dict[str, float]
    run_id: str = ""
    timestamp: str = ""
    plan_hash: str | None = None
    events: list[dict] = field(default_factory=list)
    counters: dict[str, float] = field(default_factory=dict)
    schema: int = LEDGER_SCHEMA

    def __post_init__(self) -> None:
        if not self.run_id:
            self.run_id = uuid.uuid4().hex[:12]
        if not self.timestamp:
            self.timestamp = _utcnow()

    # ------------------------------------------------------------------
    @property
    def group(self) -> tuple:
        """The trend axis: runs compare only within their group."""
        return (self.command, self.case, self.mode, self.ranks)

    def to_json(self) -> dict:
        return {
            "schema": self.schema,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "command": self.command,
            "case": self.case,
            "mode": self.mode,
            "ranks": self.ranks,
            "plan_hash": self.plan_hash,
            "metrics": dict(sorted(self.metrics.items())),
            "counters": dict(sorted(self.counters.items())),
            "events": list(self.events),
        }

    @staticmethod
    def from_json(doc: dict) -> "LedgerRecord":
        return LedgerRecord(
            command=doc["command"],
            case=doc.get("case"),
            mode=doc.get("mode"),
            ranks=int(doc.get("ranks", 1)),
            metrics=dict(doc.get("metrics", {})),
            run_id=doc.get("run_id", ""),
            timestamp=doc.get("timestamp", ""),
            plan_hash=doc.get("plan_hash"),
            events=list(doc.get("events", ())),
            counters=dict(doc.get("counters", {})),
            schema=int(doc.get("schema", LEDGER_SCHEMA)),
        )

    @staticmethod
    def from_runlog(
        runlog, metrics: dict[str, float], plan_hash: str | None = None
    ) -> "LedgerRecord":
        """Fold a finished :class:`~repro.observe.runlog.RunLog` and the
        run's reduced metrics into one record."""
        return LedgerRecord(
            command=runlog.command,
            case=runlog.case,
            mode=runlog.mode,
            ranks=runlog.ranks,
            metrics=dict(metrics),
            plan_hash=plan_hash,
            events=list(runlog.events),
            counters=dict(runlog.counters),
        )


class RunLedger:
    """Append/read access to one JSONL ledger file."""

    def __init__(self, path: str = DEFAULT_LEDGER_PATH):
        self.path = path
        self.warnings: list[str] = []

    # ------------------------------------------------------------------
    def append(self, record: LedgerRecord) -> LedgerRecord:
        """Append one record (creating the ledger directory on first use)."""
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record.to_json(), sort_keys=False) + "\n")
        return record

    # ------------------------------------------------------------------
    def records(
        self,
        command: str | None = None,
        case: str | None = None,
        mode: str | None = None,
        ranks: int | None = None,
    ) -> list[LedgerRecord]:
        """All parseable records, in append order, optionally filtered."""
        self.warnings = []
        if not os.path.exists(self.path):
            return []
        out: list[LedgerRecord] = []
        with open(self.path, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                    rec = LedgerRecord.from_json(doc)
                except (ValueError, KeyError, TypeError) as exc:
                    self.warnings.append(
                        f"{self.path}:{lineno}: skipped unreadable record "
                        f"({type(exc).__name__}: {exc})"
                    )
                    continue
                if rec.schema > LEDGER_SCHEMA:
                    self.warnings.append(
                        f"{self.path}:{lineno}: skipped schema-{rec.schema} "
                        f"record (this build reads <= {LEDGER_SCHEMA})"
                    )
                    continue
                out.append(rec)
        if command is not None:
            out = [r for r in out if r.command == command]
        if case is not None:
            out = [r for r in out if r.case == case]
        if mode is not None:
            out = [r for r in out if r.mode == mode]
        if ranks is not None:
            out = [r for r in out if r.ranks == ranks]
        return out

    def groups(self) -> dict[tuple, list[LedgerRecord]]:
        """Records bucketed by their (command, case, mode, ranks) group,
        each bucket in append order."""
        out: dict[tuple, list[LedgerRecord]] = {}
        for rec in self.records():
            out.setdefault(rec.group, []).append(rec)
        return out

    def latest(self, **filters) -> LedgerRecord | None:
        recs = self.records(**filters)
        return recs[-1] if recs else None


def ledger_path_from_args(args) -> str | None:
    """Resolve a CLI's ``--ledger``/``--no-ledger`` pair: None disables
    the append, otherwise the given (or default) ledger path."""
    if getattr(args, "no_ledger", False):
        return None
    return getattr(args, "ledger", None) or DEFAULT_LEDGER_PATH


def append_run(
    ledger_path: str | None,
    runlog,
    metrics: dict[str, float],
    plan=None,
) -> LedgerRecord | None:
    """The one-call hook the CLIs use: fold ``runlog`` + ``metrics`` into
    a record and append it to ``ledger_path``. ``None`` path disables the
    ledger (``--no-ledger``); returns the appended record or None."""
    if ledger_path is None:
        return None
    if runlog is None:
        raise ConfigurationError("append_run needs an active RunLog")
    record = LedgerRecord.from_runlog(
        runlog, metrics, plan_hash=plan_fingerprint(plan)
    )
    return RunLedger(ledger_path).append(record)


__all__ = [
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "plan_fingerprint",
    "LedgerRecord",
    "RunLedger",
    "append_run",
    "ledger_path_from_args",
]
