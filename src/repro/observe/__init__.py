"""Trace analytics, run ledger and the multi-rank scaling observatory.

``repro.observe`` is the layer that turns the raw telemetry of
:mod:`repro.trace` into guarded quantities:

* :mod:`~repro.observe.reduce` — the reduction engine: span streams in,
  per-rank overlap fractions / queue utilization / kernel aggregates /
  critical-path estimates out;
* :mod:`~repro.observe.scaling` — the ``scale`` CLI: sweep the executed
  :class:`~repro.core.multigpu.MultiGpuPipeline` over rank counts,
  assert the scaling shape against the paper's cluster model, publish
  ``BENCH_scaling.json``;
* :mod:`~repro.observe.ledger` — the append-only JSONL run ledger every
  ``trace``/``tune``/``chaos``/``scale`` invocation writes to;
* :mod:`~repro.observe.report` — the ``report [--check]`` regression
  gate over the ledger trajectory;
* :mod:`~repro.observe.runlog` — run-scoped structured logging threaded
  through the pipeline, multi-GPU and resilience layers.

See ``docs/observability.md``.
"""

from repro.observe.ledger import (
    DEFAULT_LEDGER_PATH,
    LEDGER_SCHEMA,
    LedgerRecord,
    RunLedger,
    append_run,
    ledger_path_from_args,
    plan_fingerprint,
)
from repro.observe.reduce import (
    CriticalPath,
    KernelAggregate,
    QueueUtilization,
    RankReduction,
    TraceReduction,
    reduce_trace,
)
from repro.observe.report import (
    DEFAULT_THRESHOLD,
    DEFAULT_WINDOW,
    LedgerReport,
    compare_metric,
    diff_ledger,
    run_report_command,
)
from repro.observe.runlog import RunLog, count, current_runlog, emit
from repro.observe.scaling import (
    DEFAULT_RANKS,
    SCALE_CASES,
    ScaleCaseResult,
    ScalePoint,
    assert_scaling_shape,
    run_scale_case,
    run_scale_command,
    run_scale_point,
    run_scale_sweep,
)

__all__ = [
    # reduce
    "TraceReduction",
    "RankReduction",
    "KernelAggregate",
    "QueueUtilization",
    "CriticalPath",
    "reduce_trace",
    # ledger
    "LEDGER_SCHEMA",
    "DEFAULT_LEDGER_PATH",
    "LedgerRecord",
    "RunLedger",
    "append_run",
    "ledger_path_from_args",
    "plan_fingerprint",
    # report
    "DEFAULT_THRESHOLD",
    "DEFAULT_WINDOW",
    "LedgerReport",
    "compare_metric",
    "diff_ledger",
    "run_report_command",
    # runlog
    "RunLog",
    "current_runlog",
    "emit",
    "count",
    # scaling
    "DEFAULT_RANKS",
    "SCALE_CASES",
    "ScalePoint",
    "ScaleCaseResult",
    "run_scale_point",
    "run_scale_case",
    "run_scale_sweep",
    "assert_scaling_shape",
    "run_scale_command",
]
