"""The :class:`EarthModel`: physical parameters on a grid.

The three formulations of the paper's Section 3.3 consume different subsets:

* isotropic (Eq. 1): ``vp`` only (constant density);
* acoustic variable-density (Eq. 2): ``vp`` and ``rho``;
* elastic (Eq. 3): ``vp``, ``vs`` and ``rho`` (converted internally to the
  Lame parameters ``lambda``/``mu``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.grid.grid import Grid
from repro.utils.arrays import DTYPE, as_f32
from repro.utils.errors import ConfigurationError


@dataclass
class EarthModel:
    """Material model on a :class:`~repro.grid.grid.Grid`.

    Parameters
    ----------
    grid:
        The grid the parameter fields live on.
    vp:
        P-wave (pressure) velocity in m/s. Required, strictly positive.
    rho:
        Density in kg/m^3. Optional; defaults to constant 1000 (water) when a
        formulation that needs it is used on a model built without one.
    vs:
        S-wave (shear) velocity in m/s. Optional; required by the elastic
        formulation. May contain zeros (fluid regions).
    """

    grid: Grid
    vp: np.ndarray
    rho: np.ndarray | None = None
    vs: np.ndarray | None = None
    #: Thomsen anisotropy parameters for the VTI extension; None = isotropic
    epsilon: np.ndarray | None = None
    delta: np.ndarray | None = None
    name: str = field(default="model")

    def __post_init__(self):
        self.vp = self._check_field("vp", self.vp, positive=True)
        if self.rho is not None:
            self.rho = self._check_field("rho", self.rho, positive=True)
        if self.vs is not None:
            self.vs = self._check_field("vs", self.vs, positive=False)
            if np.any(np.asarray(self.vs) < 0):
                raise ConfigurationError("vs must be non-negative")
            # physical admissibility: vs < vp everywhere (Poisson ratio > -1)
            if np.any(self.vs >= self.vp):
                raise ConfigurationError("vs must be strictly below vp everywhere")
        if self.epsilon is not None:
            self.epsilon = self._check_field("epsilon", self.epsilon, positive=False)
            if np.any(self.epsilon < -0.4) or np.any(self.epsilon > 1.0):
                raise ConfigurationError("epsilon outside the plausible [-0.4, 1] range")
        if self.delta is not None:
            self.delta = self._check_field("delta", self.delta, positive=False)
            if np.any(self.delta < -0.4) or np.any(self.delta > 1.0):
                raise ConfigurationError("delta outside the plausible [-0.4, 1] range")

    def _check_field(self, name: str, a: np.ndarray, positive: bool) -> np.ndarray:
        a = as_f32(np.broadcast_to(a, self.grid.shape) if np.isscalar(a) else a)
        if a.shape != self.grid.shape:
            raise ConfigurationError(
                f"{name} has shape {a.shape}, grid is {self.grid.shape}"
            )
        if not np.all(np.isfinite(a)):
            raise ConfigurationError(f"{name} contains non-finite values")
        if positive and np.any(a <= 0):
            raise ConfigurationError(f"{name} must be strictly positive")
        return a

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return self.grid.ndim

    @property
    def vp_max(self) -> float:
        return float(self.vp.max())

    @property
    def vp_min(self) -> float:
        return float(self.vp.min())

    def density(self) -> np.ndarray:
        """Density field, defaulting to 1000 kg/m^3 when unset."""
        if self.rho is None:
            return self.grid.full(1000.0)
        return self.rho

    def shear_velocity(self) -> np.ndarray:
        """S-wave velocity; raises if the model has none (elastic physics
        requires it)."""
        if self.vs is None:
            raise ConfigurationError(
                f"model '{self.name}' has no vs field; the elastic formulation "
                "needs one (use builders with vs_ratio, or set vs explicitly)"
            )
        return self.vs

    def lame_parameters(self) -> tuple[np.ndarray, np.ndarray]:
        """Lame parameters ``(lam, mu)`` derived from (vp, vs, rho):
        ``mu = rho*vs^2``, ``lam = rho*(vp^2 - 2 vs^2)``."""
        rho = self.density().astype(np.float64)
        vs = self.shear_velocity().astype(np.float64)
        vp = self.vp.astype(np.float64)
        mu = rho * vs**2
        lam = rho * (vp**2 - 2.0 * vs**2)
        if np.any(lam < 0):
            raise ConfigurationError(
                "vp/vs combination gives negative lambda (vs too close to vp)"
            )
        return lam.astype(DTYPE), mu.astype(DTYPE)

    def max_wave_speed(self) -> float:
        """Fastest wave speed in the model — the CFL-relevant velocity.

        With Thomsen epsilon set, the horizontal P speed is stretched to
        ``vp * sqrt(1 + 2 epsilon)``; vs is always slower than vp."""
        if self.epsilon is not None:
            stretch = np.sqrt(1.0 + 2.0 * np.maximum(self.epsilon.astype(np.float64), 0.0))
            return float((self.vp.astype(np.float64) * stretch).max())
        return self.vp_max

    def is_anisotropic(self) -> bool:
        """Whether the model carries (nonzero) Thomsen parameters."""
        for f in (self.epsilon, self.delta):
            if f is not None and float(np.abs(f).max()) > 0:
                return True
        return False

    def memory_bytes(self) -> int:
        """Bytes held by the parameter fields (single precision)."""
        total = self.vp.nbytes
        for f in (self.rho, self.vs, self.epsilon, self.delta):
            if f is not None:
                total += f.nbytes
        return total

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"vp[{self.vp_min:.0f}..{self.vp_max:.0f}]"]
        if self.rho is not None:
            parts.append("rho")
        if self.vs is not None:
            parts.append("vs")
        return f"EarthModel({self.name}, {self.grid}, {'+'.join(parts)})"
