"""Save/load earth models as ``.npz`` archives."""

from __future__ import annotations

import os

import numpy as np

from repro.grid.grid import Grid
from repro.model.earth_model import EarthModel
from repro.utils.errors import ConfigurationError


def save_model(model: EarthModel, path: str | os.PathLike) -> None:
    """Write a model (grid geometry + parameter fields) to ``path``."""
    payload: dict[str, np.ndarray] = {
        "shape": np.asarray(model.grid.shape, dtype=np.int64),
        "spacing": np.asarray(model.grid.spacing, dtype=np.float64),
        "origin": np.asarray(model.grid.origin, dtype=np.float64),
        "vp": model.vp,
        "name": np.asarray(model.name),
    }
    if model.rho is not None:
        payload["rho"] = model.rho
    if model.vs is not None:
        payload["vs"] = model.vs
    if model.epsilon is not None:
        payload["epsilon"] = model.epsilon
    if model.delta is not None:
        payload["delta"] = model.delta
    np.savez_compressed(os.fspath(path), **payload)


def load_model(path: str | os.PathLike) -> EarthModel:
    """Read a model previously written by :func:`save_model`."""
    with np.load(os.fspath(path), allow_pickle=False) as data:
        required = {"shape", "spacing", "origin", "vp"}
        missing = required - set(data.files)
        if missing:
            raise ConfigurationError(
                f"{path} is not a repro model archive (missing {sorted(missing)})"
            )
        grid = Grid(
            tuple(int(n) for n in data["shape"]),
            tuple(float(s) for s in data["spacing"]),
            tuple(float(o) for o in data["origin"]),
        )
        return EarthModel(
            grid,
            data["vp"],
            rho=data["rho"] if "rho" in data.files else None,
            vs=data["vs"] if "vs" in data.files else None,
            epsilon=data["epsilon"] if "epsilon" in data.files else None,
            delta=data["delta"] if "delta" in data.files else None,
            name=str(data["name"]) if "name" in data.files else "model",
        )
