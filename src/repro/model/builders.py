"""Synthetic earth-model builders.

The paper's models come from TOTAL's production velocity workflows, which we
cannot have; these builders generate synthetic media exercising the same code
paths (sharp reflectors for RTM imaging, smooth lenses for kinematics,
random media for scattering-heavy workloads). Each returns an
:class:`~repro.model.earth_model.EarthModel` with vp, rho (Gardner relation)
and optionally vs (constant vp/vs ratio).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.grid.grid import Grid
from repro.model.earth_model import EarthModel
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


def _gardner_density(vp: np.ndarray) -> np.ndarray:
    """Gardner's relation ``rho = 310 * vp^0.25`` (SI units), the standard
    velocity-to-density proxy when no density log exists."""
    return (310.0 * np.asarray(vp, dtype=np.float64) ** 0.25).astype(DTYPE)


def _with_fields(
    grid: Grid,
    vp: np.ndarray,
    with_density: bool,
    vs_ratio: float | None,
    name: str,
) -> EarthModel:
    vp = vp.astype(DTYPE)
    rho = _gardner_density(vp) if with_density else None
    vs = None
    if vs_ratio is not None:
        if not 0.0 < vs_ratio < 1.0:
            raise ConfigurationError("vs_ratio must be in (0, 1)")
        vs = (vp * np.float32(vs_ratio)).astype(DTYPE)
    return EarthModel(grid, vp, rho=rho, vs=vs, name=name)


def constant_model(
    shape: Sequence[int],
    spacing: float | Sequence[float] = 10.0,
    vp: float = 2000.0,
    with_density: bool = True,
    vs_ratio: float | None = None,
) -> EarthModel:
    """Homogeneous medium — the analytic-solution test case."""
    grid = Grid(shape, spacing)
    return _with_fields(grid, grid.full(vp), with_density, vs_ratio, "constant")


def layered_model(
    shape: Sequence[int],
    spacing: float | Sequence[float] = 10.0,
    interfaces: Sequence[float] = (1000.0,),
    velocities: Sequence[float] = (1500.0, 2500.0),
    with_density: bool = True,
    vs_ratio: float | None = None,
) -> EarthModel:
    """Horizontally layered medium.

    ``interfaces`` are the depths (metres) of the layer boundaries;
    ``velocities`` has one more entry than ``interfaces`` (top layer first).
    This is the canonical RTM validation model: the migrated image should
    light up exactly at the interface depths.
    """
    if len(velocities) != len(interfaces) + 1:
        raise ConfigurationError(
            f"need len(velocities) == len(interfaces)+1, got "
            f"{len(velocities)} vs {len(interfaces)}"
        )
    if sorted(interfaces) != list(interfaces):
        raise ConfigurationError("interfaces must be sorted by depth")
    grid = Grid(shape, spacing)
    z = grid.axis(0)
    vp_profile = np.full(z.shape, velocities[0], dtype=np.float64)
    for depth, v in zip(interfaces, velocities[1:]):
        vp_profile[z >= depth] = v
    shape_ones = (len(z),) + (1,) * (grid.ndim - 1)
    vp = np.broadcast_to(vp_profile.reshape(shape_ones), grid.shape).copy()
    return _with_fields(grid, vp, with_density, vs_ratio, "layered")


def lens_model(
    shape: Sequence[int],
    spacing: float | Sequence[float] = 10.0,
    background_vp: float = 2000.0,
    lens_vp: float = 2600.0,
    radius_fraction: float = 0.2,
    with_density: bool = True,
    vs_ratio: float | None = None,
) -> EarthModel:
    """A smooth Gaussian high-velocity lens in a homogeneous background —
    bends rays without sharp reflections (kinematics tests)."""
    if not 0.0 < radius_fraction <= 0.5:
        raise ConfigurationError("radius_fraction must be in (0, 0.5]")
    grid = Grid(shape, spacing)
    axes = grid.axes()
    center = [a[len(a) // 2] for a in axes]
    radius = radius_fraction * min(grid.extent)
    r2 = np.zeros(grid.shape, dtype=np.float64)
    for i, a in enumerate(axes):
        shape_ones = [1] * grid.ndim
        shape_ones[i] = len(a)
        r2 = r2 + ((a - center[i]).reshape(shape_ones)) ** 2
    bump = np.exp(-r2 / (2.0 * radius**2))
    vp = background_vp + (lens_vp - background_vp) * bump
    return _with_fields(grid, vp, with_density, vs_ratio, "lens")


def fault_model(
    shape: Sequence[int],
    spacing: float | Sequence[float] = 10.0,
    interface_depth: float = 1000.0,
    throw: float = 300.0,
    velocities: tuple[float, float] = (1800.0, 2800.0),
    with_density: bool = True,
    vs_ratio: float | None = None,
) -> EarthModel:
    """Two-layer medium with a vertical fault offsetting the interface by
    ``throw`` metres across the middle of the x axis — produces a lateral
    velocity discontinuity plus a diffracting edge, the structure Figure 5 of
    the paper images."""
    grid = Grid(shape, spacing)
    z = grid.axis(0)
    x = grid.axis(1)
    x_mid = x[len(x) // 2]
    depth_left = interface_depth
    depth_right = interface_depth + throw
    depth_of_x = np.where(x < x_mid, depth_left, depth_right)
    if grid.ndim == 2:
        mask = z[:, None] >= depth_of_x[None, :]
    else:
        mask = np.broadcast_to(
            (z[:, None] >= depth_of_x[None, :])[:, :, None], grid.shape
        )
    vp = np.where(mask, velocities[1], velocities[0]).astype(np.float64)
    return _with_fields(grid, vp, with_density, vs_ratio, "fault")


def random_media_model(
    shape: Sequence[int],
    spacing: float | Sequence[float] = 10.0,
    background_vp: float = 2500.0,
    fluctuation: float = 0.1,
    correlation_cells: int = 8,
    seed: int = 0,
    with_density: bool = True,
    vs_ratio: float | None = None,
) -> EarthModel:
    """Band-limited random velocity fluctuations around a background —
    a scattering-rich medium approximating geological heterogeneity.

    ``fluctuation`` is the relative RMS perturbation; ``correlation_cells``
    sets the smoothing length (grid cells) of the Gaussian filter realised by
    repeated box blurs.
    """
    if not 0.0 <= fluctuation < 0.5:
        raise ConfigurationError("fluctuation must be in [0, 0.5)")
    if correlation_cells < 1:
        raise ConfigurationError("correlation_cells must be >= 1")
    grid = Grid(shape, spacing)
    rng = np.random.default_rng(seed)
    noise = rng.standard_normal(grid.shape)
    # three box blurs approximate a Gaussian of the requested width
    width = max(1, correlation_cells)
    kernel = np.ones(width, dtype=np.float64) / width
    for _ in range(3):
        for axis in range(grid.ndim):
            noise = np.apply_along_axis(
                lambda v: np.convolve(v, kernel, mode="same"), axis, noise
            )
    rms = float(np.sqrt(np.mean(noise**2)))
    if rms > 0:
        noise = noise / rms
    vp = background_vp * (1.0 + fluctuation * noise)
    vp = np.clip(vp, 0.3 * background_vp, 2.5 * background_vp)
    return _with_fields(grid, vp, with_density, vs_ratio, "random-media")


def with_thomsen(
    model: EarthModel, epsilon: float | np.ndarray, delta: float | np.ndarray
) -> EarthModel:
    """Return a copy of ``model`` carrying Thomsen anisotropy parameters
    (constant values are broadcast over the grid) — input for the VTI
    extension propagator."""
    shape = model.grid.shape
    eps = np.full(shape, epsilon, dtype=DTYPE) if np.isscalar(epsilon) else np.ascontiguousarray(epsilon, dtype=DTYPE)
    dlt = np.full(shape, delta, dtype=DTYPE) if np.isscalar(delta) else np.ascontiguousarray(delta, dtype=DTYPE)
    return EarthModel(
        model.grid,
        model.vp.copy(),
        rho=None if model.rho is None else model.rho.copy(),
        vs=None if model.vs is None else model.vs.copy(),
        epsilon=eps,
        delta=dlt,
        name=model.name + "+vti",
    )
