"""Earth (velocity/density) models and synthetic model builders."""

from repro.model.earth_model import EarthModel
from repro.model.builders import (
    constant_model,
    layered_model,
    lens_model,
    fault_model,
    random_media_model,
    with_thomsen,
)
from repro.model.io import save_model, load_model

__all__ = [
    "EarthModel",
    "constant_model",
    "layered_model",
    "lens_model",
    "fault_model",
    "random_media_model",
    "with_thomsen",
    "save_model",
    "load_model",
]
