"""Driver behind ``python -m repro trace CASE``.

Runs one seismic case end-to-end with every layer instrumented — the acc
runtime's data/compute constructs, the simulated device's kernel and copy
engines (one Perfetto track per async queue), the pipeline phases, and
(when ``--ranks`` > 1) a halo-exchange superstep over the simulated MPI
world — then writes a Chrome/Perfetto ``trace.json`` plus a text summary
in the style of the paper's profiler figures.

All span timestamps are *simulated* seconds from the device's
:class:`~repro.utils.timer.SimClock`, so the timeline you open in the
Perfetto UI is the modelled GPU timeline, not this process's wall clock.
"""

from __future__ import annotations

from repro.trace.export import summary_text, write_jsonl, write_perfetto
from repro.trace.tracer import Tracer
from repro.utils.errors import ConfigurationError

#: physics aliases accepted in case names (``iso2d``, ``acoustic3d``, ...)
_PHYSICS = {
    "iso": "isotropic",
    "isotropic": "isotropic",
    "ac": "acoustic",
    "acoustic": "acoustic",
    "el": "elastic",
    "elastic": "elastic",
}

#: instrumented-run grid sizes — small enough that the NumPy reference
#: kernels finish in seconds, big enough that every pipeline phase fires
_SHAPES = {2: (96, 96), 3: (48, 48, 48)}


def parse_case(text: str) -> tuple[str, int]:
    """``'iso2d'`` -> ``('isotropic', 2)``; accepts short or full physics
    names with a ``2d``/``3d`` suffix."""
    t = text.strip().lower().replace("-", "").replace("_", "")
    ndim = None
    for suffix, n in (("2d", 2), ("3d", 3)):
        if t.endswith(suffix):
            t, ndim = t[: -len(suffix)], n
            break
    if ndim is None or t not in _PHYSICS:
        known = ", ".join(f"{p}{{2d,3d}}" for p in ("iso", "ac", "el"))
        raise ConfigurationError(f"unknown case '{text}' (expected one of: {known})")
    return _PHYSICS[t], ndim


def trace_case(
    case: str,
    mode: str = "rtm",
    nt: int = 60,
    ranks: int = 1,
    tracer: Tracer | None = None,
):
    """Run ``case`` under full instrumentation; returns ``(tracer, result)``.

    ``mode`` selects modeling (forward only) or RTM (both phases — the
    richer trace). ``ranks`` > 1 appends an instrumented halo-exchange
    superstep of the final wavefield over a simulated MPI world.
    """
    from repro.core import GPUOptions, ModelingConfig, RTMConfig
    from repro.core.modeling import run_modeling
    from repro.core.rtm import run_rtm
    from repro.model import layered_model

    physics, ndim = parse_case(case)
    if mode not in ("modeling", "rtm"):
        raise ConfigurationError(f"mode must be 'modeling' or 'rtm', not '{mode}'")
    if nt < 1:
        raise ConfigurationError("nt must be >= 1")
    if ranks < 1:
        raise ConfigurationError("ranks must be >= 1")

    tracer = tracer if tracer is not None else Tracer()
    shape = _SHAPES[ndim]
    if ranks > 1:
        return tracer, _trace_multigpu(
            tracer, physics, shape, mode, nt, ranks, case=case, ndim=ndim
        )
    depth = shape[0] * 10.0 / 2
    model = layered_model(
        shape, spacing=10.0, interfaces=[depth],
        velocities=[1500.0, 2600.0], vs_ratio=0.5,
    )
    cfg_kw = dict(
        physics=physics, model=model, nt=nt, peak_freq=12.0,
        space_order=4 if ndim == 3 else 8,
        boundary_width=8, snap_period=4,
    )
    options = GPUOptions()
    if mode == "rtm":
        result = run_rtm(RTMConfig(**cfg_kw), gpu_options=options,
                         tracer=tracer)
    else:
        result = run_modeling(ModelingConfig(**cfg_kw),
                              gpu_options=options, tracer=tracer)
    # the whole-run umbrella span, emitted post hoc: its clock is only
    # rebound to the device's simulated timeline once the Runtime exists
    tracer.emit(f"trace.{mode}", 0.0, tracer.now(), track="run", cat="phase",
                case=case, physics=physics, ndim=ndim, nt=nt)
    return tracer, result


class MultiGpuTraceResult:
    """What a decomposed trace run yields: per-rank modelled timings (the
    single-card ``result.gpu`` has no one-card equivalent here)."""

    def __init__(self, rank_times):
        self.rank_times = list(rank_times)
        self.gpu = None


def _trace_multigpu(
    tracer: Tracer, physics: str, shape, mode: str, nt: int, ranks: int,
    case: str, ndim: int,
) -> MultiGpuTraceResult:
    """The decomposed path: one :class:`Tracer` per rank wired into that
    rank's runtime, halo-exchange spans on the shared timeline, all merged
    into ``tracer`` under ``rank<r>:``-prefixed processes."""
    from repro.core import GPUOptions
    from repro.core.multigpu import MultiGpuPipeline

    rank_tracers = [Tracer() for _ in range(ranks)]
    mgp = MultiGpuPipeline(
        physics, shape, ranks,
        options=GPUOptions(),
        space_order=4 if ndim == 3 else 8,
        boundary_width=8,
        tracers=rank_tracers,
        exchange_tracer=tracer,
    )
    snap_period = 4
    if mode == "rtm":
        times = mgp.run_rtm(nt, snap_period)
    else:
        times = mgp.run_modeling(nt, snap_period)
    end = 0.0
    for r, rt in enumerate(rank_tracers):
        tracer.absorb(rt, process_prefix=f"rank{r}:")
        end = max(end, rt.now())
    tracer.emit(f"trace.{mode}", 0.0, end, track="run", cat="phase",
                case=case, physics=physics, ndim=ndim, nt=nt, ranks=ranks)
    return MultiGpuTraceResult(times)


def run_trace_command(args) -> int:
    """``python -m repro trace`` entry point (argparse namespace in)."""
    from repro.bench.report import format_gpu_times
    from repro.observe import RunLog, append_run, ledger_path_from_args
    from repro.observe.reduce import reduce_trace

    runlog = RunLog(command="trace", case=args.case, mode=args.mode,
                    ranks=args.ranks, nt=args.nt)
    with runlog.activate():
        tracer, result = trace_case(
            args.case, mode=args.mode, nt=args.nt, ranks=args.ranks
        )
    trace = write_perfetto(tracer, args.out)
    if args.jsonl:
        write_jsonl(tracer, args.jsonl)
    print(summary_text(tracer, title=f"Trace summary — {args.case} ({args.mode})"))
    print()
    reduction = reduce_trace(tracer)
    print(reduction.to_text(
        title=f"Trace reduction — {args.case} ({args.mode})"
    ))
    print()
    if result.gpu is not None:
        print(format_gpu_times("GPU time by category", result.gpu))
        print()
    for r, times in enumerate(getattr(result, "rank_times", ())):
        print(format_gpu_times(f"GPU time by category — rank {r}", times))
        print()
    print(f"wrote {args.out} ({len(trace['traceEvents'])} events; "
          "open in https://ui.perfetto.dev)")
    if args.jsonl:
        print(f"wrote {args.jsonl}")
    ledger_path = ledger_path_from_args(args)
    record = append_run(ledger_path, runlog, reduction.summary_metrics())
    if record is not None:
        print(f"ledger {ledger_path} (run {record.run_id})")
    return 0
