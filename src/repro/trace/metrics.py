"""Thread-safe metrics: counters, gauges and histograms.

The registry is the quantitative side of :mod:`repro.trace` — where the
:class:`~repro.trace.tracer.Tracer` answers *when* (spans on a timeline),
the registry answers *how much*: bytes moved over PCIe, kernel launches,
achieved occupancy, halo-exchange volume, snapshot traffic. Instrumented
subsystems bump named instruments; exporters snapshot the registry next to
the event stream.

All instruments share one lock (contention is negligible at the rates the
simulators produce) so cross-instrument snapshots are consistent.
"""

from __future__ import annotations

import threading
from typing import Iterator

from repro.utils.units import bytes_to_human


class Counter:
    """Monotonically increasing count (messages, launches, bytes)."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0

    def add(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter '{self.name}' cannot decrease ({amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """Last-set value plus the high-water mark (resident bytes, queue depth)."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)
            self._max = max(self._max, self._value)

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max


class Histogram:
    """Streaming summary of observed samples (kernel times, occupancy)."""

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._lock = lock
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        with self._lock:
            self.count += 1
            self.total += value
            self.min = min(self.min, value)
            self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict:
        if self.count == 0:
            return {"count": 0, "total": 0.0, "min": None, "max": None, "mean": None}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Create-or-get access to named instruments.

    Instrument names are namespaced by convention (``gpu.kernel_launches``,
    ``halo.bytes``, ``pipeline.snapshot_bytes``); an instrument is created on
    first use, so consumers can snapshot without pre-registration.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name, self._lock)
        return inst

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name, self._lock)
        return inst

    def histogram(self, name: str) -> Histogram:
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, self._lock)
        return inst

    # ------------------------------------------------------------------
    def absorb(self, other: "MetricsRegistry", prefix: str = "") -> None:
        """Merge ``other``'s instruments into this registry under
        ``prefix``-renamed instrument names (``"rank0:halo.bytes"``).

        Counters add; gauges keep the merged-in last value and the max of
        both high-water marks; histograms fold count/total/min/max (the
        streaming summary is associative, so the merge is exact)."""
        snap = other.snapshot()
        for name, value in snap["counters"].items():
            self.counter(f"{prefix}{name}").add(value)
        for name, g in snap["gauges"].items():
            gauge = self.gauge(f"{prefix}{name}")
            gauge.set(g["max"])
            gauge.set(g["value"])
        for name, h in snap["histograms"].items():
            if h["count"] == 0:
                continue
            hist = self.histogram(f"{prefix}{name}")
            with self._lock:
                hist.count += h["count"]
                hist.total += h["total"]
                hist.min = min(hist.min, h["min"])
                hist.max = max(hist.max, h["max"])

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[str]:
        yield from sorted({*self._counters, *self._gauges, *self._histograms})

    def clear(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict:
        """One consistent, JSON-friendly view of every instrument."""
        with self._lock:
            return {
                "counters": {n: c._value for n, c in sorted(self._counters.items())},
                "gauges": {
                    n: {"value": g._value, "max": g._max}
                    for n, g in sorted(self._gauges.items())
                },
                "histograms": {
                    n: h.summary() for n, h in sorted(self._histograms.items())
                },
            }

    def to_text(self) -> str:
        """Render the registry as an aligned summary table."""
        snap = self.snapshot()
        lines = ["Metrics:"]
        for name, value in snap["counters"].items():
            shown = (
                bytes_to_human(int(value)) if name.endswith(("bytes", "_bytes"))
                else f"{value:g}"
            )
            lines.append(f"  {name:<32} {shown}")
        for name, g in snap["gauges"].items():
            lines.append(f"  {name:<32} {g['value']:g} (max {g['max']:g})")
        for name, h in snap["histograms"].items():
            if h["count"] == 0:
                continue
            lines.append(
                f"  {name:<32} n={h['count']} mean={h['mean']:.4g} "
                f"min={h['min']:.4g} max={h['max']:.4g}"
            )
        if len(lines) == 1:
            lines.append("  (none)")
        return "\n".join(lines)


__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]
