"""The span/marker recorder behind ``repro.trace``.

A :class:`Tracer` collects :class:`TraceEvent` records — nested spans, NVTX-
style instant markers, and pre-timed events re-emitted from the device
simulator — on named tracks grouped into processes, mirroring the NVIDIA
Visual Profiler layout the paper reads its Figures 11/14/15 off: one track
per simulated stream, one per MPI rank, one for host phases.

Time domain
-----------
The tracer samples a pluggable ``clock``. By default that is
``time.perf_counter`` (wall time of the harness), but the first
:class:`~repro.acc.runtime.Runtime` a tracer is attached to rebinds it to
the device's *simulated* clock (unless the caller passed an explicit clock),
so spans around pipeline phases measure the same modelled seconds the
profiler and the speedup tables report. Pre-timed events
(:meth:`Tracer.emit`) always carry their own timestamps.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

#: event kinds
SPAN = "span"
INSTANT = "instant"


@dataclass(frozen=True)
class TraceEvent:
    """One timeline record.

    ``track`` is the timeline row (Perfetto thread); ``process`` groups
    tracks (Perfetto process): e.g. ``("gpu:Tesla K40", "queue:1")`` or
    ``("mpi", "rank:0")``. ``cat`` is the event category used for grouping
    in summaries (``phase`` | ``acc`` | ``kernel`` | ``h2d`` | ``d2h`` |
    ``halo`` | ``marker`` ...).
    """

    name: str
    cat: str
    process: str
    track: str
    start: float
    end: float
    kind: str = SPAN
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Tracer:
    """Thread-safe event recorder with a metrics registry attached.

    A disabled tracer (``enabled=False``) accepts every call and records
    nothing, so instrumented code paths never need to branch; the shared
    :data:`NULL_TRACER` instance is the conventional "tracing off" default.
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        enabled: bool = True,
    ):
        # import here so repro.trace.metrics can stay tracer-agnostic
        from repro.trace.metrics import MetricsRegistry

        self._clock = clock if clock is not None else time.perf_counter
        self._clock_bound = clock is not None
        self.enabled = enabled
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []
        self.metrics = MetricsRegistry()

    # ------------------------------------------------------------------
    # clock
    # ------------------------------------------------------------------
    def now(self) -> float:
        return self._clock()

    def bind_default_clock(self, clock: Callable[[], float]) -> None:
        """Adopt ``clock`` unless the constructor already received one (or a
        previous binding won). Used by the acc runtime to put spans on the
        device's simulated timeline."""
        if not self._clock_bound:
            self._clock = clock
            self._clock_bound = True

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def _record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    @contextmanager
    def span(
        self,
        name: str,
        *,
        process: str = "host",
        track: str = "host",
        cat: str = "phase",
        **args: Any,
    ) -> Iterator[None]:
        """Record a nested span around a ``with`` body."""
        if not self.enabled:
            yield
            return
        start = self._clock()
        try:
            yield
        finally:
            end = self._clock()
            self._record(
                TraceEvent(
                    name, cat, process, track, start, max(end, start), SPAN, args
                )
            )

    def emit(
        self,
        name: str,
        start: float,
        end: float,
        *,
        process: str = "host",
        track: str = "host",
        cat: str = "span",
        **args: Any,
    ) -> None:
        """Record a pre-timed span (e.g. a device event whose start/end come
        from the stream timeline rather than this tracer's clock)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(name, cat, process, track, start, max(end, start), SPAN, args)
        )

    def instant(
        self,
        name: str,
        *,
        process: str = "host",
        track: str = "host",
        cat: str = "marker",
        **args: Any,
    ) -> None:
        """Record an NVTX-style zero-duration marker at the current clock."""
        if not self.enabled:
            return
        t = self._clock()
        self._record(TraceEvent(name, cat, process, track, t, t, INSTANT, args))

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    @property
    def events(self) -> list[TraceEvent]:
        with self._lock:
            return list(self._events)

    def find(self, name: str) -> list[TraceEvent]:
        """All recorded events with the given name, in recording order."""
        return [e for e in self.events if e.name == name]

    def by_category(self, cat: str) -> list[TraceEvent]:
        return [e for e in self.events if e.cat == cat]

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
        self.metrics.clear()

    # ------------------------------------------------------------------
    # merging
    # ------------------------------------------------------------------
    def absorb(self, other: "Tracer", process_prefix: str = "") -> int:
        """Copy every event of ``other`` into this tracer, optionally
        renaming processes with ``process_prefix`` (e.g. ``"rank0:"``) so
        per-rank timelines stay distinguishable after the merge into one
        Perfetto export. Timestamps are taken verbatim — the caller is
        responsible for the clocks being comparable (all simulated device
        clocks start at 0, which is exactly what a side-by-side per-rank
        view wants). The other tracer's metrics registry merges in too,
        under ``process_prefix``-renamed instrument names, so a merged
        multi-rank summary shows every rank's counters side by side.
        Returns the number of events absorbed."""
        absorbed = other.events
        if process_prefix:
            from dataclasses import replace

            absorbed = [
                replace(e, process=f"{process_prefix}{e.process}")
                for e in absorbed
            ]
        with self._lock:
            self._events.extend(absorbed)
        self.metrics.absorb(other.metrics, prefix=process_prefix)
        return len(absorbed)


#: shared always-off tracer: the default for instrumented constructors, so
#: call sites run unconditionally at negligible cost. Do not enable it.
NULL_TRACER = Tracer(enabled=False)


__all__ = ["SPAN", "INSTANT", "TraceEvent", "Tracer", "NULL_TRACER"]
