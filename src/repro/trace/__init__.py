"""End-to-end tracing and metrics for the reproduction harness.

The paper's whole optimization narrative is read off the NVIDIA Visual
Profiler (its Figures 11, 14 and 15 are profiler screenshots); this package
is the reproduction's equivalent instrument: a zero-dependency span/marker
:class:`Tracer` with a thread-safe :class:`MetricsRegistry`, threaded
through the OpenACC runtime, the device simulator, the MPI substrate and
the RTM pipeline, with Chrome/Perfetto ``trace_event`` JSON, JSONL and
text-summary exporters.

Quickstart::

    from repro.trace import Tracer, write_perfetto
    tracer = Tracer()
    with tracer.span("forward_step", cat="phase", shot=3):
        ...
    write_perfetto(tracer, "trace.json")   # open at ui.perfetto.dev

or from the command line: ``python -m repro trace iso2d --out trace.json``.
"""

from repro.trace.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.trace.tracer import INSTANT, NULL_TRACER, SPAN, TraceEvent, Tracer
from repro.trace.export import (
    summary_text,
    to_jsonl,
    to_perfetto,
    validate_perfetto,
    write_jsonl,
    write_perfetto,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "TraceEvent",
    "NULL_TRACER",
    "SPAN",
    "INSTANT",
    "summary_text",
    "to_jsonl",
    "to_perfetto",
    "validate_perfetto",
    "write_jsonl",
    "write_perfetto",
]
