"""Trace exporters: Chrome/Perfetto ``trace_event`` JSON, flat JSONL, and a
text summary in the style of the paper's Visual Profiler figures.

The Perfetto export maps each :class:`~repro.trace.tracer.TraceEvent`
``process`` to a trace-event *pid* and each ``track`` to a *tid*, emits
``B``/``E`` duration pairs for spans and ``i`` events for instant markers,
and carries the final metrics snapshot under a ``metrics`` top-level key
(ignored by viewers, consumed by tooling). Load the file at
https://ui.perfetto.dev or ``chrome://tracing``.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.trace.tracer import INSTANT, SPAN, Tracer, TraceEvent
from repro.utils.units import seconds_to_human


def _ts_us(seconds: float) -> float:
    """Microsecond timestamp with nanosecond resolution."""
    return round(seconds * 1e6, 3)


def _track_ids(
    events: Iterable[TraceEvent],
) -> tuple[dict[str, int], dict[tuple[str, str], int]]:
    """Stable pid per process and tid per (process, track)."""
    processes = sorted({e.process for e in events})
    pids = {p: i + 1 for i, p in enumerate(processes)}
    tids: dict[tuple[str, str], int] = {}
    for proc in processes:
        tracks = sorted({e.track for e in events if e.process == proc})
        for i, track in enumerate(tracks):
            tids[(proc, track)] = i + 1
    return pids, tids


def _span_pairs(spans: list[TraceEvent], t0: float, pid: int, tid: int) -> list[dict]:
    """``B``/``E`` pairs for one track's spans, in nondecreasing ``ts`` order.

    Spans on a track are expected to be properly nested (with-statement
    scoping and engine serialization guarantee it); a partially overlapping
    span is clipped to its enclosing span so the output always forms a valid
    stack.
    """
    ordered = sorted(
        enumerate(spans), key=lambda p: (p[1].start, -(p[1].duration), p[0])
    )
    out: list[dict] = []
    stack: list[float] = []  # open-span end times

    def close_until(t: float) -> None:
        while stack and stack[-1] <= t:
            out.append({"ph": "E", "ts": _ts_us(stack.pop() - t0), "pid": pid, "tid": tid})

    for _, ev in ordered:
        close_until(ev.start)
        end = min(ev.end, stack[-1]) if stack else ev.end
        entry = {
            "name": ev.name,
            "cat": ev.cat,
            "ph": "B",
            "ts": _ts_us(ev.start - t0),
            "pid": pid,
            "tid": tid,
        }
        if ev.args:
            entry["args"] = dict(ev.args)
        out.append(entry)
        stack.append(end)
    close_until(float("inf"))
    return out


def to_perfetto(tracer: Tracer) -> dict:
    """Render the tracer's events as a ``trace_event`` JSON object."""
    events = tracer.events
    pids, tids = _track_ids(events)
    t0 = min((e.start for e in events), default=0.0)

    trace_events: list[dict] = []
    for proc, pid in pids.items():
        trace_events.append(
            {"ph": "M", "name": "process_name", "pid": pid, "args": {"name": proc}}
        )
    for (proc, track), tid in tids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pids[proc],
                "tid": tid,
                "args": {"name": track},
            }
        )

    timed: list[tuple[float, int, int, dict]] = []  # (ts, track key, seq, payload)
    for key, tid in tids.items():
        proc, track = key
        pid = pids[proc]
        track_events = [e for e in events if e.process == proc and e.track == track]
        spans = [e for e in track_events if e.kind == SPAN]
        seq = 0
        for entry in _span_pairs(spans, t0, pid, tid):
            timed.append((entry["ts"], pid * 10_000 + tid, seq, entry))
            seq += 1
        for ev in (e for e in track_events if e.kind == INSTANT):
            entry = {
                "name": ev.name,
                "cat": ev.cat,
                "ph": "i",
                "s": "t",
                "ts": _ts_us(ev.start - t0),
                "pid": pid,
                "tid": tid,
            }
            if ev.args:
                entry["args"] = dict(ev.args)
            timed.append((entry["ts"], pid * 10_000 + tid, seq, entry))
            seq += 1
    timed.sort(key=lambda item: (item[0], item[1], item[2]))
    trace_events.extend(entry for _, _, _, entry in timed)

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "metrics": tracer.metrics.snapshot(),
    }


def validate_perfetto(trace: dict) -> None:
    """Raise ``ValueError`` unless ``trace`` is schema-valid: timestamps
    sorted nondecreasing, and every ``B`` matched by an ``E`` per track."""
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace has no traceEvents list")
    last_ts = float("-inf")
    stacks: dict[tuple[int, int], list[str]] = {}
    for ev in events:
        ph = ev.get("ph")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)):
            raise ValueError(f"event without numeric ts: {ev}")
        if ts < last_ts:
            raise ValueError(f"timestamps not sorted at ts={ts} (< {last_ts})")
        last_ts = ts
        key = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            stacks.setdefault(key, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = stacks.get(key)
            if not stack:
                raise ValueError(f"E without matching B on pid/tid {key} at ts={ts}")
            stack.pop()
        elif ph not in ("i", "C", "X"):
            raise ValueError(f"unexpected phase '{ph}' in {ev}")
    for key, stack in stacks.items():
        if stack:
            raise ValueError(f"unclosed spans {stack} on pid/tid {key}")


def write_perfetto(tracer: Tracer, path: str) -> dict:
    """Export, self-validate and write ``path``; returns the trace object."""
    trace = to_perfetto(tracer)
    validate_perfetto(trace)
    with open(path, "w") as f:
        json.dump(trace, f)
    return trace


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def to_jsonl(tracer: Tracer) -> str:
    """Flat event log: one JSON object per line (metrics snapshot last)."""
    lines = []
    for ev in sorted(tracer.events, key=lambda e: (e.start, e.end)):
        lines.append(
            json.dumps(
                {
                    "name": ev.name,
                    "cat": ev.cat,
                    "process": ev.process,
                    "track": ev.track,
                    "kind": ev.kind,
                    "start_s": ev.start,
                    "dur_s": ev.duration,
                    "args": dict(ev.args),
                }
            )
        )
    lines.append(json.dumps({"kind": "metrics", **tracer.metrics.snapshot()}))
    return "\n".join(lines) + "\n"


def write_jsonl(tracer: Tracer, path: str) -> None:
    with open(path, "w") as f:
        f.write(to_jsonl(tracer))


# ----------------------------------------------------------------------
# text summary
# ----------------------------------------------------------------------
def summary_text(tracer: Tracer, title: str = "Trace summary") -> str:
    """Per-category time-share tables in the paper's profiler-figure style
    (``73.4% [8502] kernel_2d_139_gpu``), followed by the metrics table."""
    events = [e for e in tracer.events if e.kind == SPAN]
    lines = [title, "=" * len(title)]
    by_cat: dict[str, dict[str, tuple[int, float]]] = {}
    for ev in events:
        per_name = by_cat.setdefault(ev.cat, {})
        count, total = per_name.get(ev.name, (0, 0.0))
        per_name[ev.name] = (count + 1, total + ev.duration)
    for cat in sorted(by_cat):
        per_name = by_cat[cat]
        cat_total = sum(t for _, t in per_name.values())
        lines.append(f"{cat} ({seconds_to_human(cat_total)}):")
        ranked = sorted(per_name.items(), key=lambda kv: kv[1][1], reverse=True)
        for name, (count, total) in ranked:
            share = (total / cat_total) if cat_total > 0 else 0.0
            lines.append(
                f"  {100 * share:5.1f}% [{count}] {name} "
                f"({seconds_to_human(total)})"
            )
    if len(lines) == 2:
        lines.append("(no spans recorded)")
    lines.append(tracer.metrics.to_text())
    return "\n".join(lines)


__all__ = [
    "to_perfetto",
    "write_perfetto",
    "validate_perfetto",
    "to_jsonl",
    "write_jsonl",
    "summary_text",
]
