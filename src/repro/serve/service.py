"""The shot-parallel RTM service: a deterministic survey scheduler.

Production RTM is embarrassingly parallel across shots — Section 3.2's
image is "summed over the sources s" — so the operational problem is not
the stencil, it is the *farm*: admit surveys, shard their shots across
worker nodes, survive the workers that die mid-shot, and still produce
an image bitwise-equal to the fault-free serial stack.

:class:`SurveyScheduler` is that farm, run entirely on simulated time:

* **Dispatch** is an event loop over a bounded :class:`~repro.serve.
  queue.ShotQueue`. Each shot's outcome and duration are computed at
  dispatch (the physics runs eagerly; the *schedule* replays it on the
  simulated clock), completions retire in ``(time, worker)`` order, and
  no step of the loop consults a wall clock or unseeded RNG — the same
  seed and config reproduce the same timeline exactly.
* **Execution** wraps every worker in the resilience ladder. A worker is
  one simulated node: one card by default (shots run under
  :class:`~repro.resilience.recovery.ResilientPipeline`, whose contract
  is a bitwise-identical image under recovered faults), or a
  multi-card node (``gpus > 1``) whose node harness is a
  :class:`~repro.resilience.recovery.ResilientMultiGpu` — a dead card
  re-decomposes onto the survivors and the run is verified against the
  decomposition-free oracle. A :class:`~repro.utils.errors.
  DeviceLostError` that escapes the ladder kills the worker; its
  in-flight shot is requeued (front of queue, backoff-charged) to the
  survivors.
* **Stacking** accumulates raw shot images in canonical shot order, not
  completion order — float32 addition does not commute, so this is what
  makes the image invariant to worker count, arrival order and fault
  plan.
* **Poison shots** (:data:`~repro.resilience.faults.SHOT_POISON`) fail
  on every node; after ``quarantine_after`` failures the shot is
  quarantined and the survey degrades to the survivors' stack instead of
  poisoning the whole service.

The scheduler never deadlocks: with every worker dead and shots still
queued, the remaining jobs are counted as *stranded* and the run ends
with a degraded (but reported) result.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import GPUOptions, RTMConfig
from repro.core.imaging import mute_shallow, normalize_image
from repro.core.platform import CRAY_K40, Platform
from repro.observe import runlog
from repro.observe.ledger import plan_fingerprint
from repro.resilience.faults import SHOT_POISON, FaultPlan, FaultSpec
from repro.resilience.injector import FaultInjector
from repro.resilience.recovery import (
    BackoffPolicy,
    RecoveryStats,
    ResilientMultiGpu,
    ResilientPipeline,
)
from repro.serve.cache import ResultCache, ShotKey, model_hash
from repro.serve.queue import PoisonShotError, ShotJob, ShotQueue
from repro.utils.errors import ConfigurationError, DeviceLostError, ReproError

#: simulated seconds to detect a dead worker and requeue its shot (a
#: fixed deterministic charge: the failed pipeline's own clock dies with
#: the card, so the service bills a constant detection latency instead)
DEATH_DETECT_S = 1e-3
#: simulated seconds to detect a poisoned shot's failure
POISON_DETECT_S = 2.5e-4
#: the multi-card node harness per shot: a short decomposed sweep whose
#: answer is verified against the decomposition-free oracle
NODE_SHAPE = (24, 24)
NODE_NT = 8
NODE_SNAP = 4


@dataclass
class WorkerNode:
    """One simulated worker node of the farm."""

    wid: int
    gpus: int
    injector: FaultInjector
    backoff: BackoffPolicy
    alive: bool = True
    busy_until: float = 0.0
    shots_done: int = 0
    stats: RecoveryStats = field(default_factory=RecoveryStats)
    #: multi-card node harness (``gpus > 1``), built lazily
    node: ResilientMultiGpu | None = None
    #: the oracle's view of the node harness field
    node_expected: np.ndarray | None = None


@dataclass
class _InFlight:
    """One dispatched shot with its precomputed outcome."""

    job: ShotJob
    worker: WorkerNode
    done_s: float
    outcome: str  # 'ok' | 'dead' | 'poison'
    image: np.ndarray | None
    device_s: float


@dataclass
class _Survey:
    survey_id: str
    config: RTMConfig
    jobs: list[ShotJob]
    primary: bool


@dataclass
class ServiceResult:
    """One scheduler run: every job's terminal state plus the stacks."""

    workers: int
    gpus: int
    makespan_s: float
    jobs: list[ShotJob]
    surveys: dict[str, "_Survey"]
    cache: ResultCache
    queue_counters: dict
    recovery: RecoveryStats
    workers_lost: int
    quarantined: list[int]
    stranded: int
    images: dict[str, np.ndarray] = field(default_factory=dict)
    stacks: dict[str, np.ndarray] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def completed(self, survey_id: str | None = None) -> list[ShotJob]:
        out = [j for j in self.jobs if j.status == "completed"]
        if survey_id is not None:
            out = [j for j in out if j.survey == survey_id]
        return out

    def completed_shots(self, survey_id: str) -> list[int]:
        """Canonically ordered shot indices that completed for a survey."""
        return sorted(j.shot for j in self.completed(survey_id))

    # ------------------------------------------------------------------
    def latencies_s(self) -> list[float]:
        return sorted(
            j.latency_s for j in self.jobs if j.latency_s is not None
        )

    @staticmethod
    def _percentile(ordered: list[float], q: float) -> float:
        """Nearest-rank percentile (deterministic, interpolation-free)."""
        if not ordered:
            return 0.0
        rank = max(1, int(np.ceil(q * len(ordered))))
        return float(ordered[rank - 1])

    # ------------------------------------------------------------------
    def metrics(self) -> dict:
        lat = self.latencies_s()
        submitted = len(self.jobs)
        done = len(self.completed())
        out = {
            "shots_submitted": float(submitted),
            "shots_completed": float(done),
            "completed_fraction": done / submitted if submitted else 1.0,
            "quarantined": float(len(self.quarantined)),
            "stranded": float(self.stranded),
            "workers_lost": float(self.workers_lost),
            "makespan_s": self.makespan_s,
            "shots_per_hour": (
                done / self.makespan_s * 3600.0 if self.makespan_s > 0 else 0.0
            ),
            "queue_p50_s": self._percentile(lat, 0.50),
            "queue_p95_s": self._percentile(lat, 0.95),
            "queue_max_s": lat[-1] if lat else 0.0,
        }
        out.update(self.queue_counters)
        out.update(self.cache.counters())
        out.update(self.recovery.counts())
        out["recovery_requeues"] = self.queue_counters.get("requeued", 0.0)
        return out


class SurveyScheduler:
    """Deterministic shot-level scheduler over simulated worker nodes.

    Parameters
    ----------
    workers:
        Number of simulated worker nodes.
    gpus:
        Cards per node. ``1`` (default) runs each shot under
        :class:`ResilientPipeline`; ``> 1`` adds the multi-card node
        harness per shot (see the module docstring).
    capacity / policy:
        The bounded queue's size and backpressure policy
        (``reject`` | ``shed``).
    plan:
        A :class:`~repro.resilience.faults.FaultPlan`. Device-fault specs
        are routed to the worker named by their ``rank`` (``None`` means
        worker 0); :data:`SHOT_POISON` specs poison the shot index named
        by their ``rank``.
    seed:
        Seeds the per-worker backoff policies and the service-level
        requeue backoff stream.
    quarantine_after:
        Execution failures before a poisoned shot is quarantined.
    """

    def __init__(
        self,
        workers: int = 2,
        gpus: int = 1,
        capacity: int = 64,
        policy: str = "reject",
        plan: FaultPlan | None = None,
        seed: int = 0,
        quarantine_after: int = 3,
        gpu_options: GPUOptions | None = None,
        platform: Platform = CRAY_K40,
        backoff: BackoffPolicy | None = None,
        tracer=None,
    ):
        if workers < 1:
            raise ConfigurationError("need at least one worker")
        if gpus < 1:
            raise ConfigurationError("gpus per worker must be >= 1")
        if quarantine_after < 1:
            raise ConfigurationError("quarantine_after must be >= 1")
        self.gpus = int(gpus)
        self.queue = ShotQueue(capacity=capacity, policy=policy)
        self.cache = ResultCache()
        self.plan = plan if plan is not None else FaultPlan()
        self.seed = int(seed)
        self.quarantine_after = int(quarantine_after)
        self.options = gpu_options if gpu_options is not None else GPUOptions()
        self.platform = platform
        self.tracer = tracer
        base = backoff if backoff is not None else BackoffPolicy(seed=seed)
        self.backoff = base
        self._requeue_rng = base.rng()

        self.poison_shots = frozenset(
            (s.rank if s.rank is not None else 0)
            for s in self.plan.specs
            if s.kind == SHOT_POISON
        )
        self.workers = [
            self._build_worker(w, workers, base) for w in range(workers)
        ]
        self._surveys: dict[str, _Survey] = {}
        self._jobs: list[ShotJob] = []
        self._inflight: list[_InFlight] = []
        self._inflight_keys: dict[ShotKey, list[ShotJob]] = {}
        self._shot_counter = 0
        self.workers_lost = 0
        self.quarantined: list[int] = []
        self.stranded = 0
        self.now = 0.0

    # ------------------------------------------------------------------
    def _build_worker(
        self, wid: int, nworkers: int, base: BackoffPolicy
    ) -> WorkerNode:
        """Route the plan's device specs to this worker and arm its
        injector. A spec's ``rank`` names the worker (``None`` -> worker
        0); inside the node the spec is un-ranked so it can fire on any
        of the node's cards."""
        specs = []
        for s in self.plan.specs:
            if s.kind == SHOT_POISON:
                continue
            target = (s.rank if s.rank is not None else 0) % nworkers
            if target == wid:
                specs.append(FaultSpec(s.kind, s.op_index, s.count, rank=None))
        plan = FaultPlan(seed=self.plan.seed, specs=tuple(specs))
        injector = FaultInjector(plan, tracer=self.tracer)
        backoff = BackoffPolicy(
            max_retries=base.max_retries,
            base_delay_s=base.base_delay_s,
            factor=base.factor,
            jitter=base.jitter,
            seed=base.seed + 7919 * (wid + 1),
        )
        return WorkerNode(
            wid=wid, gpus=self.gpus, injector=injector, backoff=backoff
        )

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit_survey(
        self,
        survey_id: str,
        config: RTMConfig,
        shot_x_indices: list[int],
        case: str | None = None,
        primary: bool = True,
    ) -> list[ShotJob]:
        """Admit one survey's shots (atomically under ``reject``).

        Raises :class:`~repro.serve.queue.SurveyRejectedError` when the
        batch does not fit under the ``reject`` policy; under ``shed``
        the overflow jobs come back with ``status == 'shed'``. Returns
        every job of the submission (admitted and shed alike) in
        canonical shot order.
        """
        if survey_id in self._surveys:
            raise ConfigurationError(f"survey '{survey_id}' already submitted")
        if config.model is None:
            raise ConfigurationError("survey config needs an EarthModel")
        case = case if case is not None else config.physics
        mhash = model_hash(config.model)
        phash = plan_fingerprint(self.options.plan)
        dropped = self.cache.begin_case(case, (mhash, phash))
        if dropped:
            runlog.emit("serve.invalidate", case=case, dropped=dropped)
        jobs = []
        for i, x in enumerate(shot_x_indices):
            key = ShotKey(
                case=case, model_hash=mhash, plan_hash=phash,
                shot_x=int(x), nt=config.nt,
            )
            shot = i if primary else self._shot_for_key(key, i)
            jobs.append(ShotJob(
                survey=survey_id, case=case, shot=shot, shot_x=int(x),
                key=key, submitted_s=self.now, eligible_s=self.now,
            ))
        accepted, overflow = self.queue.admit(jobs)
        if overflow:
            runlog.count("serve.shed", len(overflow))
        self._surveys[survey_id] = _Survey(
            survey_id=survey_id, config=config, jobs=jobs, primary=primary,
        )
        self._jobs.extend(jobs)
        runlog.emit(
            "serve.submit", survey=survey_id, case=case,
            shots=len(jobs), admitted=len(accepted), shed=len(overflow),
        )
        return jobs

    def _shot_for_key(self, key: ShotKey, default: int) -> int:
        """A duplicate submission reuses the primary's shot index for the
        same key, so poison routing applies to both."""
        for j in self._jobs:
            if j.key == key:
                return j.shot
        return default

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _shot_config(self, survey: _Survey, job: ShotJob) -> RTMConfig:
        config = survey.config
        depth = (
            config.source_depth_index
            if config.source_depth_index is not None
            else min(config.boundary_width + 4, config.model.grid.shape[0] - 1)
        )
        shot_cfg = RTMConfig(
            physics=config.physics,
            model=config.model,
            nt=config.nt,
            dt=config.dt,
            peak_freq=config.peak_freq,
            space_order=config.space_order,
            boundary_width=config.boundary_width,
            snap_period=config.snap_period,
            snapshot_decimate=config.snapshot_decimate,
            receivers=config.receivers,
            source_depth_index=depth,
            pml_variant=config.pml_variant,
            mute_cells=config.mute_cells,
            illumination_normalize=config.illumination_normalize,
        )
        shot_cfg.source_x_index = job.shot_x
        return shot_cfg

    def _run_node_harness(self, worker: WorkerNode) -> float:
        """``gpus > 1``: one short decomposed sweep on the node harness,
        verified against the decomposition-free oracle. Returns the node
        device seconds consumed. DeviceLostError propagates when the
        node's last card dies."""
        if worker.node is None:
            worker.node = ResilientMultiGpu(
                "isotropic", NODE_SHAPE, self.gpus,
                platform=self.platform,
                injector=worker.injector,
                backoff=worker.backoff,
                seed=self.seed + worker.wid,
                space_order=4,
                boundary_width=4,
                tracer=self.tracer,
            )
            worker.node_expected = worker.node.global_field.copy()
        t0 = worker.node.device_seconds()
        out = worker.node.run(NODE_NT, NODE_SNAP, mode="modeling")
        expected = worker.node_expected
        for _ in range(NODE_NT):
            expected = ResilientMultiGpu.reference_step(expected)
        worker.node_expected = expected
        if not np.array_equal(out, expected):
            raise ReproError(
                f"worker {worker.wid} node harness diverged from the "
                "decomposition-free oracle"
            )
        # the harness continues from its own output
        worker.node.global_field[...] = out
        worker.node._scatter()
        return worker.node.device_seconds() - t0

    def _execute(self, worker: WorkerNode, job: ShotJob) -> _InFlight:
        """Run one shot on one worker *eagerly*; the returned record
        carries the outcome and the simulated duration the event loop
        replays."""
        if job.shot in self.poison_shots:
            return _InFlight(
                job=job, worker=worker,
                done_s=self.now + POISON_DETECT_S,
                outcome="poison", image=None, device_s=POISON_DETECT_S,
            )
        survey = self._surveys[job.survey]
        shot_cfg = self._shot_config(survey, job)
        try:
            if self.gpus == 1:
                pipe = ResilientPipeline(
                    shot_cfg,
                    gpu_options=self.options,
                    platform=self.platform,
                    tracer=self.tracer,
                    injector=worker.injector,
                    backoff=worker.backoff,
                )
                result = pipe.run_rtm()
                worker.stats.absorb(pipe.stats)
                duration = result.gpu.total if result.gpu is not None else 0.0
                image = result.raw_image
            else:
                # node mode: the shot physics is pipeline-free (identical
                # on every node by construction); the node's behaviour
                # under faults — re-decomposition included — comes from
                # the verified harness, which also sets the duration
                from repro.core.rtm import run_rtm

                duration = self._run_node_harness(worker)
                result = run_rtm(
                    shot_cfg, gpu_options=None, platform=self.platform
                )
                image = result.raw_image
        except DeviceLostError:
            return _InFlight(
                job=job, worker=worker,
                done_s=self.now + DEATH_DETECT_S,
                outcome="dead", image=None, device_s=DEATH_DETECT_S,
            )
        return _InFlight(
            job=job, worker=worker, done_s=self.now + duration,
            outcome="ok", image=image, device_s=duration,
        )

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def run(self) -> ServiceResult:
        """Drain the queue to a terminal state and assemble the result."""
        if not self._surveys:
            raise ConfigurationError("run() before any submit_survey()")
        while self.queue or self._inflight:
            self._dispatch()
            if self._inflight:
                self._advance_and_complete()
                continue
            if not self.queue:
                break
            # queued shots, nothing in flight
            if not any(w.alive for w in self.workers):
                self._strand()
                break
            nxt = self.queue.next_eligible_s()
            if nxt is not None and nxt > self.now:
                self.now = nxt  # backoff backpressure: wait it out
                continue
            # eligible jobs + idle alive workers would have dispatched;
            # nothing can make progress — degrade rather than spin
            self._strand()
            break
        return self._result()

    def _dispatch(self) -> None:
        """Serve cache hits, park in-flight duplicates, and assign queued
        shots to idle workers — repeatedly, until nothing changes."""
        progressed = True
        while progressed:
            progressed = False
            # cache hits and parking consume no worker
            drained: list[ShotJob] = []
            job = self.queue.pop_eligible(self.now)
            while job is not None:
                if job.key in self._inflight_keys:
                    self._inflight_keys[job.key].append(job)
                    job.status = "parked"
                    progressed = True
                elif self.cache.peek(job.key) is not None:
                    self.cache.lookup(job.key)  # counted hit
                    self._complete(job, self.now, cache_hit=True)
                    progressed = True
                else:
                    drained.append(job)
                job = self.queue.pop_eligible(self.now)
            # put misses back in order, then hand them to idle workers
            for j in reversed(drained):
                self.queue.restore(j)
            for worker in self.workers:
                if not worker.alive or worker.busy_until > self.now:
                    continue
                job = self.queue.pop_eligible(self.now)
                if job is None:
                    break
                if job.key in self._inflight_keys or (
                    self.cache.peek(job.key) is not None
                ):
                    # raced with a previous assignment this pass
                    self.queue.restore(job)
                    continue
                self.cache.lookup(job.key)  # counted miss: real compute
                record = self._execute(worker, job)
                job.status = "running"
                job.worker = worker.wid
                worker.busy_until = record.done_s
                self._inflight.append(record)
                self._inflight_keys[job.key] = []
                progressed = True

    def _advance_and_complete(self) -> None:
        """Advance simulated time to the next completion and retire every
        record due, in (time, worker) order."""
        t = min(r.done_s for r in self._inflight)
        self.now = max(self.now, t)
        due = sorted(
            (r for r in self._inflight if r.done_s <= self.now),
            key=lambda r: (r.done_s, r.worker.wid),
        )
        for record in due:
            self._inflight.remove(record)
            self._retire(record)

    def _retire(self, record: _InFlight) -> None:
        job, worker = record.job, record.worker
        parked = self._inflight_keys.pop(job.key, [])
        if record.outcome == "ok":
            self.cache.store(job.key, record.image, record.device_s)
            worker.shots_done += 1
            self._complete(job, record.done_s, cache_hit=False)
            for twin in parked:
                hit = self.cache.lookup(twin.key)
                self._complete(
                    twin, record.done_s, cache_hit=hit is not None
                )
            return
        if record.outcome == "dead":
            worker.alive = False
            self.workers_lost += 1
            job.failed_workers.append(worker.wid)
            job.requeues += 1
            delay = self.backoff.delay(job.requeues - 1, self._requeue_rng)
            self.queue.requeue(job, record.done_s + delay)
            runlog.count("serve.requeues")
            runlog.emit(
                "serve.worker_lost", worker=worker.wid, shot=job.shot,
                survey=job.survey,
            )
            worker.stats.note(
                f"requeue shot {job.shot} after worker {worker.wid} died",
                kind="requeue",
            )
            for twin in parked:
                self.queue.restore(twin)
            return
        # poison
        job.failures += 1
        job.failed_workers.append(worker.wid)
        err = PoisonShotError(job.shot, job.failures)
        if job.failures >= self.quarantine_after:
            job.status = "quarantined"
            job.completed_s = None
            self.quarantined.append(job.shot)
            runlog.count("serve.quarantined")
            runlog.emit(
                "serve.quarantine", shot=job.shot, survey=job.survey,
                failures=job.failures, error=str(err),
            )
            for twin in parked:
                twin.status = "quarantined"
                self.quarantined.append(twin.shot)
            return
        delay = self.backoff.delay(job.failures - 1, self._requeue_rng)
        self.queue.requeue(job, record.done_s + delay)
        runlog.count("serve.poison_retries")
        for twin in parked:
            self.queue.restore(twin)

    def _complete(self, job: ShotJob, at: float, cache_hit: bool) -> None:
        job.status = "completed"
        job.completed_s = at
        job.cache_hit = cache_hit
        runlog.count("serve.completed")

    def _strand(self) -> None:
        """Survey-level degrade: no worker can make progress; the queued
        remainder is counted, not deadlocked on."""
        leftovers = self.queue.drain()
        for job in leftovers:
            job.status = "stranded"
        self.stranded += len(leftovers)
        if leftovers:
            runlog.count("serve.stranded", len(leftovers))
            runlog.emit(
                "serve.degrade", stranded=len(leftovers),
                reason="no surviving workers",
            )

    # ------------------------------------------------------------------
    def _result(self) -> ServiceResult:
        recovery = RecoveryStats()
        for w in self.workers:
            recovery.absorb(w.stats)
            if w.node is not None:  # node-harness recovery (gpus > 1)
                recovery.absorb(w.node.stats)
        result = ServiceResult(
            workers=len(self.workers),
            gpus=self.gpus,
            makespan_s=self.now,
            jobs=list(self._jobs),
            surveys=dict(self._surveys),
            cache=self.cache,
            queue_counters=self.queue.counters(),
            recovery=recovery,
            workers_lost=self.workers_lost,
            quarantined=sorted(set(self.quarantined)),
            stranded=self.stranded,
        )
        for sid, survey in self._surveys.items():
            stack, image = self._stack_survey(survey)
            if stack is not None:
                result.stacks[sid] = stack
                result.images[sid] = image
        return result

    def _stack_survey(self, survey: _Survey):
        """Stack a survey's completed shots in canonical shot order —
        the float32 sum order of the serial :func:`~repro.core.survey.
        run_survey` loop — then normalise and mute exactly as it does."""
        config = survey.config
        done = sorted(
            (j for j in survey.jobs if j.status == "completed"),
            key=lambda j: j.shot,
        )
        if not done:
            return None, None
        stacked = np.zeros(config.model.grid.shape, dtype=np.float32)
        for job in done:
            entry = self.cache.peek(job.key)
            if entry is None:  # invalidated after completion: recompute?
                raise ConfigurationError(
                    f"completed shot {job.shot} lost its cache entry"
                )
            stacked += entry.image
        mute = (
            config.mute_cells
            if config.mute_cells is not None
            else config.boundary_width + 8
        )
        image = mute_shallow(normalize_image(stacked.copy()), mute)
        return stacked, image


__all__ = [
    "DEATH_DETECT_S",
    "POISON_DETECT_S",
    "WorkerNode",
    "ServiceResult",
    "SurveyScheduler",
]
