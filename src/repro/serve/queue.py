"""Admission control and bounded backpressure for the shot scheduler.

A survey submission is a *batch* of shot jobs. Admission is atomic under
the ``reject`` policy — either the whole survey fits in the bounded
queue or none of it is enqueued and the caller gets a typed
:class:`SurveyRejectedError` — and best-effort under the ``shed``
policy, which admits the prefix that fits and reports the overflow
shots as shed (counted, typed, never silently dropped).

Fault-path re-entries (:meth:`ShotQueue.requeue`) bypass admission:
a requeued shot was already admitted once and is bounded by the
in-flight count, so counting it against capacity could deadlock the
drain of a dying worker. Requeues go to the *front* of the queue
(deterministic, and a recovered shot should not wait behind the whole
backlog a second time).

Everything here is deterministic: no wall clock, no RNG — eligibility
times are simulated seconds assigned by the scheduler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.serve.cache import ShotKey
from repro.utils.errors import ConfigurationError, ReproError


class AdmissionError(ReproError):
    """Base class for admission-control refusals (backpressure)."""


class SurveyRejectedError(AdmissionError):
    """A whole-survey submission did not fit the bounded queue under the
    ``reject`` policy. Nothing was enqueued."""

    def __init__(self, survey: str, requested: int, free: int):
        self.survey = survey
        self.requested = int(requested)
        self.free = int(free)
        super().__init__(
            f"survey '{survey}' rejected: {requested} shot(s) requested, "
            f"{free} queue slot(s) free"
        )


class QueueFullError(AdmissionError):
    """A single shot push found the bounded queue full."""

    def __init__(self, capacity: int):
        self.capacity = int(capacity)
        super().__init__(f"shot queue full (capacity {capacity})")


class PoisonShotError(ReproError):
    """A poisoned shot failed (it fails on *every* node it lands on)."""

    def __init__(self, shot: int, attempt: int):
        self.shot = int(shot)
        self.attempt = int(attempt)
        super().__init__(
            f"shot {shot} is poisoned (failure {attempt})"
        )


@dataclass
class ShotJob:
    """One shot of one survey submission, as the queue and scheduler see
    it. ``shot`` is the canonical shot index within its survey — the
    stacking order — and stays fixed across requeues."""

    survey: str
    case: str
    shot: int
    shot_x: int
    key: ShotKey
    submitted_s: float = 0.0
    #: simulated time before which the job may not be dispatched (the
    #: service-level backoff charge on requeued shots)
    eligible_s: float = 0.0
    #: execution failures so far (poison detection; dead-worker requeues
    #: are not the job's fault and do not count)
    failures: int = 0
    #: times this job re-entered the queue after a worker loss
    requeues: int = 0
    #: workers that failed while this job was in flight on them
    failed_workers: list = field(default_factory=list)
    #: terminal state: completed | quarantined | shed | stranded
    status: str = "queued"
    completed_s: float | None = None
    cache_hit: bool = False
    worker: int | None = None

    @property
    def latency_s(self) -> float | None:
        if self.completed_s is None:
            return None
        return self.completed_s - self.submitted_s


class ShotQueue:
    """Bounded deterministic FIFO of :class:`ShotJob` with batch
    admission and typed backpressure."""

    POLICIES = ("reject", "shed")

    def __init__(self, capacity: int = 64, policy: str = "reject"):
        if capacity < 1:
            raise ConfigurationError("queue capacity must be >= 1")
        if policy not in self.POLICIES:
            raise ConfigurationError(
                f"unknown queue policy '{policy}' "
                f"(expected one of: {', '.join(self.POLICIES)})"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self._items: deque[ShotJob] = deque()
        self.admitted = 0
        self.rejected_surveys = 0
        self.rejected_shots = 0
        self.shed = 0
        self.requeued = 0
        self.max_depth = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def free(self) -> int:
        return self.capacity - len(self._items)

    # ------------------------------------------------------------------
    def admit(self, jobs: list[ShotJob]) -> tuple[list[ShotJob], list[ShotJob]]:
        """Admit one survey's batch; returns ``(accepted, shed)``.

        ``reject`` policy: all-or-nothing — raises
        :class:`SurveyRejectedError` (counting the refused shots) when the
        batch does not fit. ``shed`` policy: admits the prefix that fits
        and returns the overflow, marked ``shed``.
        """
        if not jobs:
            raise ConfigurationError("cannot admit an empty survey")
        if self.policy == "reject" and len(jobs) > self.free:
            self.rejected_surveys += 1
            self.rejected_shots += len(jobs)
            raise SurveyRejectedError(jobs[0].survey, len(jobs), self.free)
        accepted = jobs[: self.free]
        overflow = jobs[self.free:]
        for job in accepted:
            self._items.append(job)
        self.admitted += len(accepted)
        for job in overflow:
            job.status = "shed"
        self.shed += len(overflow)
        self.max_depth = max(self.max_depth, len(self._items))
        return accepted, overflow

    def push(self, job: ShotJob) -> None:
        """Admit one shot (single-job admission; reject policy semantics)."""
        if self.free < 1:
            self.rejected_shots += 1
            raise QueueFullError(self.capacity)
        self._items.append(job)
        self.admitted += 1
        self.max_depth = max(self.max_depth, len(self._items))

    def requeue(self, job: ShotJob, eligible_s: float, front: bool = True) -> None:
        """Fault-path re-entry: not subject to capacity (the job already
        holds an admitted slot conceptually; counting it again could
        deadlock the drain of a dying worker)."""
        job.eligible_s = float(eligible_s)
        job.status = "queued"
        job.worker = None
        if front:
            self._items.appendleft(job)
        else:
            self._items.append(job)
        self.requeued += 1
        self.max_depth = max(self.max_depth, len(self._items))

    def restore(self, job: ShotJob) -> None:
        """Put a parked job back at the front without counting a requeue
        (its in-flight twin failed; the job itself never ran)."""
        job.status = "queued"
        self._items.appendleft(job)
        self.max_depth = max(self.max_depth, len(self._items))

    # ------------------------------------------------------------------
    def pop_eligible(self, now: float) -> ShotJob | None:
        """Remove and return the first job whose ``eligible_s <= now``;
        None when nothing is eligible yet (backpressure from backoff)."""
        for i, job in enumerate(self._items):
            if job.eligible_s <= now:
                del self._items[i]
                return job
        return None

    def next_eligible_s(self) -> float | None:
        """The earliest eligibility time among queued jobs (None if empty)."""
        if not self._items:
            return None
        return min(job.eligible_s for job in self._items)

    def drain(self) -> list[ShotJob]:
        """Remove and return every queued job (survey-level degrade when
        no workers survive)."""
        out = list(self._items)
        self._items.clear()
        return out

    def counters(self) -> dict:
        return {
            "admitted": float(self.admitted),
            "rejected_surveys": float(self.rejected_surveys),
            "rejected_shots": float(self.rejected_shots),
            "shed": float(self.shed),
            "requeued": float(self.requeued),
            "queue_max_depth": float(self.max_depth),
        }


__all__ = [
    "AdmissionError",
    "SurveyRejectedError",
    "QueueFullError",
    "PoisonShotError",
    "ShotJob",
    "ShotQueue",
]
