"""The serve campaign behind ``python -m repro serve``.

For each 2-D seed case the campaign:

1. runs the **fault-free serial golden** — :func:`~repro.core.survey.
   run_survey` with no GPU pipeline, the pure-physics stack every
   service run must reproduce bitwise;
2. for each requested worker count, builds a fresh
   :class:`~repro.serve.service.SurveyScheduler` (fresh result cache —
   the cache is the thing under test, so it never leaks across points),
   submits the survey plus (by default) a duplicate submission to
   exercise the cache/coalescing path, and drains it under the given
   fault plan;
3. verifies the service's canonical-order stack and final image against
   the golden — *bitwise*, not allclose: shot physics is worker-
   invariant and the stack order is pinned, so anything weaker would
   hide a scheduling bug. With poisoned shots the comparison degrades to
   the golden stack of the surviving shots (the quarantine contract);
4. appends one ``serve`` record per (case, workers) point to the run
   ledger and aggregates everything into ``BENCH_service.json``.

Everything is a pure function of (cases, workers, shots, nt, faults,
seed): identical inputs produce identical BENCH documents.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.config import RTMConfig
from repro.core.survey import run_survey, shot_line
from repro.resilience.faults import FaultPlan, parse_faults
from repro.serve.service import SurveyScheduler
from repro.utils.errors import ConfigurationError

#: the 2-D seed cases (:func:`run_survey` is 2-D only)
SERVE_CASES = ("iso2d", "ac2d", "el2d")
#: campaign grid size (chaos-sized: many resilient runs per sweep)
SERVE_SHAPE = (64, 64)
DEFAULT_NT = 24
DEFAULT_SHOTS = 4
DEFAULT_WORKERS = (2, 4)

BENCH_SCHEMA = 1


def serve_case_config(case: str, nt: int = DEFAULT_NT) -> RTMConfig:
    """Build one serve case's survey config (layered model, chaos-style
    acquisition)."""
    from repro.model import layered_model
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    if ndim != 2:
        raise ConfigurationError(
            f"serve case '{case}' is {ndim}-D; surveys are 2-D only"
        )
    shape = SERVE_SHAPE
    depth = shape[0] * 10.0 / 2
    model = layered_model(
        shape, spacing=10.0, interfaces=[depth],
        velocities=[1500.0, 2600.0], vs_ratio=0.5,
    )
    return RTMConfig(
        physics=physics, model=model, nt=nt, peak_freq=12.0,
        space_order=8, boundary_width=8, snap_period=4,
    )


def _golden(config: RTMConfig, xs: list[int]):
    """The fault-free serial reference: (raw stack, final image,
    per-shot raw images)."""
    ref = run_survey(config, shot_x_indices=xs)
    stacked = np.zeros(config.model.grid.shape, dtype=np.float32)
    for img in ref.shot_images:
        stacked += img
    return stacked, ref.image, ref.shot_images


def _expected_stack(
    config: RTMConfig,
    shot_images: list[np.ndarray],
    completed: list[int],
):
    """The golden stack restricted to the shots the service completed —
    summed in the same canonical order the service stacks in."""
    from repro.core.imaging import mute_shallow, normalize_image

    stacked = np.zeros(config.model.grid.shape, dtype=np.float32)
    for shot in sorted(completed):
        stacked += shot_images[shot]
    mute = (
        config.mute_cells
        if config.mute_cells is not None
        else config.boundary_width + 8
    )
    image = mute_shallow(normalize_image(stacked.copy()), mute)
    return stacked, image


def run_serve_case(
    case: str,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    shots: int = DEFAULT_SHOTS,
    nt: int = DEFAULT_NT,
    gpus: int = 1,
    plan: FaultPlan | None = None,
    seed: int = 7,
    capacity: int = 64,
    policy: str = "reject",
    resubmit: bool = True,
    quarantine_after: int = 3,
    ledger_path: str | None = None,
) -> dict:
    """Serve one case at each worker count; returns the case document."""
    from repro.observe.ledger import append_run
    from repro.observe.runlog import RunLog

    config = serve_case_config(case, nt=nt)
    xs = shot_line(config.model, shots)
    golden_stack, golden_image, shot_images = _golden(config, xs)
    plan = plan if plan is not None else FaultPlan(seed=seed)

    points = {}
    for w in sorted(set(int(n) for n in workers)):
        runlog = RunLog(
            command="serve", case=case, mode="rtm", ranks=w,
            seed=seed, gpus=gpus, faults=plan.spec_string(),
        )
        with runlog.activate():
            scheduler = SurveyScheduler(
                workers=w, gpus=gpus, capacity=capacity, policy=policy,
                plan=plan, seed=seed, quarantine_after=quarantine_after,
            )
            scheduler.submit_survey("primary", config, xs, case=case)
            if resubmit:
                scheduler.submit_survey(
                    "resubmit", config, xs, case=case, primary=False,
                )
            result = scheduler.run()

        completed = result.completed_shots("primary")
        expected_stack, expected_image = _expected_stack(
            config, shot_images, completed
        )
        stack = result.stacks.get("primary")
        image = result.images.get("primary")
        stack_ok = stack is not None and np.array_equal(stack, expected_stack)
        image_ok = image is not None and np.array_equal(image, expected_image)
        full = len(completed) == len(xs)
        # with nothing quarantined/shed/stranded, the survivors' golden
        # IS the full golden — assert against it explicitly
        if full:
            stack_ok = stack_ok and np.array_equal(stack, golden_stack)
            image_ok = image_ok and np.array_equal(image, golden_image)
        verified = bool(stack_ok and image_ok)

        metrics = result.metrics()
        metrics["verified"] = 1.0 if verified else 0.0
        append_run(ledger_path, runlog, metrics)
        points[str(w)] = {
            "workers": w,
            "verified": verified,
            "completed_shots": completed,
            "metrics": metrics,
        }

    return {
        "case": case,
        "shots": shots,
        "nt": nt,
        "shot_x_indices": list(xs),
        "points": points,
        "verified": all(p["verified"] for p in points.values()),
    }


def run_serve_sweep(
    cases: tuple[str, ...] = SERVE_CASES,
    workers: tuple[int, ...] = DEFAULT_WORKERS,
    shots: int = DEFAULT_SHOTS,
    nt: int = DEFAULT_NT,
    gpus: int = 1,
    faults: str | None = None,
    seed: int = 7,
    capacity: int = 64,
    policy: str = "reject",
    resubmit: bool = True,
    quarantine_after: int = 3,
    ledger_path: str | None = None,
) -> dict:
    """The full serve campaign; returns the BENCH_service document."""
    plan = FaultPlan(
        seed=seed, specs=parse_faults(faults) if faults else (),
    )
    results = [
        run_serve_case(
            c, workers=workers, shots=shots, nt=nt, gpus=gpus, plan=plan,
            seed=seed, capacity=capacity, policy=policy, resubmit=resubmit,
            quarantine_after=quarantine_after, ledger_path=ledger_path,
        )
        for c in cases
    ]
    fractions = [
        p["metrics"]["completed_fraction"]
        for r in results
        for p in r["points"].values()
    ]
    return {
        "schema": BENCH_SCHEMA,
        "seed": seed,
        "faults": plan.spec_string(),
        "shots": shots,
        "nt": nt,
        "gpus": gpus,
        "workers": sorted(set(int(w) for w in workers)),
        "capacity": capacity,
        "policy": policy,
        "resubmit": resubmit,
        "quarantine_after": quarantine_after,
        "verified": all(r["verified"] for r in results),
        "completed_fraction_min": min(fractions) if fractions else 1.0,
        "cases": {r["case"]: r for r in results},
    }


def _case_text(doc: dict) -> str:
    head = f"{doc['case']} ({doc['shots']} shots, nt {doc['nt']})"
    lines = [head, "-" * len(head)]
    lines.append(
        f"  {'workers':>7} {'sh/hr':>10} {'p50 ms':>8} {'p95 ms':>8} "
        f"{'max ms':>8} {'hit%':>6} {'requeue':>7} {'lost':>5} {'ok':>3}"
    )
    for key in sorted(doc["points"], key=int):
        p = doc["points"][key]
        m = p["metrics"]
        lines.append(
            f"  {p['workers']:>7} {m['shots_per_hour']:>10.1f} "
            f"{m['queue_p50_s'] * 1e3:>8.2f} {m['queue_p95_s'] * 1e3:>8.2f} "
            f"{m['queue_max_s'] * 1e3:>8.2f} "
            f"{100 * m['cache_hit_rate']:>6.1f} "
            f"{int(m['requeued']):>7} {int(m['workers_lost']):>5} "
            f"{'yes' if p['verified'] else 'NO':>3}"
        )
    return "\n".join(lines)


def run_serve_command(args) -> int:
    """``python -m repro serve`` entry point (argparse namespace in)."""
    from repro.observe.ledger import ledger_path_from_args
    from repro.observe.scaling import parse_ranks

    cases = (
        SERVE_CASES if args.case == "all" else tuple(args.case.split(","))
    )
    workers = parse_ranks(args.workers)
    ledger_path = ledger_path_from_args(args)
    doc = run_serve_sweep(
        cases=cases,
        workers=workers,
        shots=args.shots,
        nt=args.nt,
        gpus=args.gpus,
        faults=args.faults,
        seed=args.seed,
        capacity=args.capacity,
        policy=args.policy,
        resubmit=not args.no_resubmit,
        quarantine_after=args.quarantine_after,
        ledger_path=ledger_path,
    )
    if args.format == "json":
        print(json.dumps(doc, indent=2))
    else:
        for case in doc["cases"].values():
            print(_case_text(case))
            print()
        verdict = "verified bitwise" if doc["verified"] else "VERIFY FAILED"
        print(
            f"{verdict} against the serial golden; min completion "
            f"{100 * doc['completed_fraction_min']:.0f}%"
        )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    if ledger_path is not None:
        print(f"ledger {ledger_path}")
    return 0 if doc["verified"] else 1


__all__ = [
    "SERVE_CASES",
    "SERVE_SHAPE",
    "DEFAULT_NT",
    "DEFAULT_SHOTS",
    "DEFAULT_WORKERS",
    "serve_case_config",
    "run_serve_case",
    "run_serve_sweep",
    "run_serve_command",
]
