"""The shot result cache: content-addressed, drift-invalidated.

A shot's migrated image is a pure function of (earth model, acquisition
config, shot position) — duplicate submissions of the same survey must
not recompute it. The cache key binds everything the physics depends on:
the case name, a content hash of the :class:`~repro.model.earth_model.
EarthModel` arrays, the :func:`~repro.observe.ledger.plan_fingerprint`
of the TuningPlan in effect (a plan changes launch behaviour, and a
cached result must never outlive the schedule that produced it), the
shot x-index and the step count.

Invalidation is generation-based: the cache remembers, per case, the
(model hash, plan hash) generation of the last submission. A submission
whose generation differs — a re-picked velocity model, a re-tuned plan —
drops every entry of that case before admitting the new survey, so key
drift can never serve a stale image.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.model.earth_model import EarthModel


def model_hash(model: EarthModel) -> str:
    """Stable short content hash of an earth model: grid geometry plus
    every defined physical field, bytewise."""
    h = hashlib.sha256()
    h.update(model.name.encode())
    h.update(repr(tuple(model.grid.shape)).encode())
    h.update(repr(tuple(model.grid.spacing)).encode())
    for label in ("vp", "rho", "vs", "epsilon", "delta"):
        a = getattr(model, label)
        if a is None:
            continue
        h.update(label.encode())
        h.update(np.ascontiguousarray(a).tobytes())
    return h.hexdigest()[:16]


@dataclass(frozen=True)
class ShotKey:
    """Content key of one shot's migrated image."""

    case: str
    model_hash: str
    plan_hash: str | None
    shot_x: int
    nt: int

    @property
    def generation(self) -> tuple:
        """The per-case drift axis: entries of a case survive only while
        its (model, plan) generation is unchanged."""
        return (self.model_hash, self.plan_hash)


@dataclass
class CachedShot:
    """One cached result: the raw (un-normalised) shot image and the
    simulated device seconds its original computation cost."""

    image: np.ndarray
    device_s: float


class ResultCache:
    """Keyed shot-image store with per-case generation invalidation."""

    def __init__(self):
        self._entries: dict[ShotKey, CachedShot] = {}
        self._generations: dict[str, tuple] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def begin_case(self, case: str, generation: tuple) -> int:
        """Declare the generation of an incoming submission; entries of
        ``case`` from a different generation are invalidated. Returns the
        number of entries dropped."""
        prev = self._generations.get(case)
        dropped = 0
        if prev is not None and prev != generation:
            stale = [k for k in self._entries if k.case == case]
            for k in stale:
                del self._entries[k]
            dropped = len(stale)
            self.invalidations += dropped
        self._generations[case] = generation
        return dropped

    # ------------------------------------------------------------------
    def lookup(self, key: ShotKey) -> CachedShot | None:
        """Counted lookup: every call is a hit or a miss."""
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def peek(self, key: ShotKey) -> CachedShot | None:
        """Uncounted lookup (introspection/tests)."""
        return self._entries.get(key)

    def store(self, key: ShotKey, image: np.ndarray, device_s: float) -> None:
        self._entries[key] = CachedShot(image=image, device_s=float(device_s))

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def counters(self) -> dict:
        return {
            "cache_hits": float(self.hits),
            "cache_misses": float(self.misses),
            "cache_invalidations": float(self.invalidations),
            "cache_hit_rate": self.hit_rate,
        }


__all__ = [
    "model_hash",
    "ShotKey",
    "CachedShot",
    "ResultCache",
]
