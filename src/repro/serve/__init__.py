"""Shot-parallel RTM service: fault-tolerant survey scheduling.

The operational layer of the reproduction: admit surveys into a bounded
shot queue (:mod:`repro.serve.queue`), shard shots across simulated
worker nodes under the resilience ladder (:mod:`repro.serve.service`),
serve duplicates from a content-keyed result cache
(:mod:`repro.serve.cache`), and verify every run bitwise against the
fault-free serial stack (:mod:`repro.serve.campaign`, the
``python -m repro serve`` CLI).
"""

from repro.serve.cache import CachedShot, ResultCache, ShotKey, model_hash
from repro.serve.campaign import (
    DEFAULT_SHOTS,
    DEFAULT_WORKERS,
    SERVE_CASES,
    run_serve_case,
    run_serve_command,
    run_serve_sweep,
    serve_case_config,
)
from repro.serve.queue import (
    AdmissionError,
    PoisonShotError,
    QueueFullError,
    ShotJob,
    ShotQueue,
    SurveyRejectedError,
)
from repro.serve.service import ServiceResult, SurveyScheduler, WorkerNode

__all__ = [
    "model_hash",
    "ShotKey",
    "CachedShot",
    "ResultCache",
    "AdmissionError",
    "SurveyRejectedError",
    "QueueFullError",
    "PoisonShotError",
    "ShotJob",
    "ShotQueue",
    "WorkerNode",
    "ServiceResult",
    "SurveyScheduler",
    "SERVE_CASES",
    "DEFAULT_SHOTS",
    "DEFAULT_WORKERS",
    "serve_case_config",
    "run_serve_case",
    "run_serve_sweep",
    "run_serve_command",
]
