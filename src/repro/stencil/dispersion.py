"""Analytic dispersion analysis of the FD schemes.

For a plane wave :math:`e^{i(kx - \\omega t)}` the discrete schemes support
a numerical phase velocity that deviates from the physical one as the
wavelength approaches the grid spacing. These closed forms (derived from
the stencil symbols of :mod:`repro.stencil.coefficients`) predict the
deviation, complementing the measured sweep in
``benchmarks/test_numerics_quality.py`` and giving users a principled way
to choose grid spacing for a target accuracy — the trade behind the paper's
width-8 operators.
"""

from __future__ import annotations

import math

import numpy as np

from repro.stencil.coefficients import (
    DEFAULT_SPACE_ORDER,
    second_derivative_coefficients,
    staggered_coefficients,
)
from repro.utils.errors import ConfigurationError


def second_derivative_symbol(kh: np.ndarray, order: int = DEFAULT_SPACE_ORDER) -> np.ndarray:
    """Symbol of the centered 2nd-derivative stencil at normalised
    wavenumber ``kh = k * h`` (unit spacing): the exact operator gives
    ``-(kh)^2``; the discrete one gives ``c0 + 2 sum_m c_m cos(m kh)``."""
    kh = np.asarray(kh, dtype=np.float64)
    c0, side = second_derivative_coefficients(order)
    acc = np.full_like(kh, c0)
    for m, cm in enumerate(side, start=1):
        acc = acc + 2.0 * cm * np.cos(m * kh)
    return acc


def staggered_first_derivative_symbol(
    kh: np.ndarray, order: int = DEFAULT_SPACE_ORDER
) -> np.ndarray:
    """Imaginary part of the staggered D+ symbol at ``kh`` (unit spacing):
    the exact operator gives ``kh``; the discrete one
    ``2 sum_m c_m sin((2m-1) kh / 2)``."""
    kh = np.asarray(kh, dtype=np.float64)
    acc = np.zeros_like(kh)
    for m, cm in enumerate(staggered_coefficients(order), start=1):
        acc = acc + 2.0 * cm * np.sin((2 * m - 1) * kh / 2.0)
    return acc


def phase_velocity_ratio(
    kh: np.ndarray,
    scheme: str,
    order: int = DEFAULT_SPACE_ORDER,
    courant: float = 0.4,
) -> np.ndarray:
    """Numerical / physical phase velocity for one spatial wavenumber.

    ``scheme`` is ``'second_order'`` (leapfrog + centered Laplacian — the
    isotropic system) or ``'staggered'`` (staggered leapfrog — the
    acoustic/elastic systems); ``courant = v dt / h``. 1-D analysis (the
    worst-propagation-angle axis).
    """
    kh = np.asarray(kh, dtype=np.float64)
    if np.any(kh <= 0) or np.any(kh > math.pi):
        raise ConfigurationError("kh must lie in (0, pi]")
    if not 0 < courant < 1:
        raise ConfigurationError("courant must be in (0, 1)")
    if scheme == "second_order":
        # leapfrog: sin^2(omega dt / 2) = (C^2 / 4) * (-symbol)
        arg2 = 0.25 * courant**2 * (-second_derivative_symbol(kh, order))
    elif scheme == "staggered":
        # staggered leapfrog: sin(omega dt / 2) = (C/2) * |D+ symbol|
        arg2 = (0.5 * courant * staggered_first_derivative_symbol(kh, order)) ** 2
    else:
        raise ConfigurationError(f"unknown scheme '{scheme}'")
    if np.any(arg2 > 1.0 + 1e-12):
        raise ConfigurationError(
            "unstable configuration: courant exceeds the scheme's CFL bound "
            "at the requested wavenumber"
        )
    omega_dt = 2.0 * np.arcsin(np.sqrt(np.clip(arg2, 0.0, 1.0)))
    return omega_dt / (courant * kh)


def points_per_wavelength_for_accuracy(
    max_error: float,
    scheme: str,
    order: int = DEFAULT_SPACE_ORDER,
    courant: float = 0.4,
) -> float:
    """Minimum grid points per wavelength keeping the phase-velocity error
    under ``max_error`` (bisection over kh; ppw = 2 pi / kh)."""
    if not 0 < max_error < 1:
        raise ConfigurationError("max_error must be in (0, 1)")
    lo, hi = 1e-3, math.pi
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        err = abs(float(phase_velocity_ratio(np.array([mid]), scheme, order, courant)[0]) - 1.0)
        if err <= max_error:
            lo = mid
        else:
            hi = mid
    return 2.0 * math.pi / lo


def dispersion_table(
    scheme: str,
    orders: tuple[int, ...] = (2, 4, 8),
    ppw: tuple[float, ...] = (4.0, 6.0, 10.0),
    courant: float = 0.4,
) -> dict[int, dict[float, float]]:
    """Phase-velocity error per (order, points-per-wavelength)."""
    out: dict[int, dict[float, float]] = {}
    for order in orders:
        row = {}
        for p in ppw:
            kh = np.array([2.0 * math.pi / p])
            row[p] = abs(
                float(phase_velocity_ratio(kh, scheme, order, courant)[0]) - 1.0
            )
        out[order] = row
    return out
