"""Finite-difference coefficient generation.

Coefficients are derived by solving the Taylor-moment (Vandermonde) system

.. math::  \\sum_q c_q \\, o_q^p / p! = \\delta_{p,d}, \\qquad p = 0..P-1

for a set of sample offsets :math:`o_q` and target derivative order
:math:`d`. For the small stencils used here (radius <= 8) the float64 solve
is exact to machine precision; results are cached.

Three flavours are exposed:

* :func:`centered_coefficients` — general centered stencils on integer
  offsets ``-M..M``.
* :func:`second_derivative_coefficients` — one-sided representation
  ``(c0, c1..cM)`` of the symmetric 2nd-derivative stencil, the form the
  vectorised operators consume.
* :func:`staggered_coefficients` — half-point first-derivative weights used
  by the staggered-grid (acoustic/elastic) propagators.
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.utils.errors import ConfigurationError

#: The paper's operators: stencil width 8 -> 8th order in space.
DEFAULT_SPACE_ORDER = 8


def _solve_moments(offsets: np.ndarray, derivative: int) -> np.ndarray:
    """Solve the Taylor-moment system for weights at ``offsets`` approximating
    the ``derivative``-th derivative (unit spacing)."""
    n = len(offsets)
    if derivative >= n:
        raise ConfigurationError(
            f"need more than {n} samples for derivative order {derivative}"
        )
    A = np.empty((n, n), dtype=np.float64)
    for p in range(n):
        A[p, :] = offsets**p / math.factorial(p)
    rhs = np.zeros(n, dtype=np.float64)
    rhs[derivative] = 1.0
    return np.linalg.solve(A, rhs)


@lru_cache(maxsize=None)
def centered_coefficients(order: int, derivative: int) -> tuple[float, ...]:
    """Weights of the centered stencil of accuracy ``order`` for the given
    ``derivative``, on integer offsets ``-M..M`` with ``M = order//2`` (for
    the 2nd derivative) and unit spacing.

    ``order`` must be a positive even integer. Returned weights are indexed
    by offset ``-M..M`` (length ``2M + 1``).
    """
    if order <= 0 or order % 2 != 0:
        raise ConfigurationError(f"order must be a positive even integer, got {order}")
    if derivative not in (1, 2):
        raise ConfigurationError(f"only derivatives 1 and 2 supported, got {derivative}")
    m = order // 2 if derivative == 2 else order // 2
    offsets = np.arange(-m, m + 1, dtype=np.float64)
    w = _solve_moments(offsets, derivative)
    return tuple(float(x) for x in w)


@lru_cache(maxsize=None)
def second_derivative_coefficients(order: int) -> tuple[float, tuple[float, ...]]:
    """One-sided form ``(c0, (c1, ..., cM))`` of the centered 2nd-derivative
    stencil: ``d2u[i] = c0*u[i] + sum_m cm*(u[i+m] + u[i-m])``.

    The symmetric halves are identical, so only one is returned; the
    operators exploit the symmetry to halve multiplications.
    """
    w = centered_coefficients(order, 2)
    m = order // 2
    c0 = w[m]
    side = tuple(w[m + k] for k in range(1, m + 1))
    # sanity: the stencil must be symmetric
    for k in range(1, m + 1):
        if not math.isclose(w[m + k], w[m - k], rel_tol=1e-12, abs_tol=1e-14):
            raise AssertionError("2nd-derivative stencil lost symmetry")
    return float(c0), side


@lru_cache(maxsize=None)
def staggered_coefficients(order: int) -> tuple[float, ...]:
    """Half-point first-derivative weights ``(c1, ..., cM)`` with
    ``M = order//2``.

    The derivative at half-point ``i + 1/2`` of samples on integer points is
    ``du[i+1/2] = sum_m cm * (u[i+m] - u[i-m+1])`` (unit spacing); by
    symmetry the same weights serve the backward (half -> integer) flavour.

    For ``order=8`` these are the classic Levander weights
    ``(1225/1024, -245/3072, 49/5120, -5/7168)``.
    """
    if order <= 0 or order % 2 != 0:
        raise ConfigurationError(f"order must be a positive even integer, got {order}")
    m = order // 2
    offsets = np.array(
        [k + 0.5 for k in range(m)] + [-(k + 0.5) for k in range(m)],
        dtype=np.float64,
    )
    w = _solve_moments(offsets, 1)
    # w[k] is the weight of offset k+1/2 and w[m+k] of -(k+1/2); antisymmetry
    # means w[k] == -w[m+k].
    for k in range(m):
        if not math.isclose(w[k], -w[m + k], rel_tol=1e-12, abs_tol=1e-14):
            raise AssertionError("staggered stencil lost antisymmetry")
    return tuple(float(w[k]) for k in range(m))
