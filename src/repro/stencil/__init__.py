"""Finite-difference coefficients and vectorised stencil operators.

The paper's propagators use "operators with a 3D stencil width of 8"
(8th-order accurate), i.e. a radius-4 stencil per axis; the second-derivative
Laplacian then touches 25 points in 3-D (3 axes x 8 neighbours + centre),
matching the paper's "25 data read accesses ... at each grid point".
"""

from repro.stencil.coefficients import (
    centered_coefficients,
    staggered_coefficients,
    second_derivative_coefficients,
    DEFAULT_SPACE_ORDER,
)
from repro.stencil.dispersion import (
    second_derivative_symbol,
    staggered_first_derivative_symbol,
    phase_velocity_ratio,
    points_per_wavelength_for_accuracy,
    dispersion_table,
)
from repro.stencil.operators import (
    second_derivative,
    laplacian,
    staggered_diff_forward,
    staggered_diff_backward,
    stencil_radius,
    laplacian_flops_per_point,
    laplacian_reads_per_point,
)

__all__ = [
    "centered_coefficients",
    "staggered_coefficients",
    "second_derivative_coefficients",
    "DEFAULT_SPACE_ORDER",
    "second_derivative_symbol",
    "staggered_first_derivative_symbol",
    "phase_velocity_ratio",
    "points_per_wavelength_for_accuracy",
    "dispersion_table",
    "second_derivative",
    "laplacian",
    "staggered_diff_forward",
    "staggered_diff_backward",
    "stencil_radius",
    "laplacian_flops_per_point",
    "laplacian_reads_per_point",
]
