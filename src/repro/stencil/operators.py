"""Vectorised stencil operators.

Each operator writes into the *valid interior* of a same-shape output array
and leaves a border of ``stencil_radius(order)`` points untouched (zero when
the caller passes a fresh array). The propagators keep wavefields inside an
absorbing layer wider than the stencil radius, so the untouched border never
feeds back into the physics.

All operators are pure NumPy slice arithmetic — views, not copies — so a
single fused expression per axis keeps memory traffic at the theoretical
minimum the roofline model in :mod:`repro.gpusim` assumes.
"""

from __future__ import annotations

import numpy as np

from repro.stencil.coefficients import (
    DEFAULT_SPACE_ORDER,
    second_derivative_coefficients,
    staggered_coefficients,
)
from repro.utils.errors import ConfigurationError


def stencil_radius(order: int = DEFAULT_SPACE_ORDER) -> int:
    """Half-width of the stencil of the given accuracy order (4 for the
    paper's width-8 operators)."""
    if order <= 0 or order % 2 != 0:
        raise ConfigurationError(f"order must be a positive even integer, got {order}")
    return order // 2


def _axis_slice(ndim: int, axis: int, sl: slice) -> tuple[slice, ...]:
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def second_derivative(
    u: np.ndarray,
    axis: int,
    spacing: float,
    order: int = DEFAULT_SPACE_ORDER,
    out: np.ndarray | None = None,
    accumulate: bool = False,
) -> np.ndarray:
    """Centered 2nd derivative of ``u`` along ``axis``.

    Valid for indices ``radius .. n-radius-1`` along ``axis``; other
    positions of ``out`` are untouched. With ``accumulate=True`` the result
    is added to ``out`` instead of overwriting — that is how
    :func:`laplacian` fuses the axis contributions without temporaries.
    """
    m = stencil_radius(order)
    n = u.shape[axis]
    if n < 2 * m + 1:
        raise ConfigurationError(
            f"axis {axis} has {n} points, needs >= {2 * m + 1} for order {order}"
        )
    c0, side = second_derivative_coefficients(order)
    inv_h2 = 1.0 / (spacing * spacing)
    ndim = u.ndim
    center = _axis_slice(ndim, axis, slice(m, n - m))
    if out is None:
        out = np.zeros_like(u)
        accumulate = False
    scal = u.dtype.type  # keep scalar precision matched to the field
    acc = np.multiply(u[center], scal(c0 * inv_h2))
    for k, ck in enumerate(side, start=1):
        up = u[_axis_slice(ndim, axis, slice(m + k, n - m + k))]
        dn = u[_axis_slice(ndim, axis, slice(m - k, n - m - k))]
        acc += scal(ck * inv_h2) * (up + dn)
    if accumulate:
        out[center] += acc
    else:
        out[center] = acc
    return out


def laplacian(
    u: np.ndarray,
    spacing: tuple[float, ...],
    order: int = DEFAULT_SPACE_ORDER,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """High-order Laplacian of ``u`` (sum of per-axis 2nd derivatives).

    The first axis overwrites ``out``'s interior and subsequent axes
    accumulate, so only the *common* interior (radius border on every axis)
    holds the complete Laplacian; that is the region the propagators update.
    """
    if len(spacing) != u.ndim:
        raise ConfigurationError(
            f"spacing needs {u.ndim} entries, got {len(spacing)}"
        )
    if out is None:
        out = np.zeros_like(u)
    else:
        out.fill(0.0)
    for axis, h in enumerate(spacing):
        second_derivative(u, axis, h, order=order, out=out, accumulate=True)
    return out


def staggered_diff_forward(
    u: np.ndarray,
    axis: int,
    spacing: float,
    order: int = DEFAULT_SPACE_ORDER,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """First derivative taken *forward* to half points: sample ``i`` of the
    result approximates ``du/dx`` at ``i + 1/2``.

    ``D+ u[i] = (1/h) * sum_m c_m (u[i+m] - u[i-m+1])``.
    Valid for ``i`` in ``m-1 .. n-m-1``.
    """
    m = stencil_radius(order)
    n = u.shape[axis]
    if n < 2 * m:
        raise ConfigurationError(
            f"axis {axis} has {n} points, needs >= {2 * m} for order {order}"
        )
    coefs = staggered_coefficients(order)
    inv_h = 1.0 / spacing
    ndim = u.ndim
    target = _axis_slice(ndim, axis, slice(m - 1, n - m))
    if out is None:
        out = np.zeros_like(u)
    scal = u.dtype.type
    acc = None
    for k, ck in enumerate(coefs, start=1):
        hi = u[_axis_slice(ndim, axis, slice(m - 1 + k, n - m + k))]
        lo = u[_axis_slice(ndim, axis, slice(m - k, n - m - k + 1))]
        term = scal(ck * inv_h) * (hi - lo)
        acc = term if acc is None else acc + term
    out[target] = acc
    return out


def staggered_diff_backward(
    u: np.ndarray,
    axis: int,
    spacing: float,
    order: int = DEFAULT_SPACE_ORDER,
    out: np.ndarray | None = None,
) -> np.ndarray:
    """First derivative taken *backward* from half points: sample ``i`` of
    the result approximates ``du/dx`` at integer point ``i`` given samples at
    half points (stored with the same-shape convention, sample ``j`` == point
    ``j + 1/2``).

    ``D- u[i] = (1/h) * sum_m c_m (u[i+m-1] - u[i-m])``.
    Valid for ``i`` in ``m .. n-m``.
    """
    m = stencil_radius(order)
    n = u.shape[axis]
    if n < 2 * m + 1:
        raise ConfigurationError(
            f"axis {axis} has {n} points, needs >= {2 * m + 1} for order {order}"
        )
    coefs = staggered_coefficients(order)
    inv_h = 1.0 / spacing
    ndim = u.ndim
    target = _axis_slice(ndim, axis, slice(m, n - m + 1))
    if out is None:
        out = np.zeros_like(u)
    scal = u.dtype.type
    acc = None
    for k, ck in enumerate(coefs, start=1):
        hi = u[_axis_slice(ndim, axis, slice(m + k - 1, n - m + k))]
        lo = u[_axis_slice(ndim, axis, slice(m - k, n - m - k + 1))]
        term = scal(ck * inv_h) * (hi - lo)
        acc = term if acc is None else acc + term
    out[target] = acc
    return out


# ----------------------------------------------------------------------
# cost metadata consumed by the GPU cost model
# ----------------------------------------------------------------------
def laplacian_reads_per_point(ndim: int, order: int = DEFAULT_SPACE_ORDER) -> int:
    """Distinct input samples per output point of the Laplacian: the paper's
    25-point figure for ndim=3, order=8."""
    return ndim * order + 1


def laplacian_flops_per_point(ndim: int, order: int = DEFAULT_SPACE_ORDER) -> int:
    """Floating-point operations per output point of the symmetric-form
    Laplacian: per axis, m adds for symmetric pairs, m multiplies, m adds to
    accumulate, plus the centre multiply-add."""
    m = order // 2
    per_axis = 3 * m
    return ndim * per_axis + 2
