"""Damping-profile construction shared by all absorbing layers.

A boundary layer of ``width`` cells on each side of each axis carries a
polynomial damping profile rising from zero at the interior edge to
``sigma_max`` at the outer edge. ``sigma_max`` follows the classic Collino &
Tsogka prescription from the target theoretical reflection coefficient.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.errors import ConfigurationError


def pml_sigma_max(
    vmax: float, width_m: float, reflection: float = 1e-4, order: int = 2
) -> float:
    """Peak damping for a layer of physical thickness ``width_m`` metres.

    ``sigma_max = -(order+1) * vmax * ln(R) / (2 * width_m)``.
    """
    if vmax <= 0 or width_m <= 0:
        raise ConfigurationError("vmax and width_m must be positive")
    if not 0 < reflection < 1:
        raise ConfigurationError("reflection must be in (0, 1)")
    return -(order + 1) * vmax * math.log(reflection) / (2.0 * width_m)


def damping_profile(
    n: int,
    width: int,
    sigma_max: float,
    spacing: float,
    order: int = 2,
    half_shift: bool = False,
) -> np.ndarray:
    """1-D damping profile along an axis of ``n`` points.

    Returns a float64 array with zeros in the interior and
    ``sigma_max * (d / L)^order`` in the two boundary slabs, where ``d`` is
    the distance into the layer and ``L = width * spacing`` its thickness.
    With ``half_shift=True`` the profile is evaluated at the ``i + 1/2``
    staggered positions (needed by the C-PML coefficients of half-point
    fields).
    """
    if width < 0:
        raise ConfigurationError("width must be >= 0")
    if 2 * width >= n:
        raise ConfigurationError(
            f"absorbing layers of width {width} overlap on an axis of {n} points"
        )
    sigma = np.zeros(n, dtype=np.float64)
    if width == 0:
        return sigma
    L = width * spacing
    pos = np.arange(n, dtype=np.float64) + (0.5 if half_shift else 0.0)
    # low side: layer spans positions [0, width); depth decreases with i
    d_lo = (width - pos) * spacing
    # high side: layer spans (n-1-width, n-1]; depth increases with i
    d_hi = (pos - (n - 1 - width)) * spacing
    d = np.maximum(np.maximum(d_lo, d_hi), 0.0)
    sigma = sigma_max * np.minimum(d / L, 1.0) ** order
    return sigma
