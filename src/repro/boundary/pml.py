"""Standard PML for the second-order isotropic wave equation.

The paper: "The standard PML is used in our second order (isotropic)
formulation of the wave equation... One major problem with the standard PML
is that the boundary layer does not absorb evanescent waves where the PML
method suffers from large spurious reflections."

We implement the damped second-order form

.. math::

    u_{tt} + 2\\sigma u_t + \\sigma^2 u = v_p^2 \\nabla^2 u + f

with :math:`\\sigma(x) = \\sum_i \\sigma_i(x_i)` the summed per-axis damping
profiles. Discretising :math:`u_t` centrally gives the update

.. math::

    u^{n+1} = \\frac{2 u^n - (1 - \\sigma \\Delta t) u^{n-1}
              + \\Delta t^2 (v_p^2 \\nabla^2 u^n + f - \\sigma^2 u^n)}
             {1 + \\sigma \\Delta t}

which reduces to the plain leap-frog update where :math:`\\sigma = 0`. The
class precomputes the three coefficient fields the isotropic propagator
consumes; it also exposes an *interior mask* so the propagator can implement
both code variants the paper benchmarks in its Figures 6-7: branchy
per-region updates vs "compute PML everywhere in the grid domain".
"""

from __future__ import annotations

import numpy as np

from repro.boundary.profiles import damping_profile, pml_sigma_max
from repro.grid.grid import Grid
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


class StandardPML:
    """Damping-form PML for the 2nd-order formulation.

    Parameters
    ----------
    grid:
        Wavefield grid.
    width:
        Layer thickness in cells on each side of each axis.
    vmax:
        Fastest velocity in the model (sets the damping amplitude).
    dt:
        Time step (bakes the update coefficients).
    reflection:
        Target theoretical reflection coefficient of the layer.
    """

    def __init__(
        self,
        grid: Grid,
        width: int,
        vmax: float,
        dt: float,
        reflection: float = 1e-4,
        profile_order: int = 2,
    ):
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if width < 0:
            raise ConfigurationError("width must be >= 0")
        self.grid = grid
        self.width = int(width)
        self.dt = float(dt)
        sigma = np.zeros(grid.shape, dtype=np.float64)
        for axis, n in enumerate(grid.shape):
            if 2 * width >= n:
                raise ConfigurationError(
                    f"PML width {width} too large for axis of {n} points"
                )
            smax = (
                pml_sigma_max(vmax, width * grid.spacing[axis], reflection, profile_order)
                if width > 0
                else 0.0
            )
            prof = damping_profile(
                n, width, smax, grid.spacing[axis], order=profile_order
            )
            shape_ones = [1] * grid.ndim
            shape_ones[axis] = n
            sigma = sigma + prof.reshape(shape_ones)
        self.sigma = sigma.astype(DTYPE)
        # update coefficients: u+ = A*u - B*u- + C*(dt^2 * rhs)
        denom = 1.0 + sigma * dt
        self.coeff_curr = (2.0 / denom).astype(DTYPE)
        self.coeff_prev = ((1.0 - sigma * dt) / denom).astype(DTYPE)
        self.coeff_rhs = (1.0 / denom).astype(DTYPE)
        self.sigma2 = (sigma**2).astype(DTYPE)

    def interior_slices(self) -> tuple[slice, ...]:
        """Slices of the region where sigma == 0 (the physical domain).

        The branchy isotropic kernel updates this region with the cheap
        plain formula and the boundary slabs with the damped one; the
        "PML everywhere" variant ignores this and applies the damped formula
        to every point (identical numerics, more flops, no branches).
        """
        w = self.width
        if w == 0:
            return (slice(None),) * self.grid.ndim
        return tuple(slice(w, n - w) for n in self.grid.shape)

    def is_absorbing(self) -> bool:
        return self.width > 0 and float(self.sigma.max()) > 0.0
