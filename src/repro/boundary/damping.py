"""Cerjan (1985) sponge: multiplicative exponential taper.

The simplest absorber — kept as a reference to quantify how much better the
PML family does (the package's boundary tests compare residual reflected
energy across all three absorbers).
"""

from __future__ import annotations

import numpy as np

from repro.grid.grid import Grid
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


class CerjanSponge:
    """Multiplies wavefields by ``exp(-(a * d/L)^2)`` in boundary slabs of
    ``width`` cells (``d`` = depth into the slab).

    Parameters
    ----------
    grid:
        Grid the wavefields live on.
    width:
        Sponge thickness in cells on every side of every axis.
    strength:
        The Cerjan ``a`` coefficient; 0.015 per-cell classic value scaled by
        width is used when None.
    """

    def __init__(self, grid: Grid, width: int = 20, strength: float | None = None):
        if width < 0:
            raise ConfigurationError("width must be >= 0")
        for n in grid.shape:
            if 2 * width >= n:
                raise ConfigurationError(
                    f"sponge width {width} too large for axis of {n} points"
                )
        self.grid = grid
        self.width = int(width)
        a = 0.015 * width if strength is None else float(strength)
        self.strength = a
        self._taper = self._build_taper()

    def _build_taper(self) -> np.ndarray:
        taper = np.ones(self.grid.shape, dtype=np.float64)
        if self.width == 0:
            return taper.astype(DTYPE)
        for axis, n in enumerate(self.grid.shape):
            depth = np.zeros(n, dtype=np.float64)
            i = np.arange(n, dtype=np.float64)
            depth = np.maximum(self.width - i, 0.0)
            depth = np.maximum(depth, np.maximum(i - (n - 1 - self.width), 0.0))
            g = np.exp(-((self.strength * depth / self.width) ** 2))
            shape_ones = [1] * self.grid.ndim
            shape_ones[axis] = n
            taper = taper * g.reshape(shape_ones)
        return taper.astype(DTYPE)

    @property
    def taper(self) -> np.ndarray:
        """The multiplicative taper field (1 in the interior)."""
        return self._taper

    def apply(self, *fields: np.ndarray) -> None:
        """Taper the given wavefields in place."""
        for f in fields:
            if f.shape != self.grid.shape:
                raise ConfigurationError(
                    f"field shape {f.shape} does not match grid {self.grid.shape}"
                )
            f *= self._taper
