"""Convolutional PML (C-PML) for the first-order systems.

Komatitsch & Martin (2007) recursive-convolution formulation: each spatial
derivative :math:`\\partial_i u` entering the acoustic/elastic updates is
replaced by

.. math::

    \\widetilde{\\partial_i u} = \\frac{\\partial_i u}{\\kappa_i} + \\psi_i,
    \\qquad
    \\psi_i^{n+1} = b_i \\psi_i^n + a_i \\, \\partial_i u

with per-axis 1-D coefficient profiles

.. math::

    b_i = e^{-(\\sigma_i/\\kappa_i + \\alpha_i)\\Delta t}, \\qquad
    a_i = \\frac{\\sigma_i}{\\kappa_i(\\sigma_i + \\kappa_i\\alpha_i)}(b_i - 1).

As in the paper we keep :math:`\\kappa_i = 1`, so the per-dimension state is
exactly *four one-dimensional arrays*: ``(b, a)`` evaluated at integer and at
half-shifted positions (staggered fields sample the profiles at
``i + 1/2``). Memory variables :math:`\\psi` are lazily allocated per named
derivative, so propagators simply write::

    dpdx = staggered_diff_forward(p, axis=1, h)
    dpdx = cpml.damp("dpdx", axis=1, deriv=dpdx, half=True)
"""

from __future__ import annotations

import math

import numpy as np

from repro.boundary.profiles import damping_profile, pml_sigma_max
from repro.grid.grid import Grid
from repro.utils.arrays import DTYPE
from repro.utils.errors import ConfigurationError


class CPML:
    """C-PML coefficient store + memory-variable manager for one grid.

    Parameters
    ----------
    grid:
        The wavefield grid.
    width:
        Layer width in cells (each side of each axis). ``0`` disables
        absorption (all ``a = 0``) while keeping the same code path.
    vmax:
        Fastest model velocity.
    dt:
        Time step.
    alpha_max:
        Peak of the frequency-shift profile; Komatitsch & Martin recommend
        ``pi * f_dominant``. Default 0 reduces to classic PML coefficients.
    reflection:
        Target theoretical reflection coefficient.
    """

    def __init__(
        self,
        grid: Grid,
        width: int,
        vmax: float,
        dt: float,
        alpha_max: float = 0.0,
        reflection: float = 1e-4,
        profile_order: int = 2,
    ):
        if dt <= 0:
            raise ConfigurationError("dt must be positive")
        if width < 0:
            raise ConfigurationError("width must be >= 0")
        if alpha_max < 0:
            raise ConfigurationError("alpha_max must be >= 0")
        self.grid = grid
        self.width = int(width)
        self.dt = float(dt)
        # the paper's "four different one-dimensional arrays ... for each
        # dimension": b_full, a_full, b_half, a_half per axis
        self.b: list[dict[bool, np.ndarray]] = []
        self.a: list[dict[bool, np.ndarray]] = []
        for axis, n in enumerate(grid.shape):
            if 2 * width >= n:
                raise ConfigurationError(
                    f"C-PML width {width} too large for axis of {n} points"
                )
            h = grid.spacing[axis]
            smax = (
                pml_sigma_max(vmax, width * h, reflection, profile_order)
                if width > 0
                else 0.0
            )
            per_pos_b: dict[bool, np.ndarray] = {}
            per_pos_a: dict[bool, np.ndarray] = {}
            for half in (False, True):
                sigma = damping_profile(
                    n, width, smax, h, order=profile_order, half_shift=half
                )
                # alpha ramps from alpha_max at the interior edge to 0 at the
                # outer edge (Komatitsch-Martin), proportional to 1 - depth/L
                if width > 0 and smax > 0:
                    depth_frac = np.where(smax > 0, (sigma / smax) ** (1.0 / profile_order), 0.0)
                else:
                    depth_frac = np.zeros(n)
                alpha = alpha_max * (1.0 - depth_frac)
                alpha = np.where(sigma > 0, alpha, 0.0)
                b = np.exp(-(sigma + alpha) * dt)
                denom = sigma + alpha
                with np.errstate(divide="ignore", invalid="ignore"):
                    a_arr = np.where(denom > 0, sigma / np.maximum(denom, 1e-300) * (b - 1.0), 0.0)
                per_pos_b[half] = b.astype(DTYPE)
                per_pos_a[half] = a_arr.astype(DTYPE)
            self.b.append(per_pos_b)
            self.a.append(per_pos_a)
        self._psi: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------
    def is_absorbing(self) -> bool:
        return self.width > 0

    def memory_names(self) -> tuple[str, ...]:
        """Names of the memory variables allocated so far."""
        return tuple(self._psi.keys())

    def memory_bytes(self) -> int:
        """Bytes held by all psi fields."""
        return sum(p.nbytes for p in self._psi.values())

    def reset(self) -> None:
        """Zero all memory variables (new simulation, same coefficients)."""
        for p in self._psi.values():
            p.fill(0.0)

    def capture(self) -> dict[str, np.ndarray]:
        """Deep-copy every memory variable — the C-PML half of a
        checkpoint. The psi fields are real recursion state: restoring a
        wavefield without them replays different absorption."""
        return {name: p.copy() for name, p in self._psi.items()}

    def restore(self, snapshot: dict[str, np.ndarray]) -> None:
        """Restore :meth:`capture`'s state exactly. Memory variables are
        lazily allocated, so any psi born *after* the capture is deleted —
        keeping it would seed the replay with future state."""
        for name in [n for n in self._psi if n not in snapshot]:
            del self._psi[name]
        for name, p in snapshot.items():
            live = self._psi.get(name)
            if live is None:
                self._psi[name] = p.copy()
            else:
                live[...] = p

    def _broadcast(self, arr1d: np.ndarray, axis: int) -> np.ndarray:
        shape_ones = [1] * self.grid.ndim
        shape_ones[axis] = len(arr1d)
        return arr1d.reshape(shape_ones)

    def damp(
        self,
        name: str,
        axis: int,
        deriv: np.ndarray,
        half: bool,
    ) -> np.ndarray:
        """Apply the C-PML convolution to a spatial derivative.

        Parameters
        ----------
        name:
            Unique key of this derivative (e.g. ``"dpdx"``); the associated
            memory variable persists across time steps under this key.
        axis:
            Differentiation axis.
        deriv:
            The raw derivative field (modified **in place** to the damped
            value, also returned).
        half:
            Whether the derivative lives at half-shifted positions along
            ``axis`` (selects the staggered coefficient profile).
        """
        if deriv.shape != self.grid.shape:
            raise ConfigurationError(
                f"derivative shape {deriv.shape} does not match grid {self.grid.shape}"
            )
        if self.width == 0:
            return deriv  # no-op layer: keep identical code path
        psi = self._psi.get(name)
        if psi is None:
            psi = np.zeros(self.grid.shape, dtype=DTYPE)
            self._psi[name] = psi
        b = self._broadcast(self.b[axis][half], axis)
        a = self._broadcast(self.a[axis][half], axis)
        # psi <- b*psi + a*deriv ; deriv <- deriv + psi  (kappa = 1)
        psi *= b
        psi += a * deriv
        deriv += psi
        return deriv
