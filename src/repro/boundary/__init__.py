"""Absorbing boundary layers.

Matching the paper's Section 5: the *standard PML* is used for the
second-order isotropic formulation, the *Convolutional PML* (C-PML) for the
acoustic variable-density and elastic media ("storing four different
one-dimensional arrays with the cpml-coefficients for each dimension"), and
a Cerjan sponge is provided as a fallback/reference absorber.
"""

from repro.boundary.profiles import damping_profile, pml_sigma_max
from repro.boundary.damping import CerjanSponge
from repro.boundary.pml import StandardPML
from repro.boundary.cpml import CPML

__all__ = [
    "damping_profile",
    "pml_sigma_max",
    "CerjanSponge",
    "StandardPML",
    "CPML",
]
