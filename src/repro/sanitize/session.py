"""The sanitizer session: shadow coherence + cross-rank race checking.

A :class:`SanitizeSession` watches one or more ranks' directive streams —
live (its per-rank recorders attach to :class:`~repro.acc.runtime.Runtime`
instances, its halo/MPI hooks to :class:`~repro.mpisim.halo.HaloExchanger`
and :class:`~repro.mpisim.comm.SimMPI`) or replayed from a parsed ``!$acc``
script — and checks every consumer against per-array shadow state
(:mod:`repro.sanitize.shadow`) and the cross-rank happens-before graph
(:mod:`repro.sanitize.rankrace`).

Hazard codes (all errors):

``stale-device-read`` (pass ``coherence``)
    a kernel or ``copyout`` consumes device bytes the host wrote without a
    covering ``update device``;
``stale-host-read`` (pass ``coherence``)
    an MPI send / host read consumes host bytes a kernel may have written
    without a covering ``update host``;
``short-ghost-transfer`` (pass ``ghost``)
    a ghost-zone refresh moves fewer planes than the stencil radius needs
    (or the decomposition's halo is thinner than the radius);
``ghost-transfer-out-of-bounds`` (pass ``ghost``)
    a partial update's byte range runs past the array extent;
``halo-send-before-sync`` (pass ``rank-race``)
    an MPI send reads a halo buffer an *asynchronous* ``update host`` is
    still filling — no ``wait(q)`` orders the pair.

Findings are :class:`~repro.analyze.framework.Diagnostic` records (the
lint machinery's reporters apply unchanged) and carry
:class:`~repro.sanitize.fixit.ScriptFix` remedies when anchored to script
lines.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.analyze.framework import Diagnostic, Severity
from repro.analyze.program import AccEvent, DirectiveProgram, ProgramMeta
from repro.analyze.rules import DYNAMIC_PASSES, rule
from repro.sanitize.fixit import ScriptFix
from repro.sanitize.rankrace import PendingOp, RankClocks
from repro.sanitize.shadow import (
    UNKNOWN_EXTENT,
    ShadowArray,
    describe,
    subtract_interval,
)

#: hazard code -> pass name (the shared registry's dynamic view; kept
#: under its historical name for importers)
PASSES = DYNAMIC_PASSES

_LINE_RE = re.compile(r"line (\d+)")
_ITEMSIZE = 4  # float32 wavefields throughout the reproduction


def _line_of(event: AccEvent | None) -> int | None:
    if event is None or not event.label:
        return None
    m = _LINE_RE.search(event.label)
    return int(m.group(1)) if m else None


def _fmt(intervals) -> str:
    """Range list for messages; unknown-extent tails print as 'full extent'."""
    if any(hi >= UNKNOWN_EXTENT for _, hi in intervals):
        return "the full extent"
    return "bytes " + describe(intervals)


class _RankRecorder:
    """Duck-types :class:`~repro.analyze.recorder.ProgramRecorder` so
    ``Runtime.attach_recorder`` feeds one rank of the session."""

    def __init__(self, session: "SanitizeSession", rank: int):
        self._session = session
        self._rank = rank
        self.program = session.programs[rank]
        self._label: str | None = None

    def bind_runtime(self, rt) -> None:
        spec = rt.device.spec
        self.program.meta = ProgramMeta(
            source="recorded", name=self.program.meta.name,
            device=spec.name, warp_size=spec.warp_size,
            max_regs_per_thread=spec.max_regs_per_thread,
            max_threads_per_block=spec.max_threads_per_block,
            compiler=rt.compiler.name, vendor=rt.compiler.vendor,
            maxregcount=rt.flags.maxregcount, auto_async=rt._auto_async,
        )
        self._session.runtimes[self._rank] = rt

    def set_label(self, label: str | None) -> None:
        self._label = label

    def record(self, kind: str, sizes=None, **fields) -> None:
        event = self.program.add(
            AccEvent(kind=kind, label=self._label, **fields), sizes=sizes
        )
        self._session.observe(self._rank, event)


@dataclass
class SanitizeResult:
    """Findings across all ranks of one sanitized run (mirrors
    :class:`~repro.analyze.framework.LintResult`, which the shared
    reporters duck-type against via :attr:`program`)."""

    name: str
    nranks: int
    programs: list[DirectiveProgram]
    diagnostics: list[Diagnostic] = field(default_factory=list)

    @property
    def program(self) -> DirectiveProgram:
        return self.programs[0]

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity == severity)

    def worst(self) -> Severity | None:
        return max((d.severity for d in self.diagnostics), default=None)

    def fails(self, threshold: Severity) -> bool:
        return any(d.severity >= threshold for d in self.diagnostics)

    def clean(self) -> bool:
        return not self.diagnostics


class SanitizeSession:
    """Dynamic coherence + race sanitizer over ``nranks`` directive streams."""

    def __init__(
        self,
        nranks: int = 1,
        name: str = "sanitize",
        stencil_radius: int | None = None,
    ):
        self.nranks = int(nranks)
        self.name = name
        self.stencil_radius = stencil_radius
        self.programs = [
            DirectiveProgram(ProgramMeta(
                source="recorded",
                name=name if self.nranks == 1 else f"{name}[rank {r}]",
            ))
            for r in range(self.nranks)
        ]
        self.shadows: list[dict[str, ShadowArray]] = [
            {} for _ in range(self.nranks)
        ]
        self.clocks = RankClocks()
        #: in-flight async host-updates per (rank, var)
        self.pending: dict[tuple[int, str], list[PendingOp]] = {}
        self.diagnostics: list[Diagnostic] = []
        self.runtimes: dict[int, object] = {}
        #: halo field key -> device array name (live pipelines bind this
        #: before each exchange so hook events name the real array)
        self._field_map: dict[str, str] = {}
        self._halo_width: int | None = None
        #: decomposition of the live run (peers for halo send/recv events)
        self._decomp = None
        #: last *partial* ``update device`` per (rank, var) — the edit
        #: target when a short ghost transfer is diagnosed
        self._last_partial: dict[tuple[int, str], AccEvent] = {}
        self._seen: set[tuple] = set()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def recorder(self, rank: int = 0) -> _RankRecorder:
        """The recorder to ``rt.attach_recorder`` for ``rank``."""
        return _RankRecorder(self, rank)

    def declare_stencil(self, radius: int) -> None:
        """The stencil half-width (in grid planes) ghost transfers must
        cover — :func:`repro.stencil.operators` radius of the run."""
        self.stencil_radius = int(radius)

    def map_field(self, field_key: str, device_name: str) -> None:
        """Bind an exchanged halo field key to the device array it mirrors
        (re-bind when the pipeline switches wavefields, e.g. RTM backward)."""
        self._field_map[field_key] = device_name

    def replay(self, program: DirectiveProgram, rank: int = 0) -> None:
        """Feed an already-built program (the script frontend's output)
        through the checks; the program becomes the rank's reporting view."""
        self.programs[rank] = program
        for event in program.events:
            self.observe(rank, event)

    # ------------------------------------------------------------------
    # findings
    # ------------------------------------------------------------------
    def _emit(
        self,
        rule: str,
        message: str,
        rank: int | None = None,
        event: AccEvent | None = None,
        var: str | None = None,
        kernel: str | None = None,
        fix: ScriptFix | None = None,
    ) -> None:
        key = (
            rule, rank, var, kernel,
            event.label if event is not None else None,
        )
        if key in self._seen:
            return
        self._seen.add(key)
        if rank is not None and self.nranks > 1:
            message = f"[rank {rank}] {message}"
        self.diagnostics.append(Diagnostic(
            pass_name=PASSES[rule], rule=rule, severity=Severity.ERROR,
            message=message,
            event_index=event.index if event is not None else None,
            var=var, kernel=kernel, fix=fix,
        ))

    def result(self) -> SanitizeResult:
        return SanitizeResult(
            name=self.name, nranks=self.nranks,
            programs=self.programs, diagnostics=list(self.diagnostics),
        )

    # ------------------------------------------------------------------
    # event stream
    # ------------------------------------------------------------------
    def observe(self, rank: int, e: AccEvent) -> None:
        handler = getattr(self, f"_on_{e.kind}", None)
        if handler is not None:
            handler(rank, e)

    def _shadow(self, rank: int, name: str) -> ShadowArray | None:
        return self.shadows[rank].get(name)

    def _extent(self, rank: int, name: str) -> int:
        return self.programs[rank].extents.get(name) or UNKNOWN_EXTENT

    # --- lifetime -------------------------------------------------------
    def _on_enter(self, rank: int, e: AccEvent) -> None:
        for name in e.copyin + e.create:
            if name not in self.shadows[rank]:
                self.shadows[rank][name] = ShadowArray(
                    name, extent=self._extent(rank, name)
                )

    def _on_exit(self, rank: int, e: AccEvent) -> None:
        for name in e.copyout:
            sh = self._shadow(rank, name)
            if sh is None:
                continue
            stale = sh.device_stale()
            if stale:
                self._emit(
                    "stale-device-read",
                    rule("stale-device-read").format_alt(
                        var=name, ranges=_fmt(stale)
                    ),
                    rank=rank, event=e, var=name,
                    fix=self._update_fix(e, name, stale, "device"),
                )
        for name in e.copyout + e.delete:
            self.shadows[rank].pop(name, None)

    # --- transfers ------------------------------------------------------
    def _on_update(self, rank: int, e: AccEvent) -> None:
        sh = self._shadow(rank, e.var)
        if sh is None:
            return
        if (
            e.nbytes is not None
            and sh.extent < UNKNOWN_EXTENT
            and e.offset + e.nbytes > sh.extent
        ):
            self._emit(
                "ghost-transfer-out-of-bounds",
                rule("ghost-transfer-out-of-bounds").format(
                    direction=e.direction, var=e.var, lo=e.offset,
                    hi=e.offset + e.nbytes, extent=sh.extent,
                ),
                rank=rank, event=e, var=e.var,
            )
        if e.direction == "device":
            sh.update_device(e.offset, e.nbytes)
            key = (rank, e.var)
            if e.nbytes is not None and not self.programs[rank].full_extent(e):
                self._last_partial[key] = e
            else:
                self._last_partial.pop(key, None)
        else:
            sh.update_host(e.offset, e.nbytes)
            if e.queue is not None:
                lo = e.offset
                hi = sh.extent if e.nbytes is None else lo + e.nbytes
                ckey, tick = self.clocks.async_op(rank, e.queue)
                self.pending.setdefault((rank, e.var), []).append(PendingOp(
                    key=ckey, tick=tick, lo=lo, hi=hi,
                    event_index=e.index, queue=e.queue, label=e.label,
                ))

    # --- synchronisation ------------------------------------------------
    def _on_wait(self, rank: int, e: AccEvent) -> None:
        if e.wait_on:
            for q in e.wait_on:
                self.clocks.wait(rank, q)
        else:
            self.clocks.wait(rank, None)
        self._prune_pending(rank)

    def _prune_pending(self, rank: int) -> None:
        for key in [k for k in self.pending if k[0] == rank]:
            left = [
                p for p in self.pending[key]
                if not self.clocks.ordered(rank, p.key, p.tick)
            ]
            if left:
                self.pending[key] = left
            else:
                del self.pending[key]

    # --- compute --------------------------------------------------------
    def _on_compute(self, rank: int, e: AccEvent) -> None:
        if e.wait_all:
            self.clocks.wait(rank, None)
        for q in e.wait_on:
            self.clocks.wait(rank, q)
        if e.wait_all or e.wait_on:
            self._prune_pending(rank)
        for name in dict.fromkeys(e.reads + e.writes):
            sh = self._shadow(rank, name)
            if sh is None:
                continue
            stale = sh.device_stale()
            if stale:
                self._classify_device_stale(rank, e, name, sh, stale)
        # writes: recorded programs only know the present set (writes_known
        # False) — treat every present array as may-written, conservatively
        for name in (e.writes if e.writes_known else e.reads):
            sh = self._shadow(rank, name)
            if sh is not None:
                sh.device_write()

    def _classify_device_stale(
        self, rank: int, e: AccEvent, name: str,
        sh: ShadowArray, stale: list,
    ) -> None:
        required = self._ghost_requirement(e)
        last = self._last_partial.get((rank, name))
        if (
            required
            and last is not None
            and sh.extent < UNKNOWN_EXTENT
            and (last.nbytes or 0) < required
        ):
            faces_left = subtract_interval(
                subtract_interval(stale, 0, required),
                sh.extent - required, sh.extent,
            )
            if not faces_left:
                # stale bytes are confined to the ghost faces and the last
                # refresh was partial: the transfer is too narrow, not missing
                offset = 0 if all(hi <= required for _, hi in stale) else (
                    sh.extent - required
                    if all(lo >= sh.extent - required for lo, _ in stale)
                    else None
                )
                moved = int(last.nbytes or 0)
                self._emit(
                    "short-ghost-transfer",
                    rule("short-ghost-transfer").format(
                        var=name, moved=moved, halo=e.halo,
                        required=required, kernel=e.kernel,
                        ranges=_fmt(stale),
                    ),
                    rank=rank, event=e, var=name, kernel=e.kernel,
                    fix=ScriptFix(
                        action="widen-update", line=_line_of(last), var=name,
                        required_bytes=required, required_offset=offset,
                    ),
                )
                return
        self._emit(
            "stale-device-read",
            rule("stale-device-read").format(
                consumer=f"kernel '{e.kernel}'", var=name,
                ranges=_fmt(stale),
            ),
            rank=rank, event=e, var=name, kernel=e.kernel,
            fix=self._update_fix(e, name, stale, "device"),
        )

    def _ghost_requirement(self, e: AccEvent) -> int | None:
        """Bytes one ghost face must carry for this stencil compute: the
        stencil half-width (``halo`` planes) times the plane size."""
        if not e.halo or len(e.loop_dims) < 2:
            return None
        plane = _ITEMSIZE
        for d in e.loop_dims[1:]:
            plane *= int(d)
        return int(e.halo) * plane

    # --- host-side consumers -------------------------------------------
    def _on_host_write(self, rank: int, e: AccEvent) -> None:
        for name in e.writes:
            sh = self._shadow(rank, name)
            if sh is not None:
                sh.host_write(e.offset, e.nbytes)

    def _on_host_read(self, rank: int, e: AccEvent) -> None:
        for name in e.reads:
            self._check_host_consumer(
                rank, e, name, e.offset, e.nbytes, what="host read"
            )

    def _on_send(self, rank: int, e: AccEvent) -> None:
        self._check_host_consumer(
            rank, e, e.var, e.offset, e.nbytes, what="MPI send"
        )
        if e.peer is not None:
            self.clocks.send(rank, e.peer)

    def _on_recv(self, rank: int, e: AccEvent) -> None:
        sh = self._shadow(rank, e.var)
        if sh is not None:
            sh.host_write(e.offset, e.nbytes)
        if e.peer is not None:
            self.clocks.recv(rank, e.peer)

    def _check_host_consumer(
        self,
        rank: int,
        e: AccEvent | None,
        name: str,
        offset: int,
        nbytes: int | None,
        what: str,
    ) -> None:
        sh = self._shadow(rank, name)
        if sh is None:
            return
        stale = sh.host_stale(offset, nbytes)
        if stale:
            self._emit(
                "stale-host-read",
                rule("stale-host-read").format(
                    consumer=what, var=name, ranges=_fmt(stale),
                ),
                rank=rank, event=e, var=name,
                fix=self._update_fix(e, name, stale, "self"),
            )
        lo = max(0, int(offset))
        hi = sh.extent if nbytes is None else lo + int(nbytes)
        for p in self.pending.get((rank, name), []):
            if p.hi <= lo or p.lo >= hi:
                continue
            if self.clocks.ordered(rank, p.key, p.tick):
                continue
            self._emit(
                "halo-send-before-sync",
                rule("halo-send-before-sync").format(
                    consumer=what, var=name, lo=lo, hi=min(hi, p.hi),
                    queue=p.queue,
                )
                + self._queue_state(rank, p.queue),
                rank=rank, event=e, var=name,
                fix=ScriptFix(
                    action="insert-before", line=_line_of(e), var=name,
                    lines=(f"!$acc wait({p.queue})",),
                ),
            )

    def _queue_state(self, rank: int, queue: int) -> str:
        """Live confirmation from the simulated device's stream pool."""
        rt = self.runtimes.get(rank)
        if rt is None:
            return ""
        pending = rt.device.streams.pending_queues()
        if queue in pending:
            return " (queue has in-flight work on the device timeline)"
        return ""

    def _update_fix(
        self, e: AccEvent | None, name: str, stale: list, direction: str
    ) -> ScriptFix | None:
        """An ``insert-before`` fix pushing/pulling exactly the stale
        ranges ahead of the consuming directive."""
        line = _line_of(e)
        lines: list[str] = []
        for lo, hi in stale[:4]:
            if hi < UNKNOWN_EXTENT:
                lines.append(f"!$lint bytes={hi - lo} offset={lo}")
            lines.append(f"!$acc update {direction}({name})")
        return ScriptFix(
            action="insert-before", line=line, var=name, lines=tuple(lines)
        )

    # ------------------------------------------------------------------
    # mpisim hooks (live mode)
    # ------------------------------------------------------------------
    def on_halo_geometry(self, decomp) -> None:
        self._halo_width = int(decomp.halo)
        self._decomp = decomp
        if (
            self.stencil_radius is not None
            and decomp.halo < self.stencil_radius
        ):
            self._emit(
                "short-ghost-transfer",
                rule("short-ghost-transfer").format_alt(
                    have=decomp.halo, need=self.stencil_radius,
                ),
            )

    def _face_range(
        self, rank: int, name: str, side: str, nbytes: int, ghost: bool
    ) -> tuple[str | None, int, int | None]:
        """(device array, offset, nbytes) of a face slab. Sends read the
        owned planes just inside the halo; receives land in the halo."""
        dev = self._field_map.get(name)
        if dev is None:
            return None, 0, None
        ext = self._extent(rank, dev)
        if ext >= UNKNOWN_EXTENT:
            return dev, 0, None
        if side == "lo":
            lo = 0 if ghost else nbytes
        else:
            lo = ext - nbytes if ghost else ext - 2 * nbytes
        return dev, max(0, lo), nbytes

    def _halo_peer(self, rank: int, axis: int, side: str) -> int | None:
        """The other rank of a halo face, when the geometry is known —
        recorded on send/recv events so the static cross-rank pass can
        match message pairs without re-deriving the decomposition."""
        if self._decomp is None:
            return None
        try:
            return self._decomp.neighbour(rank, axis, side)
        except (AttributeError, ValueError):
            return None

    def on_halo_send(
        self, rank: int, name: str, axis: int, side: str, nbytes: int
    ) -> None:
        dev, lo, n = self._face_range(rank, name, side, nbytes, ghost=False)
        if dev is None:
            return
        event = self.programs[rank].add(AccEvent(
            kind="send", var=dev, offset=lo, nbytes=n,
            peer=self._halo_peer(rank, axis, side),
            label=f"halo axis {axis} {side}",
        ))
        self._check_host_consumer(rank, event, dev, lo, n, what="halo send")

    def on_halo_recv(
        self, rank: int, name: str, axis: int, side: str, nbytes: int
    ) -> None:
        dev, lo, n = self._face_range(rank, name, side, nbytes, ghost=True)
        if dev is None:
            return
        event = self.programs[rank].add(AccEvent(
            kind="recv", var=dev, offset=lo, nbytes=n,
            peer=self._halo_peer(rank, axis, side),
            label=f"halo axis {axis} {side}",
        ))
        sh = self._shadow(rank, dev)
        if sh is not None:
            sh.host_write(event.offset, event.nbytes)

    def on_isend(self, rank: int, dest: int, tag: int, nbytes: int) -> None:
        self.clocks.send(rank, dest, tag)

    def on_recv(self, rank: int, source: int, tag: int, nbytes: int) -> None:
        self.clocks.recv(rank, source, tag)


__all__ = ["SanitizeSession", "SanitizeResult", "PASSES"]
