"""Sanitize drivers: run a (multi-rank) pipeline under the sanitizer.

``sanitize_pipeline`` drives the executed per-rank multi-GPU path
(:class:`~repro.core.multigpu.MultiGpuPipeline`) in estimate mode with a
:class:`~repro.sanitize.session.SanitizeSession` attached to every rank's
runtime, the halo exchanger and the MPI world — so coherence, ghost
geometry and cross-rank ordering are all checked against the schedule the
run actually executed. ``sanitize_script`` replays a parsed ``!$acc``
script through the same checks without running anything.

``check_sanitize`` is the pipeline's opt-in strict mode
(``GPUOptions.sanitize``): it sanitizes a short dry run of the
configuration and raises :class:`~repro.utils.errors.AnalysisError` on
error-level hazards before the real run starts — the sanitizer's analogue
of ``strict_lint``/:func:`repro.analyze.drivers.check_schedule`.
"""

from __future__ import annotations

from repro.analyze.framework import Severity
from repro.analyze.frontend import program_from_script
from repro.analyze.program import ProgramMeta
from repro.sanitize.session import SanitizeResult, SanitizeSession
from repro.utils.errors import AnalysisError

#: dry-run caps of the strict gate — the exchange pattern is periodic, so a
#: short run exhibits every per-step hazard
STRICT_NT = 8
STRICT_SNAP = 4


def sanitize_pipeline(
    physics: str,
    shape: tuple[int, ...],
    mode: str = "rtm",
    ranks: int = 1,
    nt: int = 8,
    snap_period: int = 4,
    options=None,
    platform=None,
    space_order: int = 8,
    boundary_width: int = 8,
    nreceivers: int = 16,
    halo_width: int | None = None,
    protocol=None,
    name: str | None = None,
) -> SanitizeResult:
    """Run one case's per-rank offload schedule under the sanitizer."""
    from repro.core.config import GPUOptions
    from repro.core.multigpu import MultiGpuPipeline
    from repro.core.platform import CRAY_K40

    options = options if options is not None else GPUOptions()
    platform = platform if platform is not None else CRAY_K40
    session = SanitizeSession(
        nranks=ranks,
        name=name or f"{physics}-{len(shape)}d-{mode} x{ranks}",
    )
    pipeline = MultiGpuPipeline(
        physics,
        shape,
        ranks,
        platform=platform,
        options=options,
        space_order=space_order,
        boundary_width=boundary_width,
        nreceivers=nreceivers,
        halo_width=halo_width,
        session=session,
        protocol=protocol,
    )
    if mode == "rtm":
        pipeline.run_rtm(nt, snap_period)
    else:
        pipeline.run_modeling(nt, snap_period)
    return session.result()


def sanitize_script(
    text: str, name: str = "script", stencil_radius: int | None = None
) -> SanitizeResult:
    """Replay an ``!$acc`` directive script through the sanitizer."""
    program = program_from_script(
        text, meta=ProgramMeta(source="script", name=name)
    )
    session = SanitizeSession(
        nranks=1, name=name, stencil_radius=stencil_radius
    )
    session.replay(program)
    return session.result()


def check_sanitize(
    physics: str,
    shape: tuple[int, ...],
    mode: str,
    options,
    platform,
    ranks: int = 1,
    space_order: int = 8,
    boundary_width: int = 8,
    fail_on: Severity = Severity.ERROR,
) -> SanitizeResult:
    """Strict-mode gate: sanitize a short dry run of this configuration and
    raise :class:`AnalysisError` on hazards at/above ``fail_on``."""
    result = sanitize_pipeline(
        physics,
        shape,
        mode,
        ranks=ranks,
        nt=STRICT_NT,
        snap_period=STRICT_SNAP,
        options=options,
        platform=platform,
        space_order=space_order,
        boundary_width=boundary_width,
        name=f"{physics}-{len(shape)}d-{mode} (sanitize dry run)",
    )
    if result.fails(fail_on):
        worst = [d for d in result.diagnostics if d.severity >= fail_on]
        head = "; ".join(f"{d.rule}: {d.message}" for d in worst[:3])
        more = f" (+{len(worst) - 3} more)" if len(worst) > 3 else ""
        raise AnalysisError(
            f"sanitizer refused the {physics}-{len(shape)}d {mode} "
            f"schedule: {len(worst)} hazard(s) at or above "
            f"{str(fail_on)} — {head}{more}"
        )
    return result


__all__ = [
    "sanitize_pipeline",
    "sanitize_script",
    "check_sanitize",
    "STRICT_NT",
    "STRICT_SNAP",
]
