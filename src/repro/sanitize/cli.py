"""Driver behind ``python -m repro sanitize``.

Targets mirror the lint CLI:

* ``sanitize CASE`` — run one seed case's per-rank offload schedule
  (estimate mode, reduced grid) under the sanitizer; ``--ranks N`` sets
  the card count, ``--mode`` picks modeling/rtm/both;
* ``sanitize all`` — the 12 seed-case programs (6 cases x both modes);
* ``sanitize --script FILE`` — replay an ``!$acc`` directive script;
  with ``--fix`` the proposed directive edits are applied to the file
  (or ``--output``) and the result re-sanitized to validate the round
  trip.

``--fail-on SEVERITY`` gates the exit code; ``--format text|json|sarif``
picks the report (``--json`` is kept as an alias of ``--format json``).
"""

from __future__ import annotations

from repro.analyze.cli import _INVENTORY, _SHAPES
from repro.analyze.framework import parse_severity
from repro.sanitize.drivers import sanitize_pipeline, sanitize_script
from repro.sanitize.fixit import apply_fixes, collect_fixes
from repro.sanitize.session import SanitizeResult
from repro.utils.errors import ConfigurationError


def sanitize_case(
    physics: str,
    ndim: int,
    mode: str,
    ranks: int = 1,
    nt: int = 8,
) -> SanitizeResult:
    """Sanitize one seed case at a reduced grid."""
    shape = _SHAPES[ndim]
    return sanitize_pipeline(
        physics,
        shape,
        mode,
        ranks=ranks,
        nt=nt,
        snap_period=4,
        space_order=4 if ndim == 3 else 8,
        boundary_width=8,
        name=f"{physics.upper()} {ndim}D ({mode}, {ranks} rank"
        + ("s)" if ranks != 1 else ")"),
    )


def sanitize_targets(args) -> list[SanitizeResult]:
    """Resolve the CLI namespace into one or more sanitize results."""
    if getattr(args, "script", None):
        with open(args.script, encoding="utf-8") as fh:
            text = fh.read()
        return [sanitize_script(text, name=args.script)]
    case = getattr(args, "case", None)
    if case is None:
        raise ConfigurationError(
            "sanitize needs a CASE (or 'all', or --script FILE)"
        )
    ranks = int(getattr(args, "ranks", 1) or 1)
    modes = ("modeling", "rtm") if args.mode == "both" else (args.mode,)
    if case.lower() == "all":
        return [
            sanitize_case(physics, ndim, mode, ranks=ranks, nt=args.nt)
            for physics, ndim in _INVENTORY
            for mode in ("modeling", "rtm")
        ]
    from repro.trace.cli import parse_case

    physics, ndim = parse_case(case)
    return [
        sanitize_case(physics, ndim, mode, ranks=ranks, nt=args.nt)
        for mode in modes
    ]


def _run_fix(args) -> int:
    """``--fix``: apply the proposed edits to the script, re-sanitize."""
    with open(args.script, encoding="utf-8") as fh:
        text = fh.read()
    result = sanitize_script(text, name=args.script)
    fixes = collect_fixes(result.diagnostics)
    if not result.diagnostics:
        print(f"{args.script}: already clean, nothing to fix")
        return 0
    fixed, applied = apply_fixes(text, result.diagnostics)
    out_path = getattr(args, "output", None) or args.script
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(fixed)
    revalidated = sanitize_script(fixed, name=out_path)
    print(
        f"{args.script}: {len(result.diagnostics)} finding(s), "
        f"{len(fixes)} fix(es) proposed, {applied} applied -> {out_path}"
    )
    for fix in fixes:
        print(f"  {fix}")
    if revalidated.clean():
        print(f"  re-sanitized: clean")
        return 0
    print(f"  re-sanitized: {len(revalidated.diagnostics)} finding(s) remain")
    from repro.analyze.report import format_text

    print(format_text(revalidated, title=f"repro sanitize — {out_path}"))
    threshold_name = getattr(args, "fail_on", "error")
    if threshold_name.lower() == "none":
        return 0
    return 1 if revalidated.fails(parse_severity(threshold_name)) else 0


def run_sanitize_command(args) -> int:
    """``python -m repro sanitize`` entry point (argparse namespace in)."""
    from repro.analyze.report import format_json, format_sarif, format_text

    if getattr(args, "fix", False):
        if not getattr(args, "script", None):
            raise ConfigurationError(
                "--fix needs --script FILE (recorded-schedule findings "
                "carry advisory fixes only)"
            )
        return _run_fix(args)

    results = sanitize_targets(args)
    fmt = getattr(args, "format", None) or (
        "json" if getattr(args, "json", False) else "text"
    )
    if fmt == "json":
        print(format_json(results))
    elif fmt == "sarif":
        print(format_sarif(results, tool_name="repro-sanitize"))
    else:
        for i, result in enumerate(results):
            if i:
                print()
            print(format_text(
                result, title=f"repro sanitize — {result.name}"
            ))
    if args.fail_on.lower() == "none":
        return 0
    threshold = parse_severity(args.fail_on)
    return 1 if any(r.fails(threshold) for r in results) else 0


__all__ = ["run_sanitize_command", "sanitize_targets", "sanitize_case"]
