"""Shadow coherence state: host/device dirty byte intervals per array.

The sanitizer's ground truth. Every present array gets a
:class:`ShadowArray` holding two interval sets over ``[0, extent)``:

``host_dirty``
    byte ranges the *host* copy changed in (``host_write`` markers, halo
    receives) that no ``update device`` has pushed yet — reading them on
    the device yields stale data;
``dev_dirty``
    byte ranges a device kernel may have written that no ``update host``
    has pulled yet — consuming the host copy there (an MPI send, a
    ``host_read`` marker) yields stale data.

Intervals are half-open ``(lo, hi)`` byte pairs, kept sorted and
coalesced. Arrays whose extent the frontend never learned (a bare
``copyin(u)`` in a script) use :data:`UNKNOWN_EXTENT`; full-extent
operations then cover "everything seen so far", which keeps the checks
conservative without sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: stand-in extent for arrays with no recorded size: large enough that any
#: real offset/byte-count lands inside it
UNKNOWN_EXTENT = 1 << 62

Interval = tuple[int, int]


def normalize(intervals: list[Interval]) -> list[Interval]:
    """Sort, drop empties, and coalesce touching/overlapping intervals."""
    ivs = sorted((int(lo), int(hi)) for lo, hi in intervals if hi > lo)
    out: list[Interval] = []
    for lo, hi in ivs:
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def add_interval(intervals: list[Interval], lo: int, hi: int) -> list[Interval]:
    return normalize(intervals + [(lo, hi)])


def subtract_interval(intervals: list[Interval], lo: int, hi: int) -> list[Interval]:
    """Remove ``[lo, hi)`` from every interval."""
    if hi <= lo:
        return list(intervals)
    out: list[Interval] = []
    for a, b in intervals:
        if b <= lo or a >= hi:
            out.append((a, b))
            continue
        if a < lo:
            out.append((a, lo))
        if b > hi:
            out.append((hi, b))
    return out


def intersect(intervals: list[Interval], lo: int, hi: int) -> list[Interval]:
    """The parts of ``intervals`` inside ``[lo, hi)``."""
    out: list[Interval] = []
    for a, b in intervals:
        x, y = max(a, lo), min(b, hi)
        if y > x:
            out.append((x, y))
    return out


def total_bytes(intervals: list[Interval]) -> int:
    return sum(hi - lo for lo, hi in intervals)


def describe(intervals: list[Interval], limit: int = 3) -> str:
    """``[0, 4096) + [8192, 12288)`` — the human-readable range list."""
    parts = [f"[{lo}, {hi})" for lo, hi in intervals[:limit]]
    if len(intervals) > limit:
        parts.append(f"... {len(intervals) - limit} more")
    return " + ".join(parts) if parts else "(empty)"


@dataclass
class ShadowArray:
    """Coherence shadow of one present array."""

    name: str
    extent: int = UNKNOWN_EXTENT
    host_dirty: list[Interval] = field(default_factory=list)
    dev_dirty: list[Interval] = field(default_factory=list)

    # ------------------------------------------------------------------
    def _range(self, offset: int, nbytes: int | None) -> Interval:
        lo = max(0, int(offset))
        hi = self.extent if nbytes is None else lo + int(nbytes)
        return lo, min(hi, self.extent)

    # --- host-side mutation / consumption ------------------------------
    def host_write(self, offset: int = 0, nbytes: int | None = None) -> None:
        lo, hi = self._range(offset, nbytes)
        self.host_dirty = add_interval(self.host_dirty, lo, hi)

    def host_stale(
        self, offset: int = 0, nbytes: int | None = None
    ) -> list[Interval]:
        """Device-written ranges a host-copy consumer would read stale."""
        lo, hi = self._range(offset, nbytes)
        return intersect(self.dev_dirty, lo, hi)

    # --- device-side mutation / consumption -----------------------------
    def device_write(self, offset: int = 0, nbytes: int | None = None) -> None:
        lo, hi = self._range(offset, nbytes)
        self.dev_dirty = add_interval(self.dev_dirty, lo, hi)

    def device_stale(
        self, offset: int = 0, nbytes: int | None = None
    ) -> list[Interval]:
        """Host-written ranges a device-copy consumer would read stale."""
        lo, hi = self._range(offset, nbytes)
        return intersect(self.host_dirty, lo, hi)

    # --- transfers ------------------------------------------------------
    def update_device(self, offset: int = 0, nbytes: int | None = None) -> None:
        """``update device``: the pushed range is no longer host-dirty; the
        device copy there now reflects the host, so it is not device-dirty
        either (the transfer overwrote any kernel writes in that range)."""
        lo, hi = self._range(offset, nbytes)
        self.host_dirty = subtract_interval(self.host_dirty, lo, hi)
        self.dev_dirty = subtract_interval(self.dev_dirty, lo, hi)

    def update_host(self, offset: int = 0, nbytes: int | None = None) -> None:
        """``update host``: symmetric — the pulled range is coherent."""
        lo, hi = self._range(offset, nbytes)
        self.dev_dirty = subtract_interval(self.dev_dirty, lo, hi)
        self.host_dirty = subtract_interval(self.host_dirty, lo, hi)

    def clean(self) -> bool:
        return not self.host_dirty and not self.dev_dirty


__all__ = [
    "ShadowArray",
    "UNKNOWN_EXTENT",
    "normalize",
    "add_interval",
    "subtract_interval",
    "intersect",
    "total_bytes",
    "describe",
]
