"""Cross-rank happens-before graph over async queues and mpisim messages.

Extends the per-queue vector clocks of
:mod:`repro.analyze.async_race` across ranks: clock components are
``(rank, queue)`` pairs, each rank's host thread carries its own clock,
and MPI messages add edges — a send snapshots the sender's host clock
into the ``(src, dst, tag)`` channel, the matching receive joins it into
the receiver's host clock (the standard Fidge/Mattern message rule).

The sanitizer asks one question of this graph: *has the host thread of
rank R observed the completion of async operation T on queue (R, q)?* —
i.e. was there a ``wait``/``wait(q)`` between the asynchronous
``update host`` that fills a halo buffer and the MPI send that reads it.
An unordered pair is the cross-rank race the paper's async halo overlap
can introduce (:mod:`repro.sanitize` flags it as
``halo-send-before-sync``).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

#: a clock component: (rank, queue) for async queues
ClockKey = tuple[int, int]


@dataclass(frozen=True)
class PendingOp:
    """One asynchronous operation not yet known to be synchronized."""

    key: ClockKey
    tick: int
    lo: int
    hi: int
    event_index: int
    queue: int
    label: str | None = None


@dataclass
class RankClocks:
    """Vector clocks for every rank's host thread + async queue tracks."""

    #: per-rank host clock: rank -> {ClockKey: tick}
    host: dict[int, dict[ClockKey, int]] = field(default_factory=dict)
    #: latest tick issued per (rank, queue)
    queue_tick: dict[ClockKey, int] = field(default_factory=dict)
    #: in-flight message clock snapshots per (src, dst, tag) channel
    channels: dict[tuple[int, int, int], deque] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def _host(self, rank: int) -> dict[ClockKey, int]:
        return self.host.setdefault(rank, {})

    @staticmethod
    def _merge(dst: dict[ClockKey, int], src: dict[ClockKey, int]) -> None:
        for k, v in src.items():
            if dst.get(k, 0) < v:
                dst[k] = v

    # ------------------------------------------------------------------
    def async_op(self, rank: int, queue: int) -> tuple[ClockKey, int]:
        """A new asynchronous operation enqueued on ``(rank, queue)``;
        returns its clock component and tick."""
        key = (int(rank), int(queue))
        tick = self.queue_tick.get(key, 0) + 1
        self.queue_tick[key] = tick
        return key, tick

    def wait(self, rank: int, queue: int | None = None) -> None:
        """``acc wait`` on ``rank``: the host joins the named queue (or all
        of the rank's queues when None)."""
        hc = self._host(rank)
        for (r, q), tick in self.queue_tick.items():
            if r != rank:
                continue
            if queue is not None and q != int(queue):
                continue
            if hc.get((r, q), 0) < tick:
                hc[(r, q)] = tick

    def ordered(self, rank: int, key: ClockKey, tick: int) -> bool:
        """Whether rank's host has observed async op ``(key, tick)``."""
        return self._host(rank).get(key, 0) >= tick

    # ------------------------------------------------------------------
    # message edges
    # ------------------------------------------------------------------
    def send(self, src: int, dst: int, tag: int = 0) -> None:
        self.channels.setdefault((src, dst, int(tag)), deque()).append(
            dict(self._host(src))
        )

    def recv(self, dst: int, src: int, tag: int = 0) -> None:
        chan = self.channels.get((src, dst, int(tag)))
        if chan:
            self._merge(self._host(dst), chan.popleft())


__all__ = ["RankClocks", "PendingOp", "ClockKey"]
