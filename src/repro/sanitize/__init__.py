"""repro.sanitize — dynamic coherence sanitizer + cross-rank race detector.

Where :mod:`repro.analyze` lints directive *programs* statically, this
package checks what a run actually did: per-array shadow state tracks
which byte ranges of each host/device copy are stale
(:mod:`repro.sanitize.shadow`), a cross-rank vector-clock graph tracks
which async operations each rank's host thread has synchronized with
(:mod:`repro.sanitize.rankrace`), and the session
(:mod:`repro.sanitize.session`) turns violations into the lint
machinery's :class:`~repro.analyze.framework.Diagnostic` records — with
machine-applicable :mod:`~repro.sanitize.fixit` edits for script-anchored
findings. ``python -m repro sanitize`` is the CLI; ``GPUOptions.sanitize``
gates real runs on a sanitized dry run.
"""

from repro.sanitize.drivers import (
    check_sanitize,
    sanitize_pipeline,
    sanitize_script,
)
from repro.sanitize.fixit import ScriptFix, apply_fixes, collect_fixes
from repro.sanitize.session import PASSES, SanitizeResult, SanitizeSession
from repro.sanitize.shadow import UNKNOWN_EXTENT, ShadowArray

__all__ = [
    "SanitizeSession",
    "SanitizeResult",
    "PASSES",
    "ShadowArray",
    "UNKNOWN_EXTENT",
    "ScriptFix",
    "apply_fixes",
    "collect_fixes",
    "sanitize_pipeline",
    "sanitize_script",
    "check_sanitize",
]
