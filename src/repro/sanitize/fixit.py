"""Fixit engine: machine-applicable edits for sanitizer findings.

Each sanitizer diagnostic that anchors to a script line carries a
:class:`ScriptFix` describing the minimal directive edit that removes the
hazard:

* ``insert-before`` — new lines ahead of the faulty one: an
  ``update device``/``update self`` of exactly the stale byte ranges
  (with a ``!$lint bytes=/offset=`` annotation carrying the extent), or
  an ``!$acc wait(q)`` ahead of a racing halo send;
* ``widen-update`` — grow the ``bytes=`` (and ``offset=``) annotation of
  a short ghost-zone transfer to the stencil radius' requirement.

:func:`apply_fixes` rewrites the script text; the driver then re-runs the
sanitizer on the result to validate the round trip.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.analyze.framework import Diagnostic

_LINT_LINE_RE = re.compile(r"^\s*!\$lint\b", re.IGNORECASE)
_BYTES_RE = re.compile(r"(bytes\s*=\s*)(\d+)", re.IGNORECASE)
_OFFSET_RE = re.compile(r"(offset\s*=\s*)(\d+)", re.IGNORECASE)


@dataclass(frozen=True)
class ScriptFix:
    """One machine-applicable edit, anchored to a 1-based script line."""

    action: str  # 'insert-before' | 'widen-update'
    line: int | None
    #: lines to insert ahead of ``line`` (insert-before)
    lines: tuple[str, ...] = ()
    var: str | None = None
    #: target transfer size of a widen-update
    required_bytes: int | None = None
    #: target starting byte of a widen-update (None = leave offset alone)
    required_offset: int | None = None

    def __str__(self) -> str:
        if self.action == "insert-before":
            where = f"line {self.line}" if self.line else "the failing directive"
            return f"insert before {where}: " + "; ".join(self.lines)
        tail = f" offset={self.required_offset}" if self.required_offset is not None else ""
        return (
            f"widen the update at line {self.line} to "
            f"bytes={self.required_bytes}{tail}"
        )


def collect_fixes(diagnostics: list[Diagnostic]) -> list[ScriptFix]:
    """The unique, line-anchored fixes of a findings list (fixes without a
    line anchor — recorded-program findings — are advisory only)."""
    out: list[ScriptFix] = []
    for d in diagnostics:
        fix = d.fix
        if isinstance(fix, ScriptFix) and fix.line is not None and fix not in out:
            out.append(fix)
    return out


def apply_fixes(text: str, diagnostics: list[Diagnostic]) -> tuple[str, int]:
    """Apply every line-anchored fix to ``text``; returns the rewritten
    script and the number of fixes applied."""
    lines = text.splitlines()
    applied = 0

    fixes = collect_fixes(diagnostics)
    # widens first: they edit lines in place and do not shift numbering
    for fix in fixes:
        if fix.action != "widen-update" or not fix.required_bytes:
            continue
        target = _annotation_line(lines, fix.line)
        if target is None:
            continue
        edited = _BYTES_RE.sub(
            lambda m: f"{m.group(1)}{fix.required_bytes}", lines[target]
        )
        if fix.required_offset is not None:
            edited = _OFFSET_RE.sub(
                lambda m: f"{m.group(1)}{fix.required_offset}", edited
            )
        if edited != lines[target]:
            lines[target] = edited
            applied += 1

    # inserts last, highest line first, so earlier anchors stay valid
    inserts = [f for f in fixes if f.action == "insert-before" and f.lines]
    for fix in sorted(inserts, key=lambda f: f.line, reverse=True):
        if not 1 <= fix.line <= len(lines) + 1:
            continue
        indent = re.match(r"\s*", lines[fix.line - 1]).group(0) if fix.line <= len(lines) else ""
        lines[fix.line - 1:fix.line - 1] = [indent + ln for ln in fix.lines]
        applied += 1

    return "\n".join(lines) + ("\n" if text.endswith("\n") else ""), applied


def _annotation_line(lines: list[str], directive_line: int | None) -> int | None:
    """0-based index of the ``!$lint`` annotation (carrying ``bytes=``)
    attached to the update directive at 1-based ``directive_line``."""
    if directive_line is None:
        return None
    i = directive_line - 2  # line above the directive
    while i >= 0 and _LINT_LINE_RE.match(lines[i]):
        if _BYTES_RE.search(lines[i]):
            return i
        i -= 1
    return None


__all__ = ["ScriptFix", "collect_fixes", "apply_fixes"]
