"""Lowering recorded directive events into executable operations.

The interpreter (:class:`repro.acc.runtime.Runtime` driven by
:class:`repro.core.pipeline.OffloadPipeline`) re-derives everything per
launch: present-table checks, persona lowering to a
:class:`~repro.gpusim.kernelmodel.LaunchConfig`, tracer spans, recorder
fan-out. This module is the back end of :mod:`repro.compile`: it takes
the *transformed* event template (after verified opportunities were
applied by :func:`repro.analyze.dataflow.apply_opportunity`) and turns
each :class:`~repro.analyze.program.AccEvent` into a
:class:`LoweredOp` — a closed, self-describing operation — then *binds*
the op list against a live runtime:

* **faithful** binding replays through the runtime's own directive
  methods, so recorders and tracers observe the compiled schedule
  exactly as they would an interpreted one.  The bitwise verification
  gate runs in this mode.
* **fast** binding resolves the persona lowering once per op at bind
  time and emits closures that talk straight to the simulated
  :class:`~repro.gpusim.device.Device`.  Only legal when nothing is
  watching (no recorders, null tracer); data-region bookkeeping still
  goes through the runtime so the present table stays truthful.

Fused computes carry ``"a+b"`` kernel names; :class:`WorkloadRegistry`
resolves them by fusing the named parts with
:func:`repro.optim.fuse_kernels`, and the fused launch shares one
gang/vector configuration taken from the dominant (widest) part's
:class:`~repro.optim.autotune.TuningPlan` entry when a plan is active.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable, Mapping

from repro.trace.tracer import NULL_TRACER
from repro.utils.errors import CompileError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acc.clauses import LoopSchedule
    from repro.acc.runtime import Runtime
    from repro.analyze.program import AccEvent
    from repro.optim.autotune import TuningPlan
    from repro.propagators.base import KernelWorkload

#: Event kinds the lowering understands. ``send``/``recv`` stay with the
#: interpreter (rank exchange needs live neighbour state).
LOWERABLE_KINDS = (
    "enter", "exit", "update", "compute", "wait", "host_write", "host_read",
)


@dataclass(frozen=True)
class LoweredOp:
    """One executable operation flattened out of an :class:`AccEvent`.

    Every field is resolved at lowering time — in particular ``nbytes``
    of partial updates and the per-name ``sizes`` of data regions come
    from the recording's extent table, so binding needs no program
    context. ``full`` records that an update covered the whole array
    (``nbytes is None`` in the event), which faithful replay must
    preserve for the recorder.
    """

    kind: str
    # data regions
    copyin: tuple[str, ...] = ()
    create: tuple[str, ...] = ()
    delete: tuple[str, ...] = ()
    copyout: tuple[str, ...] = ()
    sizes: tuple[tuple[str, int], ...] = ()
    # updates / host markers
    direction: str | None = None
    var: str | None = None
    nbytes: int | None = None
    full: bool = False
    chunks: int = 1
    offset: int = 0
    names: tuple[str, ...] = ()
    # computes
    construct: str | None = None
    kernel: str | None = None
    present: tuple[str, ...] = ()
    schedule: "LoopSchedule | None" = None
    queue: int | None = None
    wait_on: tuple[int, ...] = ()
    wait_all: bool = False


def lower_events(
    events: Iterable["AccEvent"], extents: Mapping[str, int]
) -> list[LoweredOp]:
    """Flatten transformed events into :class:`LoweredOp`\\ s.

    Raises :class:`CompileError` on kinds outside
    :data:`LOWERABLE_KINDS` or on a full-extent update whose array has
    no recorded extent (nothing to resolve the byte count against).
    """
    ops: list[LoweredOp] = []
    for e in events:
        if e.kind == "enter":
            names = tuple(e.copyin) + tuple(e.create)
            ops.append(LoweredOp(
                kind="enter", copyin=tuple(e.copyin), create=tuple(e.create),
                sizes=tuple((n, int(extents.get(n, 0))) for n in names),
            ))
        elif e.kind == "exit":
            ops.append(LoweredOp(
                kind="exit", delete=tuple(e.delete), copyout=tuple(e.copyout),
            ))
        elif e.kind == "update":
            full = e.nbytes is None
            if full:
                if e.var not in extents:
                    raise CompileError(
                        f"update of '{e.var}' has no recorded extent"
                    )
                n = int(extents[e.var])
            else:
                n = int(e.nbytes)
            ops.append(LoweredOp(
                kind="update", direction=e.direction, var=e.var, nbytes=n,
                full=full, chunks=int(e.chunks or 1), queue=e.queue,
                offset=int(e.offset or 0),
            ))
        elif e.kind == "compute":
            ops.append(LoweredOp(
                kind="compute", construct=e.construct, kernel=e.kernel,
                present=tuple(e.reads), schedule=e.schedule, queue=e.queue,
                wait_on=tuple(e.wait_on), wait_all=bool(e.wait_all),
            ))
        elif e.kind == "wait":
            # a recorded wait with an empty wait_on tuple is the bare
            # directive: drain *all* queues
            ops.append(LoweredOp(
                kind="wait",
                queue=int(e.wait_on[0]) if e.wait_on else None,
            ))
        elif e.kind in ("host_write", "host_read"):
            names = tuple(e.writes if e.kind == "host_write" else e.reads)
            ops.append(LoweredOp(
                kind=e.kind, names=names, offset=int(e.offset or 0),
                nbytes=e.nbytes, full=e.nbytes is None,
            ))
        else:
            raise CompileError(
                f"event kind '{e.kind}' is not lowerable "
                f"(supported: {', '.join(LOWERABLE_KINDS)})"
            )
    return ops


class WorkloadRegistry:
    """Kernel-name → :class:`KernelWorkload` resolution for binding.

    Built from a pipeline's workload lists; resolves fused ``"a+b"``
    names on demand by fusing the named parts with
    :func:`repro.optim.fuse_kernels` (memoised, so the fused body is
    constructed once per distinct name).
    """

    def __init__(self, workloads: Iterable["KernelWorkload"]):
        self._by_name: dict[str, KernelWorkload] = {}
        for w in workloads:
            self._by_name.setdefault(w.name, w)

    @classmethod
    def from_pipeline(cls, pipeline) -> "WorkloadRegistry":
        """Collect every workload an :class:`OffloadPipeline` can launch."""
        pools = [
            getattr(pipeline, name, None)
            for name in (
                "forward_workloads", "backward_workloads",
                "backward_transpose", "receiver_workloads",
                "imaging_workloads",
            )
        ]
        flat = [w for pool in pools if pool for w in pool]
        source = getattr(pipeline, "source_workload", None)
        if source is not None:
            flat.append(source)
        return cls(flat)

    def names(self) -> tuple[str, ...]:
        return tuple(sorted(self._by_name))

    def parts(self, kernel: str) -> tuple["KernelWorkload", ...]:
        """The unfused constituents of ``kernel`` (itself, if unfused)."""
        if kernel in self._by_name:
            return (self._by_name[kernel],)
        return tuple(self._resolve_part(p) for p in kernel.split("+"))

    def resolve(self, kernel: str) -> "KernelWorkload":
        if kernel in self._by_name:
            return self._by_name[kernel]
        if "+" in kernel:
            from repro.optim import fuse_kernels

            fused = fuse_kernels(*self.parts(kernel), name=kernel)
            self._by_name[kernel] = fused
            return fused
        raise CompileError(f"unknown kernel '{kernel}' (not in registry)")

    def _resolve_part(self, name: str) -> "KernelWorkload":
        try:
            return self._by_name[name]
        except KeyError:
            raise CompileError(
                f"fused kernel part '{name}' is not in the registry"
            ) from None


@dataclass
class BoundStep:
    """A callable sequence of bound thunks for one pipeline phase."""

    phase: str
    ops: tuple[LoweredOp, ...]
    faithful: bool
    _thunks: list[Callable[[], None]] = field(repr=False, default_factory=list)

    def __call__(self) -> None:
        for thunk in self._thunks:
            thunk()

    @property
    def launches(self) -> int:
        """Kernel launches per execution of this step."""
        return sum(1 for op in self.ops if op.kind == "compute")


def _plan_override(op: LoweredOp, registry: WorkloadRegistry, plan):
    """Resolve (workload, construct, schedule) for a compute op, letting
    an active :class:`TuningPlan` override the launch choice. For fused
    kernels the *dominant* (widest) part's plan entry decides — the
    fused launch shares one gang/vector configuration."""
    workload = registry.resolve(op.kernel)
    construct, schedule = op.construct, op.schedule
    if plan is not None:
        parts = registry.parts(op.kernel)
        dominant = max(parts, key=lambda w: w.points)
        entry = plan.entry_for(dominant.name)
        if entry is not None:
            construct = entry.construct
            schedule = entry.loop_schedule()
    return workload, construct, schedule


def _bind_faithful(
    op: LoweredOp, rt: "Runtime", registry: WorkloadRegistry, plan
) -> Callable[[], None] | None:
    if op.kind == "enter":
        sizes = dict(op.sizes)
        copyin = {n: sizes[n] for n in op.copyin}
        create = {n: sizes[n] for n in op.create}
        return lambda: rt.enter_data(copyin=copyin, create=create)
    if op.kind == "exit":
        return lambda: rt.exit_data(delete=op.delete, copyout=op.copyout)
    if op.kind == "update":
        nbytes = None if op.full else op.nbytes
        method = rt.update_host if op.direction == "host" else rt.update_device
        return lambda: method(
            op.var, nbytes=nbytes, chunks=op.chunks, queue=op.queue,
            offset=op.offset,
        )
    if op.kind == "compute":
        workload, construct, schedule = _plan_override(op, registry, plan)
        launch = rt.parallel if construct == "parallel" else rt.kernels
        # async_=False pins queue None; an int queue passes through.
        # Never None: that would re-enter auto-async rotation and
        # diverge from the recorded schedule.
        async_ = False if op.queue is None else op.queue
        return lambda: launch(
            workload, present=op.present, schedule=schedule, async_=async_,
            wait_on=op.wait_on, wait_all=op.wait_all,
        )
    if op.kind == "wait":
        return lambda: rt.wait(op.queue)
    if op.kind == "host_write":
        return lambda: rt.note_host_write(
            *op.names, offset=op.offset,
            nbytes=None if op.full else op.nbytes,
        )
    if op.kind == "host_read":
        return lambda: rt.note_host_read(
            *op.names, offset=op.offset,
            nbytes=None if op.full else op.nbytes,
        )
    raise CompileError(f"cannot bind op kind '{op.kind}'")


def _bind_fast(
    op: LoweredOp, rt: "Runtime", registry: WorkloadRegistry, plan
) -> Callable[[], None] | None:
    device = rt.device
    if op.kind == "compute":
        workload, construct, schedule = _plan_override(op, registry, plan)
        # persona lowering happens ONCE, here, instead of per launch
        cfg = rt.compiler.lower(
            construct, workload, schedule, rt.flags, async_queue=op.queue
        )
        factor = rt.compiler.async_enqueue_factor
        wait_on, wait_all = op.wait_on, op.wait_all

        def compute_thunk():
            if wait_all:
                device.wait(None)
            for q in wait_on:
                device.wait(q)
            device.launch(workload, cfg, enqueue_cost_factor=factor)

        return compute_thunk
    if op.kind == "update":
        tag = f"update_{op.direction}:{op.var}"
        mover = device.d2h if op.direction == "host" else device.h2d
        n, chunks, queue = op.nbytes, op.chunks, op.queue
        return lambda: mover(n, name=tag, chunks=chunks, queue=queue)
    if op.kind == "wait":
        return lambda: device.wait(op.queue)
    if op.kind in ("host_write", "host_read"):
        return None  # pure annotations; nothing records them in fast mode
    # data-region ops keep real present-table bookkeeping either way
    return _bind_faithful(op, rt, registry, plan)


def bind_ops(
    phase: str,
    ops: Iterable[LoweredOp],
    rt: "Runtime",
    registry: WorkloadRegistry,
    plan: "TuningPlan | None" = None,
    faithful: bool | None = None,
) -> BoundStep:
    """Bind lowered ops against a live runtime into a :class:`BoundStep`.

    ``faithful=None`` auto-detects: replay through runtime directives
    whenever a recorder or non-null tracer is attached (they must see
    the schedule), straight-to-device closures otherwise.
    """
    ops = tuple(ops)
    if faithful is None:
        faithful = bool(rt._recorders) or rt.tracer is not NULL_TRACER
    binder = _bind_faithful if faithful else _bind_fast
    step = BoundStep(phase=phase, ops=ops, faithful=faithful)
    for op in ops:
        thunk = binder(op, rt, registry, plan)
        if thunk is not None:
            step._thunks.append(thunk)
    return step


__all__ = [
    "LOWERABLE_KINDS",
    "LoweredOp",
    "WorkloadRegistry",
    "BoundStep",
    "lower_events",
    "bind_ops",
]
