"""Wall-clock benchmarking of interpreted vs compiled execution.

Everything else in this package talks about *simulated* device seconds;
this module measures the one thing the compiler actually changes — the
**host-side** Python cost of driving the schedule.  Each side runs the
identical schedule on identical fresh twins (same device spec, persona,
flags), so the simulated times agree by construction and the
``perf_counter`` delta isolates interpreter overhead: per-launch persona
lowering, tracer spans, present-table checks, and the launches removed
by fusion.

``python -m repro compile all --bench BENCH_step.json`` persists the
results in the same shape as ``BENCH_autotune.json``; the benchmark
suite (``benchmarks/test_step_compile.py``) asserts compiled ≤
interpreted on every seed case.
"""

from __future__ import annotations

import gc
import time
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acc.runtime import Runtime
    from repro.compile.compiler import CompiledPipeline, CompileRequest
    from repro.core.config import GPUOptions

#: timing repetitions; min-of-N suppresses scheduler noise
DEFAULT_REPEATS = 5


def _time_best(fn: Callable[[], None], repeats: int) -> float:
    """Best-of-``repeats`` wall-clock seconds of ``fn`` (GC paused)."""
    fn()  # warm-up: imports, allocation paths, memoised lowering
    best = float("inf")
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        if enabled:
            gc.enable()
    return best


def _run_interpreted(
    request: "CompileRequest",
    options: "GPUOptions",
    runtime_factory: Callable[[], "Runtime"],
) -> None:
    from repro.core.pipeline import (
        OffloadPipeline,
        run_pipeline_modeling,
        run_pipeline_rtm,
    )

    pipe = OffloadPipeline(
        runtime_factory(),
        request.physics,
        request.shape,
        nreceivers=request.nreceivers,
        space_order=request.space_order,
        boundary_width=request.boundary_width,
        options=options,
        pml_variant=request.pml_variant,
    )
    if request.mode == "rtm":
        run_pipeline_rtm(pipe, request.nt, request.snap_period)
    else:
        run_pipeline_modeling(
            pipe, request.nt, request.snap_period, request.snapshot_decimate
        )


def measure_case(
    request: "CompileRequest",
    compiled: "CompiledPipeline",
    options: "GPUOptions",
    runtime_factory: Callable[[], "Runtime"],
    repeats: int = DEFAULT_REPEATS,
) -> dict:
    """Wall-clock interpreted vs compiled for one case.

    Returns the per-case record written into ``BENCH_step.json``:
    per-step host seconds both ways, the speedup, launch counts, and the
    roofline-modelled simulated savings of the applied fusions.
    """
    interp_total = _time_best(
        lambda: _run_interpreted(request, options, runtime_factory), repeats
    )

    def run_compiled() -> None:
        compiled.bind(runtime_factory(), faithful=False).run()

    compiled_total = _time_best(run_compiled, repeats)
    nt = max(1, request.nt)
    interp_step = interp_total / nt
    compiled_step = compiled_total / nt
    modelled_saved = sum(
        rec.modelled.get("saved_seconds", 0.0) for rec in compiled.applied
    )
    return {
        "interpreted_s": interp_total,
        "compiled_s": compiled_total,
        "interpreted_step_s": interp_step,
        "compiled_step_s": compiled_step,
        "speedup": interp_step / compiled_step if compiled_step > 0 else 0.0,
        "applied": len(compiled.applied),
        "launches_per_step": compiled.launches_per_step(),
        "modelled_saved_s_per_step": modelled_saved,
        "verified": compiled.verified,
    }


def bench_document(
    cases: dict[str, dict], nt: int, snap_period: int, repeats: int
) -> dict:
    """The ``BENCH_step.json`` document."""
    return {
        "schema": 1,
        "benchmark": "step_compile",
        "nt": nt,
        "snap_period": snap_period,
        "repeats": repeats,
        "cases": cases,
    }


__all__ = ["DEFAULT_REPEATS", "measure_case", "bench_document"]
