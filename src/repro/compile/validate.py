"""Translation validation: static proofs that a compiled schedule
simulates the recorded program.

The compiler (:mod:`repro.compile.compiler`) historically had exactly one
safety argument: bitwise replay.  That gate is sound but blind — it can
only *refuse* what it cannot replay, so every cross-phase fusion was
skipped and the multi-GPU driver fell back to the interpreter whenever a
prologue hoist appeared.  This module adds the missing static half: a
simulation relation between the lowered per-phase op lists of a
:class:`~repro.compile.compiler.CompiledPipeline` and the recorded
:class:`~repro.analyze.program.DirectiveProgram`, checked obligation by
obligation against the dependence graph
(:class:`~repro.analyze.dataflow.graph.DependenceGraph`).

Proof obligations, each with its ``DF2xx`` rule
(:mod:`repro.analyze.rules`):

``DF201`` *dependence-edge-not-preserved*
    every RAW/WAR/WAW edge of the phase template must map to
    order-preserving positions in the lowered op list, and no fusion may
    collapse a synchronisation edge (a ``wait`` between the anchors, a
    wait clause on an intervening launch, or anchors on different
    queues).
``DF202`` *hoist-not-dominated*
    a hoisted update's one-time prologue copy must be dominated by the
    last writer of its array: no event between the insertion point and
    the final original anchor may write the array.
``DF203`` *fused-access-overlap*
    the moved half of a fused kernel carries its access set past every
    intervening event; any read/write conflict on the way refutes the
    fusion.
``DF204`` *cross-rank-reorder*
    lifting a prologue into a multi-GPU schedule must leave every rank's
    send/recv sequence — and hence the cross-rank message matching of
    :func:`~repro.analyze.dataflow.crossrank.match_messages` — unchanged.

:func:`validate_opportunity` checks one opportunity on one program (the
unit the cross-check tests compare against replay verification);
:func:`validate_compiled` discharges the whole pipeline's obligations and
is wired into :func:`~repro.compile.compiler.compile_case` as a
pre-replay gate.  The replay gate stays as the backstop: the validator is
strictly more conservative, never admitting what replay rejects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.analyze.dataflow.graph import DependenceGraph
from repro.analyze.framework import Diagnostic, Severity
from repro.analyze.program import AccEvent, DirectiveProgram
from repro.analyze.rules import rule

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.dataflow.opportunities import OptimizationOpportunity
    from repro.compile.compiler import CompiledPipeline, SegmentedRecording
    from repro.compile.lower import LoweredOp

PASS_NAME = "translation-validate"


def _accesses(event: AccEvent) -> dict[str, str]:
    """Conservative access set folded per array: ``'w'`` wins over ``'r'``."""
    out: dict[str, str] = {}
    for name, how in event.accesses(conservative=True):
        if name is None:
            continue
        if how == "w" or out.get(name) != "w":
            out[name] = how
    return out


def _diag(key: str, *, event_index=None, var=None, kernel=None,
          witness=(), **fields) -> Diagnostic:
    r = rule(key)
    fmt = dict(fields)
    fmt.setdefault("var", var)
    fmt.setdefault("kernel", kernel)
    return Diagnostic(
        pass_name=PASS_NAME,
        rule=r.static_rule,
        severity=r.severity,
        message=r.format(**fmt),
        event_index=event_index,
        var=var,
        kernel=kernel,
        witness=tuple(witness),
    )


# ----------------------------------------------------------------------
# per-opportunity proofs
# ----------------------------------------------------------------------
def _fuse_diags(
    program: DirectiveProgram, opp: "OptimizationOpportunity"
) -> list[Diagnostic]:
    events = program.events
    ia, ib = opp.events[0], opp.events[1]
    a, b = events[ia], events[ib]
    merged = "+".join(k for k in (a.kernel, b.kernel) if k) or "fused"
    diags: list[Diagnostic] = []
    if a.queue != b.queue:
        diags.append(_diag(
            "dependence-edge-not-preserved",
            kind="order", var=b.kernel or "compute", src=ia, dst=ib,
            detail=(
                f"the anchors sit on queues {a.queue} and {b.queue}; "
                f"fusing serialises two independent queue timelines"
            ),
            event_index=ib, kernel=merged, witness=(ia, ib),
        ))
    # the fusion moves b's body up to a's position: every event between
    # the anchors is reordered past b's access set, and any ordering
    # construct between them is an edge the move would collapse
    moved = _accesses(b)
    for e in events[ia + 1:ib]:
        if e.kind == "wait":
            diags.append(_diag(
                "dependence-edge-not-preserved",
                kind="order", var=b.kernel or "compute", src=ia, dst=ib,
                detail=(
                    f"a wait at event {e.index} joins another queue "
                    f"between the fused pair"
                ),
                event_index=e.index, kernel=merged,
                witness=(ia, e.index, ib),
            ))
            continue
        if e.kind == "compute" and (e.wait_all or e.wait_on):
            diags.append(_diag(
                "dependence-edge-not-preserved",
                kind="order", var=e.kernel or "compute", src=ia, dst=ib,
                detail=(
                    f"launch '{e.kernel}' at event {e.index} carries wait "
                    f"clauses the fusion would hoist past"
                ),
                event_index=e.index, kernel=merged,
                witness=(ia, e.index, ib),
            ))
        for name, how in _accesses(e).items():
            bh = moved.get(name)
            if bh is None:
                continue
            if how == "w" or bh == "w":
                diags.append(_diag(
                    "fused-access-overlap",
                    kernel=merged, var=name, idx=e.index,
                    detail=(
                        f"{e.kind} {'writes' if how == 'w' else 'reads'} "
                        f"'{name}' which the moved launch "
                        f"{'writes' if bh == 'w' else 'reads'}"
                    ),
                    event_index=e.index, witness=(ia, e.index, ib),
                ))
    return diags


def _hoist_diags(
    program: DirectiveProgram, opp: "OptimizationOpportunity"
) -> list[Diagnostic]:
    events = program.events
    first = events[opp.events[0]]
    var = opp.var or first.var
    start = opp.insert_at if opp.insert_at is not None else opp.events[0]
    stop = max(opp.events)
    anchors = set(opp.events)
    diags: list[Diagnostic] = []
    for e in events[start + 1:stop + 1]:
        if e.index in anchors:
            continue
        if _accesses(e).get(var) == "w":
            diags.append(_diag(
                "hoist-not-dominated",
                direction=first.direction, var=var, idx=opp.events[0],
                detail=f"{e.kind} of '{var}' at event {e.index}",
                event_index=e.index,
                witness=(start, e.index, *sorted(anchors)),
            ))
    return diags


def _cancel_diags(
    program: DirectiveProgram, opp: "OptimizationOpportunity"
) -> list[Diagnostic]:
    events = program.events
    i, j = min(opp.events), max(opp.events)
    var = opp.var or events[i].var
    diags: list[Diagnostic] = []
    for e in events[i + 1:j]:
        how = _accesses(e).get(var)
        if how is None:
            continue
        diags.append(_diag(
            "dependence-edge-not-preserved",
            kind="waw" if how == "w" else "raw", var=var, src=i, dst=j,
            detail=(
                f"event {e.index} ({e.kind}) "
                f"{'writes' if how == 'w' else 'reads'} '{var}' between "
                f"the cancelled update pair"
            ),
            event_index=e.index, witness=(i, e.index, j),
        ))
    return diags


def validate_opportunity(
    program: DirectiveProgram, opp: "OptimizationOpportunity"
) -> list[Diagnostic]:
    """Statically prove one opportunity legal on ``program``.

    Returns the refuting ``DF201``-``DF203`` diagnostics — empty means
    admitted.  Strictly more conservative than
    :func:`~repro.analyze.dataflow.verify_opportunity`'s shadow replay:
    whatever the replay rejects, this refuses too (the cross-check suite
    asserts that direction on the forged fixtures).
    """
    n = len(program.events)
    if any(i < 0 or i >= n for i in opp.events + tuple(opp.remove_events)):
        return [_diag(
            "dependence-edge-not-preserved",
            kind="order", var=opp.var or "?",
            src=min(opp.events, default=0), dst=max(opp.events, default=0),
            detail="an anchor index is outside the program",
        )]
    if opp.kind == "fuse-computes":
        return _fuse_diags(program, opp)
    if opp.kind == "hoist-update":
        return _hoist_diags(program, opp)
    if opp.kind == "cancel-update-pair":
        return _cancel_diags(program, opp)
    return [_diag(
        "dependence-edge-not-preserved",
        kind="order", var=opp.var or "?",
        src=opp.events[0], dst=opp.events[-1],
        detail=f"unknown opportunity kind '{opp.kind}'",
    )]


# ----------------------------------------------------------------------
# whole-pipeline validation
# ----------------------------------------------------------------------
@dataclass
class ValidationReport:
    """The validator's verdict for one compiled pipeline."""

    name: str
    program_sha: str
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: proof obligations discharged (instances checked + edges mapped)
    obligations: int = 0

    @property
    def ok(self) -> bool:
        return not any(
            d.severity >= Severity.ERROR for d in self.diagnostics
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "program_sha": self.program_sha,
            "ok": self.ok,
            "obligations": self.obligations,
            "diagnostics": [
                {
                    "rule": d.rule, "severity": d.severity.name.lower(),
                    "message": d.message, "event": d.event_index,
                    "witness": list(d.witness),
                }
                for d in self.diagnostics
            ],
        }


def _instance_opportunities(
    recording: "SegmentedRecording", rec
) -> tuple[list["OptimizationOpportunity"], list[Diagnostic]]:
    """Expand one applied record into per-occurrence opportunities with
    absolute anchors — every periodic instance carries its own proof."""
    from repro.analyze.dataflow.opportunities import OptimizationOpportunity

    program = recording.program
    out: list[OptimizationOpportunity] = []
    diags: list[Diagnostic] = []
    if "->" in rec.phase:
        pa, pb = rec.phase.split("->", 1)
        by_start = {s.start: s for s in recording.segments}
        for sa in recording.slices(pa):
            sb = by_start.get(sa.stop)
            if sb is None or sb.phase != pb:
                diags.append(_diag(
                    "dependence-edge-not-preserved",
                    kind="order", var=rec.var or "+".join(rec.kernels),
                    src=sa.start, dst=sa.stop,
                    detail=(
                        f"'{pa}' slice at event {sa.start} is not followed "
                        f"by a '{pb}' slice — the cross-phase fusion has no "
                        f"partner there"
                    ),
                    event_index=sa.start,
                ))
                continue
            ia, ib = sa.start + rec.offsets[0], sb.start + rec.offsets[1]
            out.append(OptimizationOpportunity(
                kind="fuse-computes", events=(ia, ib), var=rec.var,
                kernels=rec.kernels, remove_events=(ib,), verified=True,
            ))
        return out, diags
    slices = recording.slices(rec.phase)
    if rec.kind == "hoist-update":
        # one global obligation: the prologue copy must be dominated all
        # the way from its injection point to the last original anchor
        anchors = tuple(
            s.start + off for s in slices for off in rec.offsets
        )
        from repro.compile.compiler import _PROLOGUE_OF

        gate = (
            "allocate"
            if _PROLOGUE_OF[rec.phase] == "forward_prologue" else "swap"
        )
        gates = recording.slices(gate)
        insert = gates[0].stop - 1 if gates else slices[0].start
        out.append(OptimizationOpportunity(
            kind="hoist-update", events=anchors, var=rec.var,
            remove_events=anchors, insert_at=insert, verified=True,
        ))
        return out, diags
    for s in slices:
        events = tuple(s.start + off for off in rec.offsets)
        if rec.kind == "fuse-computes":
            out.append(OptimizationOpportunity(
                kind="fuse-computes", events=events, var=rec.var,
                kernels=rec.kernels, remove_events=(events[1],),
                verified=True,
            ))
        else:
            out.append(OptimizationOpportunity(
                kind="cancel-update-pair", events=events, var=rec.var,
                remove_events=events, verified=True,
            ))
    return out, diags


def _phase_facts(compiled: "CompiledPipeline", phase: str):
    """(removed offsets, fused offset -> kernel name) for one phase."""
    removed: set[int] = set()
    fused: dict[int, str] = {}
    partner: dict[int, int] = {}
    for rec in compiled.applied:
        if "->" in rec.phase:
            pa, _ = rec.phase.split("->", 1)
            if pa == phase:
                fused[rec.offsets[0]] = "+".join(rec.kernels)
            continue
        if rec.phase != phase:
            continue
        if rec.kind == "fuse-computes":
            fused[rec.offsets[0]] = "+".join(rec.kernels)
            removed.add(rec.offsets[1])
            partner[rec.offsets[1]] = rec.offsets[0]
        else:
            removed.update(rec.offsets)
    return removed, fused, partner


def _simulate_phase(
    compiled: "CompiledPipeline",
    phase: str,
    template: list[AccEvent],
    program: DirectiveProgram,
) -> tuple[list[Diagnostic], int]:
    """The simulation relation for one repeated phase: the lowered op
    list must be the template minus removed offsets, with fused anchors
    renamed, in order — and every dependence edge of the template must
    map to order-preserving lowered positions."""
    from repro.compile.compiler import _mini_program
    from repro.compile.lower import lower_events

    diags: list[Diagnostic] = []
    obligations = 0
    removed, fused, partner = _phase_facts(compiled, phase)
    ops = compiled.steps.get(phase, [])

    posmap: dict[int, int | None] = {}
    expected: list[tuple[int, AccEvent]] = []
    for off, e in enumerate(template):
        if off in removed:
            posmap[off] = None
            continue
        posmap[off] = len(expected)
        expected.append((off, e))
    if len(ops) != len(expected):
        diags.append(_diag(
            "dependence-edge-not-preserved",
            kind="order", var=phase, src=0, dst=len(template),
            detail=(
                f"phase '{phase}' lowered to {len(ops)} ops but the "
                f"transformed template has {len(expected)} events"
            ),
        ))
        return diags, obligations
    for pos, (off, e) in enumerate(expected):
        obligations += 1
        op = ops[pos]
        if off in fused:
            if op.kind != "compute" or op.kernel != fused[off]:
                diags.append(_diag(
                    "dependence-edge-not-preserved",
                    kind="order", var=e.kernel or phase, src=off, dst=off,
                    detail=(
                        f"offset {off} should lower to fused launch "
                        f"'{fused[off]}' but op {pos} is "
                        f"{op.kind} '{op.kernel}'"
                    ),
                    kernel=fused[off],
                ))
            continue
        if lower_events([e], program.extents)[0] != op:
            diags.append(_diag(
                "dependence-edge-not-preserved",
                kind="order", var=e.var or e.kernel or phase,
                src=off, dst=off,
                detail=(
                    f"op {pos} of phase '{phase}' does not lower the "
                    f"template event at offset {off} ({e.kind})"
                ),
            ))

    # dependence preservation over the template's own graph
    mini = _mini_program(program.meta, program.extents, template)
    graph = DependenceGraph.from_program(mini)
    for edge in graph.dependences():
        i, j = edge.src[1], edge.dst[1]
        pi = posmap.get(i)
        if pi is None and i in partner:
            pi = posmap.get(partner[i])
        pj = posmap.get(j)
        if pj is None and j in partner:
            pj = posmap.get(partner[j])
        if pi is None or pj is None:
            # the endpoint was hoisted/cancelled away — its legality is
            # discharged by that selection's own DF202/DF201 obligation
            continue
        obligations += 1
        if pi > pj:
            diags.append(_diag(
                "dependence-edge-not-preserved",
                kind=edge.kind, var=edge.var, src=i, dst=j,
                detail=(
                    f"phase '{phase}' lowers the producer to position "
                    f"{pi} after the consumer at {pj}"
                ),
                witness=(i, j),
            ))
    return diags, obligations


def _check_cross_variants(
    compiled: "CompiledPipeline",
) -> tuple[list[Diagnostic], int]:
    """Each cross-phase variant step must be the partner phase's base
    step with exactly the fused-away launches removed."""
    diags: list[Diagnostic] = []
    obligations = 0
    for (pa, pb), vname in compiled.cross_variants.items():
        obligations += 1
        base = list(compiled.steps.get(pb, []))
        variant = list(compiled.steps.get(vname, []))
        gone = [
            r.kernels[-1] for r in compiled.applied
            if r.phase == f"{pa}->{pb}"
        ]
        expected = list(base)
        for kernel in gone:
            hit = next(
                (k for k, op in enumerate(expected)
                 if op.kind == "compute" and op.kernel == kernel),
                None,
            )
            if hit is None:
                diags.append(_diag(
                    "dependence-edge-not-preserved",
                    kind="order", var=kernel, src=0, dst=0,
                    detail=(
                        f"variant '{vname}' should drop launch '{kernel}' "
                        f"but the base '{pb}' step never launches it"
                    ),
                    kernel=kernel,
                ))
                break
            expected.pop(hit)
        else:
            if expected != variant:
                diags.append(_diag(
                    "dependence-edge-not-preserved",
                    kind="order", var=vname, src=0, dst=0,
                    detail=(
                        f"variant '{vname}' is not the '{pb}' step minus "
                        f"the fused launches ({len(variant)} ops vs "
                        f"{len(expected)} expected)"
                    ),
                ))
    return diags, obligations


def validate_compiled(
    compiled: "CompiledPipeline", recording: "SegmentedRecording"
) -> ValidationReport:
    """Discharge every proof obligation of a compiled pipeline.

    Three obligation families: (1) each applied opportunity re-proven on
    *every* periodic instance via :func:`validate_opportunity`; (2) the
    per-phase simulation relation between lowered ops and the recorded
    template, with dependence-edge preservation over the template graph;
    (3) cross-phase variant structure.  ``compile_case`` runs this as a
    pre-replay gate and refuses any ERROR finding.
    """
    from repro.compile.compiler import REPEATED_PHASES

    program = recording.program
    report = ValidationReport(
        name=compiled.request.name, program_sha=compiled.program_sha
    )
    for rec in compiled.applied:
        instances, diags = _instance_opportunities(recording, rec)
        report.diagnostics.extend(diags)
        for inst in instances:
            report.obligations += 1
            report.diagnostics.extend(validate_opportunity(program, inst))
    for phase in REPEATED_PHASES:
        template = recording.template(phase)
        if not template:
            continue
        diags, n = _simulate_phase(compiled, phase, template, program)
        report.diagnostics.extend(diags)
        report.obligations += n
    diags, n = _check_cross_variants(compiled)
    report.diagnostics.extend(diags)
    report.obligations += n
    return report


# ----------------------------------------------------------------------
# cross-rank reorder proof (the multi-GPU prologue lift)
# ----------------------------------------------------------------------
def prologue_lift_proof(
    prologue_ops_by_rank: Sequence[Iterable["LoweredOp"]],
    exchanged: Iterable[str],
) -> list[Diagnostic]:
    """``DF204``: prove that running each rank's hoisted prologue ahead
    of the stepping loop leaves the cross-rank message schedule intact.

    The multi-GPU driver's halo exchange is the only cross-rank traffic;
    a prologue is liftable iff it carries no send/recv of its own and
    touches no exchanged field (a hoisted update of a halo-exchanged
    array would reorder against every exchange of the loop it left).
    An empty return admits the lift.
    """
    exchanged = set(exchanged)
    diags: list[Diagnostic] = []
    for rank, ops in enumerate(prologue_ops_by_rank):
        for op in ops:
            if op.kind in ("send", "recv"):
                diags.append(_diag(
                    "cross-rank-reorder",
                    rank=rank,
                    detail=(
                        f"the prologue itself performs a {op.kind} of "
                        f"'{op.var}'"
                    ),
                    var=op.var,
                ))
            elif op.kind == "update" and op.var in exchanged:
                diags.append(_diag(
                    "cross-rank-reorder",
                    rank=rank,
                    detail=(
                        f"hoisted update {op.direction} of exchanged "
                        f"field '{op.var}' moves across the halo exchange"
                    ),
                    var=op.var,
                ))
    return diags


def message_schedule_preserved(
    pre: list[DirectiveProgram], post: list[DirectiveProgram]
) -> bool:
    """Whether two multi-rank schedules carry the same message matching:
    per-channel ordered payload sequences and unmatched counts agree
    (the formal ceremony behind :func:`prologue_lift_proof`, exercised
    directly by the validator tests on synthetic reorders)."""
    from repro.analyze.dataflow.crossrank import match_messages

    def signature(programs: list[DirectiveProgram]):
        match = match_messages(programs)
        channels: dict[tuple, list] = {}
        for pair in match.pairs:
            key = (pair.send[0], pair.recv[0])
            channels.setdefault(key, []).append(pair.var)
        return (
            {k: tuple(v) for k, v in channels.items()},
            len(match.unmatched_sends),
            len(match.unmatched_recvs),
        )

    return signature(pre) == signature(post)


__all__ = [
    "PASS_NAME",
    "ValidationReport",
    "validate_opportunity",
    "validate_compiled",
    "prologue_lift_proof",
    "message_schedule_preserved",
]
