"""Fused-kernel compilation of the directive IR — the hot-path backend.

The interpreter executes the offload schedule one directive at a time;
this package *compiles* it: a recorded
:class:`~repro.analyze.program.DirectiveProgram` plus its verified
:class:`~repro.analyze.dataflow.OptimizationOpportunity` records are
lowered into per-phase :class:`~repro.compile.lower.LoweredOp` lists, a
flattened step over the same vectorised kernel workloads, with each
fusion/hoist/cancellation applied through the dataflow engine's own
:func:`~repro.analyze.dataflow.apply_opportunity`.

Guarantees:

* **bitwise equivalence** — every compiled schedule is replayed under a
  recorder and its :func:`~repro.analyze.dataflow.replay_fingerprint`
  must equal the interpreted pipeline's before it is ever used;
* **fail closed** — stale opportunity artifacts
  (:meth:`~repro.analyze.program.DirectiveProgram.sha` mismatch),
  non-steady-state schedules and failed re-proofs raise
  :class:`~repro.utils.errors.CompileError` /
  :class:`~repro.utils.errors.StaleArtifactError`;
* **priced fusions** — each applied fusion is costed by the
  roofline/launch model (:func:`repro.optim.fused_launch_estimate`):
  one launch overhead instead of N, register pressure merged under the
  effective maxregcount.

Entry points: ``python -m repro compile CASE|all`` (see
:mod:`repro.compile.cli`), the ``GPUOptions.compiled`` fast path wired
into :func:`repro.core.pipeline.run_pipeline_modeling` /
:func:`~repro.core.pipeline.run_pipeline_rtm` and
:class:`~repro.core.multigpu.MultiGpuPipeline`
(:mod:`repro.compile.runner`), and the wall-clock benchmark behind
``BENCH_step.json`` (:mod:`repro.compile.bench`).
"""

from repro.compile.bench import measure_case
from repro.compile.compiler import (
    AppliedOpportunity,
    BoundPipeline,
    CompiledPipeline,
    CompileRequest,
    SegmentedRecording,
    SelectedOpportunity,
    SelectionResult,
    apply_to_template,
    compile_case,
    opportunities_from_artifact,
    record_segments,
    select_opportunities,
)
from repro.compile.lower import (
    BoundStep,
    LoweredOp,
    WorkloadRegistry,
    bind_ops,
    lower_events,
)
from repro.compile.runner import (
    clear_cache,
    compiled_for_pipeline,
    compiled_steps_for_rank,
    run_pipeline_compiled,
)

__all__ = [
    "AppliedOpportunity",
    "BoundPipeline",
    "BoundStep",
    "CompiledPipeline",
    "CompileRequest",
    "LoweredOp",
    "SegmentedRecording",
    "SelectedOpportunity",
    "SelectionResult",
    "WorkloadRegistry",
    "apply_to_template",
    "bind_ops",
    "clear_cache",
    "compile_case",
    "compiled_for_pipeline",
    "compiled_steps_for_rank",
    "lower_events",
    "measure_case",
    "opportunities_from_artifact",
    "record_segments",
    "run_pipeline_compiled",
    "select_opportunities",
]
