"""Execution glue: the ``GPUOptions.compiled`` fast path.

:func:`run_pipeline_compiled` is what
:func:`repro.core.pipeline.run_pipeline_modeling` /
:func:`~repro.core.pipeline.run_pipeline_rtm` delegate to when
``options.compiled`` is set: compile (memoised per schedule shape),
then execute the verified :class:`~repro.compile.compiler.BoundPipeline`
on the pipeline's own runtime.  Binding auto-detects fidelity — a
runtime with recorders (sanitize sessions) or a live tracer replays
faithfully through the directive layer; a bare runtime gets the
straight-to-device closures.

:func:`compiled_steps_for_rank` serves :mod:`repro.core.multigpu`: each
rank's interior step loop swaps in the compiled ``forward``/``backward``
steps while halo exchange, snapshots and phase transitions stay with the
interpreter (they touch live neighbour state).

Compilation failures are never silent: :class:`CompileError` propagates.
A case the *interpreter* also refuses (known-failure persona, OOM on
allocate) is mapped onto the same ``failed_times`` records the
interpreted drivers return, so compiled and interpreted runs stay
table-compatible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.compile.compiler import (
    BoundPipeline,
    CompiledPipeline,
    CompileRequest,
    compile_case,
)
from repro.observe import runlog
from repro.utils.errors import DeviceOutOfMemoryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.acc.runtime import Runtime
    from repro.core.config import GpuTimes
    from repro.core.pipeline import OffloadPipeline

#: memoised CompiledPipeline per schedule shape (cleared for tests)
_CACHE: dict[tuple, CompiledPipeline] = {}


def clear_cache() -> None:
    """Drop all memoised compilations (test isolation)."""
    _CACHE.clear()


def _request_for(
    pipeline: "OffloadPipeline",
    mode: str,
    nt: int,
    snap_period: int,
    snapshot_decimate: int,
) -> CompileRequest:
    return CompileRequest(
        physics=pipeline.physics,
        shape=pipeline.shape,
        mode=mode,
        nt=nt,
        snap_period=snap_period,
        snapshot_decimate=snapshot_decimate,
        nreceivers=pipeline.nreceivers,
        space_order=pipeline.space_order,
        boundary_width=pipeline.boundary_width,
        pml_variant=pipeline.pml_variant,
    )


def _cache_key(pipeline: "OffloadPipeline", request: CompileRequest) -> tuple:
    rt = pipeline.rt
    opts = pipeline.options
    plan = opts.plan
    return (
        request,
        rt.device.spec.name,
        rt.compiler.name,
        rt.compiler.version,
        repr(rt.flags),
        opts.image_on_gpu,
        opts.reuse_forward_kernel,
        opts.loop_fission,
        opts.transpose_fix,
        opts.async_kernels,
        opts.construct,
        repr(opts.schedule),
        None if plan is None else (plan.case, plan.mode, repr(sorted(plan.kernels))),
    )


def _twin_runtime_factory(pipeline: "OffloadPipeline"):
    """Fresh runtimes shaped like the pipeline's own — same device spec,
    PCIe link, toolkit and persona — for recording and verification."""
    from repro.acc.runtime import Runtime
    from repro.gpusim.device import Device

    src = pipeline.rt

    def factory() -> "Runtime":
        device = Device(
            src.device.spec,
            pcie=src.device.pcie,
            toolkit=src.device.toolkit,
            pinned_host=src.device.pinned_host,
        )
        return Runtime(device, compiler=src.compiler, flags=src.flags)

    return factory


def compiled_for_pipeline(
    pipeline: "OffloadPipeline",
    mode: str,
    nt: int,
    snap_period: int,
    snapshot_decimate: int = 1,
) -> CompiledPipeline:
    """Compile (or fetch the memoised compilation of) this pipeline's
    schedule shape.  The pipeline itself is never executed here — twins
    carry the recording and the verification replay."""
    request = _request_for(pipeline, mode, nt, snap_period, snapshot_decimate)
    key = _cache_key(pipeline, request)
    hit = _CACHE.get(key)
    if hit is not None:
        runlog.count("compile.cache_hits")
        return hit
    # a real compilation: record/fuse/verify on the twins. Counted (and
    # spanned on the pipeline's tracer) so a survey loop that recompiles
    # per shot instead of reusing the memo is visible in its trace.
    with pipeline.rt.tracer.span(
        "compile", process="compile", track="compile", cat="compile",
        case=request.name, mode=mode,
    ):
        compiled = compile_case(
            request,
            runtime_factory=_twin_runtime_factory(pipeline),
            source_pipeline=pipeline,
        )
    runlog.count("compile.compilations")
    runlog.emit("compile", case=request.name, mode=mode,
                applied=len(compiled.applied))
    _CACHE[key] = compiled
    return compiled


def run_pipeline_compiled(
    pipeline: "OffloadPipeline",
    mode: str,
    nt: int,
    snap_period: int,
    snapshot_decimate: int = 1,
) -> "GpuTimes":
    """Compile and execute the full schedule on the pipeline's runtime."""
    from repro.core.pipeline import failed_times

    if mode == "rtm":
        tag = f"{pipeline.physics}-{pipeline.ndim}d-rtm"
        if tag in getattr(pipeline.options.compiler, "known_failures", ()):
            return failed_times("compiler")
    try:
        compiled = compiled_for_pipeline(
            pipeline, mode, nt, snap_period, snapshot_decimate
        )
    except DeviceOutOfMemoryError:
        # the twin OOMed on allocate/swap; the real device has the same
        # spec, so report what the interpreter would have
        return failed_times("oom")
    runlog.emit(
        "compiled", case=compiled.request.name,
        applied=len(compiled.applied),
        launches=compiled.launches_per_step(),
    )
    bound = compiled.bind(pipeline.rt)
    times = bound.run()
    # the compiled run drained the schedule end-to-end; reflect that in
    # the pipeline's own bookkeeping
    pipeline._present_names = []
    pipeline._phase = "idle"
    return times


def compiled_steps_for_rank(
    pipe: "OffloadPipeline",
    mode: str,
    nt: int,
    snap_period: int,
    snapshot_decimate: int = 1,
) -> BoundPipeline:
    """Per-rank compiled steps for :class:`~repro.core.multigpu.
    MultiGpuPipeline`: the caller drives ``steps['forward']`` /
    ``steps['backward']`` inside its own exchange loop.  Ranks under a
    sanitize session bind faithfully (their recorders must see every
    directive)."""
    compiled = compiled_for_pipeline(
        pipe, mode, nt, snap_period, snapshot_decimate
    )
    return compiled.bind(pipe.rt)


__all__ = [
    "clear_cache",
    "compiled_for_pipeline",
    "run_pipeline_compiled",
    "compiled_steps_for_rank",
]
